#!/usr/bin/env bash
# CI spec smoke gate, the companion to tools/ci_perf_smoke.sh for the
# declarative-workflow layer (mfw::spec). Four checks on a Release build:
#
#   1. The refactored pipeline is bit-for-bit the seed pipeline: a fig6-shaped
#      barrier run through `mfwctl run` must produce a CSV with the recorded
#      sha256. EomlWorkflow now routes its scheduling mode through the
#      compiled builtin spec, so any drift here means the spec compiler
#      changed the paper run.
#   2. `mfwctl plan --builtin` compiles the builtin paper spec and prints the
#      five pipeline stages in topological order.
#   3. Per-command flag validation: plan/sweep reject unknown flags with
#      usage on stderr and exit code 2 (not a crash, not silence).
#   4. A 2-policy mini-sweep (`policy_sweep --quick`) emits BENCH_policies
#      JSON carrying the mfw.policies/v1 schema with populated makespan /
#      utilization / p99 fields for every point.
#
# Usage: tools/ci_spec_smoke.sh [build-dir]   (default: build-perf, shared
#        with the perf smoke so CI reuses one Release tree)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-perf"}"

expected_sha="6a0ee1a4f8f0ff2f84bb1d51a74d2f6869d3cf26fbf820d86669eea18881ac62"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target mfwctl policy_sweep

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

# -- 1. seed determinism through the compiled builtin spec -------------------
printf 'workflow:\n  max_files: 40\n' > "${workdir}/fig6.yaml"
"${build_dir}/tools/mfwctl" run "${workdir}/fig6.yaml" \
    --csv "${workdir}/fig6.csv" > /dev/null
actual_sha="$(sha256sum "${workdir}/fig6.csv" | awk '{print $1}')"
if [[ "${actual_sha}" != "${expected_sha}" ]]; then
  echo "FAIL: fig6 barrier CSV drifted from the seed" >&2
  echo "  expected ${expected_sha}" >&2
  echo "  actual   ${actual_sha}" >&2
  exit 1
fi
echo "OK: fig6 barrier run is bit-for-bit the seed (${expected_sha:0:12}...)"

# -- 2. builtin spec compiles and plans --------------------------------------
plan="$("${build_dir}/tools/mfwctl" plan --builtin)"
for stage in download preprocess monitor inference shipment; do
  if ! grep -q "  ${stage} \[" <<< "${plan}"; then
    echo "FAIL: mfwctl plan --builtin is missing stage '${stage}'" >&2
    echo "${plan}" >&2
    exit 1
  fi
done
echo "OK: mfwctl plan --builtin lists the five pipeline stages"

# -- 3. per-command flag validation ------------------------------------------
check_rejects() {  # check_rejects <cmd> <flag>
  local out rc
  set +e
  out="$("${build_dir}/tools/mfwctl" "$1" --builtin "$2" 2>&1)"
  rc=$?
  set -e
  if [[ ${rc} -ne 2 ]]; then
    echo "FAIL: mfwctl $1 $2 exited ${rc}, expected 2" >&2
    exit 1
  fi
  if ! grep -q "unknown flag '$2' for command '$1'" <<< "${out}"; then
    echo "FAIL: mfwctl $1 $2 did not name the bad flag" >&2
    echo "${out}" >&2
    exit 1
  fi
  if ! grep -qi "usage" <<< "${out}"; then
    echo "FAIL: mfwctl $1 $2 did not print usage" >&2
    exit 1
  fi
}
check_rejects plan --bogus
check_rejects sweep --frobnicate
echo "OK: plan/sweep reject unknown flags with usage + exit 2"

# -- 4. mini policy sweep emits a populated schema ---------------------------
sweep_json="${workdir}/BENCH_policies.json"
"${build_dir}/bench/policy_sweep" --quick --out "${sweep_json}" > /dev/null
if ! grep -q '"schema": "mfw.policies/v1"' "${sweep_json}"; then
  echo "FAIL: policy sweep JSON is missing the mfw.policies/v1 schema" >&2
  exit 1
fi
points="$(grep -c '"policy": ' "${sweep_json}")"
if [[ "${points}" -lt 2 ]]; then
  echo "FAIL: quick sweep produced ${points} points, expected >= 2" >&2
  exit 1
fi
for field in makespan utilization p99_queue_wait deadline_misses; do
  populated="$(grep -c "\"${field}\": " "${sweep_json}")"
  if [[ "${populated}" -ne "${points}" ]]; then
    echo "FAIL: field '${field}' populated in ${populated}/${points} points" >&2
    exit 1
  fi
done
echo "OK: quick sweep wrote ${points} populated mfw.policies/v1 points"

echo "spec smoke: all gates passed"
