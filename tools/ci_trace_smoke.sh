#!/usr/bin/env bash
# CI trace smoke test: run the Fig. 6 bench on a reduced catalog slice with
# --trace-out and validate the exported Chrome trace-event JSON — it must
# parse, and both scheduling modes (processes "eoml-barrier" and
# "eoml-streaming") must carry the expected top-level stage spans
# (download/preprocess/inference). Guards the obs layer end-to-end: recorder,
# workflow instrumentation, and exporter.
#
# Usage: tools/ci_trace_smoke.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j "$(nproc)" --target fig6_timeline

out_dir="$(mktemp -d)"
trap 'rm -rf "${out_dir}"' EXIT
trace_json="${out_dir}/fig6_trace.json"

"${build_dir}/bench/fig6_timeline" --max-files 6 --trace-out "${trace_json}" \
    > "${out_dir}/fig6.out"

python3 - "${trace_json}" <<'EOF'
import collections
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)  # must be valid JSON

events = trace["traceEvents"]
assert events, "trace has no events"

process_names = {
    e["pid"]: e["args"]["name"]
    for e in events
    if e["ph"] == "M" and e["name"] == "process_name"
}
stage_spans = collections.defaultdict(set)
for e in events:
    if e["ph"] == "X" and e.get("cat") == "stage":
        assert e["dur"] >= 0, f"negative duration: {e}"
        stage_spans[e["pid"]].add(e["name"])

expected_stages = {"download", "preprocess", "inference"}
expected_processes = {"eoml-barrier", "eoml-streaming"}
seen_processes = set()
for pid, stages in stage_spans.items():
    name = process_names.get(pid, f"pid{pid}")
    missing = expected_stages - stages
    assert not missing, f"process {name} missing stage spans: {missing}"
    seen_processes.add(name)
missing = expected_processes - seen_processes
assert not missing, f"missing traced workflow runs: {missing}"

spans = sum(1 for e in events if e["ph"] == "X")
instants = sum(1 for e in events if e["ph"] == "i")
print(f"trace OK: {len(events)} events, {spans} spans, {instants} instants, "
      f"processes {sorted(seen_processes)}")
EOF

echo "ci_trace_smoke: PASS"
