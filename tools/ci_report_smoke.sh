#!/usr/bin/env bash
# CI trace-report smoke gate, the companion to tools/ci_perf_smoke.sh for the
# obs analytics layer (DESIGN.md §10). Four checks on a Release build:
#
#   1. `mfwctl report --json` on a Fig. 6-style config emits a schema-valid
#      mfw.trace_report/v1 document whose critical path tiles the makespan
#      (coverage >= 0.9, length <= makespan + epsilon) and whose
#      critical-path dominant stage is consistent with the per-stage rows.
#   2. The report's dominant stage equals the longest stage span — i.e. the
#      analyzer agrees with the rendered timeline about where the makespan
#      goes.
#   3. mfwctl rejects unknown flags with usage + exit 2 (the CLI contract the
#      gating scripts depend on).
#   4. A 2-day archive_campaign with --report-out runs under the bounded
#      recorder (kStatsOnly retention + rollups): spans must be dropped, the
#      retained sample must respect its cap, and the rollup report must cover
#      every observed span.
#
# Usage: tools/ci_report_smoke.sh [build-dir]   (default: build-perf, shared
#        with ci_perf_smoke.sh so CI reuses the Release build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-perf"}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target mfwctl archive_campaign

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

cat > "${workdir}/fig6.yaml" <<'EOF'
# Fig. 6-shaped slice, trimmed for CI: barrier scheduling so the download
# stage dominates the makespan exactly as in the paper's timeline.
workflow:
  satellite: terra
  span: {year: 2022, first_day: 1, last_day: 1}
  max_files: 12
  daytime_only: true
  scheduling: barrier
download:
  workers: 3
preprocess:
  nodes: 4
  workers_per_node: 8
EOF

# -- 1+2. report --json: schema, critical path, dominant stage ---------------
"${build_dir}/tools/mfwctl" report "${workdir}/fig6.yaml" --json --quiet \
    > "${workdir}/report.json"
python3 - "${workdir}/report.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

assert report["schema"] == "mfw.trace_report/v1", report.get("schema")
assert report["processes"], "no processes analyzed"
for proc in report["processes"]:
    makespan = proc["makespan"]
    path = proc["critical_path"]
    assert makespan > 0, f"{proc['process']}: empty makespan"
    assert path["length"] <= makespan * 1.001, (
        f"{proc['process']}: critical path {path['length']} exceeds "
        f"makespan {makespan}")
    assert path["coverage"] >= 0.9, (
        f"{proc['process']}: critical path covers only "
        f"{path['coverage']:.1%} of the makespan")
    # The analyzer's dominant stage must be the longest stage span, i.e.
    # what a rendered timeline shows as makespan-dominant.
    stages = {s["stage"]: s for s in proc["stages"]}
    assert proc["dominant_stage"] in stages, proc["dominant_stage"]
    longest = max(stages.values(), key=lambda s: s["end"] - s["start"])
    assert proc["dominant_stage"] == longest["stage"], (
        f"{proc['process']}: dominant {proc['dominant_stage']} != longest "
        f"stage span {longest['stage']}")
    by_stage = {e["stage"]: e["seconds"] for e in path["by_stage"]}
    assert path["dominant_stage"] == max(by_stage, key=by_stage.get)
    print(f"OK: {proc['process']}: dominant={proc['dominant_stage']} "
          f"coverage={path['coverage']:.1%} "
          f"path_dominant={path['dominant_stage']}")
print("OK: trace report schema + critical path sanity")
EOF

# -- 3. unknown flags are rejected -------------------------------------------
for bad in "report ${workdir}/fig6.yaml --bogus" "trace ${workdir}/fig6.yaml --frobnicate x" "run ${workdir}/fig6.yaml --json"; do
  set +e
  # shellcheck disable=SC2086
  "${build_dir}/tools/mfwctl" ${bad} >/dev/null 2>"${workdir}/err.txt"
  status=$?
  set -e
  if [[ ${status} -ne 2 ]] || ! grep -q "unknown flag" "${workdir}/err.txt"; then
    echo "FAIL: 'mfwctl ${bad}' should exit 2 with an unknown-flag error" >&2
    cat "${workdir}/err.txt" >&2
    exit 1
  fi
done
echo "OK: unknown flags rejected with usage + exit 2"

# -- 4. bounded-memory campaign telemetry ------------------------------------
"${build_dir}/bench/archive_campaign" --days 2 \
    --report-out "${workdir}/rollup.json" --out "${workdir}/campaign.json" \
    > /dev/null
python3 - "${workdir}/rollup.json" "${workdir}/campaign.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    rollup = json.load(f)
with open(sys.argv[2]) as f:
    campaign = json.load(f)

rec = rollup["recorder"]
assert rec["observed_spans"] > 1000, rec
assert rec["dropped_spans"] > 0, "bounded mode dropped nothing"
assert rec["retained_spans"] <= 4096, rec  # the exemplar cap
assert rec["retained_spans"] + rec["dropped_spans"] == rec["observed_spans"]
assert rollup["rollup"]["spans_seen"] == rec["observed_spans"], (
    "rollup sink missed spans")
assert rollup["rollup"]["series"], "no rollup series"
assert campaign["obs"]["observed_spans"] == rec["observed_spans"]
print(f"OK: bounded telemetry: {rec['observed_spans']} observed, "
      f"{rec['retained_spans']} retained, {rec['dropped_spans']} dropped, "
      f"{len(rollup['rollup']['series'])} rollup series")
EOF

echo "OK: trace-report smoke gate passed"
