#!/usr/bin/env bash
# CI gate for the sharded serving layer (DESIGN.md §14). Four checks:
#
#   1. mfwctl serve-bench --check --json: the mfw.serve/v1 serve_bench
#      document must parse, carry the right schema/doc markers, report
#      zero oracle mismatches (every sharded query answer identical to a
#      brute-force archive scan), and clear a cache-hit-rate floor on the
#      Zipf workload (0.30 — current runs sit around 0.5-0.7, so the floor
#      has slack for small CI boxes).
#   2. CLI flag validation: an unknown serve-bench flag must exit 2 with a
#      usage message, per the mfwctl per-command flag contract.
#   3. serve_test passes in the main tree (property tests vs the oracle,
#      seal/cache/generation semantics).
#   4. A ThreadSanitizer build of serve_test exercises the lock-free
#      read-during-ingest path (ConcurrentReadDuringIngest) — the single
#      check that pins the shard memory-ordering protocol.
#
# Usage: tools/ci_serve_smoke.sh [build-dir] [tsan-build-dir]
#        (defaults: build-perf, build-tsan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-perf"}"
tsan_dir="${2:-"${repo_root}/build-tsan"}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target mfwctl serve_test

# -- 1. schema + oracle + cache-hit floor -------------------------------------
serve_json="${build_dir}/ci_serve_bench.json"
"${build_dir}/tools/mfwctl" serve-bench --tiles 60000 --requests 40000 \
  --check --quiet --out "${serve_json}"

python3 - "${serve_json}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
if doc.get("schema") != "mfw.serve/v1":
    sys.exit(f"FAIL: bad schema marker {doc.get('schema')!r}")
if doc.get("doc") != "serve_bench":
    sys.exit(f"FAIL: bad doc marker {doc.get('doc')!r}")
check = doc["check"]
if check["queries"] < 100:
    sys.exit(f"FAIL: only {check['queries']} oracle queries ran")
if check["mismatches"] != 0:
    sys.exit(f"FAIL: {check['mismatches']} oracle mismatches")
hit_rate = doc["load"]["cache_hit_rate"]
print(f"oracle: {check['queries']} queries, 0 mismatches")
print(f"cache hit rate: {hit_rate:.3f} (floor 0.30)")
if hit_rate < 0.30:
    sys.exit("FAIL: cache hit rate below the 0.30 floor")
resp = doc["example_response"]
if resp.get("schema") != "mfw.serve/v1" or "matched" not in resp:
    sys.exit("FAIL: example query response missing schema/matched fields")
EOF
echo "OK: serve-bench schema, oracle, and cache-hit floor"

# -- 2. per-command flag validation -------------------------------------------
rc=0
"${build_dir}/tools/mfwctl" serve-bench --bogus-flag >/dev/null 2>&1 || rc=$?
if [[ "${rc}" != 2 ]]; then
  echo "FAIL: serve-bench unknown flag exited ${rc}, want 2" >&2
  exit 1
fi
echo "OK: unknown serve-bench flag rejected with exit 2"

# -- 3. unit + property tests -------------------------------------------------
"${build_dir}/tests/serve_test" --gtest_brief=1
echo "OK: serve_test passed"

# -- 4. lock-free reads under TSan --------------------------------------------
cmake -B "${tsan_dir}" -S "${repo_root}" -DMFW_TSAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${tsan_dir}" -j "$(nproc)" --target serve_test
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
  "${tsan_dir}/tests/serve_test" --gtest_brief=1
echo "OK: serve_test clean under ThreadSanitizer"

echo "ci_serve_smoke: all gates passed"
