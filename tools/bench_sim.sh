#!/usr/bin/env bash
# Runs the archive-scale simulation benchmark (bench/archive_campaign) and
# snapshots the numbers into BENCH_sim.json at the repo root, so substrate
# regressions show up as a diff: a year-long streaming campaign (~105k
# granules), substrate scaling to 10^6 jobs/flows, and the fast-vs-naive
# churn speedups (DESIGN.md §9).
#
# Usage: tools/bench_sim.sh [build-dir] [out-json] [extra archive_campaign args]
#        (defaults: build, BENCH_sim.json; pass --quick for a CI-sized run)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"
out_json="${2:-"${repo_root}/BENCH_sim.json"}"
shift $(( $# > 2 ? 2 : $# ))

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j "$(nproc)" --target archive_campaign

"${build_dir}/bench/archive_campaign" --out "${out_json}" "$@"

echo "wrote ${out_json}"
