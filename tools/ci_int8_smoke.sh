#!/usr/bin/env bash
# CI gate for the int8 quantized + fused RICC inference stack (DESIGN.md
# §13). Four checks on a Release build:
#
#   1. tests/ml_quant_test passes: quantization round-trip bounds, exact
#      int8 GEMM reference equivalence, fused-vs-unfused bitwise identity,
#      and the int8-vs-fp32 agreement floor on the unit-test workload.
#   2. bench/micro_kernels clears the speedup floors: gemm_s8 >= 2x sgemm
#      on the im2col'd conv shape [8][72][1024], and the end-to-end int8
#      encode >= 2x the fp32 layer path (the ISSUE acceptance bar; current
#      Release numbers are ~4x on both, so the floor has slack for noisy
#      runners).
#   3. ablation_latent --int8-check on a trained model: fused latents must
#      be bitwise identical to the layer path, and int8 42-class assignment
#      agreement must be >= 0.99.
#   4. fig1_swath --encode-path int8 --tile-budget 32 reports a peak
#      resident tile count within the budget.
#
# Usage: tools/ci_int8_smoke.sh [build-dir]   (default: build-perf)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-perf"}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target \
      ml_quant_test micro_kernels ablation_latent fig1_swath

# -- 1. unit gates ------------------------------------------------------------
"${build_dir}/tests/ml_quant_test" --gtest_brief=1
echo "OK: ml_quant_test passed"

# -- 2. kernel + encode speedup floors ----------------------------------------
bench_json="${build_dir}/BENCH_int8_smoke.json"
"${build_dir}/bench/micro_kernels" \
  --benchmark_filter='BM_Sgemm/8/72/1024|BM_GemmS8/8/72/1024|BM_RiccEncode(Fp32|Int8)' \
  --benchmark_min_time=0.2 \
  --benchmark_out="${bench_json}" \
  --benchmark_out_format=json \
  --benchmark_format=console

python3 - "${bench_json}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
if doc["context"].get("mfw_build_type") != "Release":
    sys.exit("FAIL: micro_kernels is not a Release build")
rate = {b["name"]: b["items_per_second"] for b in doc["benchmarks"]}
gemm = rate["BM_GemmS8/8/72/1024"] / rate["BM_Sgemm/8/72/1024"]
encode = rate["BM_RiccEncodeInt8"] / rate["BM_RiccEncodeFp32"]
print(f"int8 gemm over fp32 sgemm [8x72x1024]: {gemm:.2f}x (floor 2.0)")
print(f"int8 encode over fp32 encode:          {encode:.2f}x (floor 2.0)")
if gemm < 2.0:
    sys.exit("FAIL: gemm_s8 speedup below the 2x floor")
if encode < 2.0:
    sys.exit("FAIL: int8 encode speedup below the 2x floor")
EOF
echo "OK: int8 speedup floors cleared"

# -- 3. accuracy on a trained model -------------------------------------------
audit="$("${build_dir}/bench/ablation_latent" --int8-check |
         grep -A2 'Int8 inference audit')"
echo "${audit}"
if [[ "${audit}" != *"bitwise IDENTICAL"* ]]; then
  echo "FAIL: fused fp32 plan is not bitwise identical to the layer path" >&2
  exit 1
fi
agreement="$(echo "${audit}" | grep 'int8  vs layers' |
             grep -o '[0-9.]*$')"
if ! awk -v a="${agreement}" 'BEGIN { exit !(a >= 0.99) }'; then
  echo "FAIL: int8 42-class agreement ${agreement} below the 0.99 floor" >&2
  exit 1
fi
echo "OK: fused bitwise identity + int8 agreement ${agreement} >= 0.99"

# -- 4. bounded-memory streaming stays within budget --------------------------
budget_line="$("${build_dir}/bench/fig1_swath" --encode-path int8 \
               --tile-budget 32 | grep 'within budget')"
echo "${budget_line}"
if [[ "${budget_line}" != *"within budget: yes"* ]]; then
  echo "FAIL: fig1_swath int8 run exceeded its tile budget" >&2
  exit 1
fi
echo "OK: fig1_swath int8 run stayed within the tile budget"

echo "ci_int8_smoke: all gates passed"
