#!/usr/bin/env bash
# CI health smoke gate for the live-watch layer (mfw::obs watch, DESIGN.md
# §12). Five checks on a Release build:
#
#   1. Zero perturbation: a fig6-shaped barrier run through `mfwctl watch`
#      (bus + monitor attached, spans streaming) must produce a timeline CSV
#      with the SAME sha256 that tools/ci_spec_smoke.sh pins for
#      `mfwctl run`. Observation must not change the simulation — any drift
#      here means the watch layer perturbed the paper run.
#   2. Schema: the --health-out stream carries the mfw.health/v1 schema with
#      its rules/alerts/stages sections.
#   3. Clean gate: a healthy run with no SLO section raises zero alerts —
#      the engine does not cry wolf.
#   4. Chaos gate: starving preprocess (1 node x 4 workers) under a declared
#      queue-wait SLO must raise a firing alert attributed to "queue-wait",
#      and the alert must surface in the JSON stream as well as on stdout.
#   5. Flag validation: `mfwctl watch` rejects unknown flags with usage on
#      stderr and exit code 2.
#
# Usage: tools/ci_health_smoke.sh [build-dir]   (default: build-perf, shared
#        with the perf/spec smokes so CI reuses one Release tree)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-perf"}"

expected_sha="6a0ee1a4f8f0ff2f84bb1d51a74d2f6869d3cf26fbf820d86669eea18881ac62"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target mfwctl

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
mfwctl="${build_dir}/tools/mfwctl"

# -- 1 + 2 + 3. watched fig6 run: bit-for-bit the seed, schema'd, quiet -----
printf 'workflow:\n  max_files: 40\n' > "${workdir}/fig6.yaml"
clean_out="$("${mfwctl}" watch "${workdir}/fig6.yaml" --quiet \
    --csv "${workdir}/fig6.csv" --health-out "${workdir}/clean.json")"
actual_sha="$(sha256sum "${workdir}/fig6.csv" | awk '{print $1}')"
if [[ "${actual_sha}" != "${expected_sha}" ]]; then
  echo "FAIL: watch-enabled fig6 CSV drifted from the unwatched seed run" >&2
  echo "  expected ${expected_sha}" >&2
  echo "  actual   ${actual_sha}" >&2
  exit 1
fi
echo "OK: watched fig6 run is bit-for-bit the unwatched seed (${expected_sha:0:12}...)"

if ! grep -q '"schema": "mfw.health/v1"' "${workdir}/clean.json"; then
  echo "FAIL: --health-out is missing the mfw.health/v1 schema" >&2
  cat "${workdir}/clean.json" >&2
  exit 1
fi
for section in '"rules"' '"alerts"' '"stages"' '"dropped_events"'; do
  if ! grep -q "${section}:" "${workdir}/clean.json"; then
    echo "FAIL: --health-out is missing the ${section} section" >&2
    exit 1
  fi
done
echo "OK: health stream carries mfw.health/v1 with rules/alerts/stages"

clean_alerts="$(grep -c '^alert ' <<< "${clean_out}" || true)"
if [[ "${clean_alerts}" -ne 0 ]]; then
  echo "FAIL: clean run raised ${clean_alerts} alert(s), expected 0" >&2
  grep '^alert ' <<< "${clean_out}" >&2
  exit 1
fi
echo "OK: clean run raises zero alerts"

# -- 4. chaos gate: starved stage under a declared SLO must fire ------------
cat > "${workdir}/chaos.yaml" <<'EOF'
workflow:
  max_files: 24
preprocess:
  nodes: 1
  workers_per_node: 4
slo:
  - name: pp-queue
    stage: preprocess
    metric: queue_wait_p99
    threshold: 5
    window: 120
EOF
chaos_out="$("${mfwctl}" watch "${workdir}/chaos.yaml" --quiet \
    --health-out "${workdir}/chaos.json")"
if ! grep -q '^alert firing  *rule=pp-queue .*cause=queue-wait' \
    <<< "${chaos_out}"; then
  echo "FAIL: starved preprocess did not fire pp-queue with cause=queue-wait" >&2
  echo "${chaos_out}" >&2
  exit 1
fi
if ! grep -q '"state": "firing"' "${workdir}/chaos.json"; then
  echo "FAIL: chaos health stream has no firing alert" >&2
  cat "${workdir}/chaos.json" >&2
  exit 1
fi
if ! grep -q '"cause": "queue-wait"' "${workdir}/chaos.json"; then
  echo "FAIL: chaos health stream lost the queue-wait attribution" >&2
  exit 1
fi
echo "OK: injected queue pressure fires pp-queue with cause=queue-wait"

# -- 5. flag validation ------------------------------------------------------
set +e
reject_out="$("${mfwctl}" watch "${workdir}/fig6.yaml" --bogus 2>&1)"
rc=$?
set -e
if [[ ${rc} -ne 2 ]]; then
  echo "FAIL: mfwctl watch --bogus exited ${rc}, expected 2" >&2
  exit 1
fi
if ! grep -q "unknown flag '--bogus' for command 'watch'" <<< "${reject_out}"; then
  echo "FAIL: mfwctl watch --bogus did not name the bad flag" >&2
  echo "${reject_out}" >&2
  exit 1
fi
echo "OK: watch rejects unknown flags with usage + exit 2"

echo "health smoke: all gates passed"
