#!/usr/bin/env bash
# Runs the fast-ML-substrate micro benchmarks (bench/micro_kernels) and
# snapshots the numbers into BENCH_kernels.json at the repo root, so kernel
# regressions show up as a diff. google-benchmark's own --benchmark_format=json
# is the payload; we just pin the output location and repetition settings.
#
# Usage: tools/bench_kernels.sh [build-dir] [out-json]
#        (defaults: build, BENCH_kernels.json)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"
out_json="${2:-"${repo_root}/BENCH_kernels.json"}"

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j "$(nproc)" --target micro_kernels

"${build_dir}/bench/micro_kernels" \
  --benchmark_min_time=0.2 \
  --benchmark_out="${out_json}" \
  --benchmark_out_format=json \
  --benchmark_format=console

echo "wrote ${out_json}"
