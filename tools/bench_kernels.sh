#!/usr/bin/env bash
# Runs the fast-ML-substrate micro benchmarks (bench/micro_kernels) and
# snapshots the numbers into BENCH_kernels.json at the repo root, so kernel
# regressions show up as a diff. google-benchmark's own --benchmark_format=json
# is the payload; we just pin the output location and repetition settings.
#
# The build is forced to Release and the snapshot is refused unless the
# binary's own mfw_build_type context stamp says "Release" — a debug-built
# snapshot once poisoned the perf trajectory in BENCH_kernels.json. (The
# library_build_type field reflects the system google-benchmark library, not
# this binary; a debug library only earns a warning.)
#
# Usage: tools/bench_kernels.sh [build-dir] [out-json]
#        (defaults: build-perf, BENCH_kernels.json)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-perf"}"
out_json="${2:-"${repo_root}/BENCH_kernels.json"}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target micro_kernels

"${build_dir}/bench/micro_kernels" \
  --benchmark_min_time=0.2 \
  --benchmark_out="${out_json}" \
  --benchmark_out_format=json \
  --benchmark_format=console

build_type="$(grep -o '"mfw_build_type": "[^"]*"' "${out_json}" |
              head -1 | cut -d'"' -f4)"
if [[ "${build_type}" != "Release" ]]; then
  rm -f "${out_json}"
  echo "FAIL: micro_kernels was built as '${build_type:-unknown}', not" \
       "Release — snapshot refused (numbers from unoptimized builds are" \
       "not comparable)" >&2
  exit 1
fi
if grep -q '"library_build_type": "debug"' "${out_json}"; then
  echo "WARNING: the system google-benchmark library is a debug build;" \
       "timing overhead may be slightly inflated (the benchmarked kernels" \
       "themselves are Release)" >&2
fi

echo "wrote ${out_json} (mfw_build_type=Release)"
