#!/usr/bin/env bash
# Runs every benchmark suite in tools/ back to back and refreshes all the
# BENCH_*.json snapshots at the repo root in one command, so a perf-affecting
# change can regenerate its full diff surface without remembering the suite
# list:
#
#   bench_kernels.sh  ->  BENCH_kernels.json   (fast-ML-substrate kernels)
#   bench_sim.sh      ->  BENCH_sim.json       (archive-scale event engine)
#   bench_obs.sh      ->  BENCH_obs.json       (recording/rollup/bus overhead)
#   bench_serve.sh    ->  BENCH_serve.json     (sharded serving layer)
#
# All suites share one Release build tree (bench_kernels.sh configures it
# with CMAKE_BUILD_TYPE=Release and refuses to snapshot non-Release numbers;
# running first, it pins the tree's build type for the other suites). Pass
# --quick to hand the CI-sized knob to the suites that understand it
# (currently the archive campaign); kernels and obs are already
# seconds-scale.
#
# Usage: tools/bench_all.sh [build-dir] [--quick]
#        (default build-dir: build-perf)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-perf"
quick=""
for arg in "$@"; do
  case "${arg}" in
    --quick) quick="--quick" ;;
    *) build_dir="${arg}" ;;
  esac
done

echo "=== bench_all: kernels ==="
"${repo_root}/tools/bench_kernels.sh" "${build_dir}"

echo "=== bench_all: simulation substrate ==="
if [[ -n "${quick}" ]]; then
  "${repo_root}/tools/bench_sim.sh" "${build_dir}" \
      "${repo_root}/BENCH_sim.json" --quick
else
  "${repo_root}/tools/bench_sim.sh" "${build_dir}"
fi

echo "=== bench_all: obs recording overhead ==="
"${repo_root}/tools/bench_obs.sh" "${build_dir}"

echo "=== bench_all: serving layer ==="
if [[ -n "${quick}" ]]; then
  "${repo_root}/tools/bench_serve.sh" "${build_dir}" \
      "${repo_root}/BENCH_serve.json" --quick
else
  "${repo_root}/tools/bench_serve.sh" "${build_dir}"
fi

echo "bench_all: wrote BENCH_kernels.json BENCH_sim.json BENCH_obs.json" \
     "BENCH_serve.json"
