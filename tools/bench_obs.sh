#!/usr/bin/env bash
# Runs the obs recording-overhead microbenchmark (bench/micro_obs) and
# snapshots the numbers into BENCH_obs.json at the repo root, so telemetry
# regressions (gate cost, full-retention path, stats+rollup path) show up as
# a diff (DESIGN.md §10).
#
# Usage: tools/bench_obs.sh [build-dir] [out-json] [extra micro_obs args]
#        (defaults: build, BENCH_obs.json)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"
out_json="${2:-"${repo_root}/BENCH_obs.json"}"
shift $(( $# > 2 ? 2 : $# ))

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j "$(nproc)" --target micro_obs

"${build_dir}/bench/micro_obs" --out "${out_json}" "$@"

echo "wrote ${out_json}"
