// mfwctl — command-line front end for the EO-ML workflow.
//
//   mfwctl run <config.yaml> [--timeline] [--csv <path>] [--quiet]
//       Run the five-stage workflow from a YAML configuration file.
//   mfwctl registry
//       List the built-in shareable pipeline templates.
//   mfwctl run-template <name> [<overrides.yaml>] [--facility <profile>]
//       Instantiate a registry template (optionally merged with overrides)
//       and run it on a named facility profile (olcf | nersc | alcf).
//   mfwctl facilities
//       Show the built-in facility profiles.
//   mfwctl trace <config.yaml> [--out <trace.json>] [--metrics <path>] [--quiet]
//       Run the workflow with the obs layer enabled and export a Chrome
//       trace-event JSON (load in Perfetto / chrome://tracing) plus an
//       optional flat metrics dump.
//   mfwctl report <config.yaml> [--json] [--out <path>] [--straggler-k <k>]
//       Run the workflow traced and print the trace-analysis report:
//       critical path, per-stage utilization, queue waits, stragglers with
//       cause attribution. --json emits the machine-readable report (used by
//       CI gating) on stdout. --from <report.json> re-renders a previously
//       saved mfw.trace_report/v1 document instead of running (exit 1 with a
//       clear message on schema mismatch or truncated JSON).
//   mfwctl lineage <config.yaml> [--granule <id>] [--json] [--out <path>]
//                [--top <n>]
//       Run the workflow traced and reconstruct every granule's causal chain
//       (download -> granule.ready -> preprocess -> encode/label -> infer).
//       Default output is a slowest-first summary table; --granule prints
//       one granule's full causal timeline with the per-hop wait/service
//       split; --json / --out emit the mfw.lineage/v1 document.
//   mfwctl diff <reportA.json> <reportB.json> [--json] [--out <path>]
//                [--gate]
//       Align two saved mfw.trace_report/v1 documents (A = baseline, B =
//       candidate) and attribute the makespan delta: per-stage critical-path
//       shifts ranked by magnitude, with queue-wait, straggler-cause, and
//       path-membership evidence. Emits a text verdict (or mfw.trace_diff/v1
//       JSON with --json). --gate exits 3 when B regressed beyond noise —
//       the CI perf gate (tools/ci_perf_smoke.sh, tools/ci_diff_smoke.sh).
//       Exit 1 with a clear message on schema mismatch or truncated input.
//   mfwctl watch <config.yaml> [--interval <sim-s>] [--window <s>]
//                [--anomaly-k <k>] [--health-out <path>] [--csv <path>]
//       Run the workflow with the live health layer attached (DESIGN.md
//       §12): a TelemetryBus feeds an online HealthMonitor that evaluates
//       the config's `slo:` rules (plus an optional EWMA/MAD anomaly
//       detector) as windows close, printing a text dashboard every
//       --interval sim-seconds and writing the mfw.health/v1 alert stream
//       to --health-out. Watching is read-only: the run is bit-for-bit
//       identical to `mfwctl run` (--csv emits the same timeline CSV,
//       sha256-gated in tools/ci_health_smoke.sh).
//
//   `run` and `watch` additionally take [--flight-out <path>]
//   [--flight-capacity <n>]: attach the always-on crash-safe flight recorder
//   (DESIGN.md §15) — a fixed-size ring of the most recent spans/instants/
//   health episodes, dumped as Perfetto-loadable Chrome-trace JSON at end of
//   run, on std::terminate, and (under watch) the moment an SLO alert fires.
//   The ring is a read-only SpanSink, so the run stays bit-for-bit identical
//   (sha256-gated in tools/ci_diff_smoke.sh).
//   mfwctl plan <spec.yaml> | --builtin [--facility olcf|nersc|alcf]
//       Validate a declarative workflow spec (stages, claims, dataflow
//       edges, campaign) against a facility and print the compiled DAG.
//       --builtin compiles the built-in paper pipeline spec instead.
//   mfwctl sweep <spec.yaml> | --builtin [--policies a,b] [--facilities 1,2]
//                [--loads 1,2] [--out <json>]
//       Run the policy-sweep laboratory over policy x facility-count x load
//       and write Pareto data (makespan, utilization, p99 queue wait) as
//       mfw.policies/v1 JSON (default BENCH_policies.json).
//   mfwctl serve-bench [--tiles <n>] [--shards <n>] [--threads <n>]
//                [--users <n>] [--requests <n>] [--days <n>] [--cache <n>]
//                [--seed <n>] [--check] [--json] [--out <path>] [--quiet]
//       Build a sharded serving catalog (DESIGN.md §14) over a synthetic
//       labelled-tile archive and drive it with the Zipf client simulator.
//       --check first replays random queries of every kind against the
//       brute-force archive-scan oracle (exit 1 on any mismatch) and embeds
//       an example mfw.serve/v1 response. --json emits the bench document
//       (schema mfw.serve/v1) on stdout; --cache 0 disables the result
//       cache.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "federation/orchestrator.hpp"
#include "obs/analyze.hpp"
#include "obs/diff.hpp"
#include "obs/flight.hpp"
#include "obs/lineage.hpp"
#include "obs/watch.hpp"
#include "pipeline/spec_compile.hpp"
#include "spec/lab.hpp"
#include "spec/spec.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/eoml_workflow.hpp"
#include "serve/catalog.hpp"
#include "serve/loadgen.hpp"
#include "serve/service.hpp"
#include "util/bytes.hpp"
#include "util/json_writer.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace mfw;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mfwctl run <config.yaml> [--timeline] [--csv <path>] [--flight-out <path>]\n"
               "               [--flight-capacity <n>] [--quiet]\n"
               "  mfwctl run-template <name> [<overrides.yaml>] [--facility olcf|nersc|alcf]\n"
               "  mfwctl trace <config.yaml> [--out <trace.json>] [--metrics <path>] [--quiet]\n"
               "  mfwctl report <config.yaml> | --from <report.json> [--json] [--out <path>]\n"
               "               [--straggler-k <k>] [--quiet]\n"
               "  mfwctl lineage <config.yaml> [--granule <id>] [--json] [--out <path>]\n"
               "               [--top <n>] [--quiet]\n"
               "  mfwctl diff <reportA.json> <reportB.json> [--json] [--out <path>] [--gate]\n"
               "  mfwctl watch <config.yaml> [--interval <sim-s>] [--window <s>] [--anomaly-k <k>]\n"
               "               [--health-out <path>] [--csv <path>] [--flight-out <path>]\n"
               "               [--flight-capacity <n>] [--quiet]\n"
               "  mfwctl plan <spec.yaml> | --builtin [--facility olcf|nersc|alcf]\n"
               "  mfwctl sweep <spec.yaml> | --builtin [--policies a,b] [--facilities 1,2]\n"
               "               [--loads 1,2] [--out <json>] [--quiet]\n"
               "  mfwctl serve-bench [--tiles <n>] [--shards <n>] [--threads <n>] [--users <n>]\n"
               "               [--requests <n>] [--days <n>] [--cache <n>] [--seed <n>]\n"
               "               [--check] [--json] [--out <path>] [--quiet]\n"
               "  mfwctl registry\n"
               "  mfwctl facilities\n");
  return 2;
}

struct FlagSpec {
  const char* name;
  bool takes_value;
};

/// Flags each command accepts; nullptr for unknown commands.
const std::vector<FlagSpec>* flags_for(const std::string& command) {
  static const std::map<std::string, std::vector<FlagSpec>> kFlags = {
      {"run",
       {{"--timeline", false},
        {"--csv", true},
        {"--flight-out", true},
        {"--flight-capacity", true},
        {"--quiet", false}}},
      {"run-template",
       {{"--facility", true},
        {"--timeline", false},
        {"--csv", true},
        {"--quiet", false}}},
      {"trace",
       {{"--out", true}, {"--metrics", true}, {"--quiet", false}}},
      {"report",
       {{"--json", false},
        {"--out", true},
        {"--straggler-k", true},
        {"--from", true},
        {"--quiet", false}}},
      {"lineage",
       {{"--granule", true},
        {"--json", false},
        {"--out", true},
        {"--top", true},
        {"--quiet", false}}},
      {"diff",
       {{"--json", false},
        {"--out", true},
        {"--gate", false},
        {"--quiet", false}}},
      {"watch",
       {{"--interval", true},
        {"--window", true},
        {"--anomaly-k", true},
        {"--health-out", true},
        {"--csv", true},
        {"--flight-out", true},
        {"--flight-capacity", true},
        {"--quiet", false}}},
      {"plan", {{"--builtin", false}, {"--facility", true}, {"--quiet", false}}},
      {"sweep",
       {{"--builtin", false},
        {"--facility", true},
        {"--policies", true},
        {"--facilities", true},
        {"--loads", true},
        {"--out", true},
        {"--quiet", false}}},
      {"serve-bench",
       {{"--tiles", true},
        {"--shards", true},
        {"--threads", true},
        {"--users", true},
        {"--requests", true},
        {"--days", true},
        {"--cache", true},
        {"--seed", true},
        {"--check", false},
        {"--json", false},
        {"--out", true},
        {"--quiet", false}}},
      {"registry", {}},
      {"facilities", {}},
  };
  const auto it = kFlags.find(command);
  return it == kFlags.end() ? nullptr : &it->second;
}

const FlagSpec* find_flag(const std::vector<FlagSpec>& spec,
                          const std::string& arg) {
  for (const auto& flag : spec)
    if (arg == flag.name) return &flag;
  return nullptr;
}

/// Rejects unknown `--flags` and value flags missing their value, matching
/// the unknown-command behaviour (error on stderr, usage, exit nonzero).
bool validate_flags(const std::string& command,
                    const std::vector<std::string>& args,
                    const std::vector<FlagSpec>& spec) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].rfind("--", 0) != 0) continue;
    const FlagSpec* flag = find_flag(spec, args[i]);
    if (!flag) {
      std::fprintf(stderr, "error: unknown flag '%s' for command '%s'\n",
                   args[i].c_str(), command.c_str());
      return false;
    }
    if (flag->takes_value && i + 1 >= args.size()) {
      std::fprintf(stderr, "error: flag '%s' requires a value\n",
                   args[i].c_str());
      return false;
    }
    if (flag->takes_value) ++i;
  }
  return true;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int run_config(pipeline::EomlConfig config, bool timeline,
               const std::string& csv_path,
               const std::string& flight_out = {},
               std::size_t flight_capacity = 0) {
  // Always-on black box: spans stream through the flight ring (stats-only
  // retention, so memory stays bounded) and the ring is dumped at end of run
  // plus on std::terminate. Read-only sink — the run itself is unchanged.
  std::unique_ptr<obs::FlightRecorder> flight;
  auto& rec = obs::TraceRecorder::instance();
  if (!flight_out.empty()) {
    obs::FlightConfig flight_config;
    if (flight_capacity > 0) flight_config.capacity = flight_capacity;
    flight = std::make_unique<obs::FlightRecorder>(flight_config);
    obs::set_globally_enabled(true);
    obs::RetentionPolicy retention;
    retention.mode = obs::RetentionMode::kStatsOnly;
    rec.set_retention(retention);
    rec.set_span_sink(flight.get());
    flight->arm_crash_dump(flight_out);
  }
  pipeline::EomlWorkflow workflow(std::move(config));
  const auto report = workflow.run();
  if (flight) {
    rec.set_span_sink(nullptr);
    rec.set_retention({});
    obs::set_globally_enabled(false);
    flight->disarm_crash_dump();
    if (!flight->dump(flight_out, "end-of-run")) {
      std::fprintf(stderr, "error: cannot write %s\n", flight_out.c_str());
      return 1;
    }
  }
  std::printf("%s\n", report.summary().c_str());
  if (timeline) std::printf("%s\n", report.timeline.render(120, 90, 14).c_str());
  if (!csv_path.empty()) {
    std::ofstream out(csv_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
      return 1;
    }
    out << report.timeline.to_csv(200);
    std::printf("timeline CSV written to %s\n", csv_path.c_str());
  }
  if (flight) {
    std::printf("flight recording written to %s (%llu events seen, %zu "
                "retained, %llu overwritten)\n",
                flight_out.c_str(),
                static_cast<unsigned long long>(flight->seen()), flight->size(),
                static_cast<unsigned long long>(flight->overwritten()));
  }
  return 0;
}

federation::FacilityProfile profile_by_name(const std::string& name) {
  if (name == "olcf") return federation::FacilityProfile::olcf_defiant();
  if (name == "nersc")
    return federation::FacilityProfile::nersc_perlmutter_like();
  if (name == "alcf") return federation::FacilityProfile::alcf_polaris_like();
  throw std::runtime_error("unknown facility '" + name +
                           "' (expected olcf|nersc|alcf)");
}

spec::FacilityCaps caps_from_profile(const federation::FacilityProfile& p) {
  spec::FacilityCaps caps;
  caps.name = p.name;
  caps.total_nodes = p.total_nodes;
  caps.max_workers_per_node = std::max(64, p.default_workers_per_node);
  caps.wan_bps = p.archive_bandwidth_bps;
  return caps;
}

/// Resolves the spec + caps a plan/sweep command operates on: either a spec
/// YAML file validated against a facility, or the built-in paper spec.
spec::StageGraph load_graph(bool builtin, const std::string& path,
                            const std::string& facility) {
  spec::FacilityCaps caps;
  if (!facility.empty()) caps = caps_from_profile(profile_by_name(facility));
  if (builtin) {
    pipeline::EomlConfig config;
    if (facility.empty()) return pipeline::compile_config(config);
    return spec::StageGraph::compile(pipeline::spec_for_config(config), caps);
  }
  if (path.empty())
    throw std::runtime_error("expected a <spec.yaml> path or --builtin");
  return spec::StageGraph::compile(
      spec::WorkflowSpec::from_yaml_text(slurp(path)), caps);
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(text);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  const std::vector<FlagSpec>* spec = flags_for(command);
  if (spec && !validate_flags(command, args, *spec)) return usage();

  auto has_flag = [&](const char* flag) {
    for (const auto& a : args)
      if (a == flag) return true;
    return false;
  };
  auto flag_value = [&](const char* flag) -> std::string {
    for (std::size_t i = 0; i + 1 < args.size(); ++i)
      if (args[i] == flag) return args[i + 1];
    return {};
  };
  auto positional = [&](std::size_t index) -> std::string {
    std::size_t seen = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i].rfind("--", 0) == 0) {
        const FlagSpec* flag = spec ? find_flag(*spec, args[i]) : nullptr;
        if (flag && flag->takes_value) ++i;  // skip value
        continue;
      }
      if (seen++ == index) return args[i];
    }
    return {};
  };

  util::Logger::instance().set_level(
      has_flag("--quiet") ? util::LogLevel::kError : util::LogLevel::kInfo);

  try {
    if (command == "run") {
      const auto path = positional(0);
      if (path.empty()) return usage();
      auto config = pipeline::EomlConfig::from_yaml_text(slurp(path));
      std::size_t flight_capacity = 0;
      if (const auto v = flag_value("--flight-capacity"); !v.empty())
        flight_capacity = static_cast<std::size_t>(std::atol(v.c_str()));
      return run_config(std::move(config), has_flag("--timeline"),
                        flag_value("--csv"), flag_value("--flight-out"),
                        flight_capacity);
    }
    if (command == "run-template") {
      const auto name = positional(0);
      if (name.empty()) return usage();
      federation::PipelineRegistry registry;
      registry.publish_builtin();
      std::string overrides;
      if (const auto overrides_path = positional(1); !overrides_path.empty())
        overrides = slurp(overrides_path);
      auto config = registry.instantiate(name, overrides);
      if (const auto facility = flag_value("--facility"); !facility.empty())
        profile_by_name(facility).apply(config);
      return run_config(std::move(config), has_flag("--timeline"),
                        flag_value("--csv"));
    }
    if (command == "trace") {
      const auto path = positional(0);
      if (path.empty()) return usage();
      auto config = pipeline::EomlConfig::from_yaml_text(slurp(path));
      const auto out = [&] {
        auto v = flag_value("--out");
        return v.empty() ? std::string("trace.json") : v;
      }();
      obs::set_globally_enabled(true);
      pipeline::EomlWorkflow workflow(std::move(config));
      const auto report = workflow.run();
      std::printf("%s\n", report.summary().c_str());
      obs::write_file(out,
                      obs::to_chrome_trace_json(obs::TraceRecorder::instance()));
      std::printf("trace written to %s (%zu spans, %zu instants) — load in "
                  "https://ui.perfetto.dev or chrome://tracing\n",
                  out.c_str(), obs::TraceRecorder::instance().span_count(),
                  obs::TraceRecorder::instance().instant_count());
      if (const auto metrics = flag_value("--metrics"); !metrics.empty()) {
        obs::write_file(
            metrics, obs::to_metrics_text(obs::MetricsRegistry::instance()));
        std::printf("metrics written to %s\n", metrics.c_str());
      }
      return 0;
    }
    if (command == "report") {
      const auto from = flag_value("--from");
      if (!from.empty()) {
        // Re-render a saved report document — no workflow run. Parse errors
        // (schema mismatch, truncation, malformed JSON) exit 1 with the
        // offending file named.
        obs::TraceReport analysis;
        try {
          analysis = obs::parse_trace_report(slurp(from));
        } catch (const obs::ReportParseError& e) {
          std::fprintf(stderr, "error: %s: %s\n", from.c_str(), e.what());
          return 1;
        }
        if (const auto out = flag_value("--out"); !out.empty())
          obs::write_file(out, analysis.to_json());
        if (has_flag("--json")) {
          std::printf("%s\n", analysis.to_json().c_str());
        } else {
          std::printf("%s", analysis.render_text().c_str());
        }
        return 0;
      }
      const auto path = positional(0);
      if (path.empty()) return usage();
      auto config = pipeline::EomlConfig::from_yaml_text(slurp(path));
      const bool json = has_flag("--json");
      // Keep --json stdout machine-readable: logs already go to stderr, but
      // silence the info chatter too.
      if (json) util::Logger::instance().set_level(util::LogLevel::kError);
      obs::set_globally_enabled(true);
      pipeline::EomlWorkflow workflow(std::move(config));
      const auto report = workflow.run();
      obs::AnalyzeOptions options;
      if (const auto k = flag_value("--straggler-k"); !k.empty())
        options.straggler_k = std::atof(k.c_str());
      const auto analysis =
          obs::analyze_trace(obs::TraceRecorder::instance(), options);
      if (const auto out = flag_value("--out"); !out.empty()) {
        obs::write_file(out, analysis.to_json());
        if (!json) std::printf("report JSON written to %s\n", out.c_str());
      }
      if (json) {
        std::printf("%s\n", analysis.to_json().c_str());
      } else {
        std::printf("%s\n\n%s", report.summary().c_str(),
                    analysis.render_text().c_str());
      }
      return 0;
    }
    if (command == "lineage") {
      const auto path = positional(0);
      if (path.empty()) return usage();
      auto config = pipeline::EomlConfig::from_yaml_text(slurp(path));
      const bool json = has_flag("--json");
      if (json) util::Logger::instance().set_level(util::LogLevel::kError);
      obs::set_globally_enabled(true);
      pipeline::EomlWorkflow workflow(std::move(config));
      const auto report = workflow.run();
      const auto lineage =
          obs::extract_lineage(obs::TraceRecorder::instance());
      std::size_t top = 10;
      if (const auto v = flag_value("--top"); !v.empty())
        top = static_cast<std::size_t>(std::atol(v.c_str()));
      if (const auto out = flag_value("--out"); !out.empty()) {
        obs::write_file(out, lineage.to_json());
        if (!json)
          std::printf("lineage JSON written to %s (%zu granules)\n",
                      out.c_str(), lineage.granules.size());
      }
      if (const auto granule = flag_value("--granule"); !granule.empty()) {
        const auto text = lineage.render_granule(granule);
        if (text.empty()) {
          std::fprintf(stderr,
                       "error: unknown granule '%s' (%zu granules traced; "
                       "run without --granule to list the slowest)\n",
                       granule.c_str(), lineage.granules.size());
          return 1;
        }
        std::printf("%s", text.c_str());
        return 0;
      }
      if (json) {
        std::printf("%s\n", lineage.to_json(top).c_str());
      } else {
        std::printf("%s\n%s", report.summary().c_str(),
                    lineage.render_text(top).c_str());
      }
      return 0;
    }
    if (command == "diff") {
      const auto path_a = positional(0);
      const auto path_b = positional(1);
      if (path_a.empty() || path_b.empty()) return usage();
      obs::TraceReport a, b;
      try {
        a = obs::parse_trace_report(slurp(path_a));
      } catch (const obs::ReportParseError& e) {
        std::fprintf(stderr, "error: %s: %s\n", path_a.c_str(), e.what());
        return 1;
      }
      try {
        b = obs::parse_trace_report(slurp(path_b));
      } catch (const obs::ReportParseError& e) {
        std::fprintf(stderr, "error: %s: %s\n", path_b.c_str(), e.what());
        return 1;
      }
      const auto diff = obs::diff_reports(a, b);
      if (const auto out = flag_value("--out"); !out.empty())
        obs::write_file(out, diff.to_json());
      if (has_flag("--json")) {
        std::printf("%s\n", diff.to_json().c_str());
      } else {
        std::printf("%s", diff.render_text().c_str());
      }
      // --gate: distinct exit code so CI can tell "regressed" (3) apart
      // from "could not diff" (1).
      if (has_flag("--gate") && diff.regression()) return 3;
      return 0;
    }
    if (command == "watch") {
      const auto path = positional(0);
      if (path.empty()) return usage();
      auto config = pipeline::EomlConfig::from_yaml_text(slurp(path));
      const bool quiet = has_flag("--quiet");
      double interval = 0.0;
      if (const auto v = flag_value("--interval"); !v.empty())
        interval = std::atof(v.c_str());
      obs::HealthConfig health;
      if (const auto v = flag_value("--window"); !v.empty())
        health.window_s = std::atof(v.c_str());
      if (const auto v = flag_value("--anomaly-k"); !v.empty())
        health.anomaly_k = std::atof(v.c_str());

      obs::set_globally_enabled(true);
      auto& rec = obs::TraceRecorder::instance();
      // Watching is operational, not forensic: spans stream through the bus
      // and only aggregates are kept, so an archive-scale watch stays
      // bounded-memory (same retention mode bench/archive_campaign uses).
      obs::RetentionPolicy retention;
      retention.mode = obs::RetentionMode::kStatsOnly;
      rec.set_retention(retention);

      obs::TelemetryBus bus;
      pipeline::EomlWorkflow workflow(std::move(config));
      obs::HealthMonitor monitor(health,
                                 spec::health_rules(workflow.plan().spec()));
      monitor.attach(bus);
      workflow.attach_health(monitor, interval, [&](double now) {
        if (!quiet) std::printf("%s", monitor.dashboard(now).c_str());
      });
      // Black box behind the bus: every span lands in the flight ring, SLO
      // transitions become health episodes, and a firing alert dumps the
      // ring immediately — the forensic context survives even if the run
      // never reaches a clean end.
      const auto flight_out = flag_value("--flight-out");
      std::unique_ptr<obs::FlightRecorder> flight;
      if (!flight_out.empty()) {
        obs::FlightConfig flight_config;
        if (const auto v = flag_value("--flight-capacity"); !v.empty())
          flight_config.capacity =
              static_cast<std::size_t>(std::atol(v.c_str()));
        flight = std::make_unique<obs::FlightRecorder>(flight_config);
        bus.set_next(flight.get());
        monitor.set_alert_hook([&](const obs::Alert& alert) {
          flight->note_alert(alert);
          if (alert.state == "firing")
            flight->dump(flight_out, "slo-firing:" + alert.rule);
        });
        flight->arm_crash_dump(flight_out);
      }
      rec.set_span_sink(&bus);
      const auto report = workflow.run();
      monitor.finish(workflow.engine().now());
      rec.set_span_sink(nullptr);
      rec.set_retention({});
      if (flight) {
        bus.set_next(nullptr);
        flight->disarm_crash_dump();
        if (!flight->dump(flight_out, "end-of-run")) {
          std::fprintf(stderr, "error: cannot write %s\n", flight_out.c_str());
          return 1;
        }
        std::printf("flight recording written to %s (%llu events seen, %zu "
                    "retained)\n",
                    flight_out.c_str(),
                    static_cast<unsigned long long>(flight->seen()),
                    flight->size());
      }

      std::printf("%s\n", report.summary().c_str());
      std::printf("%s", monitor.dashboard(workflow.engine().now()).c_str());
      for (const auto& alert : monitor.alerts()) {
        std::printf("alert %-8s rule=%s stage=%s metric=%s observed=%g "
                    "threshold=%g window_t0=%g%s%s\n",
                    alert.state.c_str(), alert.rule.c_str(),
                    alert.stage.empty() ? "-" : alert.stage.c_str(),
                    alert.metric.c_str(), alert.observed, alert.threshold,
                    alert.window_t0, alert.cause.empty() ? "" : " cause=",
                    alert.cause.c_str());
      }
      if (const auto out = flag_value("--health-out"); !out.empty()) {
        obs::write_file(out, monitor.to_json(workflow.engine().now()));
        std::printf("health stream written to %s (%zu alerts, %zu firing)\n",
                    out.c_str(), monitor.alerts().size(),
                    monitor.firing_count());
      }
      if (const auto csv = flag_value("--csv"); !csv.empty()) {
        std::ofstream out_file(csv, std::ios::binary);
        if (!out_file) {
          std::fprintf(stderr, "error: cannot write %s\n", csv.c_str());
          return 1;
        }
        out_file << report.timeline.to_csv(200);
        std::printf("timeline CSV written to %s\n", csv.c_str());
      }
      return 0;
    }
    if (command == "plan") {
      const auto graph = load_graph(has_flag("--builtin"), positional(0),
                                    flag_value("--facility"));
      std::printf("%s", graph.describe().c_str());
      return 0;
    }
    if (command == "sweep") {
      const auto graph = load_graph(has_flag("--builtin"), positional(0),
                                    flag_value("--facility"));
      std::vector<std::string> policies = {"fifo", "fair_share", "deadline",
                                           "wan_aware"};
      if (const auto p = flag_value("--policies"); !p.empty())
        policies = split_csv(p);
      std::vector<int> facility_counts = {1, 2};
      if (const auto f = flag_value("--facilities"); !f.empty()) {
        facility_counts.clear();
        for (const auto& v : split_csv(f))
          facility_counts.push_back(std::atoi(v.c_str()));
      }
      std::vector<double> loads = {1.0, 2.0};
      if (const auto l = flag_value("--loads"); !l.empty()) {
        loads.clear();
        for (const auto& v : split_csv(l)) loads.push_back(std::atof(v.c_str()));
      }
      std::vector<spec::LabResult> results;
      for (const auto& policy : policies) {
        for (const int facilities : facility_counts) {
          for (const double load : loads) {
            spec::LabConfig lab;
            lab.graph = graph;
            lab.policy = policy;
            lab.facilities = facilities;
            lab.load = load;
            auto result = spec::run_lab(lab);
            std::printf("%-10s facilities=%d load=%.2g makespan=%.2fs "
                        "util=%.3f p99_wait=%.2fs misses=%d\n",
                        result.policy.c_str(), result.facilities, result.load,
                        result.makespan, result.utilization,
                        result.p99_queue_wait, result.deadline_misses);
            results.push_back(std::move(result));
          }
        }
      }
      const auto out = [&] {
        auto v = flag_value("--out");
        return v.empty() ? std::string("BENCH_policies.json") : v;
      }();
      std::ofstream file(out, std::ios::binary);
      if (!file) {
        std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
        return 1;
      }
      file << spec::results_to_json(results);
      std::printf("sweep results written to %s (%zu points)\n", out.c_str(),
                  results.size());
      return 0;
    }
    if (command == "serve-bench") {
      const auto int_flag = [&](const char* flag, long fallback) {
        const auto v = flag_value(flag);
        return v.empty() ? fallback : std::atol(v.c_str());
      };
      const auto tiles = static_cast<std::size_t>(int_flag("--tiles", 200000));
      const int days = static_cast<int>(int_flag("--days", 30));
      const auto seed =
          static_cast<std::uint64_t>(int_flag("--seed", 2024));
      const auto cache_capacity =
          static_cast<std::size_t>(int_flag("--cache", 8192));
      constexpr int kNumClasses = 42;

      const auto records = serve::synth_records(tiles, days, kNumClasses, seed);
      serve::CatalogConfig cat_config;
      cat_config.shard_count =
          static_cast<std::size_t>(std::max(1L, int_flag("--shards", 32)));
      serve::Catalog catalog(cat_config);
      util::ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
      catalog.ingest(records, &pool);
      catalog.seal();

      // Oracle spot check: every query kind replayed against a brute-force
      // scan of the same records.
      std::size_t checked = 0, mismatched = 0;
      std::string example_response;
      if (has_flag("--check")) {
        util::Rng rng(seed ^ 0x5eedULL);
        for (int q = 0; q < 200; ++q) {
          serve::QueryRequest request;
          request.kind = static_cast<serve::QueryKind>(q % 4);
          request.lat = rng.uniform(-90.0, 90.0);
          request.lon = rng.uniform(-180.0, 180.0);
          request.lat_lo = rng.uniform(-90.0, 40.0);
          request.lat_hi = request.lat_lo + rng.uniform(0.0, 50.0);
          request.lon_lo = rng.uniform(-180.0, 100.0);
          request.lon_hi = request.lon_lo + rng.uniform(0.0, 80.0);
          request.label = static_cast<int>(rng.uniform_int(0, kNumClasses - 1));
          request.day_lo = static_cast<int>(rng.uniform_int(1, days));
          request.day_hi = std::min(
              days, request.day_lo + static_cast<int>(rng.uniform_int(0, 10)));
          request.sample_limit = 4;
          const auto got = catalog.query(request);
          const auto want = serve::brute_force_query(records, request, catalog);
          ++checked;
          bool ok = got.matched == want.matched &&
                    got.classes.size() == want.classes.size();
          for (std::size_t i = 0; ok && i < got.classes.size(); ++i) {
            ok = got.classes[i].label == want.classes[i].label &&
                 got.classes[i].stats.count == want.classes[i].stats.count &&
                 std::abs(got.classes[i].stats.mean_cloud_fraction -
                          want.classes[i].stats.mean_cloud_fraction) <= 1e-9;
          }
          if (!ok) {
            ++mismatched;
            std::fprintf(stderr,
                         "error: oracle mismatch on %s query (matched %llu "
                         "vs %llu)\n",
                         serve::kind_name(request.kind),
                         static_cast<unsigned long long>(got.matched),
                         static_cast<unsigned long long>(want.matched));
          }
          if (q == 2)  // keep one kClass response as the schema example
            example_response = serve::to_json(request, got);
        }
        if (!has_flag("--quiet"))
          std::printf("oracle check: %zu queries, %zu mismatches\n", checked,
                      mismatched);
      }

      serve::ServeConfig svc_config;
      svc_config.enable_cache = cache_capacity > 0;
      svc_config.cache_capacity = std::max<std::size_t>(1, cache_capacity);
      serve::ServeService service(catalog, svc_config);
      serve::LoadConfig load;
      load.users = static_cast<std::size_t>(int_flag("--users", 100000));
      load.requests = static_cast<std::size_t>(int_flag("--requests", 200000));
      load.threads = static_cast<std::size_t>(int_flag("--threads", 4));
      load.day_hi = days;
      load.num_classes = kNumClasses;
      load.seed = seed;
      const auto result = serve::run_load(service, load);

      if (!has_flag("--quiet")) {
        std::printf(
            "serve-bench: %zu tiles, %zu shards, %zu threads, %zu requests\n",
            catalog.tile_count(), catalog.shard_count(), result.threads,
            result.requests);
        std::printf(
            "  qps=%.0f p50=%.1fus p99=%.1fus p999=%.1fus hit_rate=%.3f\n",
            result.qps, result.all.p50_us, result.all.p99_us,
            result.all.p999_us, result.hit_rate);
      }

      util::JsonWriter w;
      w.begin_object();
      w.field("schema", "mfw.serve/v1");
      w.field("doc", "serve_bench");
      w.field("tiles", catalog.tile_count());
      w.field("shards", catalog.shard_count());
      w.field("cache_capacity", cache_capacity);
      if (has_flag("--check")) {
        w.key("check", "\n ").begin_object();
        w.field("queries", checked);
        w.field("mismatches", mismatched);
        w.end_object();
      }
      w.key("load", "\n ");
      w.raw(result.to_json());
      if (!example_response.empty()) {
        std::string trimmed = example_response;
        while (!trimmed.empty() && trimmed.back() == '\n') trimmed.pop_back();
        w.key("example_response", "\n ").raw(trimmed);
      }
      w.end_object().raw("\n");
      const std::string doc = w.take();
      if (has_flag("--json")) std::fputs(doc.c_str(), stdout);
      if (const auto out = flag_value("--out"); !out.empty()) {
        std::ofstream file(out, std::ios::binary);
        if (!file) {
          std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
          return 1;
        }
        file << doc;
        if (!has_flag("--quiet"))
          std::printf("serve-bench document written to %s\n", out.c_str());
      }
      return mismatched == 0 ? 0 : 1;
    }
    if (command == "registry") {
      federation::PipelineRegistry registry;
      registry.publish_builtin();
      for (const auto& name : registry.names())
        std::printf("%-16s %s\n", name.c_str(),
                    registry.entry(name).description.c_str());
      return 0;
    }
    if (command == "facilities") {
      for (const auto& profile :
           {federation::FacilityProfile::olcf_defiant(),
            federation::FacilityProfile::nersc_perlmutter_like(),
            federation::FacilityProfile::alcf_polaris_like()}) {
        std::printf("%-24s %3d nodes  sched %.1fs  archive %s  analysis %s\n",
                    profile.name.c_str(), profile.total_nodes,
                    profile.scheduler_latency,
                    util::format_rate(profile.archive_bandwidth_bps).c_str(),
                    util::format_rate(profile.analysis_link_bps).c_str());
      }
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "error: unknown command '%s'\n", command.c_str());
  return usage();
}
