#!/usr/bin/env bash
# CI perf smoke gate, the companion to tools/ci_sanitize.sh (sanitizers catch
# lifetime bugs; this catches determinism drift and complexity regressions in
# the simulation substrate). Three checks on a Release build:
#
#   1. fig6_timeline still reports the recorded barrier/streaming makespans
#      (519.53 s / 493.01 s) — the fast substrates are required to be
#      bit-for-bit identical to the naive oracles on every paper run, so any
#      drift here means the equivalence contract broke.
#   2. A trimmed archive_campaign (--quick) still clears the substrate
#      speedup floors vs the naive oracle: >= 10x on SharedResource churn,
#      >= 5x on FlowLink churn. A regression to O(n)-per-event behaviour
#      fails this immediately.
#   3. The substrate micro benchmarks run (a crash/assert gate; numbers are
#      tracked by tools/bench_sim.sh, not thresholded here).
#
# Usage: tools/ci_perf_smoke.sh [build-dir]   (default: build-perf)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-perf"}"

expected_barrier="519.53"
expected_streaming="493.01"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target \
      fig6_timeline archive_campaign micro_substrates

# -- 1. determinism: fig6 makespans ------------------------------------------
fig6_line="$("${build_dir}/bench/fig6_timeline" | grep '^Makespan:')"
echo "${fig6_line}"
if [[ "${fig6_line}" != *"barrier ${expected_barrier}s"* ]] ||
   [[ "${fig6_line}" != *"streaming ${expected_streaming}s"* ]]; then
  echo "FAIL: fig6 makespans drifted from recorded" \
       "barrier ${expected_barrier}s / streaming ${expected_streaming}s" >&2
  exit 1
fi
echo "OK: fig6 makespans match recorded values"

# -- 2. substrate speedup floors ---------------------------------------------
smoke_json="${build_dir}/BENCH_sim_smoke.json"
"${build_dir}/bench/archive_campaign" --quick --out "${smoke_json}"

speedup_of() {  # speedup_of <resource|link|engine> <json>
  grep -o "\"${1}\": {\"fast\".*" "${2}" | grep -o '"speedup": [0-9.]*' |
    head -1 | awk '{print $2}'
}
resource_speedup="$(speedup_of resource "${smoke_json}")"
link_speedup="$(speedup_of link "${smoke_json}")"
echo "resource churn speedup: ${resource_speedup}x (floor 10x)"
echo "link churn speedup:     ${link_speedup}x (floor 5x)"
awk -v r="${resource_speedup}" -v l="${link_speedup}" \
    'BEGIN { exit !(r >= 10.0 && l >= 5.0) }' || {
  echo "FAIL: substrate churn speedup below floor" >&2
  exit 1
}
echo "OK: substrate speedups clear the floors"

# -- 3. micro benchmarks run clean -------------------------------------------
"${build_dir}/bench/micro_substrates" \
  --benchmark_filter='BM_(EngineScheduleRun|SharedResourceChurn|FlowLinkChurn)' \
  --benchmark_min_time=0.05

echo "perf smoke: all gates passed"
