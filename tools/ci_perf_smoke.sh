#!/usr/bin/env bash
# CI perf smoke gate, the companion to tools/ci_sanitize.sh (sanitizers catch
# lifetime bugs; this catches determinism drift and complexity regressions in
# the simulation substrate). Three checks on a Release build:
#
#   1. Differential gate: `mfwctl report --json` on the fig6 barrier and
#      streaming configs is diffed against the committed baseline reports
#      (tools/baselines/, recorded at barrier 519.53 s / streaming 493.01 s)
#      with `mfwctl diff --gate`. A regression beyond noise fails the gate
#      *and names the stage that caused it* — this replaces the old raw
#      makespan string match, which could only say "drifted". After an
#      intentional perf change, refresh the baselines with:
#        build-perf/tools/mfwctl report tools/baselines/fig6.yaml \
#          --json --quiet > tools/baselines/fig6_barrier_report.json
#      (and likewise for fig6_streaming.yaml).
#   2. A trimmed archive_campaign (--quick) still clears the substrate
#      speedup floors vs the naive oracle: >= 10x on SharedResource churn,
#      >= 5x on FlowLink churn. A regression to O(n)-per-event behaviour
#      fails this immediately.
#   3. The substrate micro benchmarks run (a crash/assert gate; numbers are
#      tracked by tools/bench_sim.sh, not thresholded here).
#
# Usage: tools/ci_perf_smoke.sh [build-dir]   (default: build-perf)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-perf"}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target \
      mfwctl archive_campaign micro_substrates

# -- 1. differential gate: mfwctl diff vs committed baselines ----------------
mfwctl="${build_dir}/tools/mfwctl"
workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

for mode in barrier streaming; do
  if [[ "${mode}" == "barrier" ]]; then
    config="${repo_root}/tools/baselines/fig6.yaml"
  else
    config="${repo_root}/tools/baselines/fig6_streaming.yaml"
  fi
  baseline="${repo_root}/tools/baselines/fig6_${mode}_report.json"
  current="${workdir}/fig6_${mode}_report.json"
  "${mfwctl}" report "${config}" --json --quiet > "${current}"
  if ! "${mfwctl}" diff "${baseline}" "${current}" --gate; then
    echo "FAIL: fig6 ${mode} run regressed vs ${baseline}" \
         "(see the ranked attribution above)" >&2
    exit 1
  fi
done
echo "OK: fig6 runs diff clean against the committed baselines"

# -- 2. substrate speedup floors ---------------------------------------------
smoke_json="${build_dir}/BENCH_sim_smoke.json"
"${build_dir}/bench/archive_campaign" --quick --out "${smoke_json}"

speedup_of() {  # speedup_of <resource|link|engine> <json>
  grep -o "\"${1}\": {\"fast\".*" "${2}" | grep -o '"speedup": [0-9.]*' |
    head -1 | awk '{print $2}'
}
resource_speedup="$(speedup_of resource "${smoke_json}")"
link_speedup="$(speedup_of link "${smoke_json}")"
echo "resource churn speedup: ${resource_speedup}x (floor 10x)"
echo "link churn speedup:     ${link_speedup}x (floor 5x)"
awk -v r="${resource_speedup}" -v l="${link_speedup}" \
    'BEGIN { exit !(r >= 10.0 && l >= 5.0) }' || {
  echo "FAIL: substrate churn speedup below floor" >&2
  exit 1
}
echo "OK: substrate speedups clear the floors"

# -- 3. micro benchmarks run clean -------------------------------------------
"${build_dir}/bench/micro_substrates" \
  --benchmark_filter='BM_(EngineScheduleRun|SharedResourceChurn|FlowLinkChurn)' \
  --benchmark_min_time=0.05

echo "perf smoke: all gates passed"
