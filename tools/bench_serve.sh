#!/usr/bin/env bash
# Runs the serving-layer load benchmark (bench/serve_load) and snapshots the
# numbers into BENCH_serve.json at the repo root, so serving regressions show
# up as a diff: closed-loop QPS across shard counts x reader threads,
# cache-hit-rate curves across result-cache capacities, and base-vs-flash
# tail latency for an open-loop Zipf + flash-crowd population of >= 1M
# simulated users (DESIGN.md §14).
#
# The build is forced to Release and the snapshot is refused unless the
# document's own build_type stamp says "Release" — same guard as
# tools/bench_kernels.sh, for the same reason (a debug-built snapshot is not
# comparable and poisons the perf trajectory).
#
# Usage: tools/bench_serve.sh [build-dir] [out-json] [extra serve_load args]
#        (defaults: build-perf, BENCH_serve.json; pass --quick for a
#        CI-sized run)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-perf"}"
out_json="${2:-"${repo_root}/BENCH_serve.json"}"
shift $(( $# > 2 ? 2 : $# ))

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target serve_load

"${build_dir}/bench/serve_load" --out "${out_json}" "$@"

build_type="$(grep -o '"build_type": "[^"]*"' "${out_json}" |
              head -1 | cut -d'"' -f4)"
if [[ "${build_type}" != "Release" ]]; then
  rm -f "${out_json}"
  echo "FAIL: serve_load was built as '${build_type:-unknown}', not" \
       "Release — snapshot refused" >&2
  exit 1
fi

echo "wrote ${out_json}"
