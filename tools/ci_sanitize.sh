#!/usr/bin/env bash
# CI sanitizer gate: build the whole tree with ASan+UBSan and run the tier-1
# test suite under both runtimes. The event-driven dataflow paths (EventBus
# dispatch, GranuleTracker, streaming EomlWorkflow) are exactly the kind of
# callback-heavy code where lifetime bugs hide; this catches them before they
# reach a barrier-mode reproduction run.
#
# A second ThreadSanitizer build (TSan cannot coexist with ASan) covers the
# thread-pool data-parallel ML paths: parallel_for, encode_batch replicas,
# and the chunked gradient reduction.
#
# After the sanitizer suites pass, the perf smoke gate
# (tools/ci_perf_smoke.sh) runs on a Release build to catch determinism
# drift and substrate complexity regressions; skip it with MFW_SKIP_PERF=1.
# The trace-report smoke gate (tools/ci_report_smoke.sh) then validates the
# obs analytics layer on the same Release build: report JSON schema,
# critical-path sanity, CLI flag validation, and the bounded-memory campaign
# recorder; skip it with MFW_SKIP_REPORT=1. Finally the spec smoke gate
# (tools/ci_spec_smoke.sh) pins the declarative-workflow layer: the builtin
# spec's barrier run must stay bit-for-bit the seed pipeline, and the policy
# sweep must emit a populated mfw.policies/v1 grid; skip with MFW_SKIP_SPEC=1.
# The health smoke gate (tools/ci_health_smoke.sh) pins the live-watch layer:
# a watch-enabled run must not perturb the simulation (same CSV sha), the
# mfw.health/v1 stream must validate, and an injected slow stage must raise —
# and a clean run must not raise — an SLO alert; skip with MFW_SKIP_HEALTH=1.
# The int8 smoke gate (tools/ci_int8_smoke.sh) pins the quantized inference
# stack: int8 GEMM and encode speedup floors, fused-vs-layers bitwise
# identity, the 42-class agreement floor, and the tile-budget bound; skip
# with MFW_SKIP_INT8=1. The serve smoke gate (tools/ci_serve_smoke.sh) pins
# the sharded serving layer: oracle-identical query answers, the cache-hit
# floor, CLI flag validation, and a TSan run of the lock-free
# read-during-ingest path; skip with MFW_SKIP_SERVE=1. The diff smoke gate
# (tools/ci_diff_smoke.sh) pins the differential-observability layer:
# identical reruns must diff to "no regression", an injected 2x preprocess
# must be gated with >= 90% of the delta attributed to that stage, the
# flight recorder must not perturb the run (same CSV sha) and must dump
# valid Chrome-trace JSON, and broken report files must fail with clear
# errors; skip with MFW_SKIP_DIFF=1.
#
# Usage: tools/ci_sanitize.sh [build-dir] [tsan-build-dir]
#        (defaults: build-sanitize, build-tsan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-sanitize"}"
tsan_dir="${2:-"${repo_root}/build-tsan"}"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1:detect_stack_use_after_return=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"

cmake -B "${build_dir}" -S "${repo_root}" -DMFW_SANITIZE=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${build_dir}" -j "$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

cmake -B "${tsan_dir}" -S "${repo_root}" -DMFW_TSAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${tsan_dir}" -j "$(nproc)" --target \
      ml_test ml_tensor_test ml_train_test ml_cluster_test ml_continual_test \
      util_test
ctest --test-dir "${tsan_dir}" -R '^(ml_|util_)' --output-on-failure

if [[ "${MFW_SKIP_PERF:-0}" != "1" ]]; then
  "${repo_root}/tools/ci_perf_smoke.sh"
fi

if [[ "${MFW_SKIP_REPORT:-0}" != "1" ]]; then
  "${repo_root}/tools/ci_report_smoke.sh"
fi

if [[ "${MFW_SKIP_SPEC:-0}" != "1" ]]; then
  "${repo_root}/tools/ci_spec_smoke.sh"
fi

if [[ "${MFW_SKIP_HEALTH:-0}" != "1" ]]; then
  "${repo_root}/tools/ci_health_smoke.sh"
fi

if [[ "${MFW_SKIP_INT8:-0}" != "1" ]]; then
  "${repo_root}/tools/ci_int8_smoke.sh"
fi

if [[ "${MFW_SKIP_SERVE:-0}" != "1" ]]; then
  "${repo_root}/tools/ci_serve_smoke.sh"
fi

if [[ "${MFW_SKIP_DIFF:-0}" != "1" ]]; then
  "${repo_root}/tools/ci_diff_smoke.sh"
fi
