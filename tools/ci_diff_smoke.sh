#!/usr/bin/env bash
# CI smoke gate for the differential-observability layer (DESIGN.md §15):
# per-granule lineage, cross-run trace diffing, and the crash-safe flight
# recorder. Five checks on a Release build:
#
#   1. Determinism floor: two traced runs of the fig6 barrier config produce
#      byte-identical report JSON, and `mfwctl diff` on them says
#      "no regression" (exit 0 under --gate).
#   2. Injected regression: the same config with `preprocess: cost_scale 2.0`
#      must be caught by `mfwctl diff --gate` (exit 3), with the top finding
#      naming preprocess and attributing >= 90% of the makespan delta to it.
#   3. Zero-perturbation: `mfwctl run --csv` with the flight recorder
#      attached emits a timeline CSV sha256-identical to the plain run, and
#      the flight dump parses as Chrome-trace JSON (ph in X/i/M, non-empty).
#   4. Robust failure: truncated report JSON and a schema-version mismatch
#      both exit nonzero with a message naming the problem.
#   5. Lineage query: `mfwctl lineage --granule` prints a causal timeline
#      containing every pipeline hop kind for a known granule.
#
# Usage: tools/ci_diff_smoke.sh [build-dir]   (default: build-perf)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-perf"}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target mfwctl

mfwctl="${build_dir}/tools/mfwctl"
workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

config="${repo_root}/tools/baselines/fig6.yaml"
slow_config="${workdir}/fig6_slow.yaml"
{ cat "${config}"; printf 'preprocess:\n  cost_scale: 2.0\n'; } \
  > "${slow_config}"

# -- 1. identical reruns diff clean ------------------------------------------
"${mfwctl}" report "${config}" --json --quiet > "${workdir}/a.json"
"${mfwctl}" report "${config}" --json --quiet > "${workdir}/b.json"
cmp -s "${workdir}/a.json" "${workdir}/b.json" || {
  echo "FAIL: two runs of the same config produced different reports" >&2
  exit 1
}
verdict="$("${mfwctl}" diff "${workdir}/a.json" "${workdir}/b.json" --gate)"
echo "${verdict}"
[[ "${verdict}" == *"no regression"* ]] || {
  echo "FAIL: identical reruns did not report 'no regression'" >&2
  exit 1
}
echo "OK: identical reruns diff clean"

# -- 2. injected 2x preprocess is caught and attributed ----------------------
"${mfwctl}" report "${slow_config}" --json --quiet > "${workdir}/slow.json"
set +e
"${mfwctl}" diff "${workdir}/a.json" "${workdir}/slow.json" \
  --json --out "${workdir}/diff.json" --gate > /dev/null
gate_rc=$?
set -e
if [[ "${gate_rc}" != "3" ]]; then
  echo "FAIL: 2x-preprocess regression not gated (exit ${gate_rc}, want 3)" >&2
  exit 1
fi
python3 - "${workdir}/diff.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "mfw.trace_diff/v1", doc.get("schema")
p = doc["processes"][0]
assert p["regression"], "regression flag not set"
top = p["findings"][0]
assert top["kind"] == "stage", top
assert top["stage"] == "preprocess", f"top finding is {top['stage']}"
assert top["share"] >= 0.9, f"preprocess share {top['share']:.3f} < 0.9"
print(f"OK: diff ranks preprocess top with {100 * top['share']:.1f}% "
      f"of the {p['delta_s']:+.2f}s delta")
EOF

# -- 3. flight recorder: zero perturbation + valid Chrome trace --------------
"${mfwctl}" run "${config}" --csv "${workdir}/plain.csv" --quiet > /dev/null
"${mfwctl}" run "${config}" --csv "${workdir}/flight.csv" \
  --flight-out "${workdir}/flight.json" --quiet > /dev/null
plain_sha="$(sha256sum "${workdir}/plain.csv" | awk '{print $1}')"
flight_sha="$(sha256sum "${workdir}/flight.csv" | awk '{print $1}')"
if [[ "${plain_sha}" != "${flight_sha}" ]]; then
  echo "FAIL: flight recorder perturbed the run" \
       "(${plain_sha} vs ${flight_sha})" >&2
  exit 1
fi
echo "OK: flight-recorded run is sha256-identical to the plain run"
python3 - "${workdir}/flight.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "flight dump has no events"
assert all(e["ph"] in ("X", "i", "M") for e in events), "bad phase"
meta = doc["flight"]
assert meta["reason"] == "end-of-run", meta
assert meta["seen"] >= meta["retained"] > 0, meta
print(f"OK: flight dump is Chrome-trace JSON "
      f"({len(events)} events, {meta['retained']} retained "
      f"of {meta['seen']} seen)")
EOF

# -- 4. clear errors on truncated / wrong-schema reports ---------------------
head -c 200 "${workdir}/a.json" > "${workdir}/truncated.json"
sed 's#mfw.trace_report/v1#mfw.trace_report/v2#' "${workdir}/a.json" \
  > "${workdir}/wrong_schema.json"
for bad in truncated wrong_schema; do
  set +e
  err="$("${mfwctl}" diff "${workdir}/${bad}.json" "${workdir}/a.json" 2>&1)"
  rc=$?
  set -e
  if [[ "${rc}" == "0" ]]; then
    echo "FAIL: diff accepted a ${bad} report" >&2
    exit 1
  fi
  case "${bad}" in
    truncated) want="truncated" ;;
    wrong_schema) want="unsupported report schema" ;;
  esac
  [[ "${err}" == *"${want}"* ]] || {
    echo "FAIL: ${bad} error message lacks '${want}': ${err}" >&2
    exit 1
  }
done
echo "OK: truncated and wrong-schema reports exit nonzero with clear errors"

# -- 5. per-granule lineage query --------------------------------------------
lineage="$("${mfwctl}" lineage "${config}" \
  --granule terra.A2022001.s0008 --quiet)"
for hop in download granule.ready preprocess inference; do
  [[ "${lineage}" == *"${hop}"* ]] || {
    echo "FAIL: lineage timeline lacks a ${hop} hop" >&2
    echo "${lineage}" >&2
    exit 1
  }
done
echo "OK: lineage prints the full causal chain for a granule"

echo "diff smoke: all gates passed"
