// Continual learning across observation periods (paper §V: continually
// train "on new data without catastrophically forgetting what had been
// learned previously"). Trains RICC on period-1 cloud regimes, then updates
// it across two later periods with and without experience replay, and
// reports the forgetting curves side by side.
#include <cstdio>

#include "ml/continual.hpp"
#include "modis/products.hpp"
#include "preprocess/tiler.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace mfw;

namespace {

// Ocean-cloud tiles from a given day (weather drifts with day-of-year, so
// different days act as different cloud-regime "periods").
std::vector<ml::Tensor> tiles_for_day(int day, std::size_t count) {
  modis::GranuleGenerator generator(2022);
  preprocess::TilerOptions options;
  options.tile_size = 16;
  options.channels = 6;
  std::vector<ml::Tensor> tiles;
  for (int slot = 0; slot < modis::kSlotsPerDay && tiles.size() < count;
       ++slot) {
    modis::GranuleSpec spec;
    spec.day_of_year = day;
    spec.slot = slot;
    spec.geometry = modis::GranuleGeometry{64, 48, 6};
    if (!modis::is_daytime(spec.satellite, slot, day)) continue;
    const auto result = preprocess::make_tiles(
        generator.mod02(spec), generator.mod03(spec), generator.mod06(spec),
        options);
    for (const auto& tile : result.tiles) {
      if (tiles.size() >= count) break;
      tiles.emplace_back(
          std::vector<int>{tile.channels, tile.tile_size, tile.tile_size},
          tile.data);
    }
  }
  return tiles;
}

}  // namespace

int main() {
  util::Logger::instance().set_level(util::LogLevel::kWarn);
  std::printf("Continual RICC updates across observation periods\n\n");

  ml::RiccConfig config;
  config.tile_size = 16;
  config.channels = 6;
  config.base_channels = 6;
  config.conv_blocks = 2;
  config.latent_dim = 12;
  config.num_classes = 8;

  const auto period1 = tiles_for_day(1, 48);
  const auto period1_eval = tiles_for_day(2, 24);  // held-out, same regime
  const auto period2 = tiles_for_day(120, 48);     // different season
  const auto period3 = tiles_for_day(240, 48);
  std::printf("Periods: %zu / %zu / %zu tiles (days 1, 120, 240)\n\n",
              period1.size(), period2.size(), period3.size());

  ml::RiccTrainOptions train;
  train.epochs = 5;
  train.batch_size = 16;
  train.learning_rate = 1.5e-3f;
  train.rotations = 0;

  auto run = [&](double replay_fraction) {
    ml::RiccModel model(config);
    ml::train_autoencoder(model, period1, train);
    ml::ReplayBuffer replay(128, 9);
    replay.offer_all(period1);
    ml::ContinualUpdateOptions options;
    options.train = train;
    options.replay_fraction = replay_fraction;
    options.refit_centroids = false;
    std::vector<ml::ForgettingReport> reports;
    reports.push_back(
        ml::continual_update(model, replay, period2, period1_eval, options));
    reports.push_back(
        ml::continual_update(model, replay, period3, period1_eval, options));
    return reports;
  };

  const auto naive = run(0.0);
  const auto replayed = run(0.5);

  util::Table table({"update", "strategy", "old loss before", "old loss after",
                     "forgetting", "new loss"});
  const char* updates[] = {"period 2", "period 3"};
  for (std::size_t u = 0; u < 2; ++u) {
    table.add_row({updates[u], "fine-tune",
                   util::Table::num(naive[u].old_loss_before, 5),
                   util::Table::num(naive[u].old_loss_after, 5),
                   util::Table::num(naive[u].forgetting(), 5),
                   util::Table::num(naive[u].new_loss_after, 5)});
    table.add_row({updates[u], "replay-0.5",
                   util::Table::num(replayed[u].old_loss_before, 5),
                   util::Table::num(replayed[u].old_loss_after, 5),
                   util::Table::num(replayed[u].forgetting(), 5),
                   util::Table::num(replayed[u].new_loss_after, 5)});
  }
  std::printf("%s\n", table.render().c_str());
  const bool mitigated =
      replayed[1].old_loss_after < naive[1].old_loss_after;
  std::printf("Replay mitigates forgetting on period-1 data: %s\n",
              mitigated ? "yes" : "no");
  return 0;
}
