// Cross-facility campaign: the paper's §V-A vision in action — a registry
// of shareable pipelines, facility profiles for the three DOE IRI compute
// facilities, and a broker that places day-jobs across them.
#include <cstdio>

#include "federation/orchestrator.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main() {
  using namespace mfw;
  util::Logger::instance().set_level(util::LogLevel::kWarn);

  // 1. The community pipeline registry (pipeline-as-a-service).
  federation::PipelineRegistry registry;
  registry.publish_builtin();
  std::printf("Published pipelines:\n");
  for (const auto& name : registry.names())
    std::printf("  %-16s %s\n", name.c_str(),
                registry.entry(name).description.c_str());

  // 2. The federated facilities.
  std::vector<federation::FacilityProfile> facilities = {
      federation::FacilityProfile::olcf_defiant(),
      federation::FacilityProfile::nersc_perlmutter_like(),
      federation::FacilityProfile::alcf_polaris_like(),
  };
  std::printf("\nFederated facilities:\n");
  for (const auto& f : facilities)
    std::printf("  %-24s %3d nodes, sched %.1fs, WAN %s\n", f.name.c_str(),
                f.total_nodes, f.scheduler_latency,
                util::format_rate(f.archive_bandwidth_bps).c_str());

  // 3. A week-long campaign: one day-job per day, brokered least-loaded.
  std::vector<federation::CampaignJob> jobs;
  for (int day = 1; day <= 7; ++day) {
    jobs.push_back(federation::CampaignJob{
        "aicca-daily", "workflow: {max_files: 8, span: {first_day: " +
                           std::to_string(day) + "}}\npreprocess: {nodes: 4}\n"});
  }
  federation::CampaignOrchestrator orchestrator(
      registry, facilities, federation::PlacementPolicy::kLeastLoaded);
  const auto report = orchestrator.run(jobs);

  util::Table table({"day", "facility", "granules", "tiles", "job makespan",
                     "queue finish"});
  for (const auto& job : report.jobs)
    table.add_row({std::to_string(job.day), job.facility,
                   std::to_string(job.granules), std::to_string(job.tiles),
                   util::format_seconds(job.makespan),
                   util::format_seconds(job.finished_at)});
  std::printf("\n%s\n", table.render().c_str());
  std::printf("Facility queues:\n");
  for (const auto& [name, busy] : report.facility_busy_time)
    std::printf("  %-24s busy %s\n", name.c_str(),
                util::format_seconds(busy).c_str());
  std::printf("\nCampaign: %zu files, %zu tiles, makespan %s across %zu "
              "facilities\n",
              report.total_files, report.total_tiles,
              util::format_seconds(report.campaign_makespan).c_str(),
              facilities.size());
  return 0;
}
