// RICC training: the "(2) RICC training" + "(3) cluster evaluation" stages
// of the original AICCA workflow (paper §II-B), scaled to run in seconds.
// Generates real ocean-cloud tiles with the tiler, trains the rotation-
// invariant autoencoder, builds class centroids with Ward clustering,
// evaluates cluster quality, and saves the model artifact the inference
// stage loads.
#include <cstdio>

#include "ml/ricc.hpp"
#include "preprocess/tiler.hpp"
#include "storage/memfs.hpp"
#include "util/log.hpp"

int main() {
  using namespace mfw;
  util::Logger::instance().set_level(util::LogLevel::kWarn);

  // 1. Build a training set of real ocean-cloud tiles from synthetic
  //    granules (reduced geometry; 16-px tiles for speed).
  modis::GranuleGenerator generator(2022);
  preprocess::TilerOptions tiler;
  tiler.tile_size = 16;
  tiler.channels = 6;
  std::vector<ml::Tensor> tiles;
  for (int slot = 0; slot < modis::kSlotsPerDay && tiles.size() < 96; ++slot) {
    modis::GranuleSpec spec;
    spec.slot = slot;
    spec.geometry = modis::GranuleGeometry{64, 48, 6};
    if (!modis::is_daytime(spec.satellite, spec.slot, spec.day_of_year))
      continue;
    const auto result = preprocess::make_tiles(
        generator.mod02(spec), generator.mod03(spec), generator.mod06(spec),
        tiler);
    for (const auto& tile : result.tiles) {
      tiles.emplace_back(
          std::vector<int>{tile.channels, tile.tile_size, tile.tile_size},
          tile.data);
    }
  }
  std::printf("Training set: %zu ocean-cloud tiles (16x16x6)\n", tiles.size());

  // 2. Train the rotation-invariant autoencoder and fit class centroids.
  ml::RiccConfig config;
  config.tile_size = 16;
  config.channels = 6;
  config.base_channels = 6;
  config.conv_blocks = 2;
  config.latent_dim = 16;
  config.num_classes = 12;  // scaled-down AICCA atlas
  ml::RiccModel model(config);

  ml::RiccTrainOptions options;
  options.epochs = 6;
  options.batch_size = 16;
  options.learning_rate = 1.5e-3f;
  options.lambda_invariance = 1.0f;
  options.rotations = 3;
  std::printf("Training autoencoder (%zu parameters) ...\n",
              model.encoder().param_count() + model.decoder().param_count());
  const auto report = ml::train_ricc(model, tiles, options);

  std::printf("\nEpoch losses (reconstruction / rotation-consistency):\n");
  for (std::size_t e = 0; e < report.epoch_reconstruction_loss.size(); ++e)
    std::printf("  epoch %zu: %.5f / %.5f\n", e + 1,
                report.epoch_reconstruction_loss[e],
                report.epoch_invariance_loss[e]);

  // 3. Cluster evaluation (the paper's stage 3).
  std::printf("\nCluster evaluation:\n");
  std::printf("  rotation-invariance score: %.3f -> %.3f (lower is better)\n",
              report.invariance_score_before, report.invariance_score_after);
  std::printf("  silhouette over %d classes: %.3f\n", config.num_classes,
              report.silhouette);

  // 4. Label a few tiles and save the model artifact.
  std::printf("\nSample predictions:");
  for (std::size_t i = 0; i < tiles.size() && i < 8; ++i)
    std::printf(" %d", model.predict(tiles[i]));
  std::printf("\n");

  storage::MemFs fs("defiant");
  fs.write_file("models/ricc.hdfl", model.save().serialize());
  std::printf("\nSaved model artifact: models/ricc.hdfl (%llu bytes)\n",
              static_cast<unsigned long long>(fs.file_size("models/ricc.hdfl")));
  std::printf("This artifact is what EomlConfig::model_path points at for\n"
              "materialized inference runs.\n");
  return 0;
}
