// Quickstart: run the five-stage EO-ML workflow end-to-end from a YAML
// configuration — exactly the paper's user entry point ("the user defines
// configuration in a YAML file").
//
//   $ ./quickstart
//
// Downloads one hour of Terra granules from the (simulated) LAADS archive,
// tiles them on 2 ACE-Defiant nodes, labels the tiles through the
// monitor-triggered inference flow, and ships the results to Orion.
#include <cstdio>

#include "pipeline/eoml_workflow.hpp"
#include "util/log.hpp"

int main() {
  mfw::util::Logger::instance().set_level(mfw::util::LogLevel::kInfo);

  // The same YAML a scientist would put in eoml.yaml.
  const char* kConfig = R"(
workflow:
  satellite: Terra
  products: [MOD02, MOD03, MOD06]
  span:
    year: 2022
    first_day: 1
  max_files: 12          # one hour of daytime granules
  daytime_only: true
download:
  workers: 3
preprocess:
  nodes: 2
  workers_per_node: 8
  tile_size: 128
  min_cloud_fraction: 0.3
monitor:
  poll_interval: 1.0
inference:
  workers: 1
shipment:
  streams: 4
)";

  auto config = mfw::pipeline::EomlConfig::from_yaml_text(kConfig);
  mfw::pipeline::EomlWorkflow workflow(config);
  const auto report = workflow.run();

  std::printf("\n%s\n", report.summary().c_str());
  std::printf("Files on Orion (aicca/):\n");
  for (const auto& info : workflow.orion_fs().list("aicca/*.ncl"))
    std::printf("  %s  (%llu bytes)\n", info.path.c_str(),
                static_cast<unsigned long long>(info.size));
  std::printf("\nTimeline:\n%s\n", report.timeline.render(100, 80, 12).c_str());
  return 0;
}
