// Continual streaming inference (paper §V future work: "support more
// dynamic AI applications ... inferring with batch as well as streaming
// data"). Instead of the batch pipeline, granules arrive continuously (as
// from a live downlink); a monitor-triggered inference loop labels tiles as
// they appear, demonstrating the workflow's streaming posture.
#include <cstdio>

#include "compute/cluster.hpp"
#include "flow/monitor.hpp"
#include "preprocess/tasks.hpp"
#include "preprocess/tile_io.hpp"
#include <functional>

#include "storage/memfs.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

int main() {
  using namespace mfw;
  util::Logger::instance().set_level(util::LogLevel::kWarn);

  sim::SimEngine engine;
  storage::MemFs fs("defiant", &engine);
  modis::GranuleGenerator generator(2022);

  // One always-on inference worker (as in Fig. 6's green line).
  compute::ClusterExecutor inference(engine, compute::defiant_law_factory());
  inference.add_node(1);

  std::size_t labeled_files = 0;
  std::size_t labeled_tiles = 0;
  std::vector<double> latencies;  // file landing -> labels appended

  flow::FsMonitor monitor(
      engine, fs, flow::FsMonitorConfig{"stream/*.ncl", 0.5},
      [&](const std::vector<storage::FileInfo>& files) {
        for (const auto& info : files) {
          const double landed_at = info.mtime;
          const auto summary = preprocess::read_tile_summary(fs, info.path);
          inference.submit(
              preprocess::make_inference_task(summary.tile_count, info.path),
              [&, path = info.path, landed_at,
               count = summary.tile_count](const compute::SimTaskResult&) {
                std::vector<std::int32_t> labels(count);
                for (std::size_t i = 0; i < count; ++i)
                  labels[i] = static_cast<std::int32_t>(
                      util::mix64(std::hash<std::string>{}(path), i) % 42);
                preprocess::append_labels(fs, path, labels);
                fs.rename(path,
                          "labeled/" + std::string(util::path_basename(path)));
                ++labeled_files;
                labeled_tiles += count;
                latencies.push_back(engine.now() - landed_at);
              });
        }
      });
  monitor.start();

  // A live downlink: a new daytime granule's tile file lands every ~90 s of
  // virtual time (roughly MODIS's daytime granule cadence after filtering).
  int produced = 0;
  std::function<void(int)> downlink = [&](int slot) {
    if (produced >= 24) {
      monitor.stop();
      return;
    }
    modis::GranuleSpec spec;
    spec.slot = slot % modis::kSlotsPerDay;
    spec.geometry = modis::kFullGeometry;
    const auto stats = modis::estimate_granule_stats(generator, spec);
    if (stats.daytime && stats.selected_tiles > 0) {
      modis::GranuleId id{modis::ProductKind::kMod02, modis::Satellite::kTerra,
                          2022, 1, spec.slot};
      preprocess::write_tile_manifest(
          fs, "stream/" + id.filename() + ".ncl", id,
          static_cast<std::size_t>(stats.selected_tiles));
      ++produced;
    }
    engine.schedule_after(90.0, [&downlink, slot] { downlink(slot + 1); });
  };
  downlink(0);
  engine.run();

  util::StreamingStats lat;
  for (double v : latencies) lat.add(v);
  std::printf("Streaming inference over a live downlink (virtual time)\n\n");
  std::printf("  granules streamed:   %d\n", produced);
  std::printf("  files labeled:       %zu\n", labeled_files);
  std::printf("  tiles labeled:       %zu\n", labeled_tiles);
  std::printf("  label latency:       mean %.2fs  min %.2fs  max %.2fs\n",
              lat.mean(), lat.min(), lat.max());
  std::printf("  (latency = file landing -> labels appended; bounded by the\n"
              "   0.5s monitor poll + inference service time)\n");
  return 0;
}
