// Custom flow: using the Globus-Flows-like engine directly. Defines a
// quality-control flow in YAML (the paper's §V-A vision of shareable,
// user-defined pipelines), registers custom action providers, and runs it
// over a facility filesystem — independent of the built-in EO-ML pipeline.
#include <cstdio>

#include "flow/monitor.hpp"
#include "flow/runner.hpp"
#include "storage/memfs.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

int main() {
  using namespace mfw;
  util::Logger::instance().set_level(util::LogLevel::kInfo);

  sim::SimEngine engine;
  storage::MemFs fs("defiant", &engine);
  flow::ProvenanceLog provenance;
  flow::FlowRunner runner(engine, &provenance);

  // A QC flow: validate a data file; quarantine failures, promote passes.
  const auto definition = flow::FlowDefinition::from_yaml_text(R"(
name: quality-control
start_at: validate
states:
  validate:
    type: action
    action: qc.validate
    parameters:
      path: $.file
    result_path: qc
    next: decide
  decide:
    type: choice
    choices:
      - variable: qc.ok
        equals: "true"
        next: promote
    default: quarantine
  promote:
    type: action
    action: files.promote
    parameters:
      path: $.file
    next: done
  quarantine:
    type: action
    action: files.quarantine
    parameters:
      path: $.file
    next: done
  done:
    type: succeed
)");

  // Action providers: plain C++ callables.
  runner.register_action(
      "qc.validate", [&](const util::YamlNode& params, const util::YamlNode&,
                         flow::ActionHandle handle) {
        const auto path = params.require("path").as_string();
        const bool ok = fs.read_text(path).find("CORRUPT") == std::string::npos;
        auto result = util::YamlNode::map();
        result.set("ok", util::YamlNode::scalar(ok ? "true" : "false"));
        handle.succeed(std::move(result));
      });
  auto mover = [&fs](const char* dest) {
    return [&fs, dest](const util::YamlNode& params, const util::YamlNode&,
                       flow::ActionHandle handle) {
      const auto path = params.require("path").as_string();
      fs.rename(path, std::string(dest) + "/" +
                          std::string(util::path_basename(path)));
      handle.succeed(util::YamlNode::map());
    };
  };
  runner.register_action("files.promote", mover("verified"));
  runner.register_action("files.quarantine", mover("quarantine"));

  // A monitor triggers the flow for every new file in incoming/.
  flow::FsMonitor monitor(
      engine, fs, flow::FsMonitorConfig{"incoming/*", 0.5},
      [&](const std::vector<storage::FileInfo>& files) {
        for (const auto& info : files) {
          auto context = util::YamlNode::map();
          context.set("file", util::YamlNode::scalar(info.path));
          runner.start(definition, std::move(context));
        }
      });
  monitor.start();

  // Simulate files arriving over time.
  engine.schedule_at(0.2, [&] { fs.write_text("incoming/a.nc", "good data"); });
  engine.schedule_at(1.3, [&] { fs.write_text("incoming/b.nc", "CORRUPT!!"); });
  engine.schedule_at(2.1, [&] { fs.write_text("incoming/c.nc", "more good"); });
  engine.schedule_at(4.0, [&] { monitor.stop(); });
  engine.run();

  std::printf("\nverified/:   ");
  for (const auto& f : fs.list("verified/*")) std::printf("%s ", f.path.c_str());
  std::printf("\nquarantine/: ");
  for (const auto& f : fs.list("quarantine/*")) std::printf("%s ", f.path.c_str());
  std::printf("\n\nProvenance (%zu runs, mean action overhead %.0f ms):\n%s\n",
              provenance.size(), provenance.mean_action_overhead() * 1000,
              provenance.dump().c_str());
  return 0;
}
