// Multi-day campaign: the paper's production use case scaled down — process
// several consecutive days of Terra daytime granules in one automated run
// per day, accumulate the AICCA archive on Orion, and report per-day and
// campaign-level statistics (the "daily to decadal climate analysis"
// workflow of AICCA).
#include <cstdio>

#include "pipeline/eoml_workflow.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main() {
  using namespace mfw;
  util::Logger::instance().set_level(util::LogLevel::kWarn);

  std::printf("AICCA campaign: 3 days of Terra granules, one workflow per day\n\n");
  util::Table table({"day", "granules", "tiles", "preprocess t/s",
                     "makespan", "shipped"});

  std::size_t campaign_tiles = 0;
  std::size_t campaign_files = 0;
  for (int day = 1; day <= 3; ++day) {
    pipeline::EomlConfig config;
    config.span = modis::DaySpan{2022, day, day};
    config.max_files = 16;  // cap per day to keep the example quick
    config.daytime_only = true;
    config.preprocess_nodes = 4;
    config.workers_per_node = 8;
    pipeline::EomlWorkflow workflow(config);
    const auto report = workflow.run();
    campaign_tiles += report.total_tiles;
    campaign_files += report.shipped_files;
    table.add_row({std::to_string(day), std::to_string(report.granules),
                   std::to_string(report.total_tiles),
                   util::Table::num(report.preprocess_throughput(), 2),
                   util::format_seconds(report.makespan),
                   std::to_string(report.shipped_files)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Campaign total: %zu labelled files, %zu ocean-cloud tiles\n",
              campaign_files, campaign_tiles);
  std::printf(
      "\nEach day's run is fully automated: download -> preprocess ->\n"
      "monitor&trigger -> inference -> shipment, no manual steps between.\n");
  return 0;
}
