// Downstream climate analysis on Orion: the step the shipment stage feeds.
// Runs a materialized EO-ML workflow (real tiles, real labels), then plays
// the role of the "research scientists and downstream workflows" — loading
// the labelled AICCA archive from Orion and deriving class occurrence,
// per-class cloud physics, and the zonal distribution used to monitor
// cloud-regime change.
#include <cstdio>

#include "analysis/aicca.hpp"
#include "pipeline/eoml_workflow.hpp"
#include "util/log.hpp"

int main() {
  using namespace mfw;
  util::Logger::instance().set_level(util::LogLevel::kWarn);

  // 1. Produce a labelled archive on Orion (materialized mode: real pixels
  //    and per-tile physics flow end-to-end).
  pipeline::EomlConfig config;
  config.max_files = 8;
  config.daytime_only = true;
  config.preprocess_nodes = 4;
  config.workers_per_node = 8;
  config.materialize = true;
  config.geometry = modis::GranuleGeometry{96, 64, 6};
  config.tiler.tile_size = 16;
  config.tiler.channels = 6;
  std::printf("Running materialized EO-ML workflow (8 granules)...\n");
  pipeline::EomlWorkflow workflow(config);
  const auto report = workflow.run();
  std::printf("%s\n", report.summary().c_str());

  // 2. Downstream analysis over the shipped archive.
  const auto archive =
      analysis::AiccaArchive::load(workflow.orion_fs(), "aicca/*.ncl");
  std::printf("%s", archive.report(42).c_str());

  // 3. The kind of question the atlas answers: which classes dominate the
  //    tropics vs the storm tracks?
  const auto zonal = archive.zonal_class_counts(42, 30.0);
  std::printf("\nDominant class by 30-degree band:\n");
  for (std::size_t band = 0; band < zonal.size(); ++band) {
    std::size_t best = 0, total = 0;
    for (std::size_t c = 0; c < zonal[band].size(); ++c) {
      total += zonal[band][c];
      if (zonal[band][c] > zonal[band][best]) best = c;
    }
    if (total == 0) continue;
    const double lat_lo = -90.0 + 30.0 * static_cast<double>(band);
    std::printf("  [%+.0f, %+.0f): class %zu (%zu of %zu tiles)\n", lat_lo,
                lat_lo + 30.0, best, zonal[band][best], total);
  }
  return 0;
}
