// Table I reproduction: preprocessing throughput (128x128 tiles/second)
// under all four scaling experiments — strong/weak x workers/nodes — in the
// paper's exact table layout. Paper peaks: 267.44 tiles/s (strong, 10
// nodes) and 271.68 tiles/s (weak, 10 nodes), with on-node saturation near
// 37-39 tiles/s from 8 workers.
#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace mfw;

namespace {

double strong_workers(int workers) {
  std::vector<double> rates;
  for (int iteration = 0; iteration < 5; ++iteration) {
    const auto files = benchx::daytime_files(128, 1 + iteration);
    const int nodes = workers > 64 ? 2 : 1;
    const int per_node = workers > 64 ? workers / 2 : workers;
    rates.push_back(
        benchx::run_preprocess_farm(nodes, per_node, files).throughput);
  }
  return benchx::mean_std(rates).mean;
}

double strong_nodes(int nodes) {
  std::vector<double> rates;
  for (int iteration = 0; iteration < 5; ++iteration) {
    const auto files = benchx::daytime_files(80, 1 + iteration);
    rates.push_back(benchx::run_preprocess_farm(nodes, 8, files).throughput);
  }
  return benchx::mean_std(rates).mean;
}

double weak_workers(int workers) {
  std::vector<double> rates;
  for (int iteration = 0; iteration < 5; ++iteration) {
    const auto files =
        benchx::daytime_files(static_cast<std::size_t>(2 * workers), 1 + iteration);
    const int nodes = workers > 64 ? 2 : 1;
    const int per_node = workers > 64 ? workers / 2 : workers;
    rates.push_back(
        benchx::run_preprocess_farm(nodes, per_node, files).throughput);
  }
  return benchx::mean_std(rates).mean;
}

double weak_nodes(int nodes) {
  std::vector<double> rates;
  for (int iteration = 0; iteration < 5; ++iteration) {
    const auto files =
        benchx::daytime_files(static_cast<std::size_t>(16 * nodes), 1 + iteration);
    rates.push_back(benchx::run_preprocess_farm(nodes, 8, files).throughput);
  }
  return benchx::mean_std(rates).mean;
}

}  // namespace

int main() {
  benchx::print_header(
      "Table I — Throughput of MODIS 128x128 tiles under four scaling "
      "experiments",
      "Kurihana et al., SC24, Table I");

  const int worker_points[] = {1, 2, 4, 8, 16, 32, 64, 128};
  const double paper_strong_w[] = {10.52, 18.10, 25.01, 36.59,
                                   38.74, 37.95, 37.34, 71.01};
  const double paper_strong_n[] = {36.05, 73.25, 98.73, 135.42, 177.69,
                                   192.32, 196.70, 216.80, 264.13, 267.44};
  const double paper_weak_w[] = {21.32, 25.87, 27.23, 27.48,
                                 32.73, 31.09, 35.36, 67.69};
  const double paper_weak_n[] = {32.82, 69.34, 100.36, 126.62, 165.12,
                                 175.61, 196.81, 188.88, 197.26, 271.68};

  std::printf("Strong scaling\n");
  util::Table strong({"# workers", "tiles/s (ours)", "tiles/s (paper)",
                      "# nodes", "tiles/s (ours)", "tiles/s (paper)"});
  for (int i = 0; i < 10; ++i) {
    std::vector<std::string> row;
    if (i < 8) {
      row.push_back(std::to_string(worker_points[i]));
      row.push_back(util::Table::num(strong_workers(worker_points[i]), 2));
      row.push_back(util::Table::num(paper_strong_w[i], 2));
    } else {
      row.insert(row.end(), {"-", "-", "-"});
    }
    row.push_back(std::to_string(i + 1));
    row.push_back(util::Table::num(strong_nodes(i + 1), 2));
    row.push_back(util::Table::num(paper_strong_n[i], 2));
    strong.add_row(std::move(row));
  }
  std::printf("%s\n", strong.render().c_str());

  std::printf("Weak scaling\n");
  util::Table weak({"# workers", "tiles/s (ours)", "tiles/s (paper)",
                    "# nodes", "tiles/s (ours)", "tiles/s (paper)"});
  for (int i = 0; i < 10; ++i) {
    std::vector<std::string> row;
    if (i < 8) {
      row.push_back(std::to_string(worker_points[i]));
      row.push_back(util::Table::num(weak_workers(worker_points[i]), 2));
      row.push_back(util::Table::num(paper_weak_w[i], 2));
    } else {
      row.insert(row.end(), {"-", "-", "-"});
    }
    row.push_back(std::to_string(i + 1));
    row.push_back(util::Table::num(weak_nodes(i + 1), 2));
    row.push_back(util::Table::num(paper_weak_n[i], 2));
    weak.add_row(std::move(row));
  }
  std::printf("%s\n", weak.render().c_str());

  std::printf(
      "Expected shape (paper): on-node saturation at ~37-39 tiles/s from 8\n"
      "workers; ~2x jump at 128 workers (2nd node); node columns near-linear\n"
      "to ~267 (strong) / ~272 (weak) tiles/s at 10 nodes. Known deviation:\n"
      "the paper's weak-scaling 1-4 worker rates (21-27 t/s) exceed its own\n"
      "strong-scaling 1-4 worker rates; see EXPERIMENTS.md.\n");
  return 0;
}
