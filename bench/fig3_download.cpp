// Fig. 3 reproduction: download speed statistics with 3 vs 6 workers across
// MODIS product sizes from 100 MB (1 file/product) to 30 GB (~128
// files/product). Three iterations per point, mean +- stddev, as in the
// paper. Expected shape: 6 workers beat 3 workers by a few MB/s on all
// multi-file sizes; the single-file point shows no benefit (per-connection
// overhead dominates and extra workers idle).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "storage/memfs.hpp"
#include "transfer/download.hpp"
#include "util/ascii_plot.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace mfw;

namespace {

struct Point {
  double size_gb;
  std::size_t files_per_product;
};

// Per-product target sizes; file counts derived from the MOD02 mean size
// (~114 MB), matching the paper's "1 file" to "~128 files" range.
const Point kPoints[] = {{0.1, 1}, {0.5, 4}, {1.0, 9},
                         {5.0, 45}, {10.0, 90}, {30.0, 128}};

double run_download(int workers, std::size_t files_per_product,
                    std::uint64_t seed) {
  sim::SimEngine engine;
  modis::ArchiveService archive(2022);
  // The effective LAADS-to-facility path: per-connection throughput ~7.5
  // MB/s and a per-user ceiling near 23.5 MB/s (server-side fairness), which
  // is what limits the 3 -> 6 worker gain to a few MB/s in the paper.
  sim::FlowLink wan(engine, "laads-wan", 23.5 * 1024 * 1024);
  storage::MemFs fs("defiant", &engine);
  transfer::DownloadConfig config;
  config.workers = workers;
  config.span = modis::DaySpan{2022, 1, 1};
  config.max_files_per_product = files_per_product;
  config.seed = seed;
  transfer::DownloadService service(engine, archive, wan, fs, config);
  double mbps = 0.0;
  service.start([&](const transfer::DownloadReport& report) {
    mbps = report.aggregate_bps() / (1024.0 * 1024.0);
  });
  engine.run();
  return mbps;
}

}  // namespace

int main() {
  util::Logger::instance().set_level(util::LogLevel::kWarn);
  benchx::print_header(
      "Fig. 3 — Download speed vs product size, 3 vs 6 workers",
      "Kurihana et al., SC24, Fig. 3 (mean speed dots +- stddev shading)");

  util::Table table({"size/product", "files/product", "3w mean MB/s",
                     "3w std", "6w mean MB/s", "6w std", "speedup"});
  util::Series s3{"3 workers", {}, {}, '3'};
  util::Series s6{"6 workers", {}, {}, '6'};

  for (const auto& point : kPoints) {
    std::vector<double> w3, w6;
    for (std::uint64_t iteration = 0; iteration < 3; ++iteration) {
      w3.push_back(run_download(3, point.files_per_product, 10 + iteration));
      w6.push_back(run_download(6, point.files_per_product, 20 + iteration));
    }
    const auto m3 = benchx::mean_std(w3);
    const auto m6 = benchx::mean_std(w6);
    table.add_row({util::format_bytes(static_cast<std::uint64_t>(
                       point.size_gb * 1024 * 1024 * 1024)),
                   std::to_string(point.files_per_product),
                   util::Table::num(m3.mean, 2), util::Table::num(m3.stddev, 2),
                   util::Table::num(m6.mean, 2), util::Table::num(m6.stddev, 2),
                   util::Table::num(m6.mean - m3.mean, 2)});
    s3.xs.push_back(std::log10(point.size_gb));
    s3.ys.push_back(m3.mean);
    s6.xs.push_back(std::log10(point.size_gb));
    s6.ys.push_back(m6.mean);
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("%s\n",
              util::ascii_plot({s3, s6}, 64, 14, "log10(GB per product)",
                               "aggregate MB/s")
                  .c_str());
  std::printf(
      "Expected shape (paper): ~+3 MB/s mean gain from 3 -> 6 workers on\n"
      "multi-file downloads; no gain for the single-file point.\n");
  return 0;
}
