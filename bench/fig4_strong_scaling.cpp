// Fig. 4 reproduction: strong scaling of the preprocessing stage.
//   (a) fixed 128 MOD02 files, workers doubling 1 -> 128 (the 128-worker
//       point spans a second node, as on Defiant's 64-core nodes);
//   (b) fixed 80 MOD02 files, 8 workers/node, nodes 1 -> 10.
// Five iterations per point (different day's granule mix per iteration, the
// workload-level analogue of the paper's run-to-run variance).
// Expected shape: sub-linear on-node scaling saturating beyond ~8 workers
// (resource contention), near-linear node scaling.
#include <cstdio>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

using namespace mfw;

int main() {
  benchx::print_header(
      "Fig. 4 — Strong scaling: completion time vs workers and vs nodes",
      "Kurihana et al., SC24, Fig. 4(a)/(b)");

  // ---- (a) workers on one node, 128 files --------------------------------
  std::printf("(a) 128 MOD02 files, workers 1 -> 128 (128 uses 2 nodes)\n\n");
  util::Table ta({"# workers", "mean time (s)", "std", "speedup vs 1w"});
  util::Series sa{"completion time", {}, {}, '*'};
  double t1 = 0.0;
  for (int workers : {1, 2, 4, 8, 16, 32, 64, 128}) {
    std::vector<double> times;
    for (int iteration = 0; iteration < 5; ++iteration) {
      const auto files = benchx::daytime_files(128, 1 + iteration);
      const int nodes = workers > 64 ? 2 : 1;
      const int per_node = workers > 64 ? workers / 2 : workers;
      times.push_back(
          benchx::run_preprocess_farm(nodes, per_node, files).makespan);
    }
    const auto m = benchx::mean_std(times);
    if (workers == 1) t1 = m.mean;
    ta.add_row({std::to_string(workers), util::Table::num(m.mean, 2),
                util::Table::num(m.stddev, 2),
                util::Table::num(t1 / m.mean, 2)});
    sa.xs.push_back(workers);
    sa.ys.push_back(m.mean);
  }
  std::printf("%s\n", ta.render().c_str());
  std::printf("%s\n", util::ascii_plot({sa}, 64, 12, "# workers",
                                       "completion time (s)")
                          .c_str());

  // ---- (b) nodes, 80 files, 8 workers/node --------------------------------
  std::printf("(b) 80 MOD02 files, 8 workers/node, nodes 1 -> 10\n\n");
  util::Table tb({"# nodes", "mean time (s)", "std", "speedup vs 1 node"});
  util::Series sb{"completion time", {}, {}, '*'};
  double n1 = 0.0;
  for (int nodes = 1; nodes <= 10; ++nodes) {
    std::vector<double> times;
    for (int iteration = 0; iteration < 5; ++iteration) {
      const auto files = benchx::daytime_files(80, 1 + iteration);
      times.push_back(benchx::run_preprocess_farm(nodes, 8, files).makespan);
    }
    const auto m = benchx::mean_std(times);
    if (nodes == 1) n1 = m.mean;
    tb.add_row({std::to_string(nodes), util::Table::num(m.mean, 2),
                util::Table::num(m.stddev, 2),
                util::Table::num(n1 / m.mean, 2)});
    sb.xs.push_back(nodes);
    sb.ys.push_back(m.mean);
  }
  std::printf("%s\n", tb.render().c_str());
  std::printf("%s\n", util::ascii_plot({sb}, 64, 12, "# nodes",
                                       "completion time (s)")
                          .c_str());
  std::printf(
      "Expected shape (paper): (a) sub-linear with saturation beyond ~8-16\n"
      "workers on one node, improvement again at 128 workers (2nd node);\n"
      "(b) near-linear scaling to 10 nodes.\n");
  return 0;
}
