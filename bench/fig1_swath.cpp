// Fig. 1 reproduction (qualitative): the AICCA label map over one MODIS
// swath. The paper's Fig. 1(b) shows a Terra swath off South America with
// 133 ocean-cloud tiles coloured by their AICCA class, illustrating that
// "spatially coherent and visually similar textures" share classes.
//
// We generate a daytime swath (reduced geometry), run the real tiler, train
// a compact RICC on its tiles, and print the tile-class map: neighbouring
// tiles of the same cloud regime should receive the same letter.
//
// --encode-path <layers|fused|int8> selects the inference fast path for the
// final labelling pass (default: layers, the fp32 reference); --tile-budget N
// bounds how many tiles are resident in the encode stage at once (0 = whole
// swath in one batch). ci_int8_smoke.sh runs `--encode-path int8
// --tile-budget 32` and checks the reported peak stays within the budget.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>

#include "bench_common.hpp"
#include "ml/ricc.hpp"
#include "preprocess/tiler.hpp"
#include "util/log.hpp"

using namespace mfw;

int main(int argc, char** argv) {
  util::Logger::instance().set_level(util::LogLevel::kWarn);
  ml::RiccModel::EncodePath encode_path = ml::RiccModel::EncodePath::kLayers;
  std::size_t tile_budget = 0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--encode-path") && i + 1 < argc) {
      encode_path = ml::RiccModel::parse_encode_path(argv[++i]);
    } else if (!std::strcmp(argv[i], "--tile-budget") && i + 1 < argc) {
      tile_budget = static_cast<std::size_t>(std::atol(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: fig1_swath [--encode-path layers|fused|int8] "
                   "[--tile-budget N]\n");
      return 2;
    }
  }
  benchx::print_header(
      "Fig. 1 — AICCA class map over one MODIS swath (qualitative)",
      "Kurihana et al., SC24, Fig. 1(b)");

  // A daytime granule with a rich ocean-cloud field.
  modis::GranuleGenerator generator(2022);
  modis::GranuleSpec spec;
  spec.geometry = modis::GranuleGeometry{160, 128, 6};
  int best_slot = -1, best_tiles = -1;
  for (int slot = 0; slot < modis::kSlotsPerDay; ++slot) {
    modis::GranuleSpec probe = spec;
    probe.slot = slot;
    probe.geometry = modis::kFullGeometry;
    const auto stats = modis::estimate_granule_stats(generator, probe);
    if (stats.daytime && stats.selected_tiles > best_tiles) {
      best_tiles = stats.selected_tiles;
      best_slot = slot;
    }
  }
  spec.slot = best_slot;

  preprocess::TilerOptions options;
  options.tile_size = 16;
  options.channels = 6;
  const auto result = preprocess::make_tiles(generator.mod02(spec),
                                             generator.mod03(spec),
                                             generator.mod06(spec), options);
  std::printf("Swath slot %d: %d tile positions, %zu ocean-cloud tiles "
              "(paper's example: 133)\n\n",
              spec.slot, result.candidate_positions, result.tiles.size());
  if (result.tiles.size() < 12) {
    std::printf("(too few tiles on this swath for a meaningful atlas)\n");
    return 0;
  }

  // Train a compact RICC on this swath's tiles and label them.
  std::vector<ml::Tensor> tiles;
  for (const auto& tile : result.tiles)
    tiles.emplace_back(
        std::vector<int>{tile.channels, tile.tile_size, tile.tile_size},
        tile.data);
  ml::RiccConfig config;
  config.tile_size = 16;
  config.channels = 6;
  config.base_channels = 6;
  config.conv_blocks = 2;
  config.latent_dim = 12;
  config.num_classes = std::min<int>(8, static_cast<int>(tiles.size() / 3));
  ml::RiccModel model(config);
  ml::RiccTrainOptions train;
  train.epochs = 6;
  train.batch_size = 16;
  train.learning_rate = 1.5e-3f;
  train.lambda_invariance = 2.0f;
  const auto report = ml::train_ricc(model, tiles, train);

  // Paint the tile grid: '.' = rejected position, letter = class.
  const int grid_rows = spec.geometry.rows / options.tile_size;
  const int grid_cols = spec.geometry.cols / options.tile_size;
  std::vector<std::string> canvas(static_cast<std::size_t>(grid_rows),
                                  std::string(static_cast<std::size_t>(grid_cols), '.'));
  std::map<int, int> class_counts;
  if (encode_path == ml::RiccModel::EncodePath::kInt8)
    model.calibrate_int8(tiles);
  model.set_encode_path(encode_path);
  // With a tile budget, encode in bounded batches instead of one swath-wide
  // batch; peak resident tiles in the encode stage never exceeds the budget.
  std::vector<ml::Tensor> latents;
  latents.reserve(tiles.size());
  std::size_t peak_resident = 0;
  const std::size_t step = tile_budget > 0 ? tile_budget : tiles.size();
  for (std::size_t begin = 0; begin < tiles.size(); begin += step) {
    const std::size_t count = std::min(step, tiles.size() - begin);
    peak_resident = std::max(peak_resident, count);
    auto batch = model.encode_batch(
        std::span<const ml::Tensor>(tiles.data() + begin, count));
    for (auto& z : batch) latents.push_back(std::move(z));
  }
  std::printf("Encode path: %s   tile budget: %zu   peak resident tiles: %zu   "
              "within budget: %s\n",
              encode_path == ml::RiccModel::EncodePath::kInt8    ? "int8"
              : encode_path == ml::RiccModel::EncodePath::kFused ? "fused"
                                                                 : "layers",
              tile_budget, peak_resident,
              tile_budget == 0 || peak_resident <= tile_budget ? "yes" : "NO");
  for (std::size_t i = 0; i < result.tiles.size(); ++i) {
    const auto& tile = result.tiles[i];
    const int label = ml::nearest_centroid(model.centroids(), latents[i].span());
    ++class_counts[label];
    canvas[static_cast<std::size_t>(tile.origin_row / options.tile_size)]
          [static_cast<std::size_t>(tile.origin_col / options.tile_size)] =
        static_cast<char>('A' + label % 26);
  }
  std::printf("Tile-class map ('.' = land/clear/rejected):\n\n");
  for (const auto& row : canvas) std::printf("    %s\n", row.c_str());
  std::printf("\nClass histogram:");
  for (const auto& [label, count] : class_counts)
    std::printf("  %c=%d", 'A' + label % 26, count);
  std::printf("\nSilhouette: %.3f   rotation-invariance score: %.3f -> %.3f\n",
              report.silhouette, report.invariance_score_before,
              report.invariance_score_after);

  // Counterfactual: the same training *without* the rotation-consistency
  // term — the invariant model must end with a lower (better) score.
  ml::RiccConfig plain_config = config;
  plain_config.seed = config.seed;
  ml::RiccModel plain(plain_config);
  auto plain_train = train;
  plain_train.rotations = 0;
  const auto plain_report = ml::train_ricc(plain, tiles, plain_train);
  std::printf("Without the invariance term: score %.3f -> %.3f   "
              "(RICC objective keeps it %s)\n",
              plain_report.invariance_score_before,
              plain_report.invariance_score_after,
              report.invariance_score_after < plain_report.invariance_score_after
                  ? "lower, as intended"
                  : "NOT lower (unexpected)");
  std::printf(
      "\nExpected shape (paper): contiguous regions of the swath share a\n"
      "class (spatially coherent textures), with multiple classes splitting\n"
      "the stratocumulus field's subtle spatial differences.\n");
  return 0;
}
