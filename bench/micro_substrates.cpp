// Google-benchmark micro benchmarks for the substrates that sit on the
// workflow's critical path: event engine throughput, processor-sharing
// resource churn, container (de)serialization, tiler, RICC encode, and Ward
// clustering.
#include <benchmark/benchmark.h>

#include "compute/cluster.hpp"
#include "ml/ricc.hpp"
#include "modis/catalog.hpp"
#include "preprocess/tiler.hpp"
#include "sim/engine.hpp"
#include "sim/link.hpp"
#include "sim/resource.hpp"
#include "storage/ncl.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace {

using namespace mfw;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::SimEngine engine;
    util::Rng rng(1);
    for (std::size_t i = 0; i < events; ++i)
      engine.schedule_at(rng.uniform(0, 1000), [] {});
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SharedResourceChurn(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::SimEngine engine;
    sim::SharedResource res(engine,
                            std::make_unique<sim::SaturatingExpLaw>(38.5, 3.1));
    for (std::size_t i = 0; i < jobs; ++i)
      res.submit(1.0 + static_cast<double>(i % 13), [] {});
    engine.run();
    benchmark::DoNotOptimize(res.completed_jobs());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs) * state.iterations());
}
BENCHMARK(BM_SharedResourceChurn)->Arg(64)->Arg(512)->Arg(100000);

void BM_FlowLinkChurn(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::SimEngine engine;
    sim::FlowLink link(engine, "wan", 23.5 * 1024 * 1024);
    util::Rng rng(7);
    for (std::size_t i = 0; i < flows; ++i) {
      // Mixed regime: some flows sit below the fair share (capped), the rest
      // split the trunk — both sides of the water-filling partition churn.
      const double cap = rng.uniform(0.5, 12.0) * 1024 * 1024;
      link.start_flow(rng.uniform(1.0, 64.0) * 1024 * 1024, cap, [](double) {});
    }
    engine.run();
    benchmark::DoNotOptimize(link.active_flows());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flows) *
                          state.iterations());
}
BENCHMARK(BM_FlowLinkChurn)->Arg(64)->Arg(512)->Arg(100000);

void BM_TaskFarm(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::SimEngine engine;
    compute::ClusterExecutor exec(engine, compute::defiant_law_factory());
    for (int i = 0; i < 10; ++i) exec.add_node(8);
    for (int i = 0; i < tasks; ++i) {
      compute::SimTaskDesc desc;
      desc.cpu_seconds = 0.3;
      desc.shared_demand = 50.0;
      exec.submit(desc);
    }
    engine.run();
    benchmark::DoNotOptimize(exec.completed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tasks) * state.iterations());
}
BENCHMARK(BM_TaskFarm)->Arg(80)->Arg(800);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>(i * 31);
  for (auto _ : state) benchmark::DoNotOptimize(util::crc32(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}
BENCHMARK(BM_Crc32)->Arg(1 << 16)->Arg(1 << 20);

void BM_NclSerializeRoundTrip(benchmark::State& state) {
  const auto tiles = static_cast<std::size_t>(state.range(0));
  storage::NclFile file;
  file.add_dim("tile", tiles);
  file.add_dim("ch", 6);
  file.add_dim("y", 32);
  file.add_dim("x", 32);
  std::vector<float> data(tiles * 6 * 32 * 32, 0.5f);
  file.add_f32("tiles", {"tile", "ch", "y", "x"}, data);
  for (auto _ : state) {
    const auto bytes = file.serialize();
    benchmark::DoNotOptimize(storage::NclFile::deserialize(bytes));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(data.size() * sizeof(float)) *
      state.iterations());
}
BENCHMARK(BM_NclSerializeRoundTrip)->Arg(8)->Arg(64);

void BM_GranuleStats(benchmark::State& state) {
  modis::GranuleGenerator gen(2022);
  int slot = 0;
  for (auto _ : state) {
    modis::GranuleSpec spec;
    spec.slot = slot = (slot + 7) % modis::kSlotsPerDay;
    spec.geometry = modis::kFullGeometry;
    benchmark::DoNotOptimize(modis::estimate_granule_stats(gen, spec));
  }
}
BENCHMARK(BM_GranuleStats);

void BM_Tiler(benchmark::State& state) {
  modis::GranuleGenerator gen(2022);
  modis::GranuleSpec spec;
  spec.geometry = modis::GranuleGeometry{128, 96, 6};
  while (!modis::is_daytime(spec.satellite, spec.slot, spec.day_of_year))
    ++spec.slot;
  const auto m02 = gen.mod02(spec);
  const auto m03 = gen.mod03(spec);
  const auto m06 = gen.mod06(spec);
  preprocess::TilerOptions options;
  options.tile_size = 32;
  for (auto _ : state)
    benchmark::DoNotOptimize(preprocess::make_tiles(m02, m03, m06, options));
}
BENCHMARK(BM_Tiler);

void BM_RiccEncode(benchmark::State& state) {
  ml::RiccConfig config;
  config.tile_size = 32;
  config.channels = 6;
  config.base_channels = 8;
  config.conv_blocks = 3;
  config.latent_dim = 32;
  ml::RiccModel model(config);
  util::Rng rng(1);
  ml::Tensor tile({6, 32, 32});
  for (std::size_t i = 0; i < tile.size(); ++i)
    tile[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) benchmark::DoNotOptimize(model.encode(tile));
}
BENCHMARK(BM_RiccEncode);

void BM_WardClustering(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  std::vector<float> data(n * 8);
  for (auto& v : data) v = static_cast<float>(rng.normal());
  for (auto _ : state)
    benchmark::DoNotOptimize(ml::agglomerative_ward(data, n, 8, 42));
}
BENCHMARK(BM_WardClustering)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
