// Fig. 7 reproduction: the end-to-end workflow latency breakdown.
// Paper measurements: download launch (Globus Compute workers + LAADS
// connection + file listing) 5.63 s; preprocessing (Parsl start + Slurm
// allocation + tile creation) 32.80 s; Globus Flow action overhead ~50 ms;
// the monitor's asynchronous hop is "inconsequential".
#include <cstdio>

#include "bench_common.hpp"
#include "pipeline/eoml_workflow.hpp"
#include "util/ascii_plot.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"

using namespace mfw;

int main() {
  util::Logger::instance().set_level(util::LogLevel::kWarn);
  benchx::print_header(
      "Fig. 7 — EO-ML workflow latency breakdown",
      "Kurihana et al., SC24, Fig. 7");

  pipeline::EomlConfig config;
  config.max_files = 30;
  config.daytime_only = true;
  config.preprocess_nodes = 4;
  config.workers_per_node = 8;
  pipeline::EomlWorkflow workflow(config);
  const auto report = workflow.run();

  std::printf(
      "[download]--(launch %s)-->[transfer %s]   (paper launch: 5.63s)\n",
      util::format_seconds(report.download_launch_latency).c_str(),
      util::format_seconds(report.download_span.duration() -
                           report.download_launch_latency)
          .c_str());
  std::printf(
      "[preprocess]--(slurm alloc %s)-->[tile creation %s]  (paper total: "
      "32.80s)\n",
      util::format_seconds(report.slurm_allocation_latency).c_str(),
      util::format_seconds(report.preprocess_span.duration() -
                           report.slurm_allocation_latency)
          .c_str());
  std::printf(
      "[monitor]~~(async trigger gap %s)~~>[inference flow]   (paper: "
      "inconsequential)\n",
      util::format_seconds(report.monitor_trigger_gap).c_str());
  std::printf(
      "[flow]--(action overhead %s per action)-->[...]      (paper: ~50ms)\n",
      util::format_seconds(report.mean_flow_action_overhead).c_str());
  std::printf("[shipment]--(%s for %zu files to Orion)\n\n",
              util::format_seconds(report.shipment_span.duration()).c_str(),
              report.shipped_files);

  std::printf("%s\n",
              util::ascii_bars(
                  {{"download launch", report.download_launch_latency},
                   {"download xfer",
                    report.download_span.duration() -
                        report.download_launch_latency},
                   {"slurm alloc", report.slurm_allocation_latency},
                   {"tile creation",
                    report.preprocess_span.duration() -
                        report.slurm_allocation_latency},
                   {"monitor gap", report.monitor_trigger_gap},
                   {"flow action ovh", report.mean_flow_action_overhead},
                   {"shipment", report.shipment_span.duration()}},
                  50)
                  .c_str());

  std::printf("%s\n", report.summary().c_str());
  std::printf(
      "Expected shape (paper): launch latency ~5-6s; preprocessing tens of\n"
      "seconds and dominated by tile creation; flow action overhead 2-3\n"
      "orders of magnitude smaller (~50ms); monitor gap sub-second.\n");
  return 0;
}
