// Ablation: static allocation vs Parsl-style elastic blocks (the "dynamic
// workflow resource allocation" capability of §IV-D / Fig. 6).
//
// Static allocation holds all nodes for the whole workflow; elastic blocks
// scale out with queue depth and scale idle blocks back in. The interesting
// trade-off is makespan vs node-seconds consumed (facility allocation
// charged): elasticity should cost little wall-clock while consuming far
// fewer node-seconds, because nodes are released as the preprocessing queue
// drains.
#include <cstdio>

#include "bench_common.hpp"
#include "compute/block_provider.hpp"
#include "compute/slurm_sim.hpp"
#include "util/table.hpp"

using namespace mfw;

namespace {

struct Outcome {
  double makespan = 0.0;
  double node_seconds = 0.0;  // integral of allocated nodes over time
};

Outcome run_static(int nodes, const std::vector<benchx::FileWorkload>& files) {
  sim::SimEngine engine;
  compute::ClusterExecutor exec(engine, compute::defiant_law_factory());
  for (int i = 0; i < nodes; ++i) exec.add_node(8);
  for (const auto& f : files) {
    compute::SimTaskDesc desc;
    desc.cpu_seconds = 0.3;
    desc.shared_demand = std::max(0.5, static_cast<double>(f.tiles));
    desc.payload = f.tiles;
    exec.submit(desc);
  }
  engine.run();
  Outcome outcome;
  for (const auto& r : exec.results())
    outcome.makespan = std::max(outcome.makespan, r.finished_at);
  outcome.node_seconds = outcome.makespan * nodes;  // held for the whole run
  return outcome;
}

Outcome run_elastic(int max_blocks,
                    const std::vector<benchx::FileWorkload>& files) {
  sim::SimEngine engine;
  compute::SlurmSim slurm(engine, compute::SlurmSimConfig{36, 1.5});
  compute::ClusterExecutor exec(engine, compute::defiant_law_factory());
  compute::BlockConfig config;
  config.nodes_per_block = 1;
  config.workers_per_node = 8;
  config.init_blocks = 1;
  config.min_blocks = 0;
  config.max_blocks = max_blocks;
  config.idle_timeout = 5.0;
  config.poll_interval = 1.0;
  compute::BlockProvider provider(engine, slurm, exec, config);
  provider.start();
  for (const auto& f : files) {
    compute::SimTaskDesc desc;
    desc.cpu_seconds = 0.3;
    desc.shared_demand = std::max(0.5, static_cast<double>(f.tiles));
    desc.payload = f.tiles;
    exec.submit(desc);
  }
  // Integrate allocated nodes over time by sampling each control period.
  Outcome outcome;
  double last = 0.0;
  std::size_t done = 0;
  exec.notify_idle([&] { done = 1; });
  while (true) {
    engine.run_until(last + 1.0);
    outcome.node_seconds += static_cast<double>(provider.active_blocks()) * 1.0;
    last += 1.0;
    if (exec.completed() == files.size()) break;
    if (last > 36000.0) break;  // safety valve
  }
  for (const auto& r : exec.results())
    outcome.makespan = std::max(outcome.makespan, r.finished_at);
  provider.stop();
  engine.run();
  return outcome;
}

}  // namespace

int main() {
  benchx::print_header(
      "Ablation — static allocation vs elastic blocks (node-seconds)",
      "Kurihana et al., SC24, §IV-D dynamic resource allocation / Fig. 6");

  util::Table table({"files", "static makespan", "static node-s",
                     "elastic makespan", "elastic node-s", "node-s saved"});
  for (std::size_t files_count : {40u, 80u, 160u}) {
    const auto files = benchx::daytime_files(files_count, 1);
    const auto fixed = run_static(10, files);
    const auto elastic = run_elastic(10, files);
    table.add_row(
        {std::to_string(files_count), util::Table::num(fixed.makespan, 1),
         util::Table::num(fixed.node_seconds, 0),
         util::Table::num(elastic.makespan, 1),
         util::Table::num(elastic.node_seconds, 0),
         util::Table::num(
             (1.0 - elastic.node_seconds / fixed.node_seconds) * 100.0, 1) +
             "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected: when the workload underfills the static allocation (40\n"
      "files on 10 nodes), elasticity saves node-seconds by scaling in as\n"
      "the queue drains (the ramp-down Fig. 6 shows); when the queue\n"
      "saturates all blocks for the whole run (80/160 files), elastic and\n"
      "static converge and only the block spin-up overhead remains.\n");
  return 0;
}
