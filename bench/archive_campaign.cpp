// Archive-scale campaign: a year of Terra granules through the streaming
// EO-ML workflow, plus substrate scaling to 10^5-10^6 concurrent jobs/flows.
//
// The paper's workflow processes one week per run; AICCA's production goal
// is the two-decade MODIS archive. This benchmark demonstrates that the
// simulation substrate sustains a full 365-day campaign (~105k granules,
// ~315k files, ~21 TB through the WAN model) in one process, and quantifies
// the O(log n) substrate rebuild (DESIGN.md §9) against the naive oracle at
// archive-scale concurrency.
//
// Emits a JSON report (see tools/bench_sim.sh -> BENCH_sim.json).
//
// With --report-out <path> the campaign runs with the obs layer in bounded
// mode: RetentionMode::kStatsOnly keeps a small sample of spans while a
// SpanRollup sink folds every closed span into per-day windowed rollups, so
// telemetry memory is O(windows), not O(events). The rollup report plus the
// recorder's observed/retained/dropped counters land at <path>.
//
// With --health-out <path> a TelemetryBus is chained in front of the rollup
// sink and an obs::HealthMonitor (per-day windows, EWMA/MAD anomaly detector)
// watches the campaign live, polled once per simulated day by the workflow's
// read-only snapshot tick; the mfw.health/v1 stream lands at <path>. Both
// watch modes are zero-perturbation: campaign numbers are identical with or
// without them.
//
// Usage: archive_campaign [--days N] [--quick] [--out <path>]
//                         [--report-out <path>] [--health-out <path>]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/rollup.hpp"
#include "obs/trace.hpp"
#include "obs/watch.hpp"
#include "pipeline/eoml_workflow.hpp"
#include "sim/engine.hpp"
#include "sim/link.hpp"
#include "sim/resource.hpp"
#include "sim/substrate.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

using namespace mfw;

namespace {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CampaignResult {
  int days = 0;
  std::size_t granules = 0;
  std::size_t tiles = 0;
  std::size_t shipped_files = 0;
  double makespan = 0.0;  // virtual seconds
  double wall_s = 0.0;
  std::size_t events = 0;
  std::size_t compactions = 0;
};

CampaignResult run_campaign(int days, obs::HealthMonitor* monitor = nullptr) {
  pipeline::EomlConfig config;
  config.span = modis::DaySpan{2022, 1, days};
  config.daytime_only = false;  // the archive keeps night granules too
  config.scheduling = pipeline::SchedulingMode::kStreaming;
  config.preprocess_nodes = 10;
  config.workers_per_node = 8;
  // Archive-scale knobs: the default one-week walltime would expire mid-run,
  // and per-flow provenance records (one per granule) would dominate memory.
  config.preprocess_walltime = 400.0 * 24 * 3600;
  config.retain_provenance = false;

  CampaignResult result;
  result.days = days;
  const double start = wall_now();
  pipeline::EomlWorkflow workflow(config);
  // Live health: poll once per simulated day (read-only tick; the run is
  // bit-for-bit identical with or without the monitor).
  if (monitor) workflow.attach_health(*monitor, 86400.0);
  const std::size_t events_before = workflow.engine().processed();
  const auto report = workflow.run();
  if (monitor) monitor->finish(workflow.engine().now());
  result.wall_s = wall_now() - start;
  result.granules = report.granules;
  result.tiles = report.total_tiles;
  result.shipped_files = report.shipped_files;
  result.makespan = report.makespan;
  result.events = workflow.engine().processed() - events_before;
  result.compactions = workflow.engine().compactions();
  return result;
}

// -- substrate churn ---------------------------------------------------------
// Submissions are staggered 1 ms apart so occupancy ramps to n while the
// drain (WAN trunk / contention law) lags far behind — the archive-download
// arrival pattern, which is exactly where the naive O(n)-per-event rebuild
// collapses. Runs stop early when `budget_s` of wall time elapses; since the
// cheap low-occupancy prefix is what fits in the window, an early stop
// *over*-estimates naive throughput, making the reported speedups
// conservative.

struct ChurnResult {
  std::size_t n = 0;
  std::size_t events = 0;
  double wall_s = 0.0;
  bool completed = true;
  double events_per_s() const { return events / std::max(wall_s, 1e-9); }
};

ChurnResult drive(sim::SimEngine& engine, std::size_t n, double budget_s) {
  ChurnResult result;
  result.n = n;
  const double start = wall_now();
  std::size_t steps = 0;
  while (engine.step()) {
    // Check the wall clock only every few events: rarely enough not to
    // swamp the fast substrate's sub-microsecond events, often enough that
    // the naive substrate's ~10 ms high-occupancy events cannot overshoot
    // the budget by much.
    if (++steps % 16 == 0 && wall_now() - start > budget_s) {
      result.completed = false;
      break;
    }
  }
  result.wall_s = wall_now() - start;
  result.events = engine.processed();
  return result;
}

ChurnResult resource_churn(std::size_t n, double budget_s) {
  sim::SimEngine engine;
  sim::SharedResource res(engine,
                          std::make_unique<sim::SaturatingExpLaw>(38.5, 3.1));
  for (std::size_t i = 0; i < n; ++i) {
    engine.schedule_at(static_cast<double>(i) * 1e-3, [&res, i] {
      res.submit(1.0 + static_cast<double>(i % 13), [] {});
    });
  }
  return drive(engine, n, budget_s);
}

ChurnResult link_churn(std::size_t n, double budget_s) {
  sim::SimEngine engine;
  sim::FlowLink link(engine, "wan", 23.5 * 1024 * 1024);
  util::Rng rng(7);
  std::vector<std::pair<double, double>> specs;  // (bytes, cap)
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    specs.emplace_back(rng.uniform(1.0, 64.0) * 1024 * 1024,
                       rng.uniform(0.5, 12.0) * 1024 * 1024);
  for (std::size_t i = 0; i < n; ++i) {
    engine.schedule_at(static_cast<double>(i) * 1e-3, [&link, &specs, i] {
      link.start_flow(specs[i].first, specs[i].second, [](double) {});
    });
  }
  return drive(engine, n, budget_s);
}

ChurnResult engine_churn(std::size_t n, double budget_s) {
  // Cancel-heavy: every second event is cancelled before it fires, the
  // workload that makes the lazily-cancelled heap grow without compaction.
  sim::SimEngine engine;
  util::Rng rng(11);
  std::vector<sim::EventHandle> handles;
  handles.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    handles.push_back(engine.schedule_at(rng.uniform(0, 1e6), [] {}));
  for (std::size_t i = 0; i < n; i += 2) engine.cancel(handles[i]);
  return drive(engine, n, budget_s);
}

using ChurnFn = ChurnResult (*)(std::size_t, double);

struct Comparison {
  ChurnResult fast;
  ChurnResult naive;
  double speedup = 0.0;
};

Comparison compare(ChurnFn fn, std::size_t n, double naive_budget_s) {
  Comparison cmp;
  sim::substrate::set_use_naive(false);
  cmp.fast = fn(n, 1e9);
  sim::substrate::set_use_naive(true);
  cmp.naive = fn(n, naive_budget_s);
  sim::substrate::set_use_naive(false);
  cmp.speedup = cmp.fast.events_per_s() / std::max(cmp.naive.events_per_s(), 1e-9);
  return cmp;
}

std::string churn_json(const ChurnResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"n\": %zu, \"events\": %zu, \"wall_s\": %.4f, "
                "\"completed\": %s, \"events_per_s\": %.1f}",
                r.n, r.events, r.wall_s, r.completed ? "true" : "false",
                r.events_per_s());
  return buf;
}

std::string comparison_json(const Comparison& c) {
  return "{\"fast\": " + churn_json(c.fast) +
         ", \"naive\": " + churn_json(c.naive) +
         ", \"speedup\": " + std::to_string(c.speedup) + "}";
}

}  // namespace

int main(int argc, char** argv) {
  int days = 365;
  bool quick = false;
  std::string out;
  std::string report_out;
  std::string health_out;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--days") && i + 1 < argc) {
      days = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--quick")) {
      quick = true;
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out = argv[++i];
    } else if (!std::strcmp(argv[i], "--report-out") && i + 1 < argc) {
      report_out = argv[++i];
    } else if (!std::strcmp(argv[i], "--health-out") && i + 1 < argc) {
      health_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: archive_campaign [--days N] [--quick] [--out <path>] "
                   "[--report-out <path>] [--health-out <path>]\n");
      return 2;
    }
  }
  if (quick) days = std::min(days, 5);
  if (days < 1 || days > 365) {
    std::fprintf(stderr, "archive_campaign: --days must be in [1, 365]\n");
    return 2;
  }
  util::Logger::instance().set_level(util::LogLevel::kWarn);

  // Bounded telemetry: stats-only retention (a 1-in-64 span sample, capped)
  // plus per-day rollups. The recorder is restored to its defaults afterwards
  // so the churn sections below run untraced.
  std::unique_ptr<obs::SpanRollup> rollup;
  std::unique_ptr<obs::TelemetryBus> bus;
  std::unique_ptr<obs::HealthMonitor> monitor;
  if (!report_out.empty() || !health_out.empty()) {
    auto& rec = obs::TraceRecorder::instance();
    rec.clear();
    rec.set_retention({obs::RetentionMode::kStatsOnly, 64, 4096});
    obs::SpanSink* sink = nullptr;
    if (!report_out.empty()) {
      rollup = std::make_unique<obs::SpanRollup>(
          obs::RollupConfig{86400.0, 366});
      sink = rollup.get();
    }
    if (!health_out.empty()) {
      // The bus rides in front of the rollup (single recorder sink slot).
      // One simulated day of spans sits in the queue between daily polls;
      // if the archive ever outgrows the capacity the overflow is *counted*
      // (dropped_total in the health stream), never silently lost.
      bus = std::make_unique<obs::TelemetryBus>(65536);
      bus->set_next(sink);
      obs::HealthConfig health;
      health.window_s = 86400.0;  // per-day windows, like the rollup
      health.anomaly_k = 4.0;     // flag days departing from recent history
      monitor = std::make_unique<obs::HealthMonitor>(
          health, std::vector<obs::SloRule>{});
      monitor->attach(*bus);
      sink = bus.get();
    }
    rec.set_span_sink(sink);
    obs::set_globally_enabled(true);
  }

  std::printf("=== Archive campaign: %d day(s), streaming, all granules ===\n",
              days);
  const auto campaign = run_campaign(days, monitor.get());
  std::printf(
      "%zu granules -> %zu tiles, %zu shipped files\n"
      "virtual makespan %.0f s (%.1f days), %zu events, %zu compactions, "
      "wall %.1f s\n",
      campaign.granules, campaign.tiles, campaign.shipped_files,
      campaign.makespan, campaign.makespan / 86400.0, campaign.events,
      campaign.compactions, campaign.wall_s);

  std::string obs_json;
  if (rollup || monitor) {
    auto& rec = obs::TraceRecorder::instance();
    obs::set_globally_enabled(false);
    const std::size_t observed = rec.observed_span_count();
    const std::size_t retained = rec.span_count();
    const std::size_t dropped = rec.dropped_span_count();
    const std::size_t dropped_instants = rec.dropped_instant_count();
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"observed_spans\": %zu, \"retained_spans\": %zu, "
                  "\"dropped_spans\": %zu, \"dropped_instants\": %zu}",
                  observed, retained, dropped, dropped_instants);
    obs_json = buf;
    if (rollup) {
      obs::write_file(report_out, "{\n  \"recorder\": " + obs_json +
                                      ",\n  \"rollup\": " + rollup->to_json() +
                                      "\n}\n");
      std::printf(
          "\nBounded telemetry: %zu spans observed, %zu retained "
          "(sample), %zu dropped; rollup holds %zu series\n%s",
          observed, retained, dropped, rollup->series_names().size(),
          rollup->summary().c_str());
      std::printf("Rollup report written to %s\n", report_out.c_str());
    }
    if (monitor) {
      obs::write_file(health_out, monitor->to_json(campaign.makespan));
      std::printf(
          "\nLive health: %llu events watched (%llu dropped at the bus), "
          "%zu alert transitions, %zu firing at end\n"
          "Health stream written to %s\n",
          static_cast<unsigned long long>(monitor->events_seen()),
          static_cast<unsigned long long>(monitor->dropped_events()),
          monitor->alerts().size(), monitor->firing_count(),
          health_out.c_str());
    }
    rec.set_span_sink(nullptr);
    rec.set_retention({});
    rec.clear();
  }

  // -- scaling (fast substrate) ----------------------------------------------
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{10'000, 100'000}
            : std::vector<std::size_t>{100'000, 1'000'000};
  std::string scaling_json = "{";
  const struct {
    const char* name;
    ChurnFn fn;
  } kinds[] = {{"engine", engine_churn},
               {"resource", resource_churn},
               {"link", link_churn}};
  std::printf("\n=== Substrate scaling (fast) ===\n");
  for (std::size_t k = 0; k < 3; ++k) {
    scaling_json += std::string("\"") + kinds[k].name + "\": [";
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      const auto r = kinds[k].fn(sizes[s], 1e9);
      std::printf("%-8s n=%-8zu %8.3f s   %12.0f events/s\n", kinds[k].name,
                  r.n, r.wall_s, r.events_per_s());
      scaling_json += churn_json(r);
      if (s + 1 < sizes.size()) scaling_json += ", ";
    }
    scaling_json += (k + 1 < 3) ? "], " : "]";
  }
  scaling_json += "}";

  // -- fast vs naive churn ---------------------------------------------------
  const std::size_t churn_n = quick ? 20'000 : 100'000;
  const double naive_budget = quick ? 2.0 : 20.0;
  std::printf("\n=== Fast vs naive churn (n=%zu, naive window %.0f s) ===\n",
              churn_n, naive_budget);
  const auto res_cmp = compare(resource_churn, churn_n, naive_budget);
  std::printf("resource  speedup %.1fx  (fast %.3f s%s, naive %.3f s%s)\n",
              res_cmp.speedup, res_cmp.fast.wall_s,
              res_cmp.fast.completed ? "" : " partial", res_cmp.naive.wall_s,
              res_cmp.naive.completed ? "" : " partial");
  const auto link_cmp = compare(link_churn, churn_n, naive_budget);
  std::printf("link      speedup %.1fx  (fast %.3f s%s, naive %.3f s%s)\n",
              link_cmp.speedup, link_cmp.fast.wall_s,
              link_cmp.fast.completed ? "" : " partial", link_cmp.naive.wall_s,
              link_cmp.naive.completed ? "" : " partial");
  const auto engine_cmp = compare(engine_churn, churn_n, naive_budget);
  std::printf("engine    speedup %.1fx  (cancel-heavy; fast compacts, naive "
              "carries dead entries)\n",
              engine_cmp.speedup);

  std::string json = "{\n";
  {
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "  \"campaign\": {\"days\": %d, \"granules\": %zu, \"tiles\": %zu, "
        "\"shipped_files\": %zu, \"virtual_makespan_s\": %.2f, "
        "\"wall_s\": %.2f, \"events\": %zu, \"compactions\": %zu},\n",
        campaign.days, campaign.granules, campaign.tiles,
        campaign.shipped_files, campaign.makespan, campaign.wall_s,
        campaign.events, campaign.compactions);
    json += buf;
  }
  if (!obs_json.empty()) json += "  \"obs\": " + obs_json + ",\n";
  json += "  \"scaling\": " + scaling_json + ",\n";
  json += "  \"churn_vs_naive\": {\n";
  json += "    \"resource\": " + comparison_json(res_cmp) + ",\n";
  json += "    \"link\": " + comparison_json(link_cmp) + ",\n";
  json += "    \"engine\": " + comparison_json(engine_cmp) + "\n  }\n}\n";

  if (!out.empty()) {
    std::ofstream file(out);
    file << json;
    std::printf("\nJSON written to %s\n", out.c_str());
  } else {
    std::printf("\n%s", json.c_str());
  }
  return 0;
}
