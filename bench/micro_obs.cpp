// micro_obs: overhead of the obs recording paths (DESIGN.md §10).
//
// Drives the instrumented call-site idiom (enabled() gate, then
// begin_span/end_span with args) through a private TraceRecorder in three
// modes and reports span-pairs/second for each:
//
//   disabled      recorder off — the relaxed-atomic gate only, no strings,
//                 no lock (the cost every un-traced run pays per call site)
//   full          RetentionMode::kFull — every span stored (paper figures)
//   stats_rollup  RetentionMode::kStatsOnly + SpanRollup sink — bounded
//                 memory (archive campaigns); measures the sink + sampling
//                 path including window rollover/eviction
//   stats_bus     RetentionMode::kStatsOnly + TelemetryBus chained to the
//                 same rollup, with one subscriber drained every 4096 spans —
//                 the live-watch producer path (DESIGN.md §12): event copy,
//                 bounded-queue fan-out, drop accounting
//   stats_flight  RetentionMode::kStatsOnly + FlightRecorder sink — the
//                 always-on black box (DESIGN.md §15): one ring-slot copy
//                 per event, newest overwriting oldest at fixed memory
//
// Usage: micro_obs [--spans N] [--out <path>]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include <vector>

#include "obs/flight.hpp"
#include "obs/rollup.hpp"
#include "obs/trace.hpp"
#include "obs/watch.hpp"

using namespace mfw;

namespace {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeResult {
  std::string mode;
  double wall_s = 0.0;
  double spans_per_s = 0.0;
  std::size_t retained_spans = 0;
  std::size_t observed_spans = 0;
};

/// Records `n` compute-span open/close pairs through `rec` with the
/// call-site idiom used by the instrumented modules. The track rotates over
/// eight worker lanes so track interning and rollup series keys behave as in
/// a real run. When `bus` is set, subscription `sub` is drained every 4096
/// pairs — a realistic watch poll cadence, so the producer path is measured
/// against a queue that is neither empty nor permanently full.
ModeResult drive(obs::TraceRecorder& rec, std::string mode, std::size_t n,
                 obs::TelemetryBus* bus = nullptr, std::size_t sub = 0) {
  ModeResult result;
  result.mode = std::move(mode);
  std::vector<obs::TelemetryEvent> drained;
  const double start = wall_now();
  for (std::size_t i = 0; i < n; ++i) {
    obs::SpanId span;
    if (rec.enabled()) {
      char track[32];
      std::snprintf(track, sizeof track, "preprocess/node0/w%zu", i % 8);
      span = rec.begin_span(track, "compute", "tile-batch",
                            {{"queue_wait_s", "0.25"},
                             {"granule", "terra.A2022001.s0000"}});
    }
    rec.end_span(span, {{"status", "ok"}});
    if (bus && (i + 1) % 4096 == 0) {
      drained.clear();
      bus->poll(sub, drained);
    }
  }
  result.wall_s = wall_now() - start;
  result.spans_per_s = n / std::max(result.wall_s, 1e-9);
  result.retained_spans = rec.span_count();
  result.observed_spans = rec.observed_span_count();
  return result;
}

std::string mode_json(const ModeResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"wall_s\": %.4f, \"spans_per_s\": %.0f, "
                "\"retained_spans\": %zu, \"observed_spans\": %zu}",
                r.wall_s, r.spans_per_s, r.retained_spans, r.observed_spans);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t spans = 200'000;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--spans") && i + 1 < argc) {
      spans = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: micro_obs [--spans N] [--out <path>]\n");
      return 2;
    }
  }

  std::printf("=== obs recording overhead: %zu span pairs per mode ===\n",
              spans);

  // disabled: the gate only. The loop still runs end_span on the invalid id,
  // exactly what an instrumented call site does when tracing is off.
  obs::TraceRecorder disabled_rec;
  disabled_rec.set_enabled(false);
  const auto disabled = drive(disabled_rec, "disabled", spans);

  // full retention (paper-figure runs).
  obs::TraceRecorder full_rec;
  full_rec.set_enabled(true);
  const auto full = drive(full_rec, "full", spans);

  // stats-only retention + rollup sink (archive campaigns). The 10 ms window
  // with a 64-window ring forces continual rollover/eviction under the
  // wall clock, so the measured path includes the ring maintenance.
  obs::TraceRecorder stats_rec;
  stats_rec.set_enabled(true);
  stats_rec.set_retention({obs::RetentionMode::kStatsOnly, 64, 4096});
  obs::SpanRollup rollup(obs::RollupConfig{0.01, 64});
  stats_rec.set_span_sink(&rollup);
  const auto stats = drive(stats_rec, "stats_rollup", spans);
  stats_rec.set_span_sink(nullptr);

  // stats-only retention + the live watch chain: TelemetryBus in front of
  // the same rollup (single sink slot), one subscriber drained every 4096
  // spans. Measures the producer-side event copy + bounded-queue fan-out.
  obs::TraceRecorder bus_rec;
  bus_rec.set_enabled(true);
  bus_rec.set_retention({obs::RetentionMode::kStatsOnly, 64, 4096});
  obs::SpanRollup bus_rollup(obs::RollupConfig{0.01, 64});
  obs::TelemetryBus bus(8192);
  bus.set_next(&bus_rollup);
  const std::size_t sub = bus.subscribe();
  bus_rec.set_span_sink(&bus);
  const auto stats_bus = drive(bus_rec, "stats_bus", spans, &bus, sub);
  bus_rec.set_span_sink(nullptr);

  // stats-only retention + flight ring: the always-on black box. Every span
  // costs one ring-slot copy regardless of how long the campaign runs.
  obs::TraceRecorder flight_rec;
  flight_rec.set_enabled(true);
  flight_rec.set_retention({obs::RetentionMode::kStatsOnly, 64, 4096});
  obs::FlightRecorder flight;
  flight_rec.set_span_sink(&flight);
  const auto stats_flight = drive(flight_rec, "stats_flight", spans);
  flight_rec.set_span_sink(nullptr);

  for (const auto& r : {disabled, full, stats, stats_bus, stats_flight})
    std::printf("%-14s %10.4f s  %14.0f spans/s  retained %zu\n",
                r.mode.c_str(), r.wall_s, r.spans_per_s, r.retained_spans);
  const double full_ns = 1e9 * full.wall_s / spans;
  const double stats_ns = 1e9 * stats.wall_s / spans;
  const double bus_ns = 1e9 * stats_bus.wall_s / spans;
  const double flight_ns = 1e9 * stats_flight.wall_s / spans;
  std::printf("per-pair cost: full %.0f ns, stats+rollup %.0f ns "
              "(rollup adds %.1f%%), stats+bus %.0f ns "
              "(bus adds %.1f%% over rollup; %llu published, %llu dropped)\n",
              full_ns, stats_ns, 100.0 * (stats_ns - full_ns) / full_ns,
              bus_ns, 100.0 * (bus_ns - stats_ns) / stats_ns,
              static_cast<unsigned long long>(bus.published()),
              static_cast<unsigned long long>(bus.dropped_total()));
  std::printf("flight ring: %.0f ns/pair, %zu of %llu events retained "
              "(%llu overwritten)\n",
              flight_ns, flight.size(),
              static_cast<unsigned long long>(flight.seen()),
              static_cast<unsigned long long>(flight.overwritten()));
  std::printf("bounded-mode memory: %zu retained of %zu observed spans, "
              "%zu rollup series\n",
              stats.retained_spans, stats.observed_spans,
              rollup.series_names().size());

  std::string json = "{\n";
  json += "  \"spans\": " + std::to_string(spans) + ",\n";
  json += "  \"modes\": {\n";
  json += "    \"disabled\": " + mode_json(disabled) + ",\n";
  json += "    \"full\": " + mode_json(full) + ",\n";
  json += "    \"stats_rollup\": " + mode_json(stats) + ",\n";
  json += "    \"stats_bus\": " + mode_json(stats_bus) + ",\n";
  json += "    \"stats_flight\": " + mode_json(stats_flight) + "\n  },\n";
  {
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "  \"overhead\": {\"full_pair_ns\": %.1f, "
                  "\"stats_rollup_pair_ns\": %.1f, "
                  "\"stats_bus_pair_ns\": %.1f, "
                  "\"stats_flight_pair_ns\": %.1f, "
                  "\"rollup_vs_full\": %.3f, \"bus_vs_rollup\": %.3f, "
                  "\"flight_vs_rollup\": %.3f, "
                  "\"bus_dropped\": %llu, \"flight_overwritten\": %llu}\n",
                  full_ns, stats_ns, bus_ns, flight_ns,
                  stats_ns / std::max(full_ns, 1e-9),
                  bus_ns / std::max(stats_ns, 1e-9),
                  flight_ns / std::max(stats_ns, 1e-9),
                  static_cast<unsigned long long>(bus.dropped_total()),
                  static_cast<unsigned long long>(flight.overwritten()));
    json += buf;
  }
  json += "}\n";

  if (!out.empty()) {
    std::ofstream file(out);
    file << json;
    std::printf("JSON written to %s\n", out.c_str());
  } else {
    std::printf("%s", json.c_str());
  }
  return 0;
}
