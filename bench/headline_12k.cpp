// Headline reproduction: "our workflow processes 12,000 high-resolution
// satellite images in just 44 seconds using 80 workers distributed across
// 10 nodes" (abstract). We assemble daytime MOD02 granules until their tile
// yield reaches ~12,000 tiles and run the preprocessing farm at 10 nodes x 8
// workers. Expected: completion in the mid-40-second range (~270 tiles/s).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "obs/analyze.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "pipeline/eoml_workflow.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace mfw;

int main(int argc, char** argv) {
  // --trace-out <path>: record the end-to-end barrier/streaming comparison
  // runs (not the isolated-farm iterations) as a Chrome trace-event JSON.
  // --report-out <path>: write the trace-analysis report for those runs.
  // --fast-path <layers|fused|int8>: inference encode path for the
  // end-to-end workflow runs (config.encode_path); the default is the fp32
  // layer path, keeping the headline numbers bit-identical to earlier runs.
  std::string trace_out;
  std::string report_out;
  std::string fast_path = "layers";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg == "--report-out" && i + 1 < argc) {
      report_out = argv[++i];
    } else if (arg == "--fast-path" && i + 1 < argc) {
      fast_path = argv[++i];
      if (fast_path != "layers" && fast_path != "fused" &&
          fast_path != "int8") {
        std::fprintf(stderr, "--fast-path must be layers, fused, or int8\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: headline_12k [--trace-out <path>] "
                   "[--report-out <path>] "
                   "[--fast-path layers|fused|int8]\n");
      return 2;
    }
  }

  benchx::print_header(
      "Headline — 12,000 tiles on 80 workers across 10 nodes",
      "Kurihana et al., SC24, abstract ('12,000 images in 44 seconds')");

  util::Table table({"iteration", "files", "tiles", "time (s)", "tiles/s"});
  std::vector<double> times;
  for (int iteration = 0; iteration < 5; ++iteration) {
    // Grow the file list until the tile total reaches 12,000; the source
    // extends the existing prefix in place, so each +8 step only estimates
    // the newly scanned granules.
    benchx::DaytimeFileSource source(1 + iteration);
    std::size_t request = 96;
    long tiles = 0;
    std::size_t counted = 0;
    while (true) {
      const auto& grown = source.take(request);
      for (; counted < grown.size(); ++counted) tiles += grown[counted].tiles;
      if (tiles >= 12000 || grown.size() < request) break;
      request += 8;
    }
    std::vector<benchx::FileWorkload> files = source.take(request);
    // Trim overshoot from the tail.
    while (!files.empty() && tiles - files.back().tiles >= 12000) {
      tiles -= files.back().tiles;
      files.pop_back();
    }
    const auto result = benchx::run_preprocess_farm(10, 8, files);
    times.push_back(result.makespan);
    table.add_row({std::to_string(iteration + 1), std::to_string(files.size()),
                   util::Table::num(result.tiles, 0),
                   util::Table::num(result.makespan, 2),
                   util::Table::num(result.throughput, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  const auto m = benchx::mean_std(times);
  std::printf("Mean completion: %.2fs +- %.2fs   (paper: 44s)\n", m.mean,
              m.stddev);
  std::printf("Within 25%% of the paper's 44s: %s\n",
              (m.mean > 33.0 && m.mean < 55.0) ? "yes" : "no");

  // -- streaming variant -----------------------------------------------------
  // The 44s headline measures the farm in isolation (inputs already on
  // Lustre). End to end the barrier makes every granule wait for the slowest
  // download; streaming hides the farm inside the download window, so the
  // same 10x8 allocation adds almost nothing past the last download.
  std::printf(
      "\n=== Streaming variant (end-to-end, 10 nodes x 8 workers) ===\n");
  util::Logger::instance().set_level(util::LogLevel::kWarn);
  if (!trace_out.empty() || !report_out.empty())
    obs::set_globally_enabled(true);
  util::Table cmp({"scheduling", "makespan (s)", "post-download (s)",
                   "dl/pp overlap (s)", "tiles"});
  double barrier_makespan = 0.0;
  double streaming_makespan = 0.0;
  for (const auto mode : {pipeline::SchedulingMode::kBarrier,
                          pipeline::SchedulingMode::kStreaming}) {
    pipeline::EomlConfig config;
    config.max_files = 40;
    config.daytime_only = true;
    config.download_workers = 3;
    config.preprocess_nodes = 10;
    config.workers_per_node = 8;
    config.inference_workers = 1;
    config.encode_path = fast_path;
    config.scheduling = mode;
    pipeline::EomlWorkflow workflow(config);
    const auto report = workflow.run();
    (mode == pipeline::SchedulingMode::kBarrier ? barrier_makespan
                                                : streaming_makespan) =
        report.makespan;
    cmp.add_row({pipeline::to_string(mode),
                 util::Table::num(report.makespan, 2),
                 util::Table::num(report.makespan - report.download_span.end, 2),
                 util::Table::num(report.download_preprocess_overlap(), 2),
                 util::Table::num(static_cast<double>(report.total_tiles), 0)});
  }
  std::printf("%s\n", cmp.render().c_str());
  std::printf("Streaming saves %.2fs end-to-end (%.1f%%)\n",
              barrier_makespan - streaming_makespan,
              barrier_makespan > 0
                  ? 100.0 * (barrier_makespan - streaming_makespan) /
                        barrier_makespan
                  : 0.0);

  if (!trace_out.empty()) {
    auto& rec = obs::TraceRecorder::instance();
    obs::write_file(trace_out, obs::to_chrome_trace_json(rec));
    std::printf("Trace written to %s (%zu spans, %zu instants) — load in "
                "https://ui.perfetto.dev or chrome://tracing\n",
                trace_out.c_str(), rec.span_count(), rec.instant_count());
  }
  if (!report_out.empty()) {
    const auto analysis = obs::analyze_trace(obs::TraceRecorder::instance());
    obs::write_file(report_out, analysis.to_json());
    std::printf("Trace-analysis report written to %s\n", report_out.c_str());
    for (const auto& process : analysis.processes)
      std::printf("  %s: dominant stage %s, critical path %.1f s "
                  "(%.1f%% coverage)\n",
                  process.process.c_str(), process.dominant_stage.c_str(),
                  process.critical_path.length,
                  100.0 * process.critical_path.coverage);
  }
  return 0;
}
