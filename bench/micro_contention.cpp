// Ablation bench: how the choice of on-node contention law (DESIGN.md
// "Calibration note") shapes the strong-scaling worker curve. The
// saturating-exponential law is the one calibrated to the paper's Table I;
// linear-cap and step-cap are the idealized alternatives.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace mfw;

namespace {

double throughput_with(compute::LawFactory factory, int workers) {
  sim::SimEngine engine;
  compute::ClusterExecutor exec(engine, std::move(factory));
  const int nodes = workers > 64 ? 2 : 1;
  const int per_node = workers > 64 ? workers / 2 : workers;
  for (int i = 0; i < nodes; ++i) exec.add_node(per_node);
  const auto files = benchx::daytime_files(128, 1);
  for (const auto& file : files) {
    compute::SimTaskDesc desc;
    desc.cpu_seconds = 0.3;
    desc.shared_demand = std::max(0.5, static_cast<double>(file.tiles));
    desc.payload = file.tiles;
    exec.submit(desc);
  }
  engine.run();
  double makespan = 0;
  for (const auto& r : exec.results())
    makespan = std::max(makespan, r.finished_at);
  return exec.completed_payload() / makespan;
}

}  // namespace

int main() {
  benchx::print_header(
      "Ablation — contention-law choice vs the Table I worker curve",
      "DESIGN.md calibration note (supports Table I / Fig. 4a)");

  const auto saturating = [] {
    return std::unique_ptr<sim::ContentionLaw>(
        std::make_unique<sim::SaturatingExpLaw>(38.5, 3.1));
  };
  const auto linear = [] {
    return std::unique_ptr<sim::ContentionLaw>(
        std::make_unique<sim::LinearCapLaw>(10.5, 38.5));
  };
  const auto step = [] {
    return std::unique_ptr<sim::ContentionLaw>(
        std::make_unique<sim::StepCapLaw>(10.5, 4));
  };

  const double paper[] = {10.52, 18.10, 25.01, 36.59, 38.74, 37.95, 37.34, 71.01};
  util::Table table({"# workers", "paper t/s", "saturating-exp", "linear-cap",
                     "step-cap"});
  const int workers[] = {1, 2, 4, 8, 16, 32, 64, 128};
  double err_sat = 0, err_lin = 0, err_step = 0;
  for (int i = 0; i < 8; ++i) {
    const double sat = throughput_with(saturating, workers[i]);
    const double lin = throughput_with(linear, workers[i]);
    const double stp = throughput_with(step, workers[i]);
    err_sat += std::abs(sat - paper[i]) / paper[i];
    err_lin += std::abs(lin - paper[i]) / paper[i];
    err_step += std::abs(stp - paper[i]) / paper[i];
    table.add_row({std::to_string(workers[i]), util::Table::num(paper[i], 2),
                   util::Table::num(sat, 2), util::Table::num(lin, 2),
                   util::Table::num(stp, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Mean relative error vs paper: saturating-exp=%.1f%%  "
              "linear-cap=%.1f%%  step-cap=%.1f%%\n",
              err_sat / 8 * 100, err_lin / 8 * 100, err_step / 8 * 100);
  std::printf("The calibrated saturating-exponential law should fit best.\n");
  return 0;
}
