// Google-benchmark micro benchmarks for the fast-ML substrate: blocked
// sgemm vs int8 gemm, im2col+GEMM vs naive convolution, fused + quantized
// conv, batched RICC encode across paths and pool sizes, and cached-NN vs
// full-rescan Ward clustering. `tools/bench_kernels.sh` runs this binary and
// snapshots the numbers into BENCH_kernels.json.
//
// The binary stamps its own build type into the benchmark context
// (mfw_build_type); bench_kernels.sh refuses to record numbers from a
// non-Release binary — a debug-built snapshot once poisoned the perf
// trajectory in BENCH_kernels.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "ml/cluster.hpp"
#include "ml/kernels.hpp"
#include "ml/layers.hpp"
#include "ml/quant.hpp"
#include "ml/ricc.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#ifndef MFW_BUILD_TYPE
#define MFW_BUILD_TYPE "unknown"
#endif

namespace {

using namespace mfw;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

// The shape an im2col'd 3x3 conv over an 8ch 32x32 tile produces:
// [8][72] x [72][1024].
void BM_Sgemm(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  const auto a = random_vec(m * k, 1);
  const auto b = random_vec(k * n, 2);
  std::vector<float> c(m * n);
  for (auto _ : state) {
    ml::kernels::sgemm(m, n, k, a.data(), b.data(), c.data(), false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * m * n * k) *
                          state.iterations());
}
BENCHMARK(BM_Sgemm)->Args({8, 72, 1024})->Args({64, 64, 64})->Args({128, 128, 128});

std::vector<std::int8_t> random_s8(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::int8_t> v(n);
  for (auto& x : v) x = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  return v;
}

// Same shapes as BM_Sgemm so items_per_second (MAC/s) compares directly;
// ci_int8_smoke.sh gates the int8-over-fp32 ratio on the [8][72][1024] shape.
void BM_GemmS8(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  const auto a = random_s8(m * k, 1);
  const auto b = random_s8(k * n, 2);
  std::vector<std::int32_t> c(m * n);
  for (auto _ : state) {
    ml::kernels::gemm_s8(m, n, k, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * m * n * k) *
                          state.iterations());
}
BENCHMARK(BM_GemmS8)->Args({8, 72, 1024})->Args({64, 64, 64})->Args({128, 128, 128});

void BM_QuantizeS8(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec(n, 9);
  std::vector<std::int8_t> q(n);
  for (auto _ : state) {
    ml::kernels::quantize_s8(x.data(), n, 0.031f, q.data());
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_QuantizeS8)->Arg(6 * 32 * 32);

void BM_DequantizeS8(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto q = random_s8(n, 9);
  std::vector<float> x(n);
  for (auto _ : state) {
    ml::kernels::dequantize_s8(q.data(), n, 0.031f, x.data());
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_DequantizeS8)->Arg(6 * 32 * 32);

// Fused conv+bias+LeakyReLU vs the layered Conv2d+LeakyReLU pair, same
// 8ch 32x32 shape as BM_Conv2dForwardGemm.
void BM_FusedConvBiasLeaky(benchmark::State& state) {
  util::Rng rng(5);
  ml::Conv2d conv(8, 8, 3, 1, 1, rng);
  ml::Tensor input({8, 32, 32});
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(rng.uniform());
  std::vector<float> col(ml::kernels::im2col_rows(8, 3) * 32 * 32);
  ml::Tensor out({8, 32, 32});
  for (auto _ : state) {
    ml::kernels::conv2d_bias_leaky_f32(
        input.data(), 8, 32, 32, conv.weight().data(), conv.bias().data(), 8,
        3, 1, 1, 0.1f, col.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FusedConvBiasLeaky);

void conv2d_forward(benchmark::State& state, bool naive) {
  ml::kernels::set_use_naive(naive);
  util::Rng rng(5);
  ml::Conv2d conv(8, 8, 3, 1, 1, rng);
  ml::Tensor input({8, 32, 32});
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(input));
  ml::kernels::set_use_naive(false);
}
void BM_Conv2dForwardNaive(benchmark::State& state) {
  conv2d_forward(state, true);
}
void BM_Conv2dForwardGemm(benchmark::State& state) {
  conv2d_forward(state, false);
}
BENCHMARK(BM_Conv2dForwardNaive);
BENCHMARK(BM_Conv2dForwardGemm);

void conv2d_backward(benchmark::State& state, bool naive) {
  ml::kernels::set_use_naive(naive);
  util::Rng rng(5);
  ml::Conv2d conv(8, 8, 3, 1, 1, rng);
  ml::Tensor input({8, 32, 32});
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(rng.uniform());
  const ml::Tensor out = conv.forward(input);
  ml::Tensor grad(out.shape());
  for (std::size_t i = 0; i < grad.size(); ++i)
    grad[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) benchmark::DoNotOptimize(conv.backward(grad));
  ml::kernels::set_use_naive(false);
}
void BM_Conv2dBackwardNaive(benchmark::State& state) {
  conv2d_backward(state, true);
}
void BM_Conv2dBackwardGemm(benchmark::State& state) {
  conv2d_backward(state, false);
}
BENCHMARK(BM_Conv2dBackwardNaive);
BENCHMARK(BM_Conv2dBackwardGemm);

void BM_RiccEncodeBatch(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  ml::RiccConfig config;
  config.tile_size = 32;
  config.channels = 6;
  config.base_channels = 8;
  config.conv_blocks = 3;
  config.latent_dim = 32;
  ml::RiccModel model(config);
  util::Rng rng(1);
  std::vector<ml::Tensor> tiles;
  for (int t = 0; t < 16; ++t) {
    ml::Tensor tile({6, 32, 32});
    for (std::size_t i = 0; i < tile.size(); ++i)
      tile[i] = static_cast<float>(rng.uniform());
    tiles.push_back(std::move(tile));
  }
  if (threads == 0) {
    for (auto _ : state)
      benchmark::DoNotOptimize(model.encode_batch(tiles, nullptr));
  } else {
    util::ThreadPool pool(threads);
    for (auto _ : state)
      benchmark::DoNotOptimize(model.encode_batch(tiles, &pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tiles.size()) *
                          state.iterations());
}
BENCHMARK(BM_RiccEncodeBatch)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// End-to-end encode across the three inference paths on the paper's
// 6ch 32x32 tile shape; items_per_second is tiles/sec/core (sequential).
// ci_int8_smoke.sh gates int8 >= 2x the layers path.
void ricc_encode_path(benchmark::State& state,
                      ml::RiccModel::EncodePath path) {
  ml::RiccConfig config;
  config.tile_size = 32;
  config.channels = 6;
  config.base_channels = 8;
  config.conv_blocks = 3;
  config.latent_dim = 32;
  ml::RiccModel model(config);
  util::Rng rng(1);
  std::vector<ml::Tensor> tiles;
  for (int t = 0; t < 16; ++t) {
    ml::Tensor tile({6, 32, 32});
    for (std::size_t i = 0; i < tile.size(); ++i)
      tile[i] = static_cast<float>(rng.uniform());
    tiles.push_back(std::move(tile));
  }
  if (path == ml::RiccModel::EncodePath::kInt8) model.calibrate_int8(tiles);
  model.set_encode_path(path);
  for (auto _ : state)
    benchmark::DoNotOptimize(model.encode_batch(tiles, nullptr));
  state.SetItemsProcessed(static_cast<std::int64_t>(tiles.size()) *
                          state.iterations());
}
void BM_RiccEncodeFp32(benchmark::State& state) {
  ricc_encode_path(state, ml::RiccModel::EncodePath::kLayers);
}
void BM_RiccEncodeFused(benchmark::State& state) {
  ricc_encode_path(state, ml::RiccModel::EncodePath::kFused);
}
void BM_RiccEncodeInt8(benchmark::State& state) {
  ricc_encode_path(state, ml::RiccModel::EncodePath::kInt8);
}
BENCHMARK(BM_RiccEncodeFp32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RiccEncodeFused)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RiccEncodeInt8)->Unit(benchmark::kMillisecond);

void ward(benchmark::State& state, bool naive) {
  ml::kernels::set_use_naive(naive);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = random_vec(n * 8, 3);
  for (auto _ : state)
    benchmark::DoNotOptimize(ml::agglomerative_ward(data, n, 8, 42));
  ml::kernels::set_use_naive(false);
}
void BM_WardNaive(benchmark::State& state) { ward(state, true); }
void BM_WardCachedNN(benchmark::State& state) { ward(state, false); }
BENCHMARK(BM_WardNaive)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WardCachedNN)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Stamp this binary's own build type into the JSON context so recording
  // scripts can reject non-Release numbers (the system benchmark library's
  // library_build_type reflects the library, not this binary).
  benchmark::AddCustomContext("mfw_build_type", MFW_BUILD_TYPE);
  benchmark::AddCustomContext(
      "mfw_gemm_s8_vectorized",
      mfw::ml::kernels::gemm_s8_vectorized() ? "true" : "false");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
