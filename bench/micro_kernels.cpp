// Google-benchmark micro benchmarks for the fast-ML substrate: blocked
// sgemm, im2col+GEMM vs naive convolution, batched RICC encode across pool
// sizes, and cached-NN vs full-rescan Ward clustering. `tools/bench_kernels.sh`
// runs this binary and snapshots the numbers into BENCH_kernels.json.
#include <benchmark/benchmark.h>

#include <vector>

#include "ml/cluster.hpp"
#include "ml/kernels.hpp"
#include "ml/layers.hpp"
#include "ml/ricc.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace mfw;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

// The shape an im2col'd 3x3 conv over an 8ch 32x32 tile produces:
// [8][72] x [72][1024].
void BM_Sgemm(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  const auto a = random_vec(m * k, 1);
  const auto b = random_vec(k * n, 2);
  std::vector<float> c(m * n);
  for (auto _ : state) {
    ml::kernels::sgemm(m, n, k, a.data(), b.data(), c.data(), false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * m * n * k) *
                          state.iterations());
}
BENCHMARK(BM_Sgemm)->Args({8, 72, 1024})->Args({64, 64, 64})->Args({128, 128, 128});

void conv2d_forward(benchmark::State& state, bool naive) {
  ml::kernels::set_use_naive(naive);
  util::Rng rng(5);
  ml::Conv2d conv(8, 8, 3, 1, 1, rng);
  ml::Tensor input({8, 32, 32});
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(input));
  ml::kernels::set_use_naive(false);
}
void BM_Conv2dForwardNaive(benchmark::State& state) {
  conv2d_forward(state, true);
}
void BM_Conv2dForwardGemm(benchmark::State& state) {
  conv2d_forward(state, false);
}
BENCHMARK(BM_Conv2dForwardNaive);
BENCHMARK(BM_Conv2dForwardGemm);

void conv2d_backward(benchmark::State& state, bool naive) {
  ml::kernels::set_use_naive(naive);
  util::Rng rng(5);
  ml::Conv2d conv(8, 8, 3, 1, 1, rng);
  ml::Tensor input({8, 32, 32});
  for (std::size_t i = 0; i < input.size(); ++i)
    input[i] = static_cast<float>(rng.uniform());
  const ml::Tensor out = conv.forward(input);
  ml::Tensor grad(out.shape());
  for (std::size_t i = 0; i < grad.size(); ++i)
    grad[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) benchmark::DoNotOptimize(conv.backward(grad));
  ml::kernels::set_use_naive(false);
}
void BM_Conv2dBackwardNaive(benchmark::State& state) {
  conv2d_backward(state, true);
}
void BM_Conv2dBackwardGemm(benchmark::State& state) {
  conv2d_backward(state, false);
}
BENCHMARK(BM_Conv2dBackwardNaive);
BENCHMARK(BM_Conv2dBackwardGemm);

void BM_RiccEncodeBatch(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  ml::RiccConfig config;
  config.tile_size = 32;
  config.channels = 6;
  config.base_channels = 8;
  config.conv_blocks = 3;
  config.latent_dim = 32;
  ml::RiccModel model(config);
  util::Rng rng(1);
  std::vector<ml::Tensor> tiles;
  for (int t = 0; t < 16; ++t) {
    ml::Tensor tile({6, 32, 32});
    for (std::size_t i = 0; i < tile.size(); ++i)
      tile[i] = static_cast<float>(rng.uniform());
    tiles.push_back(std::move(tile));
  }
  if (threads == 0) {
    for (auto _ : state)
      benchmark::DoNotOptimize(model.encode_batch(tiles, nullptr));
  } else {
    util::ThreadPool pool(threads);
    for (auto _ : state)
      benchmark::DoNotOptimize(model.encode_batch(tiles, &pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tiles.size()) *
                          state.iterations());
}
BENCHMARK(BM_RiccEncodeBatch)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void ward(benchmark::State& state, bool naive) {
  ml::kernels::set_use_naive(naive);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = random_vec(n * 8, 3);
  for (auto _ : state)
    benchmark::DoNotOptimize(ml::agglomerative_ward(data, n, 8, 42));
  ml::kernels::set_use_naive(false);
}
void BM_WardNaive(benchmark::State& state) { ward(state, true); }
void BM_WardCachedNN(benchmark::State& state) { ward(state, false); }
BENCHMARK(BM_WardNaive)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WardCachedNN)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
