// Serving-layer load benchmark (DESIGN.md §14): QPS scaling of the sharded
// catalog across shard counts and reader-thread counts, cache-hit-rate
// curves across result-cache capacities, and tail latency under a Zipf +
// flash-crowd open-loop client population of >= 1M simulated users.
//
// Stages (all against one synthetic labelled-tile archive):
//  1. ingest     — partitioned parallel ingest throughput, per shard count;
//  2. scaling    — closed-loop QPS for shard counts x reader threads
//                  (cache disabled, so the matrix measures the lock-free
//                  scan path, not memoization);
//  3. cache      — hit rate / QPS versus cache capacity at the headline
//                  shard count (capacity 0 = cache off);
//  4. flash      — open-loop run with >= 1M users at an offered rate set
//                  relative to measured closed-loop capacity, with a
//                  mid-run flash crowd concentrated on the hottest cell:
//                  base-vs-flash p50/p99/p999 and a latency timeline.
//
// Emits the mfw.serve_bench/v1 JSON consumed by tools/bench_serve.sh ->
// BENCH_serve.json. The build type is stamped into the document so the
// script can refuse to snapshot non-Release numbers.
//
// Usage: serve_load [--quick] [--out <path>] [--tiles N] [--users N]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/catalog.hpp"
#include "serve/loadgen.hpp"
#include "serve/service.hpp"
#include "util/json_writer.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

#ifndef MFW_BUILD_TYPE
#define MFW_BUILD_TYPE "Unknown"
#endif

using namespace mfw;

namespace {

struct ScalePoint {
  std::size_t shards = 0;
  std::size_t threads = 0;
  double ingest_s = 0.0;
  serve::LoadResult load;
};

struct CachePoint {
  std::size_t capacity = 0;
  serve::LoadResult load;
};

double time_ingest(serve::Catalog& catalog,
                   const std::vector<analysis::TileRecord>& records,
                   util::ThreadPool& pool) {
  const auto t0 = std::chrono::steady_clock::now();
  catalog.ingest(records, &pool);
  catalog.seal();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_serve.json";
  // Non-point queries scan O(tiles) rows per request (bbox/class pruning is
  // per-shard metadata, and hash sharding mixes every cell into every
  // shard), so the corpus size is the per-request cost knob: 500k labelled
  // tiles keeps the full matrix minutes-scale on a small host while the
  // *user population* stays at the 1M the flash-crowd story needs.
  std::size_t tiles = 500'000;
  std::size_t users = 1'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    if (std::strcmp(argv[i], "--tiles") == 0 && i + 1 < argc)
      tiles = static_cast<std::size_t>(std::atol(argv[++i]));
    if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc)
      users = static_cast<std::size_t>(std::atol(argv[++i]));
  }
  if (quick) {
    tiles = std::min<std::size_t>(tiles, 100'000);
    users = std::min<std::size_t>(users, 50'000);
  }
  util::Logger::instance().set_level(util::LogLevel::kError);

  constexpr int kDays = 30;
  constexpr int kNumClasses = 42;
  const std::uint64_t seed = 2024;
  std::printf("synthesizing %zu tiles over %d days...\n", tiles, kDays);
  const auto records = serve::synth_records(tiles, kDays, kNumClasses, seed);
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  util::ThreadPool pool(hw);

  // -- stage 2 ingredients: scaling matrix ----------------------------------
  const std::vector<std::size_t> shard_counts = {1, 8, 32};
  std::vector<std::size_t> thread_counts = {1, 2, 4};
  if (hw >= 8 && !quick) thread_counts.push_back(8);
  const std::size_t scale_requests = quick ? 20'000 : 60'000;

  std::vector<ScalePoint> scaling;
  for (const std::size_t shards : shard_counts) {
    serve::CatalogConfig config;
    config.shard_count = shards;
    serve::Catalog catalog(config);
    const double ingest_s = time_ingest(catalog, records, pool);
    std::printf("shards=%zu ingest %.2fs (%.0f tiles/s)\n", shards, ingest_s,
                static_cast<double>(tiles) / ingest_s);
    for (const std::size_t threads : thread_counts) {
      serve::ServeConfig svc_config;
      svc_config.enable_cache = false;  // measure the scan path itself
      svc_config.trace = false;
      serve::ServeService service(catalog, svc_config);
      serve::LoadConfig load;
      load.users = std::min<std::size_t>(users, 200'000);
      load.requests = scale_requests;
      load.threads = threads;
      load.day_hi = kDays;
      load.num_classes = kNumClasses;
      load.seed = seed;
      ScalePoint point;
      point.shards = shards;
      point.threads = threads;
      point.ingest_s = ingest_s;
      point.load = serve::run_load(service, load);
      std::printf("  threads=%zu qps=%.0f p50=%.1fus p99=%.1fus\n", threads,
                  point.load.qps, point.load.all.p50_us,
                  point.load.all.p99_us);
      scaling.push_back(std::move(point));
    }
  }

  // -- headline catalog for cache + flash stages ----------------------------
  serve::CatalogConfig headline_config;
  headline_config.shard_count = 32;
  serve::Catalog catalog(headline_config);
  (void)time_ingest(catalog, records, pool);
  const std::size_t headline_threads = thread_counts.back();

  std::vector<CachePoint> cache_curve;
  const std::vector<std::size_t> capacities = {0, 1'024, 8'192, 65'536};
  const std::size_t cache_requests = quick ? 30'000 : 150'000;
  double best_cached_qps = 0.0;
  for (const std::size_t capacity : capacities) {
    serve::ServeConfig svc_config;
    svc_config.enable_cache = capacity > 0;
    svc_config.cache_capacity = std::max<std::size_t>(1, capacity);
    svc_config.trace = false;
    serve::ServeService service(catalog, svc_config);
    serve::LoadConfig load;
    load.users = users;
    load.requests = cache_requests;
    load.threads = headline_threads;
    load.day_hi = kDays;
    load.num_classes = kNumClasses;
    load.zipf_s = 1.1;
    load.seed = seed;
    CachePoint point;
    point.capacity = capacity;
    point.load = serve::run_load(service, load);
    std::printf("cache=%zu hit_rate=%.3f qps=%.0f p99=%.1fus\n", capacity,
                point.load.hit_rate, point.load.qps, point.load.all.p99_us);
    best_cached_qps = std::max(best_cached_qps, point.load.qps);
    cache_curve.push_back(std::move(point));
  }

  // -- flash crowd: open loop at 60% of measured capacity, 8x burst ---------
  serve::ServeConfig flash_svc;
  flash_svc.trace = false;
  serve::ServeService flash_service(catalog, flash_svc);
  serve::LoadConfig flash;
  flash.users = users;
  flash.requests = quick ? 60'000 : 250'000;
  flash.threads = headline_threads;
  flash.day_hi = kDays;
  flash.num_classes = kNumClasses;
  flash.zipf_s = 1.1;
  flash.seed = seed;
  flash.arrival_rate = 0.6 * best_cached_qps;
  flash.flash_crowd = true;
  flash.flash_boost = 8.0;
  const serve::LoadResult flash_result =
      serve::run_load(flash_service, flash);
  std::printf(
      "flash: offered=%.0f/s base p99=%.1fus flash p99=%.1fus p999=%.1fus "
      "hit_rate=%.3f\n",
      flash.arrival_rate, flash_result.base.p99_us, flash_result.flash.p99_us,
      flash_result.flash.p999_us, flash_result.hit_rate);

  // -- emit ------------------------------------------------------------------
  util::JsonWriter w;
  w.begin_object();
  w.field("schema", "mfw.serve_bench/v1");
  w.field("build_type", MFW_BUILD_TYPE);
  w.field("quick", quick);
  w.field("tiles", tiles);
  w.field("days", kDays);
  w.field("users", users);
  w.key("scaling", "\n ").begin_array();
  for (const ScalePoint& point : scaling) {
    w.item("\n  ").begin_object();
    w.field("shards", point.shards);
    w.field("threads", point.threads);
    w.field("ingest_s", point.ingest_s);
    w.field("qps", point.load.qps);
    w.field("p50_us", point.load.all.p50_us);
    w.field("p99_us", point.load.all.p99_us);
    w.field("p999_us", point.load.all.p999_us);
    w.end_object();
  }
  w.end_array("\n ");
  w.key("cache_curve", "\n ").begin_array();
  for (const CachePoint& point : cache_curve) {
    w.item("\n  ").begin_object();
    w.field("capacity", point.capacity);
    w.field("hit_rate", point.load.hit_rate);
    w.field("qps", point.load.qps);
    w.field("p50_us", point.load.all.p50_us);
    w.field("p99_us", point.load.all.p99_us);
    w.end_object();
  }
  w.end_array("\n ");
  w.key("flash", "\n ");
  w.raw(flash_result.to_json());
  w.end_object().raw("\n");

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << w.take();
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
