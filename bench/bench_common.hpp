// Shared helpers for the figure/table reproduction benchmarks: workload
// construction (daytime MOD02 file lists with per-file tile counts) and the
// preprocessing task-farm experiment harness used by Figs. 4/5 and Table I.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compute/cluster.hpp"
#include "modis/catalog.hpp"

namespace mfw::benchx {

/// Per-file workload descriptor for a MOD02 granule.
struct FileWorkload {
  modis::GranuleId id;
  int tiles = 0;
};

/// First `count` daytime MOD02 granules with tiles, starting at `start_day`
/// of 2022 (wraps across days as needed). Deterministic per seed.
std::vector<FileWorkload> daytime_files(std::size_t count, int start_day = 1,
                                        std::uint64_t seed = 2022);

/// Incremental variant of daytime_files: take(n) returns the same list
/// daytime_files(n, start_day, seed) would, but repeated calls with growing
/// n resume the day/slot scan where the previous call stopped instead of
/// re-estimating the whole prefix (the granule statistics are pure functions
/// of (seed, day, slot), so resuming is exact). Grow-until-N loops go from
/// quadratic to linear in the final list length.
class DaytimeFileSource {
 public:
  explicit DaytimeFileSource(int start_day = 1, std::uint64_t seed = 2022);

  /// Extends the list to (up to) `count` files and returns it; the reference
  /// stays valid until the next call. Never shrinks.
  const std::vector<FileWorkload>& take(std::size_t count);

 private:
  modis::GranuleGenerator generator_;
  std::uint64_t seed_;
  int day_;
  int slot_ = 0;
  std::vector<FileWorkload> files_;
};

struct FarmResult {
  double makespan = 0.0;     // seconds (virtual) to process all files
  double tiles = 0.0;        // total tiles produced
  double throughput = 0.0;   // tiles/second
};

/// Runs the preprocessing task farm (the Figs. 4/5 experiment): `files` are
/// dispatched to `nodes` x `workers_per_node` workers under the calibrated
/// Defiant contention law.
FarmResult run_preprocess_farm(int nodes, int workers_per_node,
                               const std::vector<FileWorkload>& files);

/// Mean/stddev over per-iteration values.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd mean_std(const std::vector<double>& values);

/// Prints the standard bench header (paper reference + reproduction note).
void print_header(const std::string& experiment, const std::string& paper_ref);

}  // namespace mfw::benchx
