// Fig. 5 reproduction: weak scaling of the preprocessing stage — every
// worker receives n=2 files, so total work grows with resources.
//   (a) workers 1 -> 128 on one node (128 spans two nodes);
//   (b) nodes 1 -> 10 at 8 workers/node (16 files per node).
// Expected shape: completion time grows with workers on one node (the
// shared substrate saturates while work keeps growing), stays roughly flat
// across nodes (each node brings its own substrate).
#include <cstdio>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

using namespace mfw;

int main() {
  benchx::print_header(
      "Fig. 5 — Weak scaling (2 files per worker): time vs workers and nodes",
      "Kurihana et al., SC24, Fig. 5(a)/(b)");

  std::printf("(a) 2 files/worker, workers 1 -> 128 on one node\n\n");
  util::Table ta({"# workers", "# files", "mean time (s)", "std"});
  util::Series sa{"completion time", {}, {}, '*'};
  for (int workers : {1, 2, 4, 8, 16, 32, 64, 128}) {
    std::vector<double> times;
    const std::size_t file_count = static_cast<std::size_t>(2 * workers);
    for (int iteration = 0; iteration < 5; ++iteration) {
      const auto files = benchx::daytime_files(file_count, 1 + iteration);
      const int nodes = workers > 64 ? 2 : 1;
      const int per_node = workers > 64 ? workers / 2 : workers;
      times.push_back(
          benchx::run_preprocess_farm(nodes, per_node, files).makespan);
    }
    const auto m = benchx::mean_std(times);
    ta.add_row({std::to_string(workers), std::to_string(file_count),
                util::Table::num(m.mean, 2), util::Table::num(m.stddev, 2)});
    sa.xs.push_back(workers);
    sa.ys.push_back(m.mean);
  }
  std::printf("%s\n", ta.render().c_str());
  std::printf("%s\n", util::ascii_plot({sa}, 64, 12, "# workers",
                                       "completion time (s)")
                          .c_str());

  std::printf("(b) 16 files/node (8 workers x 2 files), nodes 1 -> 10\n\n");
  util::Table tb({"# nodes", "# files", "mean time (s)", "std"});
  util::Series sb{"completion time", {}, {}, '*'};
  for (int nodes = 1; nodes <= 10; ++nodes) {
    std::vector<double> times;
    const std::size_t file_count = static_cast<std::size_t>(16 * nodes);
    for (int iteration = 0; iteration < 5; ++iteration) {
      const auto files = benchx::daytime_files(file_count, 1 + iteration);
      times.push_back(benchx::run_preprocess_farm(nodes, 8, files).makespan);
    }
    const auto m = benchx::mean_std(times);
    tb.add_row({std::to_string(nodes), std::to_string(file_count),
                util::Table::num(m.mean, 2), util::Table::num(m.stddev, 2)});
    sb.xs.push_back(nodes);
    sb.ys.push_back(m.mean);
  }
  std::printf("%s\n", tb.render().c_str());
  std::printf("%s\n", util::ascii_plot({sb}, 64, 12, "# nodes",
                                       "completion time (s)")
                          .c_str());
  std::printf(
      "Expected shape (paper): (a) time grows with on-node workers (shared\n"
      "substrate saturates while work grows); (b) roughly flat across nodes\n"
      "(excellent weak scaling).\n");
  return 0;
}
