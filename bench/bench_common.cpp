#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "preprocess/tasks.hpp"
#include "util/stats.hpp"

namespace mfw::benchx {

DaytimeFileSource::DaytimeFileSource(int start_day, std::uint64_t seed)
    : generator_(seed), seed_(seed), day_(start_day) {}

const std::vector<FileWorkload>& DaytimeFileSource::take(std::size_t count) {
  while (files_.size() < count && day_ <= 366) {
    modis::GranuleSpec spec;
    spec.day_of_year = day_;
    spec.slot = slot_;
    spec.geometry = modis::kFullGeometry;
    spec.world_seed = seed_;
    const auto stats = modis::estimate_granule_stats(generator_, spec);
    if (stats.daytime && stats.selected_tiles > 0) {
      FileWorkload file;
      file.id = modis::GranuleId{modis::ProductKind::kMod02,
                                 modis::Satellite::kTerra, 2022, day_, slot_};
      file.tiles = stats.selected_tiles;
      files_.push_back(file);
    }
    if (++slot_ >= modis::kSlotsPerDay) {
      slot_ = 0;
      ++day_;
    }
  }
  return files_;
}

std::vector<FileWorkload> daytime_files(std::size_t count, int start_day,
                                        std::uint64_t seed) {
  DaytimeFileSource source(start_day, seed);
  return source.take(count);
}

FarmResult run_preprocess_farm(int nodes, int workers_per_node,
                               const std::vector<FileWorkload>& files) {
  sim::SimEngine engine;
  compute::ClusterExecutor exec(engine, compute::defiant_law_factory());
  for (int i = 0; i < nodes; ++i) exec.add_node(workers_per_node);
  const preprocess::PreprocessCostModel cost;
  for (const auto& file : files) {
    compute::SimTaskDesc desc;
    desc.cpu_seconds = cost.cpu_seconds;
    desc.shared_demand =
        std::max(cost.min_demand, cost.demand_per_tile * file.tiles);
    desc.payload = file.tiles;
    exec.submit(desc);
  }
  engine.run();
  FarmResult result;
  for (const auto& r : exec.results())
    result.makespan = std::max(result.makespan, r.finished_at);
  result.tiles = exec.completed_payload();
  result.throughput = result.makespan > 0 ? result.tiles / result.makespan : 0;
  return result;
}

MeanStd mean_std(const std::vector<double>& values) {
  util::StreamingStats stats;
  for (double v : values) stats.add(v);
  return MeanStd{stats.mean(), stats.stddev()};
}

void print_header(const std::string& experiment, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("(Simulated ACE Defiant substrate; see DESIGN.md for the\n");
  std::printf(" calibration of the node contention model and WAN parameters.)\n");
  std::printf("================================================================\n\n");
}

}  // namespace mfw::benchx
