#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "preprocess/tasks.hpp"
#include "util/stats.hpp"

namespace mfw::benchx {

std::vector<FileWorkload> daytime_files(std::size_t count, int start_day,
                                        std::uint64_t seed) {
  modis::GranuleGenerator generator(seed);
  std::vector<FileWorkload> files;
  files.reserve(count);
  for (int day = start_day; files.size() < count && day <= 366; ++day) {
    for (int slot = 0; slot < modis::kSlotsPerDay && files.size() < count;
         ++slot) {
      modis::GranuleSpec spec;
      spec.day_of_year = day;
      spec.slot = slot;
      spec.geometry = modis::kFullGeometry;
      spec.world_seed = seed;
      const auto stats = modis::estimate_granule_stats(generator, spec);
      if (!stats.daytime || stats.selected_tiles == 0) continue;
      FileWorkload file;
      file.id = modis::GranuleId{modis::ProductKind::kMod02,
                                 modis::Satellite::kTerra, 2022, day, slot};
      file.tiles = stats.selected_tiles;
      files.push_back(file);
    }
  }
  return files;
}

FarmResult run_preprocess_farm(int nodes, int workers_per_node,
                               const std::vector<FileWorkload>& files) {
  sim::SimEngine engine;
  compute::ClusterExecutor exec(engine, compute::defiant_law_factory());
  for (int i = 0; i < nodes; ++i) exec.add_node(workers_per_node);
  const preprocess::PreprocessCostModel cost;
  for (const auto& file : files) {
    compute::SimTaskDesc desc;
    desc.cpu_seconds = cost.cpu_seconds;
    desc.shared_demand =
        std::max(cost.min_demand, cost.demand_per_tile * file.tiles);
    desc.payload = file.tiles;
    exec.submit(desc);
  }
  engine.run();
  FarmResult result;
  for (const auto& r : exec.results())
    result.makespan = std::max(result.makespan, r.finished_at);
  result.tiles = exec.completed_payload();
  result.throughput = result.makespan > 0 ? result.tiles / result.makespan : 0;
  return result;
}

MeanStd mean_std(const std::vector<double>& values) {
  util::StreamingStats stats;
  for (double v : values) stats.add(v);
  return MeanStd{stats.mean(), stats.stddev()};
}

void print_header(const std::string& experiment, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("(Simulated ACE Defiant substrate; see DESIGN.md for the\n");
  std::printf(" calibration of the node contention model and WAN parameters.)\n");
  std::printf("================================================================\n\n");
}

}  // namespace mfw::benchx
