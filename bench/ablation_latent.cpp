// Ablation: why cluster *learned latents* instead of raw pixels?
//
// The RICC paper's core design choice is to cluster autoencoder latent
// representations rather than raw radiances. This ablation compares three
// representations of the same ocean-cloud tiles under Ward clustering:
//   raw pixels  | flattened tile radiances
//   random proj | untrained encoder output (random conv features)
//   RICC latent | trained rotation-invariant encoder output
// Metric: silhouette of the resulting clusters and rotation sensitivity of
// the representation (distance a 90° rotation moves a tile, normalized).
//
// --int8-check appends an accuracy audit of the int8 inference path on the
// trained arm: the 42-class assignments of the fp32 reference vs the fused
// fp32 plan (must be bitwise identical) and vs the int8 quantized plan
// (agreement fraction; ci_int8_smoke.sh gates it at >= 0.99).
#include <cstdio>
#include <cstring>
#include <optional>

#include "bench_common.hpp"
#include "ml/ricc.hpp"
#include "preprocess/tiler.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace mfw;

namespace {

std::vector<float> encode_all(ml::RiccModel& model,
                              const std::vector<ml::Tensor>& tiles) {
  const auto d = static_cast<std::size_t>(model.config().latent_dim);
  const std::vector<ml::Tensor> zs = model.encode_batch(tiles);
  std::vector<float> out(tiles.size() * d);
  for (std::size_t i = 0; i < tiles.size(); ++i)
    std::memcpy(out.data() + i * d, zs[i].data(), d * sizeof(float));
  return out;
}

double rotation_sensitivity_raw(const std::vector<ml::Tensor>& tiles) {
  // For raw pixels: normalized distance between a tile and its rotation.
  double rot = 0.0, pair = 0.0;
  std::size_t rot_n = 0, pair_n = 0;
  const std::size_t n = std::min<std::size_t>(tiles.size(), 32);
  for (std::size_t i = 0; i < n; ++i) {
    const ml::Tensor r = rotate90(tiles[i], 1);
    rot += std::sqrt(ml::squared_distance(tiles[i].span(), r.span()));
    ++rot_n;
    for (std::size_t j = i + 1; j < n; ++j) {
      pair += std::sqrt(ml::squared_distance(tiles[i].span(), tiles[j].span()));
      ++pair_n;
    }
  }
  return (rot / rot_n) / (pair / pair_n);
}

}  // namespace

int main(int argc, char** argv) {
  util::Logger::instance().set_level(util::LogLevel::kWarn);
  bool int8_check = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--int8-check")) {
      int8_check = true;
    } else {
      std::fprintf(stderr, "usage: ablation_latent [--int8-check]\n");
      return 2;
    }
  }
  benchx::print_header(
      "Ablation — clustering representation: raw pixels vs RICC latents",
      "RICC design choice (Kurihana et al. TGRS'21, used by the SC24 "
      "workflow's inference stage)");

  // Ocean-cloud tiles across several granules.
  modis::GranuleGenerator generator(2022);
  preprocess::TilerOptions options;
  options.tile_size = 16;
  options.channels = 6;
  std::vector<ml::Tensor> tiles;
  for (int slot = 0; slot < modis::kSlotsPerDay && tiles.size() < 160; ++slot) {
    modis::GranuleSpec spec;
    spec.slot = slot;
    spec.geometry = modis::GranuleGeometry{64, 48, 6};
    if (!modis::is_daytime(spec.satellite, slot, spec.day_of_year)) continue;
    const auto result = preprocess::make_tiles(generator.mod02(spec),
                                               generator.mod03(spec),
                                               generator.mod06(spec), options);
    for (const auto& tile : result.tiles) {
      if (tiles.size() >= 160) break;
      tiles.emplace_back(
          std::vector<int>{tile.channels, tile.tile_size, tile.tile_size},
          tile.data);
    }
  }
  std::printf("Corpus: %zu ocean-cloud tiles (16x16x6)\n\n", tiles.size());

  const int k = 8;
  util::Table table({"representation", "dim", "silhouette", "rot sensitivity"});

  // Raw pixels.
  {
    const std::size_t d = tiles[0].size();
    std::vector<float> raw(tiles.size() * d);
    for (std::size_t i = 0; i < tiles.size(); ++i)
      std::memcpy(raw.data() + i * d, tiles[i].data(), d * sizeof(float));
    const auto clusters = ml::agglomerative_ward(raw, tiles.size(), d, k);
    table.add_row({"raw pixels", std::to_string(d),
                   util::Table::num(ml::silhouette(raw, tiles.size(), d,
                                                   clusters.labels, k), 3),
                   util::Table::num(rotation_sensitivity_raw(tiles), 3)});
  }

  ml::RiccConfig config;
  config.tile_size = 16;
  config.channels = 6;
  config.base_channels = 6;
  config.conv_blocks = 2;
  config.latent_dim = 12;
  config.num_classes = k;

  // Untrained encoder (random conv features).
  {
    ml::RiccModel model(config);
    const auto latents = encode_all(model, tiles);
    const auto d = static_cast<std::size_t>(config.latent_dim);
    const auto clusters = ml::agglomerative_ward(latents, tiles.size(), d, k);
    table.add_row({"untrained encoder", std::to_string(d),
                   util::Table::num(ml::silhouette(latents, tiles.size(), d,
                                                   clusters.labels, k), 3),
                   util::Table::num(ml::rotation_invariance_score(model, tiles), 3)});
  }

  // Trained RICC latents. The trained arm carries the AICCA class count so
  // the optional --int8-check audit measures 42-way assignment agreement;
  // num_classes only sizes the centroid set, so the ablation rows (which
  // cluster at k via agglomerative_ward directly) are unaffected.
  std::optional<ml::RiccModel> trained;
  {
    ml::RiccConfig trained_config = config;
    trained_config.num_classes = 42;
    trained.emplace(trained_config);
    ml::RiccModel& model = *trained;
    ml::RiccTrainOptions train;
    train.epochs = 12;
    train.batch_size = 16;
    train.learning_rate = 1.5e-3f;
    train.lambda_invariance = 4.0f;
    ml::train_autoencoder(model, tiles, train);
    const auto latents = encode_all(model, tiles);
    const auto d = static_cast<std::size_t>(config.latent_dim);
    const auto clusters = ml::agglomerative_ward(latents, tiles.size(), d, k);
    table.add_row({"trained RICC latent", std::to_string(d),
                   util::Table::num(ml::silhouette(latents, tiles.size(), d,
                                                   clusters.labels, k), 3),
                   util::Table::num(ml::rotation_invariance_score(model, tiles), 3)});
  }

  std::printf("%s\n", table.render().c_str());

  if (int8_check) {
    // Accuracy audit of the inference fast paths on the trained arm, with
    // the AICCA class count so assignment agreement is measured at the
    // paper's granularity (DESIGN.md §13). fit_centroids installs the
    // Ward centroids the 42-way assignment uses.
    ml::RiccModel& model = *trained;
    ml::fit_centroids(model, tiles);
    std::vector<int> ref(tiles.size());
    for (std::size_t i = 0; i < tiles.size(); ++i)
      ref[i] = model.predict(tiles[i]);
    model.set_encode_path(ml::RiccModel::EncodePath::kFused);
    std::size_t fused_match = 0;
    bool fused_bitwise = true;
    for (std::size_t i = 0; i < tiles.size(); ++i) {
      if (model.predict(tiles[i]) == ref[i]) ++fused_match;
      // The fused plan must reproduce the layer path bit-for-bit, not just
      // class-for-class: compare latents exactly.
      const ml::Tensor zf = model.encode(tiles[i]);
      model.set_encode_path(ml::RiccModel::EncodePath::kLayers);
      const ml::Tensor zl = model.encode(tiles[i]);
      model.set_encode_path(ml::RiccModel::EncodePath::kFused);
      if (std::memcmp(zf.data(), zl.data(),
                      zf.size() * sizeof(float)) != 0)
        fused_bitwise = false;
    }
    model.calibrate_int8(tiles);
    model.set_encode_path(ml::RiccModel::EncodePath::kInt8);
    std::size_t int8_match = 0;
    for (std::size_t i = 0; i < tiles.size(); ++i)
      if (model.predict(tiles[i]) == ref[i]) ++int8_match;
    model.set_encode_path(ml::RiccModel::EncodePath::kLayers);
    const int classes = model.centroids().dim(0);
    std::printf(
        "\nInt8 inference audit (%zu tiles, %d classes):\n"
        "  fused vs layers: bitwise %s, assignment agreement %.4f\n"
        "  int8  vs layers: assignment agreement %.4f\n",
        tiles.size(), classes, fused_bitwise ? "IDENTICAL" : "DIFFERENT",
        static_cast<double>(fused_match) / static_cast<double>(tiles.size()),
        static_cast<double>(int8_match) / static_cast<double>(tiles.size()));
  }
  std::printf(
      "Expected: the trained latent clusters about as cleanly as raw pixels\n"
      "at 128x lower dimensionality (what lets Ward clustering and nearest-\n"
      "centroid inference scale to millions of tiles), and has the lowest\n"
      "rotation sensitivity of the three representations — the two\n"
      "properties the RICC design targets.\n");
  return 0;
}
