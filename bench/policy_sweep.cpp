// Policy-sweep laboratory bench (ROADMAP item 4): the scheduling-discipline
// Pareto study the declarative-workflow refactor enables. A three-stage
// campaign spec (WAN ingest -> contended tiling -> labeling, streaming
// edges) is compiled through mfw::spec and run under every SchedulerPolicy
// across facility-count x load, brace-initialized nested loops in the
// ParameterSweep idiom. Each point reports makespan, facility utilization,
// p99 queue wait, deadline misses, and the spec's declared deadline SLO
// (which policies keep the miss-rate budget?); the grid lands in
// BENCH_policies.json (schema mfw.policies/v1) for tools/ci_spec_smoke.sh
// and EXPERIMENTS.md.
//
// Usage: policy_sweep [--quick] [--out <path>]
//   --quick  2 policies x 1 facility-count x 1 load (the CI smoke grid)
//   --out    JSON output path (default BENCH_policies.json)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "spec/lab.hpp"
#include "spec/spec.hpp"

namespace {

using namespace mfw;

// The swept workload: four staggered campaigns pushing 48 granules each
// through ingest (fast WAN) -> tile (node-contended) -> label. The tile
// stage on a narrow facility (4 nodes x 2 workers) needs ~52s of wall time
// per campaign against a 30s arrival spacing, so campaigns overlap, queues
// build, and admission order decides who waits; the 150s deadline produces
// misses once load pushes the backlog past a few campaigns.
constexpr const char* kCampaignSpec = R"(name: campaign_lab
stages:
  - name: ingest
    kind: transfer
    claim:
      workers_per_node: 8
      wan: 50MB
      bytes_per_item: 12MB
  - name: tile
    inputs: [ingest]
    claim:
      nodes: 4
      workers_per_node: 2
      cpu_per_item: 2.0
      demand_per_item: 60.0
  - name: label
    inputs: [tile]
    claim:
      nodes: 1
      workers_per_node: 2
      cpu_per_item: 0.05
      demand_per_item: 0.5
dataflow:
  - {from: ingest, to: tile, mode: streaming}
  - {from: tile, to: label, mode: streaming}
campaign:
  count: 4
  spacing: 30
  items: 48
  deadline: 150
slo:
  - name: deadline-budget
    metric: deadline_miss_rate
    threshold: 0.25
    window: 120
)";

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_policies.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: policy_sweep [--quick] [--out <path>]\n");
      return 2;
    }
  }

  spec::FacilityCaps caps;
  caps.name = "lab_facility";
  caps.total_nodes = 4;
  caps.max_workers_per_node = 8;
  caps.wan_bps = 200.0 * 1024 * 1024;
  const auto graph = spec::StageGraph::compile(
      spec::WorkflowSpec::from_yaml_text(kCampaignSpec), caps);

  const std::vector<std::string> policies =
      quick ? std::vector<std::string>{"fifo", "fair_share"}
            : std::vector<std::string>{"fifo", "fair_share", "deadline",
                                       "wan_aware"};
  const std::vector<int> facility_counts = quick ? std::vector<int>{1}
                                                 : std::vector<int>{1, 2};
  const std::vector<double> loads = quick ? std::vector<double>{1.0}
                                          : std::vector<double>{0.5, 1.0, 2.0};

  std::printf("%-10s %10s %6s %10s %6s %10s %8s %9s\n", "policy", "facilities",
              "load", "makespan", "util", "p99_wait", "misses", "slo_fire");
  std::vector<spec::LabResult> results;
  for (const auto& policy : policies) {
    for (const int facilities : facility_counts) {
      for (const double load : loads) {
        spec::LabConfig config;
        config.graph = graph;
        config.policy = policy;
        config.facilities = facilities;
        config.load = load;
        auto result = spec::run_lab(config);
        std::printf("%-10s %10d %6.2f %9.2fs %6.3f %9.2fs %8d %9d\n",
                    result.policy.c_str(), result.facilities, result.load,
                    result.makespan, result.utilization, result.p99_queue_wait,
                    result.deadline_misses, result.slo_firing);
        results.push_back(std::move(result));
      }
    }
  }

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << spec::results_to_json(results);
  std::printf("\n%zu sweep points written to %s\n", results.size(),
              out_path.c_str());
  return 0;
}
