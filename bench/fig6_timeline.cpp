// Fig. 6 reproduction: the automation timeline — active worker counts per
// workflow stage over time for a full end-to-end run with the paper's
// allocation (3 download workers, 32 preprocessing workers, 1 inference
// worker). Expected shape: download plateau first; preprocessing ramps to 32
// after downloads complete and drains as tasks finish; short inference
// bursts overlap preprocessing and continue briefly after it ends.
//
// A second run flips config.scheduling to streaming: per-granule
// granule.ready events feed the farm while downloads are still in flight,
// so the preprocess band slides left under the download plateau and the
// makespan shrinks by roughly the barrier-mode compute tail.
#include <cstdio>

#include "bench_common.hpp"
#include "pipeline/eoml_workflow.hpp"
#include "util/log.hpp"

using namespace mfw;

namespace {

pipeline::EomlConfig fig6_config(pipeline::SchedulingMode mode) {
  pipeline::EomlConfig config;
  config.max_files = 40;
  config.daytime_only = true;
  config.download_workers = 3;
  config.preprocess_nodes = 4;   // 4 nodes x 8 workers = 32 preprocess workers
  config.workers_per_node = 8;
  config.inference_workers = 1;
  config.scheduling = mode;
  return config;
}

}  // namespace

int main() {
  util::Logger::instance().set_level(util::LogLevel::kWarn);
  benchx::print_header(
      "Fig. 6 — Automation timeline: active workers per stage",
      "Kurihana et al., SC24, Fig. 6 (blue=download, orange=preprocess, "
      "green=inference)");

  pipeline::EomlWorkflow workflow(
      fig6_config(pipeline::SchedulingMode::kBarrier));
  const auto report = workflow.run();

  std::printf("Full run:\n%s\n", report.timeline.render(140, 96, 18).c_str());
  // The download phase moves ~7 GB over the WAN and dwarfs the compute
  // phases on the time axis; zoom into the preprocess/inference window the
  // paper's Fig. 6 focuses on.
  const double zoom_from = report.preprocess_span.start - 10.0;
  const double zoom_to = report.timeline.end_time();
  std::printf("Zoom (preprocess + inference window):\n%s\n",
              report.timeline.render_window(zoom_from, zoom_to, 140, 96, 18)
                  .c_str());
  std::printf("Stage peaks: download=%d preprocess=%d inference=%d\n\n",
              report.timeline.stage("download").peak(),
              report.timeline.stage("preprocess").peak(),
              report.timeline.stage("inference").peak());
  std::printf("%s\n", report.summary().c_str());
  std::printf("Timeline CSV (30 samples):\n%s\n",
              report.timeline.to_csv(30).c_str());
  std::printf(
      "Expected shape (paper): (1) resources ramp up after the network-\n"
      "intensive download completes; (2) workers scale down as tasks\n"
      "complete; (3) inference starts before preprocessing fully ends.\n");
  const bool overlap = report.inference_span.start < report.preprocess_span.end;
  std::printf("Inference overlaps preprocessing: %s\n",
              overlap ? "yes (matches paper)" : "NO (mismatch)");

  // -- streaming variant -----------------------------------------------------
  std::printf(
      "\n=== Streaming variant (per-granule readiness, same config) ===\n");
  pipeline::EomlWorkflow streaming_wf(
      fig6_config(pipeline::SchedulingMode::kStreaming));
  const auto streaming = streaming_wf.run();
  std::printf("Full run:\n%s\n",
              streaming.timeline.render(140, 96, 18).c_str());
  std::printf("%s\n", streaming.summary().c_str());

  const double saved = report.makespan - streaming.makespan;
  std::printf(
      "Makespan: barrier %.2fs -> streaming %.2fs (%.2fs saved, %.1f%%)\n",
      report.makespan, streaming.makespan, saved,
      report.makespan > 0 ? 100.0 * saved / report.makespan : 0.0);
  std::printf("Download/preprocess overlap: barrier %.2fs, streaming %.2fs\n",
              report.download_preprocess_overlap(),
              streaming.download_preprocess_overlap());
  std::printf("Granule dwell p50/p95: barrier %.2fs/%.2fs, "
              "streaming %.2fs/%.2fs\n",
              report.dwell_p50(), report.dwell_p95(), streaming.dwell_p50(),
              streaming.dwell_p95());
  std::printf("Same tiles both modes: %s (%zu vs %zu)\n",
              report.total_tiles == streaming.total_tiles ? "yes" : "NO",
              report.total_tiles, streaming.total_tiles);
  return 0;
}
