// Fig. 6 reproduction: the automation timeline — active worker counts per
// workflow stage over time for a full end-to-end run with the paper's
// allocation (3 download workers, 32 preprocessing workers, 1 inference
// worker). Expected shape: download plateau first; preprocessing ramps to 32
// after downloads complete and drains as tasks finish; short inference
// bursts overlap preprocessing and continue briefly after it ends.
//
// A second run flips config.scheduling to streaming: per-granule
// granule.ready events feed the farm while downloads are still in flight,
// so the preprocess band slides left under the download plateau and the
// makespan shrinks by roughly the barrier-mode compute tail.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "obs/analyze.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/eoml_workflow.hpp"
#include "util/log.hpp"

using namespace mfw;

namespace {

pipeline::EomlConfig fig6_config(pipeline::SchedulingMode mode,
                                 std::size_t max_files) {
  pipeline::EomlConfig config;
  config.max_files = max_files;
  config.daytime_only = true;
  config.download_workers = 3;
  config.preprocess_nodes = 4;   // 4 nodes x 8 workers = 32 preprocess workers
  config.workers_per_node = 8;
  config.inference_workers = 1;
  config.scheduling = mode;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  util::Logger::instance().set_level(util::LogLevel::kWarn);

  // Optional flags: --trace-out <path> enables the obs layer and writes a
  // Chrome trace-event JSON covering BOTH runs (each run is its own trace
  // process, so barrier and streaming land side by side in Perfetto);
  // --report-out <path> also enables tracing and writes the trace-analysis
  // report (critical path, stragglers, utilization) as JSON;
  // --max-files <n> shrinks the catalog slice for quick smoke runs.
  std::string trace_out;
  std::string report_out;
  std::size_t max_files = 40;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg == "--report-out" && i + 1 < argc) {
      report_out = argv[++i];
    } else if (arg == "--max-files" && i + 1 < argc) {
      max_files = static_cast<std::size_t>(std::atol(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: fig6_timeline [--trace-out <path>] "
                   "[--report-out <path>] [--max-files <n>]\n");
      return 2;
    }
  }
  if (!trace_out.empty() || !report_out.empty())
    obs::set_globally_enabled(true);
  benchx::print_header(
      "Fig. 6 — Automation timeline: active workers per stage",
      "Kurihana et al., SC24, Fig. 6 (blue=download, orange=preprocess, "
      "green=inference)");

  pipeline::EomlWorkflow workflow(
      fig6_config(pipeline::SchedulingMode::kBarrier, max_files));
  const auto report = workflow.run();

  std::printf("Full run:\n%s\n", report.timeline.render(140, 96, 18).c_str());
  // The download phase moves ~7 GB over the WAN and dwarfs the compute
  // phases on the time axis; zoom into the preprocess/inference window the
  // paper's Fig. 6 focuses on.
  const double zoom_from = report.preprocess_span.start - 10.0;
  const double zoom_to = report.timeline.end_time();
  std::printf("Zoom (preprocess + inference window):\n%s\n",
              report.timeline.render_window(zoom_from, zoom_to, 140, 96, 18)
                  .c_str());
  std::printf("Stage peaks: download=%d preprocess=%d inference=%d\n\n",
              report.timeline.stage("download").peak(),
              report.timeline.stage("preprocess").peak(),
              report.timeline.stage("inference").peak());
  std::printf("%s\n", report.summary().c_str());
  std::printf("Timeline CSV (30 samples):\n%s\n",
              report.timeline.to_csv(30).c_str());
  std::printf(
      "Expected shape (paper): (1) resources ramp up after the network-\n"
      "intensive download completes; (2) workers scale down as tasks\n"
      "complete; (3) inference starts before preprocessing fully ends.\n");
  const bool overlap = report.inference_span.start < report.preprocess_span.end;
  std::printf("Inference overlaps preprocessing: %s\n",
              overlap ? "yes (matches paper)" : "NO (mismatch)");

  // -- streaming variant -----------------------------------------------------
  std::printf(
      "\n=== Streaming variant (per-granule readiness, same config) ===\n");
  pipeline::EomlWorkflow streaming_wf(
      fig6_config(pipeline::SchedulingMode::kStreaming, max_files));
  const auto streaming = streaming_wf.run();
  std::printf("Full run:\n%s\n",
              streaming.timeline.render(140, 96, 18).c_str());
  std::printf("%s\n", streaming.summary().c_str());

  const double saved = report.makespan - streaming.makespan;
  std::printf(
      "Makespan: barrier %.2fs -> streaming %.2fs (%.2fs saved, %.1f%%)\n",
      report.makespan, streaming.makespan, saved,
      report.makespan > 0 ? 100.0 * saved / report.makespan : 0.0);
  std::printf("Download/preprocess overlap: barrier %.2fs, streaming %.2fs\n",
              report.download_preprocess_overlap(),
              streaming.download_preprocess_overlap());
  std::printf("Granule dwell p50/p95: barrier %.2fs/%.2fs, "
              "streaming %.2fs/%.2fs\n",
              report.dwell_p50(), report.dwell_p95(), streaming.dwell_p50(),
              streaming.dwell_p95());
  std::printf("Same tiles both modes: %s (%zu vs %zu)\n",
              report.total_tiles == streaming.total_tiles ? "yes" : "NO",
              report.total_tiles, streaming.total_tiles);

  if (!trace_out.empty()) {
    auto& rec = obs::TraceRecorder::instance();
    obs::write_file(trace_out, obs::to_chrome_trace_json(rec));
    std::printf("\nTrace written to %s (%zu spans, %zu instants) — load in "
                "https://ui.perfetto.dev or chrome://tracing\n",
                trace_out.c_str(), rec.span_count(), rec.instant_count());
  }
  if (!report_out.empty()) {
    const auto analysis = obs::analyze_trace(obs::TraceRecorder::instance());
    obs::write_file(report_out, analysis.to_json());
    std::printf("\nTrace-analysis report written to %s\n", report_out.c_str());
    for (const auto& process : analysis.processes)
      std::printf("  %s: dominant stage %s, critical path %.1f s "
                  "(%.1f%% coverage)\n",
                  process.process.c_str(), process.dominant_stage.c_str(),
                  process.critical_path.length,
                  100.0 * process.critical_path.coverage);
  }
  return 0;
}
