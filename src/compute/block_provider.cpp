#include "compute/block_provider.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace mfw::compute {

namespace {
constexpr const char* kComponent = "blocks";
}

BlockProvider::BlockProvider(sim::SimEngine& engine, SlurmSim& slurm,
                             ClusterExecutor& executor, BlockConfig config)
    : engine_(engine), slurm_(slurm), executor_(executor), config_(config) {
  if (config.nodes_per_block <= 0 || config.workers_per_node <= 0 ||
      config.max_blocks <= 0 || config.init_blocks < 0 ||
      config.min_blocks < 0 || config.min_blocks > config.max_blocks)
    throw std::invalid_argument("BlockProvider: invalid BlockConfig");
}

void BlockProvider::start() {
  if (running_) return;
  running_ = true;
  for (int b = 0; b < config_.init_blocks; ++b) request_block();
  poll_event_ = engine_.schedule_after(config_.poll_interval, [this] { poll(); });
}

void BlockProvider::stop() {
  if (!running_) return;
  running_ = false;
  engine_.cancel(poll_event_);
  poll_event_ = sim::EventHandle{};
  for (auto& [job_id, block] : blocks_) {
    for (int node : block.node_ids) executor_.drain_node(node);
    slurm_.release(SlurmJobId{job_id});
  }
  blocks_.clear();
}

void BlockProvider::request_block() {
  ++pending_;
  slurm_.submit(
      config_.nodes_per_block, config_.walltime,
      [this](const SlurmAllocation& alloc) { on_granted(alloc); },
      /*on_expired=*/nullptr);
}

void BlockProvider::on_granted(const SlurmAllocation& alloc) {
  --pending_;
  if (!running_) {
    slurm_.release(alloc.job);
    return;
  }
  Block block;
  block.job = alloc.job;
  for (std::size_t i = 0; i < alloc.node_ids.size(); ++i)
    block.node_ids.push_back(executor_.add_node(config_.workers_per_node));
  blocks_.emplace(alloc.job.id, std::move(block));
  MFW_DEBUG(kComponent, "block granted; active=", blocks_.size());
}

void BlockProvider::poll() {
  if (!running_) return;
  // Scale out: queued work and room for more blocks.
  if (executor_.queued() > 0 &&
      active_blocks() + pending_ < config_.max_blocks) {
    request_block();
  }
  // Scale in: blocks idle past the timeout (all workers free, nothing
  // queued), down to min_blocks.
  if (executor_.queued() == 0) {
    const double now = engine_.now();
    std::vector<std::uint64_t> to_remove;
    for (auto& [job_id, block] : blocks_) {
      bool idle = true;
      for (int node : block.node_ids) {
        if (executor_.node_busy(node) > 0) {
          idle = false;
          break;
        }
      }
      if (!idle) {
        block.idle_since = -1.0;
        continue;
      }
      if (block.idle_since < 0) {
        block.idle_since = now;
      } else if (now - block.idle_since >= config_.idle_timeout &&
                 active_blocks() - static_cast<int>(to_remove.size()) >
                     config_.min_blocks) {
        to_remove.push_back(job_id);
      }
    }
    for (auto job_id : to_remove) {
      auto& block = blocks_.at(job_id);
      for (int node : block.node_ids) executor_.drain_node(node);
      slurm_.release(SlurmJobId{job_id});
      blocks_.erase(job_id);
      MFW_DEBUG(kComponent, "scaled in idle block; active=", blocks_.size());
    }
  }
  poll_event_ = engine_.schedule_after(config_.poll_interval, [this] { poll(); });
}

}  // namespace mfw::compute
