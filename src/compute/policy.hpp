// Pluggable task-admission policies for the ClusterExecutor.
//
// The seed pipeline hard-wired FIFO admission inside dispatch(); the
// declarative-workflow refactor (ROADMAP item 4) extracts that decision
// behind SchedulerPolicy so concurrent compiled workflows (campaigns) can
// compete for the same facility under different disciplines. A policy picks
// *which queued task* is admitted when a worker slot frees; node placement
// (least-loaded spread) stays in the executor, mirroring how a Parsl
// interchange separates queue discipline from worker selection.
//
// One policy instance may be shared by several executors (e.g. one per
// facility): fairness accounting is then global across facilities, which is
// exactly what cross-facility fair share means.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "compute/task.hpp"

namespace mfw::compute {

/// Borrowed view of one queued task, in submission order.
struct TaskView {
  const SimTaskDesc* desc = nullptr;
  double submitted_at = 0.0;
};

class SchedulerPolicy {
 public:
  /// Sentinel return from select(): admit nothing now. A policy that holds
  /// must guarantee an external wake-up (ClusterExecutor::poke()) or the
  /// queue deadlocks — the executor only re-dispatches on submit/complete/
  /// add_node.
  static constexpr std::size_t kHold = std::numeric_limits<std::size_t>::max();

  virtual ~SchedulerPolicy() = default;
  virtual std::string_view name() const = 0;

  /// Picks the index of the next task to admit from `queue` (never empty),
  /// or kHold to defer admission.
  virtual std::size_t select(const std::vector<TaskView>& queue,
                             double now) = 0;

  /// Admission/retirement notifications for policies keeping running-share
  /// state. on_evict covers tasks cancelled and requeued by fail_node().
  virtual void on_start(const SimTaskDesc& desc, double now);
  virtual void on_complete(const SimTaskDesc& desc, double now);
  virtual void on_evict(const SimTaskDesc& desc, double now);
};

/// Strict submission order — identical to the executor's built-in behaviour
/// (the null policy); exists so sweeps can name the baseline.
class FifoPolicy final : public SchedulerPolicy {
 public:
  std::string_view name() const override { return "fifo"; }
  std::size_t select(const std::vector<TaskView>& queue, double now) override;
};

/// Fair share across campaigns: admit the oldest task of the campaign with
/// the fewest currently running tasks (globally, when the instance is shared
/// across executors). Ties break toward submission order.
class FairSharePolicy final : public SchedulerPolicy {
 public:
  std::string_view name() const override { return "fair_share"; }
  std::size_t select(const std::vector<TaskView>& queue, double now) override;
  void on_start(const SimTaskDesc& desc, double now) override;
  void on_complete(const SimTaskDesc& desc, double now) override;
  void on_evict(const SimTaskDesc& desc, double now) override;

  /// Currently running tasks for one campaign (test/diagnostic hook).
  int running(const std::string& campaign) const;

 private:
  std::map<std::string, int, std::less<>> running_;
};

/// Earliest-deadline-first: admit the queued task with the smallest absolute
/// deadline (tasks without a deadline sort last). Ties break toward
/// submission order.
class DeadlinePolicy final : public SchedulerPolicy {
 public:
  std::string_view name() const override { return "deadline"; }
  std::size_t select(const std::vector<TaskView>& queue, double now) override;
};

/// WAN/compute co-scheduling: prefer tasks whose campaign has the least WAN
/// traffic in flight (its inputs have landed — compute them now, and let
/// campaigns still transferring keep the wide-area link busy meanwhile).
/// `wan_in_flight` reports bytes currently moving for a campaign; without a
/// probe the policy degrades to FIFO.
class WanAwarePolicy final : public SchedulerPolicy {
 public:
  using WanProbe = std::function<double(const std::string& campaign)>;

  explicit WanAwarePolicy(WanProbe wan_in_flight = nullptr)
      : wan_in_flight_(std::move(wan_in_flight)) {}

  std::string_view name() const override { return "wan_aware"; }
  std::size_t select(const std::vector<TaskView>& queue, double now) override;

 private:
  WanProbe wan_in_flight_;
};

/// Instantiates a policy by sweep name ("fifo", "fair_share", "deadline",
/// "wan_aware"); throws std::invalid_argument for unknown names. The WAN
/// probe is only consulted by "wan_aware".
std::unique_ptr<SchedulerPolicy> make_policy(std::string_view name,
                                             WanAwarePolicy::WanProbe probe);

}  // namespace mfw::compute
