// Real-thread executor (Globus Compute / Parsl local-executor analog).
//
// Runs actual C++ callables on a worker pool. Used by tests, examples, and
// any deployment where work really executes on this host; the scaling
// benchmarks use ClusterExecutor (discrete-event) instead.
#pragma once

#include <future>
#include <memory>

#include "util/thread_pool.hpp"

namespace mfw::compute {

class ThreadPoolExecutor {
 public:
  explicit ThreadPoolExecutor(std::size_t workers) : pool_(workers) {}

  /// Submits a callable; returns a future of its result. Throws
  /// std::runtime_error if the executor is shut down.
  template <typename F, typename R = std::invoke_result_t<F>>
  std::future<R> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (!pool_.submit([task] { (*task)(); }))
      throw std::runtime_error("ThreadPoolExecutor is shut down");
    return future;
  }

  void shutdown() { pool_.shutdown(); }
  std::size_t worker_count() const { return pool_.thread_count(); }

 private:
  util::ThreadPool pool_;
};

}  // namespace mfw::compute
