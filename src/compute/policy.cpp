#include "compute/policy.hpp"

#include <stdexcept>

namespace mfw::compute {

void SchedulerPolicy::on_start(const SimTaskDesc&, double) {}
void SchedulerPolicy::on_complete(const SimTaskDesc&, double) {}
void SchedulerPolicy::on_evict(const SimTaskDesc&, double) {}

std::size_t FifoPolicy::select(const std::vector<TaskView>&, double) {
  return 0;
}

std::size_t FairSharePolicy::select(const std::vector<TaskView>& queue,
                                    double) {
  std::size_t best = 0;
  int best_share = std::numeric_limits<int>::max();
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const auto it = running_.find(queue[i].desc->campaign);
    const int share = it == running_.end() ? 0 : it->second;
    if (share < best_share) {
      best_share = share;
      best = i;
    }
  }
  return best;
}

void FairSharePolicy::on_start(const SimTaskDesc& desc, double) {
  ++running_[desc.campaign];
}

void FairSharePolicy::on_complete(const SimTaskDesc& desc, double) {
  const auto it = running_.find(desc.campaign);
  if (it != running_.end() && --it->second <= 0) running_.erase(it);
}

void FairSharePolicy::on_evict(const SimTaskDesc& desc, double now) {
  on_complete(desc, now);
}

int FairSharePolicy::running(const std::string& campaign) const {
  const auto it = running_.find(campaign);
  return it == running_.end() ? 0 : it->second;
}

std::size_t DeadlinePolicy::select(const std::vector<TaskView>& queue,
                                   double) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue.size(); ++i) {
    if (queue[i].desc->deadline < queue[best].desc->deadline) best = i;
  }
  return best;
}

std::size_t WanAwarePolicy::select(const std::vector<TaskView>& queue,
                                   double) {
  if (!wan_in_flight_) return 0;
  std::size_t best = 0;
  double best_wan = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const double wan = wan_in_flight_(queue[i].desc->campaign);
    if (wan < best_wan) {
      best_wan = wan;
      best = i;
    }
  }
  return best;
}

std::unique_ptr<SchedulerPolicy> make_policy(std::string_view name,
                                             WanAwarePolicy::WanProbe probe) {
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "fair_share") return std::make_unique<FairSharePolicy>();
  if (name == "deadline") return std::make_unique<DeadlinePolicy>();
  if (name == "wan_aware")
    return std::make_unique<WanAwarePolicy>(std::move(probe));
  throw std::invalid_argument("unknown scheduler policy: " + std::string(name));
}

}  // namespace mfw::compute
