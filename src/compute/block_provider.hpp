// Elastic block provider: the Parsl SlurmProvider analogue.
//
// Parsl on Defiant allocates *blocks* of nodes through Slurm, attaches a
// fixed number of workers per node, scales out when tasks queue, and scales
// idle blocks back in. This component reproduces that control loop over
// SlurmSim + ClusterExecutor, and is what gives the pipeline the "flexible
// resource management" timeline of Fig. 6 (workers ramp up after downloads
// finish and drain as preprocessing tasks complete).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "compute/cluster.hpp"
#include "compute/slurm_sim.hpp"

namespace mfw::compute {

struct BlockConfig {
  int nodes_per_block = 1;
  int workers_per_node = 8;
  int init_blocks = 1;
  int min_blocks = 0;
  int max_blocks = 4;
  /// A block whose nodes are all idle for this long is scaled in.
  double idle_timeout = 5.0;
  /// Block walltime requested from Slurm.
  double walltime = 24.0 * 3600.0;
  /// Control-loop period (Parsl's strategy polling interval).
  double poll_interval = 1.0;
};

class BlockProvider {
 public:
  /// All references must outlive the provider.
  BlockProvider(sim::SimEngine& engine, SlurmSim& slurm,
                ClusterExecutor& executor, BlockConfig config);

  /// Requests init_blocks and starts the scaling control loop.
  void start();
  /// Stops the loop and releases every block (after in-flight tasks finish
  /// the nodes drain naturally).
  void stop();

  int active_blocks() const { return static_cast<int>(blocks_.size()); }
  int pending_blocks() const { return pending_; }
  const BlockConfig& config() const { return config_; }

 private:
  struct Block {
    SlurmJobId job;
    std::vector<int> node_ids;  // executor node ids
    double idle_since = -1.0;
  };

  void request_block();
  void on_granted(const SlurmAllocation& alloc);
  void poll();

  sim::SimEngine& engine_;
  SlurmSim& slurm_;
  ClusterExecutor& executor_;
  BlockConfig config_;
  std::map<std::uint64_t, Block> blocks_;
  int pending_ = 0;
  bool running_ = false;
  sim::EventHandle poll_event_{};
};

}  // namespace mfw::compute
