// Discrete-event task-farm executor over simulated nodes.
//
// This is the Parsl analogue for scaling studies: a FIFO task queue feeding
// workers spread across nodes. Each node has `workers` slots plus one
// SharedResource modelling its contended substrate (see DESIGN.md
// "Calibration note"); a task occupies a worker for an exclusive CPU phase
// followed by a shared-demand phase through the node resource. Node counts
// can change at runtime (the BlockProvider adds/drains nodes), mirroring
// Parsl blocks scaling in and out on Defiant.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <string>

#include "compute/policy.hpp"
#include "compute/task.hpp"
#include "obs/trace.hpp"
#include "sim/resource.hpp"

namespace mfw::compute {

/// Builds a fresh contention-law instance for each node.
using LawFactory = std::function<std::unique_ptr<sim::ContentionLaw>()>;

/// The law calibrated to the paper's single-node Defiant saturation curve
/// (aggregate ~10.5 tile/s at 1 worker, saturating near 38.5 tile/s).
LawFactory defiant_law_factory();

/// One simulated compute node: worker slots + shared substrate.
class NodeSim {
 public:
  NodeSim(sim::SimEngine& engine, int id, int workers, const LawFactory& law);

  int id() const { return id_; }
  int workers() const { return workers_; }
  int busy() const { return busy_; }
  int free_workers() const { return workers_ - busy_; }

  /// Marks a worker busy; returns its index. Requires free_workers() > 0.
  int acquire_worker();
  void release_worker(int worker);

  sim::SharedResource& resource() { return *resource_; }

 private:
  sim::SimEngine& engine_;
  int id_;
  int workers_;
  int busy_ = 0;
  std::vector<bool> worker_busy_;
  std::unique_ptr<sim::SharedResource> resource_;
};

class ClusterExecutor {
 public:
  ClusterExecutor(sim::SimEngine& engine, LawFactory law_factory);

  /// Names this executor's obs tracks and metric labels (e.g. "preprocess",
  /// "inference"). Purely observational; defaults to "cluster".
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  /// Installs an admission policy. Null (the default) keeps the built-in
  /// strict-FIFO path untouched — the paper-reproduction runs go through it
  /// so their event order stays bit-for-bit identical to the seed. The
  /// pointer is shared so one policy instance can arbitrate several
  /// executors (cross-facility fairness).
  void set_policy(std::shared_ptr<SchedulerPolicy> policy) {
    policy_ = std::move(policy);
  }
  const std::shared_ptr<SchedulerPolicy>& policy() const { return policy_; }

  /// Re-runs dispatch. External state a holding policy depends on (e.g. WAN
  /// in-flight bytes) changed; see SchedulerPolicy::kHold.
  void poke() { dispatch(); }

  /// Adds a node with `workers` worker slots; returns its node id.
  int add_node(int workers);
  /// Stops dispatching to the node; it is destroyed once idle. Returns false
  /// for unknown ids.
  bool drain_node(int node_id);

  /// Simulates a node crash: the node disappears immediately and its
  /// in-flight tasks are requeued at the *front* of the queue (retried on
  /// surviving nodes). Returns false for unknown ids. If no nodes remain,
  /// requeued tasks wait for the next add_node().
  bool fail_node(int node_id);

  /// Enqueues a task. `callback` (optional) fires on completion. Throws
  /// after seal().
  void submit(SimTaskDesc desc, SimTaskCallback callback = nullptr);

  /// Registers a one-shot callback for the next moment the executor becomes
  /// fully idle (empty queue, no running tasks). Fires immediately (via a
  /// zero-delay event) if already idle.
  void notify_idle(std::function<void()> callback);

  /// Declares the submission stream closed: no further submit() calls are
  /// allowed. Event-driven producers (tasks trickling in per readiness
  /// event) use seal() + notify_all_complete() instead of counting: "idle"
  /// is ambiguous while the stream is open — the farm may merely be starved
  /// between arrivals — but sealed + idle means the workload is done.
  void seal();
  bool sealed() const { return sealed_; }

  /// One-shot callback for the moment the executor is sealed AND fully
  /// idle. Fires via a zero-delay event; fires immediately if already
  /// drained.
  void notify_all_complete(std::function<void()> callback);

  std::size_t queued() const { return queue_.size(); }
  std::size_t running() const { return running_; }
  std::size_t completed() const { return completed_; }
  /// Tasks requeued by fail_node() so far.
  std::size_t requeued() const { return requeued_; }
  double completed_payload() const { return completed_payload_; }
  int active_workers() const;
  int total_workers() const;
  std::size_t node_count() const { return nodes_.size(); }
  /// Busy workers on one node (0 for unknown/removed nodes).
  int node_busy(int node_id) const;

  /// (time, active worker count) transition series for Fig.6-style
  /// timelines.
  const std::vector<std::pair<double, int>>& activity() const {
    return activity_;
  }
  /// Completed task results (in completion order).
  const std::vector<SimTaskResult>& results() const { return results_; }
  /// Drops recorded results/activity (between benchmark repetitions).
  void clear_history();

 private:
  struct PendingTask {
    SimTaskDesc desc;
    double submitted_at;
    SimTaskCallback callback;
  };

  /// A task occupying a worker: enough state to complete it normally or to
  /// cancel + requeue it on node failure.
  struct InFlight {
    PendingTask task;
    int node = -1;
    int worker = -1;
    double started_at = 0.0;
    sim::EventHandle cpu_event{};       // live during the CPU phase
    sim::ResourceJobId resource_job{};  // live during the shared phase
    obs::SpanId span{};                 // open obs span (invalid when off)
  };

  void dispatch();
  void start_on_node(int node_id, PendingTask task);
  void complete(std::uint64_t instance);
  void record_activity();
  /// Publishes the per-node busy-worker gauge for one node (obs).
  void record_node_occupancy(int node_id);
  void check_idle();
  void check_all_complete();

  sim::SimEngine& engine_;
  LawFactory law_factory_;
  std::shared_ptr<SchedulerPolicy> policy_;
  std::string label_ = "cluster";
  std::map<int, std::unique_ptr<NodeSim>> nodes_;
  std::map<int, bool> draining_;
  int next_node_id_ = 0;
  std::deque<PendingTask> queue_;
  std::map<std::uint64_t, InFlight> in_flight_;
  std::uint64_t next_instance_ = 1;
  std::size_t running_ = 0;
  std::size_t completed_ = 0;
  std::size_t requeued_ = 0;
  double completed_payload_ = 0.0;
  bool sealed_ = false;
  std::vector<std::pair<double, int>> activity_;
  std::vector<SimTaskResult> results_;
  std::vector<std::function<void()>> idle_callbacks_;
  std::vector<std::function<void()>> complete_callbacks_;
};

}  // namespace mfw::compute
