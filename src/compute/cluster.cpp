#include "compute/cluster.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace mfw::compute {

namespace {
constexpr const char* kComponent = "cluster";
// Defiant calibration (DESIGN.md): R(w) = 38.5 * (1 - exp(-w / 3.1)) in
// tile-equivalents/second reproduces Table I's single-node column.
constexpr double kDefiantRMax = 38.5;
constexpr double kDefiantTau = 3.1;
}  // namespace

LawFactory defiant_law_factory() {
  return [] {
    return std::make_unique<sim::SaturatingExpLaw>(kDefiantRMax, kDefiantTau);
  };
}

NodeSim::NodeSim(sim::SimEngine& engine, int id, int workers,
                 const LawFactory& law)
    : engine_(engine), id_(id), workers_(workers),
      worker_busy_(static_cast<std::size_t>(workers), false),
      resource_(std::make_unique<sim::SharedResource>(engine, law())) {
  if (workers <= 0) throw std::invalid_argument("NodeSim needs >= 1 worker");
}

int NodeSim::acquire_worker() {
  for (std::size_t w = 0; w < worker_busy_.size(); ++w) {
    if (!worker_busy_[w]) {
      worker_busy_[w] = true;
      ++busy_;
      return static_cast<int>(w);
    }
  }
  throw std::logic_error("NodeSim::acquire_worker with no free worker");
}

void NodeSim::release_worker(int worker) {
  auto slot = worker_busy_.at(static_cast<std::size_t>(worker));
  if (!slot) throw std::logic_error("NodeSim::release_worker on idle worker");
  worker_busy_[static_cast<std::size_t>(worker)] = false;
  --busy_;
}

ClusterExecutor::ClusterExecutor(sim::SimEngine& engine, LawFactory law_factory)
    : engine_(engine), law_factory_(std::move(law_factory)) {
  if (!law_factory_) throw std::invalid_argument("ClusterExecutor needs a law");
}

int ClusterExecutor::add_node(int workers) {
  const int id = next_node_id_++;
  nodes_.emplace(id, std::make_unique<NodeSim>(engine_, id, workers, law_factory_));
  draining_[id] = false;
  MFW_DEBUG(kComponent, "added node ", id, " with ", workers, " workers");
  dispatch();
  return id;
}

bool ClusterExecutor::drain_node(int node_id) {
  const auto it = nodes_.find(node_id);
  if (it == nodes_.end()) return false;
  draining_[node_id] = true;
  if (it->second->busy() == 0) {
    nodes_.erase(it);
    draining_.erase(node_id);
    MFW_DEBUG(kComponent, "removed idle node ", node_id);
  }
  return true;
}

void ClusterExecutor::submit(SimTaskDesc desc, SimTaskCallback callback) {
  if (sealed_)
    throw std::logic_error("ClusterExecutor::submit after seal()");
  queue_.push_back(PendingTask{std::move(desc), engine_.now(), std::move(callback)});
  dispatch();
}

void ClusterExecutor::notify_idle(std::function<void()> callback) {
  idle_callbacks_.push_back(std::move(callback));
  check_idle();
}

void ClusterExecutor::seal() {
  if (sealed_) return;
  sealed_ = true;
  MFW_DEBUG(kComponent, "submission stream sealed at ", completed_,
            " completed, ", queue_.size() + running_, " outstanding");
  check_all_complete();
}

void ClusterExecutor::notify_all_complete(std::function<void()> callback) {
  complete_callbacks_.push_back(std::move(callback));
  check_all_complete();
}

int ClusterExecutor::active_workers() const {
  int n = 0;
  for (const auto& [id, node] : nodes_) n += node->busy();
  return n;
}

int ClusterExecutor::total_workers() const {
  int n = 0;
  for (const auto& [id, node] : nodes_) n += node->workers();
  return n;
}

int ClusterExecutor::node_busy(int node_id) const {
  const auto it = nodes_.find(node_id);
  return it == nodes_.end() ? 0 : it->second->busy();
}

void ClusterExecutor::clear_history() {
  activity_.clear();
  results_.clear();
}

void ClusterExecutor::dispatch() {
  while (!queue_.empty()) {
    // Least-loaded placement: spread tasks across nodes, as the Parsl
    // interchange does.
    NodeSim* best = nullptr;
    for (auto& [id, node] : nodes_) {
      if (draining_.at(id) || node->free_workers() == 0) continue;
      if (!best || node->busy() < best->busy() ||
          (node->busy() == best->busy() &&
           node->free_workers() > best->free_workers())) {
        best = node.get();
      }
    }
    if (!best) return;
    // Admission order: FIFO when no policy is installed (the seed-identical
    // fast path), otherwise the policy picks any queued task or holds.
    std::size_t pick = 0;
    if (policy_) {
      std::vector<TaskView> views;
      views.reserve(queue_.size());
      for (const auto& pending : queue_)
        views.push_back({&pending.desc, pending.submitted_at});
      pick = policy_->select(views, engine_.now());
      if (pick == SchedulerPolicy::kHold) return;
      if (pick >= queue_.size())
        throw std::logic_error("SchedulerPolicy::select returned bad index");
    }
    PendingTask task = std::move(queue_[pick]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    ++running_;
    start_on_node(best->id(), std::move(task));
  }
}

void ClusterExecutor::start_on_node(int node_id, PendingTask task) {
  NodeSim& node = *nodes_.at(node_id);
  const int worker = node.acquire_worker();
  if (policy_) policy_->on_start(task.desc, engine_.now());
  record_activity();

  const std::uint64_t instance = next_instance_++;
  InFlight inflight;
  inflight.task = std::move(task);
  inflight.node = node_id;
  inflight.worker = worker;
  inflight.started_at = engine_.now();
  if (auto& rec = obs::TraceRecorder::instance(); rec.enabled()) {
    const double queue_wait = inflight.started_at - inflight.task.submitted_at;
    obs::Args span_args = {{"queue_wait_s", std::to_string(queue_wait)}};
    for (const auto& extra : inflight.task.desc.trace_args)
      span_args.push_back(extra);
    inflight.span = rec.begin_span(
        label_ + "/node" + std::to_string(node_id) + "/w" +
            std::to_string(worker),
        "compute",
        inflight.task.desc.label.empty() ? "task" : inflight.task.desc.label,
        std::move(span_args));
    obs::MetricsRegistry::instance().observe(
        "mfw.compute.queue_wait_seconds", queue_wait, {{"stage", label_}},
        obs::HistogramSpec{0.0, 60.0, 24});
    record_node_occupancy(node_id);
  }
  auto [it, inserted] = in_flight_.emplace(instance, std::move(inflight));
  InFlight& state = it->second;

  // CPU phase, then shared phase, then completion. Both continuations guard
  // on the instance still being in flight (fail_node may have requeued it).
  auto shared_phase = [this, instance] {
    const auto fit = in_flight_.find(instance);
    if (fit == in_flight_.end()) return;
    InFlight& st = fit->second;
    st.cpu_event = sim::EventHandle{};
    if (st.task.desc.shared_demand > 0) {
      st.resource_job = nodes_.at(st.node)->resource().submit(
          st.task.desc.shared_demand, [this, instance] { complete(instance); });
    } else {
      complete(instance);
    }
  };
  if (state.task.desc.cpu_seconds > 0) {
    state.cpu_event =
        engine_.schedule_after(state.task.desc.cpu_seconds, shared_phase);
  } else {
    shared_phase();
  }
}

void ClusterExecutor::complete(std::uint64_t instance) {
  auto node_handle = in_flight_.extract(instance);
  if (node_handle.empty()) return;
  InFlight state = std::move(node_handle.mapped());

  SimTaskResult result;
  result.submitted_at = state.task.submitted_at;
  result.started_at = state.started_at;
  result.finished_at = engine_.now();
  result.node = state.node;
  result.worker = state.worker;
  result.payload = state.task.desc.payload;
  result.label = state.task.desc.label;
  result.campaign = state.task.desc.campaign;

  if (policy_) policy_->on_complete(state.task.desc, engine_.now());
  auto& node = nodes_.at(state.node);
  node->release_worker(state.worker);
  --running_;
  ++completed_;
  completed_payload_ += state.task.desc.payload;
  record_activity();
  results_.push_back(result);
  if (state.span.valid()) {
    obs::Args close_args = {
        {"status", "ok"},
        {"payload", std::to_string(state.task.desc.payload)}};
    // Deadline-aware campaigns can see per-task misses in the trace (and in
    // anything watching it, e.g. the health layer) without touching results.
    if (state.task.desc.deadline !=
        std::numeric_limits<double>::infinity()) {
      close_args.emplace_back(
          "deadline",
          engine_.now() > state.task.desc.deadline ? "missed" : "met");
    }
    obs::TraceRecorder::instance().end_span(state.span,
                                            std::move(close_args));
    obs::MetricsRegistry::instance().observe(
        "mfw.compute.run_seconds", result.service_time(), {{"stage", label_}},
        obs::HistogramSpec{0.0, 30.0, 30});
    obs::MetricsRegistry::instance().counter_add("mfw.compute.tasks_total",
                                                 1.0, {{"stage", label_}});
    record_node_occupancy(state.node);
  }

  if (draining_.at(state.node) && node->busy() == 0) {
    nodes_.erase(state.node);
    draining_.erase(state.node);
    MFW_DEBUG(kComponent, "removed drained node ", state.node);
  }
  if (state.task.callback) state.task.callback(result);
  dispatch();
  check_idle();
  check_all_complete();
}

bool ClusterExecutor::fail_node(int node_id) {
  const auto it = nodes_.find(node_id);
  if (it == nodes_.end()) return false;
  // Cancel and requeue every in-flight task on the node. Push to the front:
  // these tasks were admitted first and should not lose their place.
  std::size_t rescued = 0;
  for (auto fit = in_flight_.begin(); fit != in_flight_.end();) {
    if (fit->second.node != node_id) {
      ++fit;
      continue;
    }
    InFlight& st = fit->second;
    engine_.cancel(st.cpu_event);
    it->second->resource().cancel(st.resource_job);
    if (policy_) policy_->on_evict(st.task.desc, engine_.now());
    obs::TraceRecorder::instance().end_span(st.span,
                                            {{"status", "requeued"}});
    queue_.push_front(std::move(st.task));
    ++requeued_;
    ++rescued;
    --running_;
    fit = in_flight_.erase(fit);
  }
  nodes_.erase(it);
  draining_.erase(node_id);
  record_activity();
  MFW_WARN(kComponent, "node ", node_id, " failed; requeued ", rescued,
           " tasks on ", nodes_.size(), " surviving nodes");
  dispatch();
  check_idle();
  check_all_complete();
  return true;
}

void ClusterExecutor::record_activity() {
  activity_.emplace_back(engine_.now(), active_workers());
  if (auto& metrics = obs::MetricsRegistry::instance(); metrics.enabled()) {
    metrics.gauge_set("mfw.compute.busy_workers",
                      static_cast<double>(active_workers()),
                      {{"stage", label_}});
  }
}

void ClusterExecutor::record_node_occupancy(int node_id) {
  auto& metrics = obs::MetricsRegistry::instance();
  if (!metrics.enabled()) return;
  metrics.gauge_set(
      "mfw.compute.node_busy_workers", static_cast<double>(node_busy(node_id)),
      {{"stage", label_}, {"node", std::to_string(node_id)}});
}

void ClusterExecutor::check_idle() {
  if (!queue_.empty() || running_ != 0 || idle_callbacks_.empty()) return;
  auto callbacks = std::move(idle_callbacks_);
  idle_callbacks_.clear();
  for (auto& cb : callbacks) {
    engine_.schedule_after(0.0, std::move(cb));
  }
}

void ClusterExecutor::check_all_complete() {
  if (!sealed_ || !queue_.empty() || running_ != 0 ||
      complete_callbacks_.empty()) {
    return;
  }
  auto callbacks = std::move(complete_callbacks_);
  complete_callbacks_.clear();
  for (auto& cb : callbacks) {
    engine_.schedule_after(0.0, std::move(cb));
  }
}

}  // namespace mfw::compute
