// Slurm-like batch scheduler simulation.
//
// Models what the paper's Parsl SlurmProvider interacts with on Defiant:
// a facility partition with a fixed node count, FIFO job granting with a
// configurable scheduling latency (the "Slurm scheduler allocating nodes"
// component of the preprocessing latency in Fig. 7), and walltime-bounded
// allocations that the owner may release early.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace mfw::compute {

struct SlurmJobId {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

struct SlurmAllocation {
  SlurmJobId job;
  std::vector<int> node_ids;
  double granted_at = 0.0;
  double walltime = 0.0;
};

struct SlurmSimConfig {
  int total_nodes = 36;           // Defiant's size
  double scheduling_latency = 1.5;  // seconds from eligible to granted
  /// When true, jobs behind a blocked queue head may start if they fit the
  /// currently free nodes (EASY-flavoured backfill without reservation
  /// bookkeeping — a deliberate simplification; the head keeps priority the
  /// moment enough nodes free up because grants are re-evaluated in queue
  /// order first).
  bool enable_backfill = false;
};

class SlurmSim {
 public:
  SlurmSim(sim::SimEngine& engine, SlurmSimConfig config);

  /// Submits a job needing `nodes` nodes for up to `walltime` seconds.
  /// `on_granted` fires (in virtual time) when the allocation starts; if the
  /// walltime expires before release(), `on_expired` fires and the nodes
  /// return to the pool.
  SlurmJobId submit(int nodes, double walltime,
                    std::function<void(const SlurmAllocation&)> on_granted,
                    std::function<void()> on_expired = nullptr);

  /// Cancels a queued job or releases a running allocation's nodes.
  void release(SlurmJobId job);

  int free_nodes() const { return free_; }
  int total_nodes() const { return config_.total_nodes; }
  std::size_t queued_jobs() const { return queue_.size(); }
  std::size_t running_jobs() const { return running_.size(); }

 private:
  struct PendingJob {
    SlurmJobId id;
    int nodes;
    double walltime;
    double submitted_at = 0.0;
    std::function<void(const SlurmAllocation&)> on_granted;
    std::function<void()> on_expired;
    obs::SpanId queued_span{};  // submit -> grant (invalid when tracing off)
  };
  struct RunningJob {
    std::vector<int> node_ids;
    sim::EventHandle expiry;
    std::function<void()> on_expired;
    obs::SpanId alloc_span{};  // grant -> release/expiry
  };

  void try_schedule();
  void grant(PendingJob job);

  sim::SimEngine& engine_;
  SlurmSimConfig config_;
  int free_;
  std::vector<int> free_node_ids_;
  std::vector<PendingJob> queue_;  // FIFO
  std::map<std::uint64_t, RunningJob> running_;
  std::uint64_t next_id_ = 1;
  bool schedule_pending_ = false;
};

}  // namespace mfw::compute
