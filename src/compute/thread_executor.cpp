#include "compute/thread_executor.hpp"

// Header-only today; this TU anchors the library target and keeps a stable
// place for future out-of-line members.
