// Task descriptors for the simulated executor.
//
// Real Parsl ships Python closures to workers; our discrete-event executor
// ships *descriptors* of work instead: a CPU phase (exclusive per worker)
// followed by a demand on the node's shared substrate (filesystem + memory
// bandwidth, the contended part — see sim/resource.hpp). The payload field
// carries domain quantity (tiles, bytes) for throughput accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace mfw::compute {

struct SimTaskDesc {
  /// Exclusive per-worker compute time in seconds (unaffected by contention).
  double cpu_seconds = 0.0;
  /// Demand on the node's shared resource, in the law's service units.
  double shared_demand = 0.0;
  /// Domain payload this task produces (e.g. tiles written) for telemetry.
  double payload = 0.0;
  /// Optional label for tracing.
  std::string label;
  /// Campaign (concurrent compiled workflow) this task belongs to; policies
  /// use it for fairness and WAN co-scheduling. Empty = unaffiliated.
  std::string campaign;
  /// Absolute sim-time deadline for deadline-aware admission; infinity means
  /// "no deadline" (sorts after every dated task).
  double deadline = std::numeric_limits<double>::infinity();
  /// Extra key/value annotations copied onto the task's trace span (e.g. the
  /// "granule" identity the analyzer uses to stitch the per-granule DAG).
  std::vector<std::pair<std::string, std::string>> trace_args;
};

struct SimTaskResult {
  double submitted_at = 0.0;
  double started_at = 0.0;
  double finished_at = 0.0;
  int node = -1;
  int worker = -1;
  double payload = 0.0;
  std::string label;
  std::string campaign;

  double queue_wait() const { return started_at - submitted_at; }
  double service_time() const { return finished_at - started_at; }
};

using SimTaskCallback = std::function<void(const SimTaskResult&)>;

}  // namespace mfw::compute
