#include "compute/slurm_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace mfw::compute {

namespace {
constexpr const char* kComponent = "slurm";

void record_free_nodes_gauge(int free) {
  if (auto& metrics = obs::MetricsRegistry::instance(); metrics.enabled())
    metrics.gauge_set("mfw.slurm.free_nodes", static_cast<double>(free));
}
}  // namespace

SlurmSim::SlurmSim(sim::SimEngine& engine, SlurmSimConfig config)
    : engine_(engine), config_(config), free_(config.total_nodes) {
  if (config.total_nodes <= 0)
    throw std::invalid_argument("SlurmSim needs >= 1 node");
  free_node_ids_.reserve(static_cast<std::size_t>(config.total_nodes));
  for (int i = config.total_nodes - 1; i >= 0; --i) free_node_ids_.push_back(i);
}

SlurmJobId SlurmSim::submit(
    int nodes, double walltime,
    std::function<void(const SlurmAllocation&)> on_granted,
    std::function<void()> on_expired) {
  if (nodes <= 0 || nodes > config_.total_nodes)
    throw std::invalid_argument("SlurmSim: invalid node count request");
  if (!(walltime > 0)) throw std::invalid_argument("SlurmSim: invalid walltime");
  const SlurmJobId id{next_id_++};
  PendingJob pending{id,       nodes, walltime, engine_.now(),
                     std::move(on_granted), std::move(on_expired), {}};
  if (auto& rec = obs::TraceRecorder::instance(); rec.enabled()) {
    pending.queued_span =
        rec.begin_span("slurm/job" + std::to_string(id.id), "slurm", "queued",
                       {{"nodes", std::to_string(nodes)}});
  }
  queue_.push_back(std::move(pending));
  try_schedule();
  return id;
}

void SlurmSim::release(SlurmJobId job) {
  if (!job.valid()) return;
  // Queued job: cancel.
  const auto qit = std::find_if(queue_.begin(), queue_.end(),
                                [&](const PendingJob& p) { return p.id.id == job.id; });
  if (qit != queue_.end()) {
    obs::TraceRecorder::instance().end_span(qit->queued_span,
                                            {{"status", "cancelled"}});
    queue_.erase(qit);
    return;
  }
  const auto rit = running_.find(job.id);
  if (rit == running_.end()) return;
  engine_.cancel(rit->second.expiry);
  obs::TraceRecorder::instance().end_span(rit->second.alloc_span,
                                          {{"status", "released"}});
  free_ += static_cast<int>(rit->second.node_ids.size());
  for (int node : rit->second.node_ids) free_node_ids_.push_back(node);
  running_.erase(rit);
  record_free_nodes_gauge(free_);
  MFW_DEBUG(kComponent, "released job ", job.id, "; free nodes=", free_);
  try_schedule();
}

void SlurmSim::try_schedule() {
  // FIFO first: grant from the head while it fits (this matches the
  // conservative behaviour the paper's latency figures assume).
  while (!queue_.empty() && queue_.front().nodes <= free_) {
    PendingJob job = std::move(queue_.front());
    queue_.erase(queue_.begin());
    free_ -= job.nodes;
    engine_.schedule_after(config_.scheduling_latency,
                           [this, job = std::move(job)]() mutable {
                             grant(std::move(job));
                           });
  }
  if (!config_.enable_backfill) return;
  // Backfill: later jobs that fit the leftover nodes may jump the blocked
  // head.
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->nodes <= free_) {
      PendingJob job = std::move(*it);
      it = queue_.erase(it);
      free_ -= job.nodes;
      MFW_DEBUG(kComponent, "backfilling job ", job.id.id, " (", job.nodes,
                " nodes)");
      engine_.schedule_after(config_.scheduling_latency,
                             [this, job = std::move(job)]() mutable {
                               grant(std::move(job));
                             });
    } else {
      ++it;
    }
  }
}

void SlurmSim::grant(PendingJob job) {
  SlurmAllocation alloc;
  alloc.job = job.id;
  alloc.granted_at = engine_.now();
  alloc.walltime = job.walltime;
  alloc.node_ids.reserve(static_cast<std::size_t>(job.nodes));
  for (int i = 0; i < job.nodes; ++i) {
    alloc.node_ids.push_back(free_node_ids_.back());
    free_node_ids_.pop_back();
  }
  RunningJob running;
  running.node_ids = alloc.node_ids;
  running.on_expired = job.on_expired;
  if (auto& rec = obs::TraceRecorder::instance(); rec.enabled()) {
    rec.end_span(job.queued_span, {{"status", "granted"}});
    obs::MetricsRegistry::instance().observe(
        "mfw.slurm.queue_wait_seconds", engine_.now() - job.submitted_at, {},
        obs::HistogramSpec{0.0, 30.0, 30});
    running.alloc_span = rec.begin_span(
        "slurm/job" + std::to_string(job.id.id), "slurm", "allocation",
        {{"nodes", std::to_string(job.nodes)}});
    record_free_nodes_gauge(free_);
  }
  running.expiry = engine_.schedule_after(job.walltime, [this, id = job.id.id] {
    auto it = running_.find(id);
    if (it == running_.end()) return;
    auto on_expired = std::move(it->second.on_expired);
    obs::TraceRecorder::instance().end_span(it->second.alloc_span,
                                            {{"status", "expired"}});
    free_ += static_cast<int>(it->second.node_ids.size());
    for (int node : it->second.node_ids) free_node_ids_.push_back(node);
    running_.erase(it);
    record_free_nodes_gauge(free_);
    MFW_DEBUG(kComponent, "job ", id, " walltime expired");
    try_schedule();
    if (on_expired) on_expired();
  });
  running_.emplace(job.id.id, std::move(running));
  MFW_DEBUG(kComponent, "granted job ", job.id.id, " with ", job.nodes,
            " nodes at t=", alloc.granted_at);
  if (job.on_granted) job.on_granted(alloc);
}

}  // namespace mfw::compute
