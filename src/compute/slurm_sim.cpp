#include "compute/slurm_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace mfw::compute {

namespace {
constexpr const char* kComponent = "slurm";
}

SlurmSim::SlurmSim(sim::SimEngine& engine, SlurmSimConfig config)
    : engine_(engine), config_(config), free_(config.total_nodes) {
  if (config.total_nodes <= 0)
    throw std::invalid_argument("SlurmSim needs >= 1 node");
  free_node_ids_.reserve(static_cast<std::size_t>(config.total_nodes));
  for (int i = config.total_nodes - 1; i >= 0; --i) free_node_ids_.push_back(i);
}

SlurmJobId SlurmSim::submit(
    int nodes, double walltime,
    std::function<void(const SlurmAllocation&)> on_granted,
    std::function<void()> on_expired) {
  if (nodes <= 0 || nodes > config_.total_nodes)
    throw std::invalid_argument("SlurmSim: invalid node count request");
  if (!(walltime > 0)) throw std::invalid_argument("SlurmSim: invalid walltime");
  const SlurmJobId id{next_id_++};
  queue_.push_back(PendingJob{id, nodes, walltime, std::move(on_granted),
                              std::move(on_expired)});
  try_schedule();
  return id;
}

void SlurmSim::release(SlurmJobId job) {
  if (!job.valid()) return;
  // Queued job: cancel.
  const auto qit = std::find_if(queue_.begin(), queue_.end(),
                                [&](const PendingJob& p) { return p.id.id == job.id; });
  if (qit != queue_.end()) {
    queue_.erase(qit);
    return;
  }
  const auto rit = running_.find(job.id);
  if (rit == running_.end()) return;
  engine_.cancel(rit->second.expiry);
  free_ += static_cast<int>(rit->second.node_ids.size());
  for (int node : rit->second.node_ids) free_node_ids_.push_back(node);
  running_.erase(rit);
  MFW_DEBUG(kComponent, "released job ", job.id, "; free nodes=", free_);
  try_schedule();
}

void SlurmSim::try_schedule() {
  // FIFO first: grant from the head while it fits (this matches the
  // conservative behaviour the paper's latency figures assume).
  while (!queue_.empty() && queue_.front().nodes <= free_) {
    PendingJob job = std::move(queue_.front());
    queue_.erase(queue_.begin());
    free_ -= job.nodes;
    engine_.schedule_after(config_.scheduling_latency,
                           [this, job = std::move(job)]() mutable {
                             grant(std::move(job));
                           });
  }
  if (!config_.enable_backfill) return;
  // Backfill: later jobs that fit the leftover nodes may jump the blocked
  // head.
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->nodes <= free_) {
      PendingJob job = std::move(*it);
      it = queue_.erase(it);
      free_ -= job.nodes;
      MFW_DEBUG(kComponent, "backfilling job ", job.id.id, " (", job.nodes,
                " nodes)");
      engine_.schedule_after(config_.scheduling_latency,
                             [this, job = std::move(job)]() mutable {
                               grant(std::move(job));
                             });
    } else {
      ++it;
    }
  }
}

void SlurmSim::grant(PendingJob job) {
  SlurmAllocation alloc;
  alloc.job = job.id;
  alloc.granted_at = engine_.now();
  alloc.walltime = job.walltime;
  alloc.node_ids.reserve(static_cast<std::size_t>(job.nodes));
  for (int i = 0; i < job.nodes; ++i) {
    alloc.node_ids.push_back(free_node_ids_.back());
    free_node_ids_.pop_back();
  }
  RunningJob running;
  running.node_ids = alloc.node_ids;
  running.on_expired = job.on_expired;
  running.expiry = engine_.schedule_after(job.walltime, [this, id = job.id.id] {
    auto it = running_.find(id);
    if (it == running_.end()) return;
    auto on_expired = std::move(it->second.on_expired);
    free_ += static_cast<int>(it->second.node_ids.size());
    for (int node : it->second.node_ids) free_node_ids_.push_back(node);
    running_.erase(it);
    MFW_DEBUG(kComponent, "job ", id, " walltime expired");
    try_schedule();
    if (on_expired) on_expired();
  });
  running_.emplace(job.id.id, std::move(running));
  MFW_DEBUG(kComponent, "granted job ", job.id.id, " with ", job.nodes,
            " nodes at t=", alloc.granted_at);
  if (job.on_granted) job.on_granted(alloc);
}

}  // namespace mfw::compute
