// Bounded-memory telemetry rollups (DESIGN.md §10).
//
// The full TraceRecorder keeps O(events) memory — fine for paper-figure runs
// (tens of thousands of spans), fatal for archive campaigns (~3M events for
// a 365-day run). This header provides the streaming aggregation path:
//
//  - LogHistogram: a fixed-size log-linear quantile sketch (8 sub-buckets per
//    power of two => worst-case relative quantile error sqrt(9/8)-1 ≈ 6.1%,
//    documented bound kMaxRelativeError) in ~1.6 KB, no allocation.
//  - WindowedSeries: ring buffer of per-window {count, sum, min, max, sketch}
//    keyed by floor(t / window_s), evicting the oldest window past
//    max_windows, plus exact whole-stream totals and a whole-stream sketch
//    that never evict. Memory is O(max_windows), independent of event count.
//  - SpanRollup: a TraceRecorder SpanSink that folds every closed span into
//    per-series WindowedSeries keyed "<stage>/<category>.<metric>" (e.g.
//    "preprocess/compute.duration_s", plus ".queue_wait_s" when the span
//    carries that arg), so a campaign run with RetentionMode::kStatsOnly
//    needs only O(series × windows) memory.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace mfw::obs {

/// Stage prefix of a track name: "preprocess/node3/w1" -> "preprocess",
/// "download/w0" -> "download", "flow/granules" -> "flow". Track names with
/// no '/' map to themselves.
std::string track_stage(std::string_view track_name);

/// Window index of timestamp `t` for width `window_s`, with half-open
/// [index * window_s, (index + 1) * window_s) semantics guaranteed even when
/// the width is not exactly representable (e.g. 0.1): a bare
/// floor(t / window_s) can land a sample exactly on a window edge one window
/// early, double-counting the edge in the closing window. Shared by
/// WindowedSeries and the watch layer so both bucket identically.
std::int64_t window_index(double t, double window_s);

/// Log-linear histogram over positive values: buckets span
/// [2^kMinExp, 2^kMaxExp) with kSubBuckets linear sub-buckets per power of
/// two, plus underflow/overflow buckets. Quantiles are estimated at the
/// geometric midpoint of the hit bucket.
class LogHistogram {
 public:
  static constexpr int kSubBuckets = 8;
  static constexpr int kMinExp = -20;  // lower edge ~9.5e-7
  static constexpr int kMaxExp = 30;   // upper edge ~1.07e9
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;
  /// Worst-case relative error of quantile(): half a sub-bucket in log
  /// space, sqrt(1 + 1/kSubBuckets) - 1.
  static constexpr double kMaxRelativeError = 0.0607;

  void add(double value);
  void merge(const LogHistogram& other);
  std::uint64_t total() const { return total_; }
  /// q in [0, 1]; returns 0 for an empty histogram.
  double quantile(double q) const;

 private:
  std::array<std::uint32_t, kBucketCount> counts_{};
  std::uint64_t total_ = 0;
};

struct RollupConfig {
  double window_s = 60.0;
  std::size_t max_windows = 256;
};

struct WindowStats {
  std::int64_t index = 0;  // window start time = index * window_s
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  LogHistogram hist;

  double p50() const { return hist.quantile(0.50); }
  double p99() const { return hist.quantile(0.99); }
};

/// Windowed time series with bounded memory: a deque of per-window stats
/// (oldest evicted past max_windows) plus exact whole-stream aggregates.
class WindowedSeries {
 public:
  explicit WindowedSeries(RollupConfig config = {});

  void add(double t, double value);

  const RollupConfig& config() const { return config_; }
  const std::deque<WindowStats>& windows() const { return windows_; }
  std::uint64_t evicted_windows() const { return evicted_; }

  // Whole-stream aggregates (exact; never evicted).
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return count_ ? sum_ / count_ : 0.0; }
  /// Whole-stream quantile estimates from the total sketch (error bound
  /// LogHistogram::kMaxRelativeError).
  double p50() const { return total_hist_.quantile(0.50); }
  double p99() const { return total_hist_.quantile(0.99); }
  const LogHistogram& total_hist() const { return total_hist_; }

 private:
  RollupConfig config_;
  std::deque<WindowStats> windows_;
  LogHistogram total_hist_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t evicted_ = 0;
};

/// SpanSink that aggregates closed spans into WindowedSeries. Thread-safe
/// (the recorder invokes sinks under its own lock, but the accessors may be
/// called from another thread).
class SpanRollup : public SpanSink {
 public:
  explicit SpanRollup(RollupConfig config = {});

  void on_span(const TraceTrack& track, const TraceSpan& span) override;
  void on_instant(const TraceTrack& track, const TraceInstant& instant) override;

  std::uint64_t spans_seen() const;
  std::uint64_t instants_seen() const;
  std::vector<std::string> series_names() const;
  /// Snapshot copy of one series (empty-count series when unknown).
  WindowedSeries series(const std::string& name) const;

  /// Machine-readable report: {"window_s", "series": [...], ...}.
  std::string to_json() const;
  /// Short human-readable table (one line per series).
  std::string summary() const;

 private:
  mutable std::mutex mu_;
  RollupConfig config_;
  std::map<std::string, WindowedSeries> series_;
  std::map<std::string, std::uint64_t> instant_counts_;
  std::uint64_t spans_seen_ = 0;
  std::uint64_t instants_seen_ = 0;
};

}  // namespace mfw::obs
