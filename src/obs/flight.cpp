#include "obs/flight.hpp"

#include <cstdio>
#include <exception>
#include <map>
#include <sstream>
#include <utility>

#include "obs/export.hpp"
#include "obs/watch.hpp"
#include "util/json_writer.hpp"

namespace mfw::obs {
namespace {

/// Synthetic lane for health episodes in the dump (no recorder track backs
/// them).
constexpr std::uint32_t kAlertTid = 999999;
constexpr const char* kAlertTrack = "flight/alerts";

std::string json_string(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  util::append_json_escaped(out, text);
  out += '"';
  return out;
}

std::string micros(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e6);
  return buf;
}

std::string json_args(const Args& args) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) out += ",";
    first = false;
    out += json_string(key);
    out += ":";
    out += json_string(value);
  }
  out += "}";
  return out;
}

std::string num(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

// ---------------------------------------------------------------------------
// terminate-hook plumbing: one armed recorder process-wide. The hook only
// reads the ring (its own lock) and writes a file — safe work for a
// terminate handler, after which the previous handler (usually abort) runs.
// ---------------------------------------------------------------------------

std::mutex g_crash_mu;
FlightRecorder* g_armed = nullptr;
std::string g_crash_path;
std::terminate_handler g_previous = nullptr;

void crash_dump_handler() {
  {
    std::lock_guard<std::mutex> lock(g_crash_mu);
    if (g_armed) g_armed->dump(g_crash_path, "terminate");
  }
  if (g_previous) g_previous();
  std::abort();
}

}  // namespace

FlightRecorder::FlightRecorder(FlightConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  ring_.resize(config_.capacity);
}

FlightRecorder::~FlightRecorder() { disarm_crash_dump(); }

void FlightRecorder::push(Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.seq = seen_++;
  ring_[head_] = std::move(entry);
  head_ = (head_ + 1) % ring_.size();
  if (seen_ >= ring_.size()) full_ = true;
}

void FlightRecorder::on_span(const TraceTrack& track, const TraceSpan& span) {
  Entry entry;
  entry.entry_kind = Entry::Kind::kSpan;
  entry.start = span.start;
  entry.end = span.end;
  entry.process = track.process;
  entry.tid = track.tid;
  entry.track = track.name;
  entry.category = span.category;
  entry.name = span.name;
  entry.args = span.args;
  push(std::move(entry));
  SpanSink* next = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    next = next_;
  }
  if (next) next->on_span(track, span);
}

void FlightRecorder::on_instant(const TraceTrack& track,
                                const TraceInstant& instant) {
  Entry entry;
  entry.entry_kind = Entry::Kind::kInstant;
  entry.start = instant.at;
  entry.end = instant.at;
  entry.process = track.process;
  entry.tid = track.tid;
  entry.track = track.name;
  entry.category = instant.category;
  entry.name = instant.name;
  entry.args = instant.args;
  push(std::move(entry));
  SpanSink* next = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    next = next_;
  }
  if (next) next->on_instant(track, instant);
}

void FlightRecorder::set_next(SpanSink* next) {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = next;
}

void FlightRecorder::note_alert(const Alert& alert) {
  Entry entry;
  entry.entry_kind = Entry::Kind::kAlert;
  entry.start = alert.at;
  entry.end = alert.at;
  entry.process = 0;
  entry.tid = kAlertTid;
  entry.track = kAlertTrack;
  entry.category = "health";
  entry.name = alert.rule;
  entry.args = {{"kind", alert.kind},
                {"stage", alert.stage},
                {"metric", alert.metric},
                {"state", alert.state},
                {"threshold", num(alert.threshold)},
                {"observed", num(alert.observed)},
                {"cause", alert.cause}};
  push(std::move(entry));
}

std::uint64_t FlightRecorder::seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_;
}

std::uint64_t FlightRecorder::overwritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_ > ring_.size() ? seen_ - ring_.size() : 0;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return full_ ? ring_.size() : head_;
}

std::size_t FlightRecorder::capacity() const { return config_.capacity; }

std::vector<FlightRecorder::Entry> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  const std::size_t count = full_ ? ring_.size() : head_;
  out.reserve(count);
  if (full_)
    for (std::size_t i = 0; i < ring_.size(); ++i)
      out.push_back(ring_[(head_ + i) % ring_.size()]);
  else
    for (std::size_t i = 0; i < head_; ++i) out.push_back(ring_[i]);
  return out;
}

std::string FlightRecorder::to_chrome_trace_json(
    std::string_view reason) const {
  const std::vector<Entry> entries = snapshot();
  std::uint64_t seen_count = 0, overwritten_count = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seen_count = seen_;
    overwritten_count =
        seen_ > ring_.size() ? seen_ - ring_.size() : 0;
  }

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) os << ",";
    first = false;
    os << "\n" << event;
  };

  // Thread-name metadata for every lane present in the ring.
  std::map<std::pair<std::uint32_t, std::uint32_t>, const std::string*> lanes;
  for (const auto& entry : entries)
    lanes.emplace(std::make_pair(entry.process, entry.tid), &entry.track);
  for (const auto& [lane, name] : lanes)
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(lane.first) +
         ",\"tid\":" + std::to_string(lane.second) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":" +
         json_string(*name) + "}}");

  for (const auto& entry : entries) {
    const std::string pid = std::to_string(entry.process);
    const std::string tid = std::to_string(entry.tid);
    if (entry.entry_kind == Entry::Kind::kSpan) {
      emit("{\"ph\":\"X\",\"pid\":" + pid + ",\"tid\":" + tid +
           ",\"cat\":" + json_string(entry.category) + ",\"name\":" +
           json_string(entry.name) + ",\"ts\":" + micros(entry.start) +
           ",\"dur\":" + micros(entry.end - entry.start) + ",\"args\":" +
           json_args(entry.args) + "}");
    } else {
      emit("{\"ph\":\"i\",\"pid\":" + pid + ",\"tid\":" + tid +
           ",\"cat\":" + json_string(entry.category) + ",\"name\":" +
           json_string(entry.name) + ",\"ts\":" + micros(entry.start) +
           ",\"s\":\"t\",\"args\":" + json_args(entry.args) + "}");
    }
  }
  os << "\n],\"flight\":{\"reason\":" << json_string(reason)
     << ",\"capacity\":" << config_.capacity << ",\"seen\":" << seen_count
     << ",\"overwritten\":" << overwritten_count << ",\"retained\":"
     << entries.size() << "}}\n";
  return os.str();
}

bool FlightRecorder::dump(const std::string& path,
                          std::string_view reason) const {
  return write_file(path, to_chrome_trace_json(reason));
}

void FlightRecorder::arm_crash_dump(std::string path) {
  std::lock_guard<std::mutex> lock(g_crash_mu);
  if (!g_armed) g_previous = std::set_terminate(crash_dump_handler);
  g_armed = this;
  g_crash_path = std::move(path);
}

void FlightRecorder::disarm_crash_dump() {
  std::lock_guard<std::mutex> lock(g_crash_mu);
  if (g_armed != this) return;
  g_armed = nullptr;
  g_crash_path.clear();
  // Restore the previous handler when there was one; otherwise leave ours
  // installed disarmed (it then just forwards to abort).
  if (g_previous) {
    std::set_terminate(g_previous);
    g_previous = nullptr;
  }
}

}  // namespace mfw::obs
