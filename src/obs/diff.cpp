#include "obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "util/json_writer.hpp"
#include "util/jsonlite.hpp"

namespace mfw::obs {
namespace {

using util::JsonValue;

constexpr std::string_view kReportSchema = "mfw.trace_report/v1";
constexpr std::string_view kDiffSchema = "mfw.trace_diff/v1";

std::string fmt(const char* format, double a, double b = 0.0,
                double c = 0.0) {
  char buf[256];
  std::snprintf(buf, sizeof buf, format, a, b, c);
  return buf;
}

// ---------------------------------------------------------------------------
// mfw.trace_report/v1 reader
// ---------------------------------------------------------------------------

ProcessReport parse_process(const JsonValue& p) {
  ProcessReport out;
  out.process = p.str("process");
  out.start = p.num("start");
  out.end = p.num("end");
  out.dominant_stage = p.str("dominant_stage");
  out.spans = static_cast<std::size_t>(p.num("spans"));
  out.instants = static_cast<std::size_t>(p.num("instants"));
  for (const JsonValue& s : p.items("stages")) {
    StageStat stat;
    stat.stage = s.str("stage");
    stat.start = s.num("start");
    stat.end = s.num("end");
    stat.tasks = static_cast<std::size_t>(s.num("tasks"));
    stat.workers = static_cast<std::size_t>(s.num("workers"));
    stat.busy_s = s.num("busy_s");
    stat.utilization = s.num("utilization");
    stat.p50 = s.num("p50");
    stat.p99 = s.num("p99");
    stat.max = s.num("max");
    stat.queue_p50 = s.num("queue_p50");
    stat.queue_p99 = s.num("queue_p99");
    stat.queue_max = s.num("queue_max");
    out.stages.push_back(std::move(stat));
  }
  for (const JsonValue& n : p.items("nodes")) {
    NodeStat node;
    node.stage = n.str("stage");
    node.node = n.str("node");
    node.workers = static_cast<std::size_t>(n.num("workers"));
    node.tasks = static_cast<std::size_t>(n.num("tasks"));
    node.busy_s = n.num("busy_s");
    node.utilization = n.num("utilization");
    out.nodes.push_back(std::move(node));
  }
  if (const JsonValue* cp = p.find("critical_path")) {
    out.critical_path.makespan = cp->num("makespan");
    out.critical_path.length = cp->num("length");
    out.critical_path.coverage = cp->num("coverage");
    out.critical_path.dominant_stage = cp->str("dominant_stage");
    for (const JsonValue& e : cp->items("by_stage"))
      out.critical_path.by_stage.emplace_back(e.str("stage"),
                                              e.num("seconds"));
    for (const JsonValue& seg : cp->items("segments")) {
      PathSegment segment;
      segment.kind = seg.str("kind");
      segment.detail = seg.str("detail");
      segment.granule = seg.str("granule");
      segment.start = seg.num("start");
      segment.end = seg.num("end");
      out.critical_path.segments.push_back(std::move(segment));
    }
  }
  for (const JsonValue& g : p.items("stragglers")) {
    StragglerGroup group;
    group.group = g.str("group");
    group.count = static_cast<std::size_t>(g.num("count"));
    group.median = g.num("median");
    group.flagged_count = static_cast<std::size_t>(g.num("flagged_count"));
    for (const JsonValue& f : g.items("flagged")) {
      Straggler straggler;
      straggler.group = group.group;
      straggler.name = f.str("name");
      straggler.track = f.str("track");
      straggler.granule = f.str("granule");
      straggler.attribution = f.str("attribution");
      straggler.duration = f.num("duration");
      straggler.ratio = f.num("ratio");
      straggler.queue_wait = f.num("queue_wait");
      group.flagged.push_back(std::move(straggler));
    }
    out.stragglers.push_back(std::move(group));
  }
  return out;
}

// ---------------------------------------------------------------------------
// diff internals
// ---------------------------------------------------------------------------

const StageStat* stage_of(const ProcessReport& report,
                          const std::string& stage) {
  for (const auto& s : report.stages)
    if (s.stage == stage) return &s;
  return nullptr;
}

std::map<std::string, double> path_by_stage(const ProcessReport& report) {
  std::map<std::string, double> out;
  for (const auto& [stage, seconds] : report.critical_path.by_stage)
    out[stage] += seconds;
  return out;
}

/// Node whose busy time grew most within `stage`; empty name when no node
/// grew. Nodes are aligned by (stage, node) name.
std::pair<std::string, double> worst_node_shift(const ProcessReport& a,
                                                const ProcessReport& b,
                                                const std::string& stage) {
  std::map<std::string, double> base;
  for (const auto& node : a.nodes)
    if (node.stage == stage) base[node.node] = node.busy_s;
  std::string worst;
  double worst_delta = 0.0;
  for (const auto& node : b.nodes) {
    if (node.stage != stage) continue;
    const auto it = base.find(node.node);
    const double delta = node.busy_s - (it == base.end() ? 0.0 : it->second);
    if (delta > worst_delta) {
      worst_delta = delta;
      worst = node.node;
    }
  }
  return {worst, worst_delta};
}

/// Most common flagged-straggler cause for `group`; empty when none.
std::string dominant_cause(const ProcessReport& report,
                           const std::string& group) {
  std::map<std::string, std::size_t> votes;
  for (const auto& g : report.stragglers) {
    if (g.group != group) continue;
    for (const auto& s : g.flagged) ++votes[s.attribution];
  }
  std::string best;
  std::size_t best_votes = 0;
  for (const auto& [cause, count] : votes)
    if (count > best_votes) best = cause, best_votes = count;
  return best;
}

std::size_t flagged_count(const ProcessReport& report,
                          const std::string& group) {
  for (const auto& g : report.stragglers)
    if (g.group == group) return g.flagged_count;
  return 0;
}

/// Stage-level supporting evidence for an attribution sentence.
std::string stage_evidence(const ProcessReport& a, const ProcessReport& b,
                           const std::string& stage, bool joined,
                           bool left) {
  std::ostringstream os;
  const StageStat* sa = stage_of(a, stage);
  const StageStat* sb = stage_of(b, stage);
  if (sa && sb && sa->tasks && sb->tasks) {
    if (sa->p99 > 0.0 && std::abs(sb->p99 - sa->p99) > 1e-9)
      os << fmt("p99 %+.0f%% (%.2fs -> %.2fs)",
                100.0 * (sb->p99 - sa->p99) / sa->p99, sa->p99, sb->p99);
    else if (sa->p99 == 0.0 && sb->p99 > 0.0)
      os << fmt("p99 %.2fs (was 0)", sb->p99);
    const double queue_delta = sb->queue_p99 - sa->queue_p99;
    if (std::abs(queue_delta) > 1e-6) {
      if (os.tellp() > 0) os << ", ";
      os << fmt("queue p99 %+.2fs", queue_delta);
    }
  }
  const auto [node, node_delta] = worst_node_shift(a, b, stage);
  if (!node.empty() && node_delta > 1e-6) {
    if (os.tellp() > 0) os << ", ";
    os << "busiest shift on " << node << fmt(" (%+.1fs busy)", node_delta);
  }
  if (joined) {
    if (os.tellp() > 0) os << ", ";
    os << "now on critical path";
  } else if (left) {
    if (os.tellp() > 0) os << ", ";
    os << "left the critical path";
  }
  return os.str();
}

/// Critical-path seconds spent waiting (queue / submit / monitor waits).
double path_wait_seconds(const ProcessReport& report) {
  double total = 0.0;
  for (const auto& segment : report.critical_path.segments)
    if (segment.kind == "queue-wait" || segment.kind == "submit-wait" ||
        segment.kind == "monitor-wait")
      total += segment.duration();
  return total;
}

ProcessDiff diff_process(const ProcessReport& a, const ProcessReport& b,
                         const DiffOptions& options) {
  ProcessDiff diff;
  diff.process_a = a.process;
  diff.process_b = b.process;
  diff.makespan_a = a.makespan();
  diff.makespan_b = b.makespan();
  diff.delta_s = diff.makespan_b - diff.makespan_a;
  const double noise =
      std::max(options.noise_abs_s, options.noise_rel * diff.makespan_a);
  diff.regression = diff.delta_s > noise;
  diff.improvement = diff.delta_s < -noise;
  const bool meaningful = diff.regression || diff.improvement;

  // Stage attribution: the per-stage critical-path deltas decompose the
  // path-length delta exactly (coverage ≈ 1 makes that the makespan delta).
  const auto path_a = path_by_stage(a);
  const auto path_b = path_by_stage(b);
  std::set<std::string> stages;
  for (const auto& [stage, seconds] : path_a) stages.insert(stage);
  for (const auto& [stage, seconds] : path_b) stages.insert(stage);
  double other = 0.0;
  for (const std::string& stage : stages) {
    const auto ia = path_a.find(stage);
    const auto ib = path_b.find(stage);
    const double sec_a = ia == path_a.end() ? 0.0 : ia->second;
    const double sec_b = ib == path_b.end() ? 0.0 : ib->second;
    const double delta = sec_b - sec_a;
    diff.attributed_s += delta;
    if (std::abs(delta) < options.rank_min_s) {
      other += delta;
      continue;
    }
    DiffFinding finding;
    finding.kind = "stage";
    finding.stage = stage;
    finding.delta_s = delta;
    if (meaningful && std::abs(diff.delta_s) > 0.0)
      finding.share = delta / diff.delta_s;
    std::ostringstream os;
    os << fmt("%+.2fs on critical path", delta);
    const std::string evidence = stage_evidence(
        a, b, stage, /*joined=*/ia == path_a.end() && sec_b > 0.0,
        /*left=*/ib == path_b.end() && sec_a > 0.0);
    if (!evidence.empty()) os << "; " << evidence;
    finding.detail = os.str();
    diff.findings.push_back(std::move(finding));
  }
  if (std::abs(other) >= options.rank_min_s) {
    DiffFinding finding;
    finding.kind = "stage";
    finding.stage = "other";
    finding.delta_s = other;
    if (meaningful && std::abs(diff.delta_s) > 0.0)
      finding.share = other / diff.delta_s;
    finding.detail = fmt("%+.2fs across stages below the ranking floor",
                         other);
    diff.findings.push_back(std::move(finding));
  }
  std::sort(diff.findings.begin(), diff.findings.end(),
            [](const DiffFinding& x, const DiffFinding& y) {
              if (std::abs(x.delta_s) != std::abs(y.delta_s))
                return std::abs(x.delta_s) > std::abs(y.delta_s);
              return x.stage < y.stage;
            });
  if (meaningful && std::abs(diff.delta_s) > 0.0)
    diff.attributed_share = diff.attributed_s / diff.delta_s;

  // Supporting evidence, ranked after the attribution proper.
  std::vector<DiffFinding> evidence;
  const double wait_a = path_wait_seconds(a);
  const double wait_b = path_wait_seconds(b);
  if (std::abs(wait_b - wait_a) >= options.rank_min_s) {
    DiffFinding finding;
    finding.kind = "queue-wait";
    finding.delta_s = wait_b - wait_a;
    finding.detail =
        fmt("critical-path wait time %.2fs -> %.2fs (%+.2fs; included in "
            "the stage attribution above)",
            wait_a, wait_b, wait_b - wait_a);
    evidence.push_back(std::move(finding));
  }
  std::set<std::string> groups;
  for (const auto& g : a.stragglers) groups.insert(g.group);
  for (const auto& g : b.stragglers) groups.insert(g.group);
  for (const std::string& group : groups) {
    const std::size_t count_a = flagged_count(a, group);
    const std::size_t count_b = flagged_count(b, group);
    const std::string cause_a = dominant_cause(a, group);
    const std::string cause_b = dominant_cause(b, group);
    if (count_a == count_b && cause_a == cause_b) continue;
    DiffFinding finding;
    finding.kind = "straggler-shift";
    finding.stage = group;
    std::ostringstream os;
    os << "stragglers " << count_a << " -> " << count_b;
    if (cause_a != cause_b && !(cause_a.empty() && cause_b.empty()))
      os << ", dominant cause "
         << (cause_a.empty() ? "none" : cause_a) << " -> "
         << (cause_b.empty() ? "none" : cause_b);
    finding.detail = os.str();
    evidence.push_back(std::move(finding));
  }
  std::sort(evidence.begin(), evidence.end(),
            [](const DiffFinding& x, const DiffFinding& y) {
              if (std::abs(x.delta_s) != std::abs(y.delta_s))
                return std::abs(x.delta_s) > std::abs(y.delta_s);
              return x.stage < y.stage;
            });
  for (auto& finding : evidence) diff.findings.push_back(std::move(finding));

  // Verdict.
  const DiffFinding* top = nullptr;
  for (const auto& finding : diff.findings)
    if (finding.kind == "stage" && finding.stage != "other") {
      top = &finding;
      break;
    }
  std::ostringstream verdict;
  if (!meaningful) {
    verdict << fmt("no regression: makespan %.2fs -> %.2fs (%+.2fs)",
                   diff.makespan_a, diff.makespan_b, diff.delta_s);
  } else if (diff.regression) {
    if (top)
      verdict << top->stage
              << fmt(" %+.2fs (%.0f%% of the %+.2fs makespan delta)",
                     top->delta_s, 100.0 * top->share, diff.delta_s)
              << (top->detail.empty() ? "" : ": ") << top->detail;
    else
      verdict << fmt("regression: makespan %.2fs -> %.2fs (%+.2fs), no "
                     "stage attribution available",
                     diff.makespan_a, diff.makespan_b, diff.delta_s);
  } else {
    verdict << fmt("improvement: makespan %.2fs -> %.2fs (%+.2fs)",
                   diff.makespan_a, diff.makespan_b, diff.delta_s);
    if (top)
      verdict << "; largest gain " << top->stage
              << fmt(" %+.2fs", top->delta_s);
  }
  diff.verdict = verdict.str();
  return diff;
}

}  // namespace

TraceReport parse_trace_report(std::string_view text) {
  JsonValue doc;
  try {
    doc = util::parse_json(text);
  } catch (const util::JsonError& error) {
    throw ReportParseError(
        std::string(error.truncated() ? "truncated report JSON: "
                                      : "malformed report JSON: ") +
            error.what(),
        error.truncated());
  }
  if (!doc.is_object())
    throw ReportParseError("report JSON is not an object", false);
  const std::string schema = doc.str("schema");
  if (schema != kReportSchema)
    throw ReportParseError(
        "unsupported report schema \"" + schema + "\" (expected " +
            std::string(kReportSchema) + ")",
        false);
  const JsonValue* processes = doc.find("processes");
  if (!processes || !processes->is_array())
    throw ReportParseError(
        "report JSON has no \"processes\" array (truncated or not a trace "
        "report?)",
        false);
  TraceReport report;
  for (const JsonValue& p : processes->array) {
    if (!p.is_object())
      throw ReportParseError("process entry is not an object", false);
    report.processes.push_back(parse_process(p));
  }
  return report;
}

bool TraceDiff::regression() const {
  for (const auto& process : processes)
    if (process.regression) return true;
  return false;
}

TraceDiff diff_reports(const TraceReport& a, const TraceReport& b,
                       const DiffOptions& options) {
  TraceDiff diff;
  // Align by process name first (the normal case: same workflow rerun),
  // then pair leftovers in order so renamed runs still diff.
  std::vector<bool> used(b.processes.size(), false);
  std::vector<std::pair<const ProcessReport*, const ProcessReport*>> pairs;
  for (const auto& pa : a.processes) {
    const ProcessReport* match = nullptr;
    for (std::size_t i = 0; i < b.processes.size(); ++i)
      if (!used[i] && b.processes[i].process == pa.process) {
        used[i] = true;
        match = &b.processes[i];
        break;
      }
    pairs.emplace_back(&pa, match);
  }
  std::size_t next_unused = 0;
  for (auto& [pa, pb] : pairs) {
    if (pb) continue;
    while (next_unused < b.processes.size() && used[next_unused])
      ++next_unused;
    if (next_unused < b.processes.size()) {
      used[next_unused] = true;
      pb = &b.processes[next_unused];
    }
  }
  for (const auto& [pa, pb] : pairs)
    if (pb) diff.processes.push_back(diff_process(*pa, *pb, options));
  return diff;
}

std::string TraceDiff::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.field("schema", kDiffSchema);
  w.field("regression", regression());
  w.key("processes").begin_array();
  for (const auto& p : processes) {
    w.item("\n ").begin_object();
    w.field("process_a", p.process_a);
    w.field("process_b", p.process_b);
    w.field("makespan_a", p.makespan_a);
    w.field("makespan_b", p.makespan_b);
    w.field("delta_s", p.delta_s);
    w.field("regression", p.regression);
    w.field("improvement", p.improvement);
    w.field("attributed_s", p.attributed_s);
    w.field("attributed_share", p.attributed_share);
    w.field("verdict", p.verdict);
    w.key("findings", "\n  ").begin_array();
    for (const auto& f : p.findings) {
      w.item("\n   ").begin_object();
      w.field("kind", f.kind);
      w.field("stage", f.stage);
      w.field("delta_s", f.delta_s);
      w.field("share", f.share);
      w.field("detail", f.detail);
      w.end_object();
    }
    w.end_array("\n  ").end_object();
  }
  w.end_array("\n").end_object();
  return w.take();
}

std::string TraceDiff::render_text() const {
  std::ostringstream os;
  if (processes.empty()) {
    os << "trace diff: no aligned processes\n";
    return os.str();
  }
  for (const auto& p : processes) {
    os << "process " << p.process_a;
    if (p.process_b != p.process_a) os << " -> " << p.process_b;
    os << ": " << p.verdict << "\n";
    for (const auto& f : p.findings) {
      char line[512];
      if (f.kind == "stage")
        std::snprintf(line, sizeof line, "  %-12s %+9.2fs  (%5.1f%%)  %s\n",
                      f.stage.c_str(), f.delta_s, 100.0 * f.share,
                      f.detail.c_str());
      else
        std::snprintf(line, sizeof line, "  [%s] %s%s%s\n", f.kind.c_str(),
                      f.stage.c_str(), f.stage.empty() ? "" : ": ",
                      f.detail.c_str());
      os << line;
    }
  }
  return os.str();
}

}  // namespace mfw::obs
