// MetricsRegistry: named counters, gauges, and distribution series with
// labeled dimensions (facility, stage, node, product, topic).
//
// Naming convention: `mfw.<module>.<name>` with unit suffixes `_total`
// (monotonic counters), `_seconds` / `_bytes` (distributions), bare nouns
// for gauges — see DESIGN.md §7. A metric series is identified by
// (name, sorted label set); the same name with different labels forms
// independent series, like Prometheus.
//
// Distributions reuse util::StreamingStats (always) plus util::Histogram
// (when the observe() call supplies bucket bounds). Like the TraceRecorder,
// the registry is globally reachable, thread-safe, and free when disabled:
// call sites guard with enabled() so labels are never materialised on the
// off path.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/stats.hpp"

namespace mfw::obs {

/// Label dimensions for a metric series, e.g. {{"stage", "preprocess"},
/// {"node", "3"}}. Order-insensitive: series identity uses the sorted set.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Bucket layout for a distribution's optional util::Histogram.
struct HistogramSpec {
  double lo = 0.0;
  double hi = 1.0;
  std::size_t bins = 20;
};

/// One distribution series: streaming moments plus optional fixed buckets.
struct Distribution {
  util::StreamingStats stats;
  std::optional<util::Histogram> histogram;
};

class MetricsRegistry {
 public:
  /// Global registry used by the instrumented modules; direct construction
  /// is supported for tests.
  static MetricsRegistry& instance();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Adds `delta` to a monotonic counter series (created on first use).
  /// No-op when disabled.
  void counter_add(std::string_view name, double delta,
                   const Labels& labels = {});

  /// Sets a gauge series to its latest value. No-op when disabled.
  void gauge_set(std::string_view name, double value,
                 const Labels& labels = {});

  /// Feeds one sample into a distribution series. The first observation
  /// carrying a HistogramSpec fixes the series' bucket layout; spec-less
  /// observations still accumulate StreamingStats. No-op when disabled.
  void observe(std::string_view name, double value, const Labels& labels = {},
               std::optional<HistogramSpec> spec = std::nullopt);

  /// Drops every series (between runs).
  void clear();

  // -- inspection (exporter + tests) ----------------------------------------
  /// Counter value; 0.0 for unknown series.
  double counter(std::string_view name, const Labels& labels = {}) const;
  /// Latest gauge value; nullopt for unknown series.
  std::optional<double> gauge(std::string_view name,
                              const Labels& labels = {}) const;
  /// Copy of a distribution series; nullopt for unknown series.
  std::optional<Distribution> distribution(std::string_view name,
                                           const Labels& labels = {}) const;

  struct CounterEntry { std::string name; Labels labels; double value; };
  struct GaugeEntry { std::string name; Labels labels; double value; };
  struct DistributionEntry {
    std::string name;
    Labels labels;
    Distribution dist;
  };

  /// Sorted snapshots (by name, then labels) for the text exporter.
  std::vector<CounterEntry> counters() const;
  std::vector<GaugeEntry> gauges() const;
  std::vector<DistributionEntry> distributions() const;

 private:
  using SeriesKey = std::pair<std::string, Labels>;
  static SeriesKey key_of(std::string_view name, const Labels& labels);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<SeriesKey, double> counters_;
  std::map<SeriesKey, double> gauges_;
  std::map<SeriesKey, Distribution> distributions_;
};

}  // namespace mfw::obs
