// Per-granule lineage (DESIGN.md §15): the causal chain each granule
// travelled through the multi-facility pipeline — download of its member
// files, triplet assembly ("granule.ready"), preprocess, the flow-engine
// encode/label states, inference, and serve-side touches — reconstructed
// from TraceRecorder snapshots by the same track/category/arg conventions
// obs/analyze.hpp consumes (the "granule"/"key" identity arg threaded
// through every instrumented stage).
//
// Two consumption modes, mirroring the full-trace vs rollup split:
//
//  - extract_lineage(): post-hoc, O(events) — walks a recorder snapshot and
//    materialises every hop of every granule with a per-hop wait/service
//    split (queue_wait_s when the span recorded it, otherwise the causal gap
//    since the previous hop ended). Powers `mfwctl lineage`.
//  - LineageRollup: a SpanSink for year-scale campaigns — per granule it
//    keeps one fixed-size summary (first/last touch, hop counts, wait and
//    service seconds), bounded by `max_granules`: when the table is full the
//    oldest-completed granule is folded into whole-campaign latency/wait
//    sketches (LogHistogram) and evicted, so memory is O(max_granules)
//    regardless of campaign length.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/rollup.hpp"
#include "obs/trace.hpp"

namespace mfw::obs {

/// One hop of a granule's causal chain, in time order.
struct LineageHop {
  std::string kind;    // "download" | "granule.ready" | "preprocess" |
                       // "inference" | "flow" | "flow:<state>" | "serve" |
                       // "<stage>" for unrecognised compute lanes
  std::string name;    // span / instant name
  std::string track;   // worker lane it ran on
  double start = 0.0;
  double end = 0.0;       // == start for instants
  double gap_s = 0.0;     // idle time since the previous hop of this granule
  double queue_wait_s = 0.0;  // queue_wait_s arg when recorded, else 0
  std::string status;     // "status" arg when present ("ok", "failed", ...)
  int attempts = 0;       // "attempts" arg when present

  double service_s() const { return end - start; }
  /// Wait charged to this hop: explicit queue wait when the span recorded
  /// it, otherwise the causal gap since the previous hop.
  double wait_s() const { return queue_wait_s > 0.0 ? queue_wait_s : gap_s; }
};

/// The full causal chain of one granule.
struct GranuleLineage {
  std::string granule;
  std::string process;
  std::vector<LineageHop> hops;  // time-ordered
  double first_start = 0.0;
  double last_end = 0.0;
  double service_s = 0.0;  // sum of hop service times
  double wait_s = 0.0;     // sum of hop waits
  bool ready = false;      // saw the granule.ready assembly instant
  bool failed = false;     // any hop reported status "failed"

  /// End-to-end latency: first causal touch to last.
  double latency_s() const {
    return last_end > first_start ? last_end - first_start : 0.0;
  }
};

struct LineageReport {
  std::vector<GranuleLineage> granules;  // sorted by latency, slowest first

  const GranuleLineage* find(const std::string& granule) const;

  /// Machine-readable ({"schema": "mfw.lineage/v1", ...}). `max_granules`
  /// caps the emitted chains (0 = all).
  std::string to_json(std::size_t max_granules = 0) const;
  /// Summary table of the slowest `top` granules.
  std::string render_text(std::size_t top = 10) const;
  /// Full causal timeline of one granule with the wait/service split per
  /// hop; empty string when the granule is unknown.
  std::string render_granule(const std::string& granule) const;
};

struct LineageOptions {
  /// Granules whose chain is only a download (no ready/compute hop) are
  /// usually cancelled tails; keep them unless this is set.
  bool drop_download_only = false;
};

/// Reconstructs every granule's chain from a recorder snapshot. Convention-
/// driven like analyze_trace(): any span or instant carrying a "granule" or
/// "key" arg joins the chain of that granule.
LineageReport extract_lineage(const TraceRecorder& recorder,
                              const LineageOptions& options = {});

/// Bounded-memory streaming lineage for year-scale campaigns. Attach as the
/// recorder's SpanSink (or chain behind TelemetryBus::set_next). Thread-safe
/// like SpanRollup: sink callbacks arrive under the recorder lock, accessors
/// may run on another thread.
struct LineageRollupConfig {
  /// Live per-granule summaries kept; past this, the oldest granule is
  /// folded into the aggregate sketches and evicted.
  std::size_t max_granules = 65536;
};

class LineageRollup : public SpanSink {
 public:
  /// Fixed-size per-granule accumulator (no per-hop storage).
  struct Summary {
    double first_start = 0.0;
    double last_end = 0.0;
    double service_s = 0.0;
    double wait_s = 0.0;
    std::uint32_t hops = 0;
    std::uint16_t downloads = 0;
    std::uint16_t computes = 0;   // preprocess + inference tasks
    std::uint16_t flow_states = 0;
    bool ready = false;
    bool failed = false;

    double latency_s() const {
      return last_end > first_start ? last_end - first_start : 0.0;
    }
  };

  explicit LineageRollup(LineageRollupConfig config = {});

  void on_span(const TraceTrack& track, const TraceSpan& span) override;
  void on_instant(const TraceTrack& track,
                  const TraceInstant& instant) override;

  /// Chains a downstream sink fed every event verbatim (single sink slot on
  /// the recorder).
  void set_next(SpanSink* next);

  std::size_t live_granules() const;
  std::uint64_t total_granules() const;  // live + evicted
  std::uint64_t evicted() const;
  /// Copy of one live granule's summary; false when unknown (or evicted).
  bool summary(const std::string& granule, Summary& out) const;
  /// Whole-campaign end-to-end latency quantile over every granule ever
  /// seen (live + evicted), sketch accuracy LogHistogram::kMaxRelativeError.
  double latency_quantile(double q) const;
  double wait_quantile(double q) const;

  /// {"schema": "mfw.lineage_rollup/v1", ...}: counts, quantiles, and the
  /// slowest `top` live granules.
  std::string to_json(std::size_t top = 10) const;

 private:
  void touch_locked(const std::string& granule, double start, double end,
                    double wait_s, bool is_download, bool is_compute,
                    bool is_flow_state, bool ready, bool failed);
  void evict_one_locked();
  void fold_locked(const Summary& summary);

  mutable std::mutex mu_;
  LineageRollupConfig config_;
  SpanSink* next_ = nullptr;
  std::map<std::string, Summary> live_;
  std::deque<std::string> order_;  // first-touch order, drives FIFO eviction
  LogHistogram latency_hist_;  // every granule ever seen (fold on evict +
  LogHistogram wait_hist_;     // on accessor snapshots of live granules)
  std::uint64_t evicted_ = 0;
};

}  // namespace mfw::obs
