#include "obs/rollup.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/export.hpp"
#include "util/json_writer.hpp"

namespace mfw::obs {

namespace {

std::string num(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

}  // namespace

std::int64_t window_index(double t, double window_s) {
  auto index = static_cast<std::int64_t>(std::floor(t / window_s));
  // The division rounds before floor(), so a sample exactly on a window edge
  // can be assigned to the window it closes instead of the one it opens.
  // Nudge until index * window_s <= t < (index + 1) * window_s holds.
  if (static_cast<double>(index + 1) * window_s <= t) {
    ++index;
  } else if (static_cast<double>(index) * window_s > t) {
    --index;
  }
  return index;
}

std::string track_stage(std::string_view track_name) {
  const auto slash = track_name.find('/');
  return std::string(slash == std::string_view::npos
                         ? track_name
                         : track_name.substr(0, slash));
}

void LogHistogram::add(double value) {
  ++total_;
  std::size_t bucket = 0;
  if (value > 0.0) {
    int exp = 0;
    const double frac = std::frexp(value, &exp);  // value = frac * 2^exp
    const int e = exp - 1;                        // value in [2^e, 2^(e+1))
    if (e >= kMaxExp) {
      bucket = kBucketCount - 1;
    } else if (e >= kMinExp) {
      const int sub = std::clamp(
          static_cast<int>((frac * 2.0 - 1.0) * kSubBuckets), 0,
          kSubBuckets - 1);
      bucket = 1 + static_cast<std::size_t>(e - kMinExp) * kSubBuckets +
               static_cast<std::size_t>(sub);
    }
  }
  ++counts_[bucket];
}

void LogHistogram::merge(const LogHistogram& other) {
  for (std::size_t b = 0; b < kBucketCount; ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
}

double LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  rank = std::clamp<std::uint64_t>(rank, 1, total_);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBucketCount; ++b) {
    cumulative += counts_[b];
    if (cumulative < rank) continue;
    if (b == 0) return 0.0;  // underflow: below 2^kMinExp (or non-positive)
    if (b == kBucketCount - 1) return std::ldexp(1.0, kMaxExp);
    const std::size_t idx = b - 1;
    const int e = kMinExp + static_cast<int>(idx / kSubBuckets);
    const auto sub = static_cast<double>(idx % kSubBuckets);
    const double lo = std::ldexp(1.0 + sub / kSubBuckets, e);
    const double hi = std::ldexp(1.0 + (sub + 1.0) / kSubBuckets, e);
    return std::sqrt(lo * hi);  // geometric midpoint of the hit bucket
  }
  return 0.0;
}

WindowedSeries::WindowedSeries(RollupConfig config) : config_(config) {
  if (config_.window_s <= 0.0) config_.window_s = 60.0;
  if (config_.max_windows == 0) config_.max_windows = 1;
}

void WindowedSeries::add(double t, double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  total_hist_.add(value);

  const auto index = window_index(t, config_.window_s);
  WindowStats fresh;
  fresh.index = index;
  WindowStats* window = nullptr;
  if (windows_.empty() || index > windows_.back().index) {
    windows_.push_back(fresh);
    window = &windows_.back();
  } else {
    const auto pos = std::lower_bound(
        windows_.begin(), windows_.end(), index,
        [](const WindowStats& w, std::int64_t i) { return w.index < i; });
    if (pos != windows_.end() && pos->index == index) {
      window = &*pos;
    } else if (pos == windows_.begin() && evicted_ > 0) {
      // Older than the retained horizon: fold into the oldest window rather
      // than resurrect evicted history. An out-of-order sample merely older
      // than the current front (nothing evicted yet) still gets its own
      // window below — folding it here would miscount the front window.
      window = &windows_.front();
    } else {
      window = &*windows_.insert(pos, fresh);
    }
  }
  if (window->count == 0) {
    window->min = window->max = value;
  } else {
    window->min = std::min(window->min, value);
    window->max = std::max(window->max, value);
  }
  ++window->count;
  window->sum += value;
  window->hist.add(value);
  while (windows_.size() > config_.max_windows) {
    windows_.pop_front();
    ++evicted_;
  }
}

SpanRollup::SpanRollup(RollupConfig config) : config_(config) {}

void SpanRollup::on_span(const TraceTrack& track, const TraceSpan& span) {
  std::lock_guard lock(mu_);
  ++spans_seen_;
  const std::string base = track_stage(track.name) + "/" + span.category;
  auto series_at = [this](const std::string& name) -> WindowedSeries& {
    return series_.try_emplace(name, config_).first->second;
  };
  series_at(base + ".duration_s").add(span.end, span.duration());
  for (const auto& [key, value] : span.args) {
    if (key != "queue_wait_s") continue;
    char* end = nullptr;
    const double wait = std::strtod(value.c_str(), &end);
    if (end != value.c_str())
      series_at(base + ".queue_wait_s").add(span.end, wait);
  }
}

void SpanRollup::on_instant(const TraceTrack& track,
                            const TraceInstant& instant) {
  std::lock_guard lock(mu_);
  ++instants_seen_;
  ++instant_counts_[track_stage(track.name) + "/" + instant.name];
}

std::uint64_t SpanRollup::spans_seen() const {
  std::lock_guard lock(mu_);
  return spans_seen_;
}

std::uint64_t SpanRollup::instants_seen() const {
  std::lock_guard lock(mu_);
  return instants_seen_;
}

std::vector<std::string> SpanRollup::series_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, unused] : series_) names.push_back(name);
  return names;
}

WindowedSeries SpanRollup::series(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = series_.find(name);
  return it != series_.end() ? it->second : WindowedSeries(config_);
}

std::string SpanRollup::to_json() const {
  std::lock_guard lock(mu_);
  util::JsonWriter w;
  w.begin_object();
  w.field("window_s", config_.window_s);
  w.field("max_windows", config_.max_windows);
  w.field("quantile_max_relative_error", LogHistogram::kMaxRelativeError);
  w.field("spans_seen", spans_seen_);
  w.field("instants_seen", instants_seen_);
  w.key("instants").begin_object();
  for (const auto& [name, count] : instant_counts_) w.field(name, count);
  w.end_object();
  w.key("series").begin_array();
  for (const auto& [name, s] : series_) {
    w.item("\n  ").begin_object();
    w.field("name", name);
    w.field("count", s.count());
    w.field("sum", s.sum());
    w.field("min", s.min());
    w.field("max", s.max());
    w.field("mean", s.mean());
    w.field("p50", s.p50());
    w.field("p99", s.p99());
    w.field("evicted_windows", s.evicted_windows());
    w.key("windows").begin_array();
    for (const auto& win : s.windows()) {
      w.inline_item().begin_object();
      w.field("t0", static_cast<double>(win.index) * s.config().window_s);
      w.field("count", win.count);
      w.field("sum", win.sum);
      w.field("min", win.min);
      w.field("max", win.max);
      w.field("p50", win.p50());
      w.field("p99", win.p99());
      w.end_object();
    }
    w.end_array().end_object();
  }
  w.raw("\n").end_array().end_object();
  return w.take();
}

std::string SpanRollup::summary() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  os << "rollup: " << spans_seen_ << " spans, " << instants_seen_
     << " instants, " << series_.size() << " series (window "
     << num(config_.window_s) << " s, cap " << config_.max_windows << ")\n";
  for (const auto& [name, s] : series_) {
    char line[256];
    std::snprintf(line, sizeof line,
                  "  %-36s n=%-8llu mean=%-10.4g p50=%-10.4g p99=%-10.4g "
                  "max=%-10.4g windows=%zu+%llu evicted\n",
                  name.c_str(),
                  static_cast<unsigned long long>(s.count()), s.mean(),
                  s.p50(), s.p99(), s.max(), s.windows().size(),
                  static_cast<unsigned long long>(s.evicted_windows()));
    os << line;
  }
  return os.str();
}

}  // namespace mfw::obs
