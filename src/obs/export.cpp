#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <tuple>

#include "util/json_writer.hpp"
#include "util/log.hpp"

namespace mfw::obs {

namespace {

constexpr const char* kComponent = "obs";

using util::append_json_escaped;

std::string json_string(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  append_json_escaped(out, text);
  out += '"';
  return out;
}

/// Seconds -> trace-event microseconds with fixed sub-microsecond precision
/// (fixed notation keeps the JSON friendly to lenient parsers).
std::string micros(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

std::string json_args(const Args& args) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) out += ",";
    first = false;
    out += json_string(key);
    out += ":";
    out += json_string(value);
  }
  out += "}";
  return out;
}

std::string number_text(double value) {
  char buf[48];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value > -1e15 && value < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  return buf;
}

std::string labels_text(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    out += value;
    out += "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string json_escape(std::string_view text) {
  return util::json_escape(text);
}

std::string to_chrome_trace_json(const TraceRecorder& recorder) {
  const auto processes = recorder.processes();
  const auto tracks = recorder.tracks();
  const auto spans = recorder.spans();
  const auto instants = recorder.instants();

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) os << ",";
    first = false;
    os << "\n" << event;
  };

  for (const auto& process : processes) {
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(process.pid) +
         ",\"name\":\"process_name\",\"args\":{\"name\":" +
         json_string(process.name) + "}}");
  }
  for (const auto& track : tracks) {
    const auto pid = std::to_string(track.process);
    const auto tid = std::to_string(track.tid);
    emit("{\"ph\":\"M\",\"pid\":" + pid + ",\"tid\":" + tid +
         ",\"name\":\"thread_name\",\"args\":{\"name\":" +
         json_string(track.name) + "}}");
  }
  for (const auto& span : spans) {
    const TraceTrack& track = tracks.at(span.track);
    std::string event = "{\"ph\":\"X\",\"pid\":" +
                        std::to_string(track.process) +
                        ",\"tid\":" + std::to_string(track.tid) +
                        ",\"cat\":" + json_string(span.category) +
                        ",\"name\":" + json_string(span.name) +
                        ",\"ts\":" + micros(span.start) + ",\"dur\":" +
                        micros(span.closed() ? span.end - span.start : 0.0);
    Args args = span.args;
    if (!span.closed()) args.emplace_back("open", "true");
    event += ",\"args\":" + json_args(args) + "}";
    emit(event);
  }
  for (const auto& inst : instants) {
    const TraceTrack& track = tracks.at(inst.track);
    emit("{\"ph\":\"i\",\"pid\":" + std::to_string(track.process) +
         ",\"tid\":" + std::to_string(track.tid) + ",\"cat\":" +
         json_string(inst.category) + ",\"name\":" + json_string(inst.name) +
         ",\"ts\":" + micros(inst.at) + ",\"s\":\"t\",\"args\":" +
         json_args(inst.args) + "}");
  }
  os << "\n]}\n";
  return os.str();
}

std::string to_metrics_text(const MetricsRegistry& registry) {
  // The dump is diffed across runs (health/report smoke gates), so emission
  // order is part of the format: sort by (name, labels) here rather than
  // rely on whatever order the registry snapshots happen to use.
  const auto by_series = [](const auto& a, const auto& b) {
    return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
  };
  auto counters = registry.counters();
  auto gauges = registry.gauges();
  auto distributions = registry.distributions();
  std::stable_sort(counters.begin(), counters.end(), by_series);
  std::stable_sort(gauges.begin(), gauges.end(), by_series);
  std::stable_sort(distributions.begin(), distributions.end(), by_series);

  std::ostringstream os;
  os << "# mfw metrics dump (counters, gauges, distributions)\n";
  for (const auto& entry : counters) {
    os << entry.name << labels_text(entry.labels) << " "
       << number_text(entry.value) << "\n";
  }
  for (const auto& entry : gauges) {
    os << entry.name << labels_text(entry.labels) << " "
       << number_text(entry.value) << "\n";
  }
  for (const auto& entry : distributions) {
    const auto& stats = entry.dist.stats;
    os << entry.name << labels_text(entry.labels) << " count="
       << stats.count() << " mean=" << number_text(stats.mean())
       << " min=" << number_text(stats.min())
       << " max=" << number_text(stats.max())
       << " stddev=" << number_text(stats.stddev()) << "\n";
    if (entry.dist.histogram) {
      std::istringstream rows(entry.dist.histogram->render());
      std::string row;
      while (std::getline(rows, row)) os << "  " << row << "\n";
    }
  }
  return os.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    MFW_ERROR(kComponent, "cannot write ", path);
    return false;
  }
  out << content;
  return out.good();
}

void set_globally_enabled(bool on) {
  TraceRecorder::instance().set_enabled(on);
  MetricsRegistry::instance().set_enabled(on);
}

}  // namespace mfw::obs
