// Trace-analysis engine (DESIGN.md §10): turns a recorded span tree into the
// diagnoses the paper reads off telemetry by hand — the critical path through
// the per-granule download -> preprocess -> inference dataflow DAG, per-stage
// and per-node utilization, queue-wait vs service-time breakdowns, and a
// configurable straggler detector with cause attribution (WAN retry/slowness
// vs queue wait vs input size vs node contention).
//
// The analyzer is convention-driven: it consumes only TraceRecorder snapshots
// and recognises the track/category/arg naming used by the instrumented
// modules (stages/<stage> stage spans, <stage>/node<i>/w<j> compute spans
// with queue_wait_s, download/w<k> download spans with attempts, flows/run<n>
// provenance bridges, serve/api query spans, granule.ready instants, and the
// "granule" identity arg threaded through every stage). It has no dependency
// on pipeline/flow types,
// so it works on synthetic traces in tests and on any future workflow that
// follows the same conventions.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace mfw::obs {

struct AnalyzeOptions {
  /// Straggler threshold: flag tasks with duration > straggler_k * median of
  /// their group (per-stage compute groups, downloads, flow states).
  double straggler_k = 3.0;
  /// Groups smaller than this are not scanned (medians too noisy).
  std::size_t min_group = 8;
  /// Attribution: queue wait >= queue_share * duration => "queue-wait".
  double queue_share = 0.5;
  /// Payload > payload_factor * group median payload => "input-size".
  double payload_factor = 1.5;
  /// Bins per utilization timeline.
  std::size_t utilization_bins = 48;
  /// Flagged stragglers listed per group (the rest are only counted).
  std::size_t max_flagged = 16;
};

/// Per-stage aggregate: the stage span window, task counts, busy time over
/// distinct worker lanes, and duration/queue-wait quantiles.
struct StageStat {
  std::string stage;
  double start = 0.0;
  double end = 0.0;
  std::size_t tasks = 0;
  std::size_t workers = 0;  // distinct worker lanes seen
  double busy_s = 0.0;
  double utilization = 0.0;  // busy_s / (duration * workers)
  double p50 = 0.0, p99 = 0.0, max = 0.0;              // task service time
  double queue_p50 = 0.0, queue_p99 = 0.0, queue_max = 0.0;

  double duration() const { return end > start ? end - start : 0.0; }
};

struct NodeStat {
  std::string stage;
  std::string node;  // "node0", or the worker lane itself when un-nested
  std::size_t workers = 0;
  std::size_t tasks = 0;
  double busy_s = 0.0;
  double utilization = 0.0;  // busy_s / (stage duration * workers)
};

/// One tile of the critical path. Segments are contiguous and cover
/// [process start, process end]; `kind` says what the makespan was spent on
/// at that moment (a task, or a named wait between tasks).
struct PathSegment {
  std::string kind;     // e.g. "download", "queue-wait", "monitor-wait"
  std::string detail;   // span name or wait cause
  std::string granule;  // granule identity when known
  double start = 0.0;
  double end = 0.0;

  double duration() const { return end - start; }
};

struct CriticalPath {
  double makespan = 0.0;
  double length = 0.0;    // sum of segment durations
  double coverage = 0.0;  // length / makespan (≈1 when the walk tiles fully)
  std::string dominant_stage;  // stage with the largest on-path time
  std::vector<PathSegment> segments;  // in time order
  std::vector<std::pair<std::string, double>> by_stage;  // stage -> seconds
};

struct Straggler {
  std::string group;
  std::string name;
  std::string track;
  std::string granule;
  std::string attribution;  // wan-retry | wan-slow | queue-wait | input-size
                            // | node-contention | orchestration | unattributed
  double duration = 0.0;
  double ratio = 0.0;  // duration / group median
  double queue_wait = 0.0;
};

struct StragglerGroup {
  std::string group;  // "download", "preprocess", "inference", "flow:<state>"
  std::size_t count = 0;        // tasks scanned
  double median = 0.0;          // group median duration
  std::size_t flagged_count = 0;
  std::vector<Straggler> flagged;  // top offenders, capped at max_flagged
};

/// Binned busy-worker timeline for one stage: busy[i] is the average number
/// of busy workers in bin [t0 + i*bin_s, t0 + (i+1)*bin_s).
struct UtilizationTimeline {
  std::string stage;
  double t0 = 0.0;
  double bin_s = 0.0;
  std::vector<double> busy;
};

struct ProcessReport {
  std::string process;
  double start = 0.0;
  double end = 0.0;
  std::string dominant_stage;  // longest stage span (the rendered timeline's
                               // makespan-dominant stage)
  std::vector<StageStat> stages;
  std::vector<NodeStat> nodes;
  std::vector<UtilizationTimeline> timelines;
  CriticalPath critical_path;
  std::vector<StragglerGroup> stragglers;
  std::size_t spans = 0;
  std::size_t instants = 0;

  double makespan() const { return end > start ? end - start : 0.0; }
};

struct TraceReport {
  std::vector<ProcessReport> processes;

  /// Machine-readable report ({"schema": "mfw.trace_report/v1", ...}).
  std::string to_json() const;
  /// Human-readable summary (stages, critical path, stragglers).
  std::string render_text() const;
};

/// Analyzes a recorder snapshot. Processes with no events are skipped.
TraceReport analyze_trace(const TraceRecorder& recorder,
                          const AnalyzeOptions& options = {});

}  // namespace mfw::obs
