// Crash-safe flight recorder (DESIGN.md §15): an always-on fixed-size ring
// of the most recent spans, instants, and health episodes — the "black box"
// a multi-facility campaign dumps when something goes wrong, long after the
// full trace would have been unaffordable to keep.
//
// FlightRecorder is a SpanSink peer of SpanRollup/TelemetryBus: attach it as
// the recorder's sink (or chain it behind either via set_next) and every
// closed span / instant is copied into a preallocated ring, newest
// overwriting oldest. Memory is capacity * sizeof(Entry) forever; a year-
// scale campaign with RetentionMode::kStatsOnly plus a flight ring retains
// full forensic context for the *last few minutes* of sim time at zero
// amortised growth.
//
// Zero-perturbation contract (same argument as the watch layer, sha256-
// gated in tools/ci_diff_smoke.sh): the ring only *reads* the event stream
// under the recorder lock, touches no simulation state, takes no clock of
// its own, and its dump path runs strictly outside recording. A run with
// the flight recorder attached is bit-for-bit identical to one without.
//
// Dump triggers, most automatic first:
//  - arm_crash_dump(path): installs a std::terminate hook that writes the
//    ring before aborting — uncaught exceptions and logic-error aborts
//    leave a black box behind.
//  - HealthMonitor::set_alert_hook: the watch layer calls note_alert() on
//    every SLO transition; callers (mfwctl watch --flight-out) dump when a
//    firing alert lands.
//  - dump(path, reason): explicit (end of run, operator request).
//
// The dump is Chrome-trace JSON (loads in Perfetto / chrome://tracing) with
// the dump reason, drop accounting, and alert episodes as metadata.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace mfw::obs {

struct Alert;  // obs/watch.hpp

struct FlightConfig {
  /// Ring capacity in entries (spans + instants + health episodes share it).
  std::size_t capacity = 8192;
};

class FlightRecorder : public SpanSink {
 public:
  /// One ring slot: a flattened copy of a span, instant, or alert episode.
  struct Entry {
    enum class Kind : std::uint8_t { kSpan, kInstant, kAlert };
    Kind entry_kind = Kind::kSpan;
    double start = 0.0;
    double end = 0.0;  // == start for instants / alerts
    std::uint32_t process = 0;
    std::uint32_t tid = 0;
    std::string track;
    std::string category;
    std::string name;
    Args args;
    std::uint64_t seq = 0;  // monotonic arrival number
  };

  explicit FlightRecorder(FlightConfig config = {});
  ~FlightRecorder() override;

  // SpanSink: called under the recorder lock — one ring-slot copy, no
  // allocation beyond the strings, no re-entry.
  void on_span(const TraceTrack& track, const TraceSpan& span) override;
  void on_instant(const TraceTrack& track,
                  const TraceInstant& instant) override;

  /// Chains a downstream sink fed every event verbatim (the recorder holds
  /// a single sink slot). nullptr detaches.
  void set_next(SpanSink* next);

  /// Records a health-alert episode into the ring (wired to
  /// HealthMonitor::set_alert_hook by mfwctl watch).
  void note_alert(const Alert& alert);

  // -- accounting -------------------------------------------------------------
  std::uint64_t seen() const;
  /// Entries overwritten by newer arrivals (seen - retained).
  std::uint64_t overwritten() const;
  std::size_t size() const;
  std::size_t capacity() const;
  /// Ring contents oldest-first (copy; safe from any thread).
  std::vector<Entry> snapshot() const;

  /// Chrome-trace JSON of the ring with `reason`, drop accounting, and
  /// entry horizon as metadata. Loads in Perfetto.
  std::string to_chrome_trace_json(std::string_view reason) const;
  /// Writes to_chrome_trace_json(reason) to `path`; false on I/O error.
  bool dump(const std::string& path, std::string_view reason) const;

  /// Installs a process-wide std::terminate hook that dumps this ring to
  /// `path` (reason "terminate") before the previous handler runs. One
  /// recorder may be armed at a time; re-arming replaces the target.
  /// disarm_crash_dump() (also run by the destructor) restores the previous
  /// handler.
  void arm_crash_dump(std::string path);
  void disarm_crash_dump();

 private:
  void push(Entry entry);

  mutable std::mutex mu_;
  FlightConfig config_;
  SpanSink* next_ = nullptr;
  std::vector<Entry> ring_;  // preallocated to capacity
  std::size_t head_ = 0;     // next slot to write once the ring is full
  bool full_ = false;
  std::uint64_t seen_ = 0;
};

}  // namespace mfw::obs
