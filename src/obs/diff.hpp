// Cross-run trace differencing (DESIGN.md §15): `mfwctl diff` aligns two
// mfw.trace_report/v1 documents and answers the question the paper's
// operators ask after every campaign — *why was this run slower than the
// last one?*
//
// The attribution rides on an invariant the analyzer already guarantees:
// the critical path tiles the makespan (coverage ≈ 1), and its `by_stage`
// decomposition charges every on-path second to a stage. The makespan delta
// between two runs therefore decomposes *exactly* into per-stage critical-
// path deltas — a stage that gained 90 s of on-path time explains 90 s of
// the slowdown, a stage that joined the path explains its whole on-path
// time, one that left it contributes negatively. Each stage attribution is
// then annotated with supporting evidence from the aligned stage/node/
// straggler tables: p99 and queue-wait-p99 shifts, the node whose busy time
// grew most, straggler-count and straggler-cause changes, and path-
// membership transitions ("now on critical path").
//
// Output is a ranked mfw.trace_diff/v1 document plus a one-line text
// verdict per process pair; CI perf-smoke gates on the verdict instead of
// raw makespan thresholds (tools/ci_perf_smoke.sh, tools/ci_diff_smoke.sh).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/analyze.hpp"

namespace mfw::obs {

/// Thrown by parse_trace_report: schema-version mismatch, malformed JSON,
/// or truncated input (distinguished so the CLI can say which).
class ReportParseError : public std::runtime_error {
 public:
  ReportParseError(const std::string& message, bool truncated)
      : std::runtime_error(message), truncated_(truncated) {}
  bool truncated() const { return truncated_; }

 private:
  bool truncated_;
};

/// Parses a serialized mfw.trace_report/v1 document back into a TraceReport.
/// Utilization timelines are not round-tripped (the diff does not consume
/// them); every field the diff and text renderer read is. Throws
/// ReportParseError with a message naming the file problem.
TraceReport parse_trace_report(std::string_view text);

struct DiffOptions {
  /// |makespan delta| below max(noise_abs_s, noise_rel * makespan_a) is
  /// reported as "no regression" (deterministic reruns give exactly 0).
  double noise_abs_s = 0.05;
  double noise_rel = 0.005;
  /// Stage attributions under this |delta| are folded into "other".
  double rank_min_s = 0.01;
};

/// One ranked explanation of the makespan delta. `kind` "stage" findings
/// are the attribution proper (their delta_s sums to the critical-path
/// length delta); other kinds ("queue-wait", "straggler-shift",
/// "path-membership") are supporting evidence and excluded from
/// attributed_s.
struct DiffFinding {
  std::string kind;
  std::string stage;
  std::string detail;
  double delta_s = 0.0;
  double share = 0.0;  // delta_s / makespan delta (0 when delta is noise)
};

struct ProcessDiff {
  std::string process_a;
  std::string process_b;
  double makespan_a = 0.0;
  double makespan_b = 0.0;
  double delta_s = 0.0;  // b - a
  bool regression = false;   // slower beyond noise
  bool improvement = false;  // faster beyond noise
  double attributed_s = 0.0;      // sum of "stage" finding deltas
  double attributed_share = 0.0;  // attributed_s / delta_s (when not noise)
  std::string verdict;            // one-line human summary
  std::vector<DiffFinding> findings;  // stage attributions ranked first
};

struct TraceDiff {
  std::vector<ProcessDiff> processes;

  /// True when any aligned process pair regressed beyond noise.
  bool regression() const;

  /// {"schema": "mfw.trace_diff/v1", ...}.
  std::string to_json() const;
  /// Verdict + ranked findings per process pair.
  std::string render_text() const;
};

/// Aligns processes (by name, then by order) and attributes each pair's
/// makespan delta. `a` is the baseline, `b` the candidate.
TraceDiff diff_reports(const TraceReport& a, const TraceReport& b,
                       const DiffOptions& options = {});

}  // namespace mfw::obs
