#include "obs/lineage.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <limits>
#include <sstream>

#include "util/json_writer.hpp"

namespace mfw::obs {
namespace {

const std::string* arg_of(const Args& args, std::string_view key) {
  for (const auto& [k, v] : args)
    if (k == key) return &v;
  return nullptr;
}

std::string granule_arg(const Args& args) {
  if (const std::string* g = arg_of(args, "granule")) return *g;
  if (const std::string* k = arg_of(args, "key")) return *k;
  return {};
}

double double_arg(const Args& args, std::string_view key) {
  const std::string* value = arg_of(args, key);
  if (!value) return 0.0;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  return end == value->c_str() ? 0.0 : parsed;
}

/// Hop kind for a span: the chain vocabulary is derived from the span
/// category (the analyzer's conventions), with compute lanes resolving to
/// their stage so preprocess and inference read as distinct hops.
std::string hop_kind(const TraceSpan& span, const TraceTrack& track) {
  if (span.category == "download") return "download";
  if (span.category == "compute") return track_stage(track.name);
  if (span.category == "flow") return "flow";
  if (span.category == "flow.state") return "flow:" + span.name;
  if (span.category == "serve") return "serve";
  return span.category.empty() ? std::string("span") : span.category;
}

}  // namespace

const GranuleLineage* LineageReport::find(const std::string& granule) const {
  for (const auto& chain : granules)
    if (chain.granule == granule) return &chain;
  return nullptr;
}

LineageReport extract_lineage(const TraceRecorder& recorder,
                              const LineageOptions& options) {
  const auto processes = recorder.processes();
  const auto tracks = recorder.tracks();
  const auto spans = recorder.spans();
  const auto instants = recorder.instants();

  std::map<std::uint32_t, const TraceProcess*> by_pid;
  for (const auto& process : processes) by_pid[process.pid] = &process;

  // Chains keyed by (process, granule) so a recorder holding several runs
  // (e.g. barrier + streaming in one bench) keeps them apart.
  std::map<std::pair<std::uint32_t, std::string>, GranuleLineage> chains;

  auto chain_for = [&](std::uint32_t pid,
                       const std::string& granule) -> GranuleLineage& {
    GranuleLineage& chain = chains[{pid, granule}];
    if (chain.granule.empty()) {
      chain.granule = granule;
      const auto it = by_pid.find(pid);
      if (it != by_pid.end()) chain.process = it->second->name;
    }
    return chain;
  };

  for (const auto& span : spans) {
    if (span.track >= tracks.size() || !span.closed()) continue;
    const std::string granule = granule_arg(span.args);
    if (granule.empty()) continue;
    const TraceTrack& track = tracks[span.track];
    LineageHop hop;
    hop.kind = hop_kind(span, track);
    hop.name = span.name;
    hop.track = track.name;
    hop.start = span.start;
    hop.end = span.end;
    hop.queue_wait_s = double_arg(span.args, "queue_wait_s");
    if (const std::string* status = arg_of(span.args, "status"))
      hop.status = *status;
    hop.attempts = static_cast<int>(double_arg(span.args, "attempts"));
    chain_for(track.process, granule).hops.push_back(std::move(hop));
  }
  for (const auto& instant : instants) {
    if (instant.track >= tracks.size()) continue;
    const std::string granule = granule_arg(instant.args);
    if (granule.empty()) continue;
    const TraceTrack& track = tracks[instant.track];
    LineageHop hop;
    hop.kind = instant.name == "granule.ready" ? "granule.ready"
                                               : instant.name;
    hop.name = instant.name;
    hop.track = track.name;
    hop.start = instant.at;
    hop.end = instant.at;
    chain_for(track.process, granule).hops.push_back(std::move(hop));
  }

  LineageReport report;
  report.granules.reserve(chains.size());
  for (auto& [key, chain] : chains) {
    std::sort(chain.hops.begin(), chain.hops.end(),
              [](const LineageHop& a, const LineageHop& b) {
                if (a.start != b.start) return a.start < b.start;
                if (a.end != b.end) return a.end < b.end;
                return a.kind < b.kind;
              });
    chain.first_start = chain.hops.front().start;
    double prev_end = chain.hops.front().start;
    for (LineageHop& hop : chain.hops) {
      hop.gap_s = std::max(0.0, hop.start - prev_end);
      prev_end = std::max(prev_end, hop.end);
      chain.last_end = std::max(chain.last_end, hop.end);
      chain.service_s += hop.service_s();
      chain.wait_s += hop.wait_s();
      if (hop.kind == "granule.ready") chain.ready = true;
      if (hop.status == "failed") chain.failed = true;
    }
    if (options.drop_download_only) {
      bool beyond_download = false;
      for (const LineageHop& hop : chain.hops)
        if (hop.kind != "download") beyond_download = true;
      if (!beyond_download) continue;
    }
    report.granules.push_back(std::move(chain));
  }
  std::sort(report.granules.begin(), report.granules.end(),
            [](const GranuleLineage& a, const GranuleLineage& b) {
              if (a.latency_s() != b.latency_s())
                return a.latency_s() > b.latency_s();
              return a.granule < b.granule;
            });
  return report;
}

std::string LineageReport::to_json(std::size_t max_granules) const {
  util::JsonWriter w;
  w.begin_object();
  w.field("schema", "mfw.lineage/v1");
  w.field("granules_total", granules.size());
  w.key("granules").begin_array();
  std::size_t emitted = 0;
  for (const auto& chain : granules) {
    if (max_granules && emitted++ >= max_granules) break;
    w.item("\n ").begin_object();
    w.field("granule", chain.granule);
    w.field("process", chain.process);
    w.field("first_start", chain.first_start);
    w.field("last_end", chain.last_end);
    w.field("latency_s", chain.latency_s());
    w.field("service_s", chain.service_s);
    w.field("wait_s", chain.wait_s);
    w.field("ready", chain.ready);
    w.field("failed", chain.failed);
    w.key("hops", "\n  ").begin_array();
    for (const auto& hop : chain.hops) {
      w.item("\n   ").begin_object();
      w.field("kind", hop.kind);
      w.field("name", hop.name);
      w.field("track", hop.track);
      w.field("start", hop.start);
      w.field("end", hop.end);
      w.field("service_s", hop.service_s());
      w.field("wait_s", hop.wait_s());
      w.field("gap_s", hop.gap_s);
      w.field("queue_wait_s", hop.queue_wait_s);
      w.field("status", hop.status);
      w.field("attempts", hop.attempts);
      w.end_object();
    }
    w.end_array("\n  ").end_object();
  }
  w.end_array("\n").end_object();
  return w.take();
}

std::string LineageReport::render_text(std::size_t top) const {
  std::ostringstream os;
  char line[512];
  std::snprintf(line, sizeof line, "lineage: %zu granules\n",
                granules.size());
  os << line;
  if (granules.empty()) return os.str();
  os << "  slowest granules (end-to-end latency = wait + service + "
        "overlap-hidden gaps):\n";
  std::size_t shown = 0;
  for (const auto& chain : granules) {
    if (top && shown++ >= top) break;
    std::snprintf(line, sizeof line,
                  "    %-44s %4zu hops  latency %8.1fs  service %7.1fs  "
                  "wait %7.1fs%s%s\n",
                  chain.granule.c_str(), chain.hops.size(),
                  chain.latency_s(), chain.service_s, chain.wait_s,
                  chain.ready ? "" : "  [never ready]",
                  chain.failed ? "  [failed]" : "");
    os << line;
  }
  return os.str();
}

std::string LineageReport::render_granule(const std::string& granule) const {
  const GranuleLineage* chain = find(granule);
  if (!chain) return {};
  std::ostringstream os;
  char line[512];
  std::snprintf(line, sizeof line,
                "granule %s (process %s)\n  %zu hops, latency %.2f s "
                "(service %.2f s, wait %.2f s)%s%s\n",
                chain->granule.c_str(), chain->process.c_str(),
                chain->hops.size(), chain->latency_s(), chain->service_s,
                chain->wait_s, chain->ready ? "" : "  [never ready]",
                chain->failed ? "  [failed]" : "");
  os << line;
  for (const auto& hop : chain->hops) {
    std::snprintf(
        line, sizeof line,
        "    t=%9.2f  %-16s %-32s wait %7.2fs  service %7.2fs  [%s]%s%s%s\n",
        hop.start, hop.kind.c_str(), hop.name.c_str(), hop.wait_s(),
        hop.service_s(), hop.track.c_str(),
        hop.status.empty() ? "" : "  ", hop.status.c_str(),
        hop.attempts > 1 ? "  (retried)" : "");
    os << line;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// LineageRollup
// ---------------------------------------------------------------------------

LineageRollup::LineageRollup(LineageRollupConfig config) : config_(config) {
  if (config_.max_granules == 0) config_.max_granules = 1;
}

void LineageRollup::set_next(SpanSink* next) {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = next;
}

void LineageRollup::on_span(const TraceTrack& track, const TraceSpan& span) {
  SpanSink* next = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::string granule = granule_arg(span.args);
    if (!granule.empty() && span.closed()) {
      const std::string* status = arg_of(span.args, "status");
      touch_locked(granule, span.start, span.end,
                   double_arg(span.args, "queue_wait_s"),
                   span.category == "download", span.category == "compute",
                   span.category == "flow.state",
                   /*ready=*/false, status && *status == "failed");
    }
    next = next_;
  }
  if (next) next->on_span(track, span);
}

void LineageRollup::on_instant(const TraceTrack& track,
                               const TraceInstant& instant) {
  SpanSink* next = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::string granule = granule_arg(instant.args);
    if (!granule.empty())
      touch_locked(granule, instant.at, instant.at, 0.0, false, false, false,
                   instant.name == "granule.ready", false);
    next = next_;
  }
  if (next) next->on_instant(track, instant);
}

void LineageRollup::touch_locked(const std::string& granule, double start,
                                 double end, double wait_s, bool is_download,
                                 bool is_compute, bool is_flow_state,
                                 bool ready, bool failed) {
  auto it = live_.find(granule);
  if (it == live_.end()) {
    if (live_.size() >= config_.max_granules) evict_one_locked();
    it = live_.emplace(granule, Summary{}).first;
    it->second.first_start = start;
    it->second.last_end = end;
    order_.push_back(granule);
  }
  Summary& s = it->second;
  s.first_start = std::min(s.first_start, start);
  s.last_end = std::max(s.last_end, end);
  s.service_s += end - start;
  s.wait_s += wait_s;
  ++s.hops;
  if (is_download) ++s.downloads;
  if (is_compute) ++s.computes;
  if (is_flow_state) ++s.flow_states;
  s.ready = s.ready || ready;
  s.failed = s.failed || failed;
}

void LineageRollup::evict_one_locked() {
  // FIFO by first touch: campaign granules enter roughly in time order, so
  // the front of the order queue is the granule least likely to gain hops.
  while (!order_.empty()) {
    const std::string victim = std::move(order_.front());
    order_.pop_front();
    const auto it = live_.find(victim);
    if (it == live_.end()) continue;
    fold_locked(it->second);
    live_.erase(it);
    ++evicted_;
    return;
  }
}

void LineageRollup::fold_locked(const Summary& summary) {
  if (summary.latency_s() > 0.0) latency_hist_.add(summary.latency_s());
  if (summary.wait_s > 0.0) wait_hist_.add(summary.wait_s);
}

std::size_t LineageRollup::live_granules() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

std::uint64_t LineageRollup::total_granules() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size() + evicted_;
}

std::uint64_t LineageRollup::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

bool LineageRollup::summary(const std::string& granule, Summary& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = live_.find(granule);
  if (it == live_.end()) return false;
  out = it->second;
  return true;
}

double LineageRollup::latency_quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  LogHistogram merged = latency_hist_;
  for (const auto& [granule, s] : live_)
    if (s.latency_s() > 0.0) merged.add(s.latency_s());
  return merged.quantile(q);
}

double LineageRollup::wait_quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  LogHistogram merged = wait_hist_;
  for (const auto& [granule, s] : live_)
    if (s.wait_s > 0.0) merged.add(s.wait_s);
  return merged.quantile(q);
}

std::string LineageRollup::to_json(std::size_t top) const {
  std::lock_guard<std::mutex> lock(mu_);
  LogHistogram latency = latency_hist_;
  LogHistogram wait = wait_hist_;
  std::vector<std::pair<double, const std::string*>> slowest;
  slowest.reserve(live_.size());
  for (const auto& [granule, s] : live_) {
    if (s.latency_s() > 0.0) latency.add(s.latency_s());
    if (s.wait_s > 0.0) wait.add(s.wait_s);
    slowest.emplace_back(s.latency_s(), &granule);
  }
  std::sort(slowest.begin(), slowest.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return *a.second < *b.second;
            });
  util::JsonWriter w;
  w.begin_object();
  w.field("schema", "mfw.lineage_rollup/v1");
  w.field("live", live_.size());
  w.field("evicted", evicted_);
  w.field("total", live_.size() + evicted_);
  w.field("latency_p50", latency.quantile(0.50));
  w.field("latency_p99", latency.quantile(0.99));
  w.field("wait_p50", wait.quantile(0.50));
  w.field("wait_p99", wait.quantile(0.99));
  w.key("slowest").begin_array();
  std::size_t emitted = 0;
  for (const auto& [latency_s, granule] : slowest) {
    if (top && emitted++ >= top) break;
    const Summary& s = live_.at(*granule);
    w.item("\n ").begin_object();
    w.field("granule", *granule);
    w.field("latency_s", latency_s);
    w.field("service_s", s.service_s);
    w.field("wait_s", s.wait_s);
    w.field("hops", s.hops);
    w.field("ready", s.ready);
    w.end_object();
  }
  w.end_array("\n").end_object();
  return w.take();
}

}  // namespace mfw::obs
