// mfw::obs live-health layer (DESIGN.md §12): streaming telemetry fan-out,
// spec-declared SLOs, and an online alerting/anomaly engine.
//
// PRs 2+5 made the telemetry *forensic* — traces and rollups analysed after
// the run. This header makes it *operational*: a campaign can be watched
// while it runs, with typed alerts raised the moment a service-level
// objective is violated or a stage's behaviour departs from its own recent
// history.
//
//  - TelemetryBus: a SpanSink that converts every closed span / instant into
//    a small TelemetryEvent and fans it out to bounded per-subscriber queues.
//    Producers never block and never allocate beyond the event copy: when a
//    subscriber's queue is full the event is counted in that subscriber's
//    dropped counter and discarded. The bus chains to an optional `next`
//    sink (e.g. obs::SpanRollup), since the recorder has a single sink slot.
//  - SloRule / HealthMonitor: SLO rules (per-stage p99 latency, queue-wait
//    p99, deadline-miss rate, utilization floor, WAN retry budget) evaluated
//    over WindowedSeries as windows close, plus an EWMA/MAD anomaly detector
//    over per-window means. Alerts carry a firing -> resolved lifecycle and
//    a cause hint reusing the straggler-attribution vocabulary of
//    obs/analyze.hpp (wan-retry | wan-slow | queue-wait | node-contention |
//    orchestration | unattributed).
//
// Zero-perturbation contract: the watch layer only *reads* the event stream.
// All timestamps come from the recorder's sim::Clock, subscribers are polled
// (never scheduled into the workflow's engine by this layer), and no
// simulation state — RNG, queues, links — is touched. A paper run with the
// bus attached is therefore bit-for-bit identical to an unwatched run
// (sha256-gated in tools/ci_health_smoke.sh), and with the recorder disabled
// the cost at every call site stays the single relaxed atomic load gated in
// bench/micro_obs.cpp.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/rollup.hpp"
#include "obs/trace.hpp"

namespace mfw::obs {

/// Flattened view of one closed span (or instant) as it crosses the bus:
/// just the fields the health layer consumes, no arg vector to keep the
/// copy under the recorder lock cheap.
struct TelemetryEvent {
  bool is_instant = false;
  std::string stage;     // track_stage(track.name): "download", "preprocess"
  std::string category;  // span category: "compute", "download", "stage", ...
  std::string name;
  double start = 0.0;
  double end = 0.0;            // == start for instants
  double queue_wait_s = -1.0;  // parsed "queue_wait_s" arg; < 0 when absent
  int attempts = 0;            // parsed "attempts" arg; 0 when absent
  std::string status;          // "status" arg when present

  double duration() const { return end - start; }
};

/// Push-based fan-out from the TraceRecorder's SpanSink hook to bounded
/// per-subscriber queues. Attach with TraceRecorder::set_span_sink(&bus);
/// chain a pre-existing sink (e.g. SpanRollup) with set_next() since the
/// recorder holds a single sink slot.
///
/// Drop accounting is explicit and per-subscriber: a full queue drops the
/// event for that subscriber only (others still receive it) and increments
/// dropped(subscriber). The producer side never blocks — a slow or absent
/// poller costs one counter increment per event, never memory growth.
class TelemetryBus : public SpanSink {
 public:
  explicit TelemetryBus(std::size_t queue_capacity = 8192);

  /// Registers a subscriber queue and returns its id. Subscribe before
  /// attaching the bus as the recorder's sink.
  std::size_t subscribe();

  /// Chains a downstream sink that receives every span/instant verbatim
  /// (before queueing). nullptr detaches.
  void set_next(SpanSink* next);

  // SpanSink: called under the recorder lock — O(subscribers) copies, no
  // re-entry into the recorder.
  void on_span(const TraceTrack& track, const TraceSpan& span) override;
  void on_instant(const TraceTrack& track, const TraceInstant& instant) override;

  /// Moves up to `max_events` queued events (0 = all) into `out`, returning
  /// how many were delivered.
  std::size_t poll(std::size_t subscriber, std::vector<TelemetryEvent>& out,
                   std::size_t max_events = 0);

  // -- accounting -------------------------------------------------------------
  std::uint64_t published() const;
  std::uint64_t dropped(std::size_t subscriber) const;
  std::uint64_t dropped_total() const;
  std::size_t subscriber_count() const;
  std::size_t queue_capacity() const { return capacity_; }

 private:
  struct Subscriber {
    std::deque<TelemetryEvent> queue;
    std::uint64_t dropped = 0;
  };

  void fan_out(TelemetryEvent event);

  mutable std::mutex mu_;
  std::size_t capacity_;
  SpanSink* next_ = nullptr;
  std::vector<Subscriber> subscribers_;
  std::uint64_t published_ = 0;
};

/// The SLO vocabulary of the spec layer's `slo:` section (DESIGN.md §12).
enum class SloMetric {
  kP99Latency,        // per-stage task p99 duration ceiling (seconds)
  kQueueWaitP99,      // per-stage queue-wait p99 ceiling (seconds)
  kDeadlineMissRate,  // campaign deadline-miss fraction ceiling [0, 1]
  kUtilizationFloor,  // facility busy-fraction floor (0, 1]
  kWanRetryBudget,    // WAN retries allowed per window
};

const char* to_string(SloMetric metric);

/// Parses the spec-level metric vocabulary ("p99_latency", "queue_wait_p99",
/// "deadline_miss_rate", "utilization_floor", "wan_retry_budget"). Returns
/// false (leaving `out` untouched) for unknown names.
bool slo_metric_from_string(std::string_view name, SloMetric& out);

struct SloRule {
  std::string name;   // unique; surfaces in alerts and reports
  std::string stage;  // "" = workflow-wide (deadline / utilization rules)
  SloMetric metric = SloMetric::kP99Latency;
  double threshold = 0.0;
  /// Evaluation window; each rule aggregates its own WindowedSeries at this
  /// granularity and is judged as windows close.
  double window_s = 60.0;
};

/// One alert-lifecycle transition. Every violation episode produces a
/// "firing" alert when its first bad window closes and a "resolved" alert
/// when the first clean window after it closes (episodes still in violation
/// at finish() stay firing — no fake recovery).
struct Alert {
  std::string rule;    // SloRule name, or "anomaly:<stage>"
  std::string kind;    // "slo" | "anomaly"
  std::string stage;
  std::string metric;  // to_string(SloMetric) or "window_mean"
  std::string state;   // "firing" | "resolved"
  double threshold = 0.0;  // rule threshold / anomaly baseline
  double observed = 0.0;   // value in the transition window
  double window_t0 = 0.0;  // start of the transition window
  double at = 0.0;         // evaluation time (sim seconds)
  /// Cause hint (firing only), straggler-attribution vocabulary: wan-retry |
  /// wan-slow | queue-wait | node-contention | orchestration | unattributed.
  std::string cause;
};

struct HealthConfig {
  /// Dashboard / anomaly-detector window (SLO rules carry their own).
  double window_s = 60.0;
  /// Robust z-score threshold for the EWMA/MAD anomaly detector; 0 disables
  /// anomaly detection (SLO rules still run).
  double anomaly_k = 0.0;
  /// EWMA smoothing factor for the anomaly baseline.
  double anomaly_alpha = 0.3;
  /// Closed windows of history required before the detector may fire.
  std::size_t anomaly_min_history = 5;
  /// Cause attribution: queue-wait p99 >= queue_share * duration p99 in the
  /// offending window => "queue-wait" (same knob as AnalyzeOptions).
  double queue_share = 0.5;
};

/// Online alert engine: drains a TelemetryBus subscription, folds events
/// into per-rule and per-stage WindowedSeries, and evaluates SLO rules plus
/// the anomaly detector whenever poll() observes that windows have closed.
/// Single-threaded by design (poll/accessors from the driving thread); the
/// bus handles the cross-thread hop from recorder callbacks.
class HealthMonitor {
 public:
  HealthMonitor(HealthConfig config, std::vector<SloRule> rules);

  /// Subscribes to `bus`; must be called before events flow and at most
  /// once. The bus must outlive the monitor's last poll().
  void attach(TelemetryBus& bus);

  /// Declares a stage's worker capacity (nodes x workers/node) so
  /// utilization-floor rules and the dashboard can normalise busy seconds.
  /// Unset stages default to 1 worker.
  void set_stage_capacity(const std::string& stage, double workers);

  /// Feeds one campaign-deadline outcome (deadline-miss-rate rules).
  void note_deadline(double t, bool missed);

  /// Drains the bus and evaluates every rule window that closed strictly
  /// before `now`. Call from stage boundaries, task completions, or a
  /// periodic read-only tick — never required for correctness of the run.
  void poll(double now);

  /// Final drain + evaluation of all remaining windows (closed or not) at
  /// end of run. Firing alerts are left firing.
  void finish(double now);

  /// Observer invoked synchronously for every alert transition as it is
  /// recorded (from poll()/finish() on the driving thread). Lets the flight
  /// recorder capture health episodes and `mfwctl watch` dump a black box
  /// the moment an SLO fires. Empty hook detaches.
  void set_alert_hook(std::function<void(const Alert&)> hook);

  const std::vector<Alert>& alerts() const { return alerts_; }
  std::size_t firing_count() const;
  const std::vector<SloRule>& rules() const { return rules_config_; }
  std::uint64_t events_seen() const { return events_seen_; }
  std::uint64_t dropped_events() const;

  /// mfw.health/v1 JSON stream: rules, alert transitions in order, per-stage
  /// whole-stream stats, and bus drop accounting.
  std::string to_json(double now) const;
  /// One text dashboard snapshot (mfwctl watch).
  std::string dashboard(double now) const;

 private:
  struct RuleState {
    SloRule rule;
    WindowedSeries values;                   // duration or queue-wait samples
    std::map<std::int64_t, double> retries;  // WAN retry counts per window
    std::map<std::int64_t, std::pair<std::uint64_t, std::uint64_t>>
        deadlines;  // window -> {outcomes, misses}
    std::map<std::int64_t, double> busy_s;  // busy seconds per window
    /// First window index that received any data; evaluation starts here so
    /// a rule is never judged against windows before its stage existed.
    std::int64_t first_index = std::numeric_limits<std::int64_t>::max();
    std::int64_t evaluated_to = std::numeric_limits<std::int64_t>::min();
    bool firing = false;
  };

  struct StageState {
    WindowedSeries duration;
    WindowedSeries queue_wait;
    std::map<std::int64_t, double> retries;  // per dashboard window
    std::uint64_t retries_total = 0;
    std::uint64_t spans = 0;
    double capacity = 1.0;
    // Category evidence + busy time for cause attribution and the dashboard.
    bool saw_download = false;
    bool saw_flow = false;
    double busy_total_s = 0.0;
    double first_t = std::numeric_limits<double>::infinity();
    double last_t = -std::numeric_limits<double>::infinity();
    // EWMA/MAD anomaly detector state over closed-window means.
    std::deque<double> history;
    double ewma = -1.0;
    std::int64_t anomaly_evaluated_to = std::numeric_limits<std::int64_t>::min();
    bool anomaly_firing = false;
  };

  StageState& stage_state(const std::string& stage);
  void ingest(const TelemetryEvent& event);
  /// Appends the alert and notifies the hook.
  void record_alert(Alert alert);
  void evaluate(double now, bool include_open_windows);
  void evaluate_rule(RuleState& state, double now, bool include_open);
  void evaluate_anomalies(double now, bool include_open);
  /// Cause hint for a violation at `stage` in the window starting at
  /// `window_t0` (straggler-attribution vocabulary).
  std::string attribute(const std::string& stage, double window_t0,
                        double window_s) const;

  HealthConfig config_;
  std::vector<SloRule> rules_config_;
  std::vector<RuleState> rules_;
  std::map<std::string, StageState> stages_;
  std::vector<Alert> alerts_;
  std::function<void(const Alert&)> alert_hook_;
  TelemetryBus* bus_ = nullptr;
  std::size_t subscription_ = 0;
  std::vector<TelemetryEvent> scratch_;
  std::uint64_t events_seen_ = 0;
};

}  // namespace mfw::obs
