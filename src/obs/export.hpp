// Exporters for the obs layer:
//  - Chrome trace-event JSON (the `traceEvents` array format) loadable in
//    Perfetto (ui.perfetto.dev) and chrome://tracing. Processes map to pid,
//    tracks to tid (with "process_name"/"thread_name" metadata records),
//    spans to complete events (ph "X", microsecond ts/dur), instants to
//    ph "i" with thread scope.
//  - A flat metrics text dump: one `name{label="v",...} value` line per
//    counter/gauge series and a count/mean/min/max (+ bucket rows) block per
//    distribution.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mfw::obs {

/// JSON-escapes `text` without surrounding quotes: quote/backslash plus
/// \uXXXX for every control character < 0x20, so adversarial label values
/// (embedded newlines, tabs, NULs) cannot produce invalid JSON. Shared by
/// the trace exporter and the analyze/rollup report writers.
std::string json_escape(std::string_view text);

/// Renders the recorder's events as a Chrome trace-event JSON document.
std::string to_chrome_trace_json(const TraceRecorder& recorder);

/// Renders the registry as flat text (counters, gauges, distributions).
std::string to_metrics_text(const MetricsRegistry& registry);

/// Writes content to a host-filesystem path. Returns false (and logs an
/// error) when the file cannot be opened.
bool write_file(const std::string& path, const std::string& content);

/// Convenience: enables/disables the global TraceRecorder + MetricsRegistry
/// together (the common switch behind `--trace-out` and `mfwctl trace`).
void set_globally_enabled(bool on);

}  // namespace mfw::obs
