// TraceRecorder: hierarchical span + instant-event recording for the
// multi-facility workflow (paper §V-A: "advanced provenance tracking and
// telemetry tools for real-time workflow insights").
//
// Design notes:
//  - Timestamps come from a pluggable sim::Clock so discrete-event benches
//    (SimEngine is a Clock) and wall-clock runs trace uniformly; with no
//    clock attached a process-lifetime WallClock is used.
//  - Events carry a *track* (a named lane: "download/w0", "preprocess/node3",
//    "stages/inference") and belong to the current *process* (one per
//    workflow run), mapping directly onto Chrome trace-event pid/tid so the
//    export (see obs/export.hpp) loads in Perfetto / chrome://tracing.
//  - Recording is thread-safe (pool threads and the sim thread may record
//    concurrently); a single mutex guards the buffers.
//  - Disabled recording is free: enabled() is one relaxed atomic load, the
//    begin/end macro-free idiom at call sites is
//        obs::SpanId span;
//        if (auto& rec = obs::TraceRecorder::instance(); rec.enabled())
//          span = rec.begin_span(...);   // strings built only here
//        ...
//        obs::TraceRecorder::instance().end_span(span);  // no-op if invalid
//    so the off path performs no allocation and takes no lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/clock.hpp"

namespace mfw::obs {

/// Key/value annotations attached to spans and instants (rendered as Chrome
/// trace-event "args").
using Args = std::vector<std::pair<std::string, std::string>>;

/// Handle for an open span; zero-initialised means "not recording".
struct SpanId {
  std::uint64_t id = 0;  // 1-based index into the recorder's span buffer
  bool valid() const { return id != 0; }
};

/// A named lane inside a process (Chrome trace-event tid).
struct TraceTrack {
  std::uint32_t process = 0;
  std::uint32_t tid = 0;
  std::string name;
};

struct TraceProcess {
  std::uint32_t pid = 0;
  std::string name;
};

struct TraceSpan {
  std::uint32_t track = 0;  // index into tracks()
  std::string category;
  std::string name;
  double start = 0.0;
  double end = -1.0;  // < start while open
  Args args;

  bool closed() const { return end >= start; }
  double duration() const { return closed() ? end - start : 0.0; }
};

struct TraceInstant {
  std::uint32_t track = 0;
  std::string category;
  std::string name;
  double at = 0.0;
  Args args;
};

/// How much of the raw event stream the recorder keeps in memory.
///  - kFull: every span and instant is retained (paper-figure runs; the
///    default, byte-for-byte identical to the pre-retention recorder).
///  - kStatsOnly: closed spans are forwarded to the SpanSink and then
///    discarded, except for an optional 1-in-sample_every exemplar stream
///    capped at max_retained. Instants are counted but not stored. Memory is
///    O(open spans + retained exemplars) instead of O(events), which is what
///    lets bench/archive_campaign observe a 365-day run (~millions of spans).
enum class RetentionMode { kFull, kStatsOnly };

struct RetentionPolicy {
  RetentionMode mode = RetentionMode::kFull;
  /// In kStatsOnly mode, retain every Nth closed span as an exemplar
  /// (0 = retain none).
  std::size_t sample_every = 0;
  /// Hard cap on retained exemplar spans in kStatsOnly mode.
  std::size_t max_retained = 4096;
};

/// Streaming observer fed every *closed* span (and every instant) regardless
/// of retention mode. Implementations (e.g. obs::SpanRollup) aggregate into
/// bounded structures. Callbacks run under the recorder lock: they must be
/// fast and must not re-enter the recorder.
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void on_span(const TraceTrack& track, const TraceSpan& span) = 0;
  virtual void on_instant(const TraceTrack& /*track*/,
                          const TraceInstant& /*instant*/) {}
};

class TraceRecorder {
 public:
  /// Global recorder used by the instrumented modules. Directly-constructed
  /// recorders are supported for tests.
  static TraceRecorder& instance();

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Master switch. Instrumented call sites must check enabled() before
  /// building track names / args so the off path stays allocation-free.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Attaches the time source (e.g. a workflow's SimEngine). nullptr
  /// restores the internal wall clock. The clock must outlive all recording
  /// calls made while it is attached.
  void set_clock(const sim::Clock* clock);
  const sim::Clock* clock() const;

  /// Current time from the attached clock (wall clock when none attached).
  double now() const;

  /// Opens a new process scope (one per workflow run); subsequent tracks are
  /// created inside it. Returns its pid. A default "mfw" process exists
  /// implicitly.
  std::uint32_t begin_process(std::string name);

  /// Opens a span on `track` (interned per process by name) stamped at
  /// now(). Returns an invalid SpanId when disabled.
  SpanId begin_span(std::string_view track, std::string_view category,
                    std::string_view name, Args args = {});

  /// Closes a span at now(), appending `args`. Invalid ids are ignored, so
  /// call sites need no enabled() re-check; spans opened before a disable
  /// still close correctly.
  void end_span(SpanId span, Args args = {});

  /// Records a fully-formed span with explicit timestamps (used by post-hoc
  /// bridges such as flow::export_to_trace). No-op when disabled.
  void add_span(std::string_view track, std::string_view category,
                std::string_view name, double start, double end,
                Args args = {});

  /// Records a point event stamped at now(). No-op when disabled.
  void instant(std::string_view track, std::string_view category,
               std::string_view name, Args args = {});

  /// Records a point event with an explicit timestamp (post-hoc bridges and
  /// synthetic-trace tests). No-op when disabled.
  void add_instant(std::string_view track, std::string_view category,
                   std::string_view name, double at, Args args = {});

  /// Sets the retention policy. Safe to call between runs; switching modes
  /// while spans are open is supported (each span closes under the mode it
  /// was opened in). The default kFull policy keeps the recorder behaviour
  /// identical to the pre-retention implementation.
  void set_retention(RetentionPolicy policy);
  RetentionPolicy retention() const;

  /// Attaches a streaming observer fed every closed span and every instant
  /// (in all retention modes). nullptr detaches. The sink must outlive all
  /// recording calls made while attached.
  void set_span_sink(SpanSink* sink);

  /// Closed spans seen since the last clear(), regardless of retention.
  std::size_t observed_span_count() const;
  /// Spans / instants discarded by the kStatsOnly retention policy.
  std::size_t dropped_span_count() const;
  std::size_t dropped_instant_count() const;

  /// Drops all recorded events, tracks, and processes (between runs).
  /// Retention policy and sink attachment survive a clear().
  void clear();

  // -- snapshot accessors (exporter + tests); copies under the lock ----------
  std::vector<TraceProcess> processes() const;
  std::vector<TraceTrack> tracks() const;
  std::vector<TraceSpan> spans() const;
  std::vector<TraceInstant> instants() const;
  std::size_t span_count() const;
  std::size_t instant_count() const;
  /// Spans still open (begin without end) — should be 0 after a clean run.
  std::size_t open_span_count() const;

 private:
  /// Span ids with this bit set index open_spans_ (kStatsOnly mode) rather
  /// than spans_; keeps bounded-mode handles stable while exemplar spans are
  /// being dropped.
  static constexpr std::uint64_t kBoundedBit = 1ull << 63;

  std::uint32_t intern_track_locked(std::string_view name);
  void ensure_default_process_locked();
  /// Sink notification + observed-span accounting for a just-closed span.
  void note_closed_locked(const TraceSpan& span);
  /// kStatsOnly sampling decision: should the span just counted by
  /// note_closed_locked be kept as an exemplar?
  bool retain_sample_locked() const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  const sim::Clock* clock_ = nullptr;  // guarded by mu_
  std::vector<TraceProcess> processes_;
  std::uint32_t current_pid_ = 0;
  std::vector<TraceTrack> tracks_;
  std::map<std::pair<std::uint32_t, std::string>, std::uint32_t> track_index_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceInstant> instants_;
  RetentionPolicy retention_;
  SpanSink* sink_ = nullptr;
  std::map<std::uint64_t, TraceSpan> open_spans_;  // kStatsOnly open spans
  std::uint64_t next_open_id_ = 0;
  std::size_t observed_spans_ = 0;
  std::size_t dropped_spans_ = 0;
  std::size_t dropped_instants_ = 0;
};

}  // namespace mfw::obs
