#include "obs/watch.hpp"

#include "util/json_writer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/export.hpp"

namespace mfw::obs {

namespace {

constexpr std::size_t kRuleMaxWindows = 4096;
constexpr std::size_t kStageMaxWindows = 4096;
/// Anomaly baseline history cap (closed windows).
constexpr std::size_t kAnomalyHistoryCap = 64;
/// MAD consistency constant for normally distributed data.
constexpr double kMadToSigma = 1.4826;
/// Relative floor on the anomaly scale so a perfectly flat baseline (MAD 0)
/// does not turn benign jitter into alerts.
constexpr double kAnomalyScaleFloor = 0.05;
/// Service-time inflation factor treated as contention evidence, matching
/// AnalyzeOptions::payload_factor's role in post-hoc attribution.
constexpr double kInflationFactor = 1.5;

std::string num(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

double parse_double(const std::string& text, double fallback) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  return end != text.c_str() ? value : fallback;
}

/// Merged {count, p99, p50-of-stream} view of the series windows overlapping
/// [t0, t0 + span_s).
struct OverlapStats {
  std::uint64_t count = 0;
  LogHistogram hist;
  double p99() const { return hist.quantile(0.99); }
};

OverlapStats overlap_stats(const WindowedSeries& series, double t0,
                           double span_s) {
  OverlapStats out;
  const double w = series.config().window_s;
  for (const auto& window : series.windows()) {
    const double wt0 = static_cast<double>(window.index) * w;
    if (wt0 + w <= t0 || wt0 >= t0 + span_s) continue;
    out.count += window.count;
    out.hist.merge(window.hist);
  }
  return out;
}

double overlap_map_sum(const std::map<std::int64_t, double>& per_window,
                       double window_s, double t0, double span_s) {
  double total = 0.0;
  for (const auto& [index, value] : per_window) {
    const double wt0 = static_cast<double>(index) * window_s;
    if (wt0 + window_s <= t0 || wt0 >= t0 + span_s) continue;
    total += value;
  }
  return total;
}

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const auto mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

}  // namespace

// ---------------------------------------------------------------------------
// TelemetryBus

TelemetryBus::TelemetryBus(std::size_t queue_capacity)
    : capacity_(std::max<std::size_t>(1, queue_capacity)) {}

std::size_t TelemetryBus::subscribe() {
  std::lock_guard lock(mu_);
  subscribers_.emplace_back();
  return subscribers_.size() - 1;
}

void TelemetryBus::set_next(SpanSink* next) {
  std::lock_guard lock(mu_);
  next_ = next;
}

void TelemetryBus::on_span(const TraceTrack& track, const TraceSpan& span) {
  if (SpanSink* next = next_) next->on_span(track, span);
  TelemetryEvent event;
  event.stage = track_stage(track.name);
  event.category = span.category;
  event.name = span.name;
  event.start = span.start;
  event.end = span.end;
  for (const auto& [key, value] : span.args) {
    if (key == "queue_wait_s") {
      event.queue_wait_s = parse_double(value, event.queue_wait_s);
    } else if (key == "attempts") {
      event.attempts = static_cast<int>(parse_double(value, 0.0));
    } else if (key == "status") {
      event.status = value;
    }
  }
  fan_out(std::move(event));
}

void TelemetryBus::on_instant(const TraceTrack& track,
                              const TraceInstant& instant) {
  if (SpanSink* next = next_) next->on_instant(track, instant);
  TelemetryEvent event;
  event.is_instant = true;
  event.stage = track_stage(track.name);
  event.category = instant.category;
  event.name = instant.name;
  event.start = event.end = instant.at;
  fan_out(std::move(event));
}

void TelemetryBus::fan_out(TelemetryEvent event) {
  std::lock_guard lock(mu_);
  ++published_;
  for (std::size_t i = 0; i < subscribers_.size(); ++i) {
    Subscriber& sub = subscribers_[i];
    if (sub.queue.size() >= capacity_) {
      ++sub.dropped;
      continue;
    }
    if (i + 1 == subscribers_.size()) {
      sub.queue.push_back(std::move(event));
    } else {
      sub.queue.push_back(event);
    }
  }
}

std::size_t TelemetryBus::poll(std::size_t subscriber,
                               std::vector<TelemetryEvent>& out,
                               std::size_t max_events) {
  std::lock_guard lock(mu_);
  if (subscriber >= subscribers_.size()) return 0;
  auto& queue = subscribers_[subscriber].queue;
  std::size_t take = queue.size();
  if (max_events != 0) take = std::min(take, max_events);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(std::move(queue.front()));
    queue.pop_front();
  }
  return take;
}

std::uint64_t TelemetryBus::published() const {
  std::lock_guard lock(mu_);
  return published_;
}

std::uint64_t TelemetryBus::dropped(std::size_t subscriber) const {
  std::lock_guard lock(mu_);
  return subscriber < subscribers_.size() ? subscribers_[subscriber].dropped
                                          : 0;
}

std::uint64_t TelemetryBus::dropped_total() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& sub : subscribers_) total += sub.dropped;
  return total;
}

std::size_t TelemetryBus::subscriber_count() const {
  std::lock_guard lock(mu_);
  return subscribers_.size();
}

// ---------------------------------------------------------------------------
// SLO vocabulary

const char* to_string(SloMetric metric) {
  switch (metric) {
    case SloMetric::kP99Latency: return "p99_latency";
    case SloMetric::kQueueWaitP99: return "queue_wait_p99";
    case SloMetric::kDeadlineMissRate: return "deadline_miss_rate";
    case SloMetric::kUtilizationFloor: return "utilization_floor";
    case SloMetric::kWanRetryBudget: return "wan_retry_budget";
  }
  return "unknown";
}

bool slo_metric_from_string(std::string_view name, SloMetric& out) {
  if (name == "p99_latency") out = SloMetric::kP99Latency;
  else if (name == "queue_wait_p99") out = SloMetric::kQueueWaitP99;
  else if (name == "deadline_miss_rate") out = SloMetric::kDeadlineMissRate;
  else if (name == "utilization_floor") out = SloMetric::kUtilizationFloor;
  else if (name == "wan_retry_budget") out = SloMetric::kWanRetryBudget;
  else return false;
  return true;
}

// ---------------------------------------------------------------------------
// HealthMonitor

HealthMonitor::HealthMonitor(HealthConfig config, std::vector<SloRule> rules)
    : config_(config), rules_config_(std::move(rules)) {
  if (config_.window_s <= 0.0) config_.window_s = 60.0;
  rules_.reserve(rules_config_.size());
  for (auto& rule : rules_config_) {
    if (rule.window_s <= 0.0) rule.window_s = 60.0;
    RuleState state;
    state.rule = rule;
    state.values = WindowedSeries(RollupConfig{rule.window_s, kRuleMaxWindows});
    rules_.push_back(std::move(state));
  }
}

void HealthMonitor::attach(TelemetryBus& bus) {
  bus_ = &bus;
  subscription_ = bus.subscribe();
}

HealthMonitor::StageState& HealthMonitor::stage_state(
    const std::string& stage) {
  auto it = stages_.find(stage);
  if (it == stages_.end()) {
    StageState fresh;
    const RollupConfig config{config_.window_s, kStageMaxWindows};
    fresh.duration = WindowedSeries(config);
    fresh.queue_wait = WindowedSeries(config);
    it = stages_.emplace(stage, std::move(fresh)).first;
  }
  return it->second;
}

void HealthMonitor::set_stage_capacity(const std::string& stage,
                                       double workers) {
  stage_state(stage).capacity = std::max(1.0, workers);
}

void HealthMonitor::note_deadline(double t, bool missed) {
  for (auto& state : rules_) {
    if (state.rule.metric != SloMetric::kDeadlineMissRate) continue;
    const auto index = window_index(t, state.rule.window_s);
    auto& [outcomes, misses] = state.deadlines[index];
    ++outcomes;
    if (missed) ++misses;
    state.first_index = std::min(state.first_index, index);
  }
}

void HealthMonitor::ingest(const TelemetryEvent& event) {
  ++events_seen_;
  if (event.is_instant) return;

  StageState& stage = stage_state(event.stage);
  ++stage.spans;
  stage.duration.add(event.end, event.duration());
  if (event.queue_wait_s >= 0.0)
    stage.queue_wait.add(event.end, event.queue_wait_s);
  const bool is_flow = event.category.rfind("flow", 0) == 0;
  if (event.category == "download") stage.saw_download = true;
  if (is_flow) stage.saw_flow = true;
  const int retries = event.attempts > 1 ? event.attempts - 1 : 0;
  if (retries > 0) {
    stage.retries[window_index(event.end, config_.window_s)] += retries;
    stage.retries_total += static_cast<std::uint64_t>(retries);
  }
  // Busy time feeds utilization: worker-level spans only, not the umbrella
  // stage/flow spans that would double-cover their children.
  const bool is_work = event.category != "stage" && !is_flow;
  if (is_work) {
    stage.busy_total_s += event.duration();
    stage.first_t = std::min(stage.first_t, event.start);
    stage.last_t = std::max(stage.last_t, event.end);
  }

  for (auto& state : rules_) {
    const SloRule& rule = state.rule;
    if (rule.stage != event.stage) continue;
    const auto index = window_index(event.end, rule.window_s);
    switch (rule.metric) {
      case SloMetric::kP99Latency:
        state.values.add(event.end, event.duration());
        state.first_index = std::min(state.first_index, index);
        break;
      case SloMetric::kQueueWaitP99:
        if (event.queue_wait_s >= 0.0) {
          state.values.add(event.end, event.queue_wait_s);
          state.first_index = std::min(state.first_index, index);
        }
        break;
      case SloMetric::kWanRetryBudget:
        if (retries > 0) state.retries[index] += retries;
        state.first_index = std::min(state.first_index, index);
        break;
      case SloMetric::kUtilizationFloor:
        if (is_work) {
          // Apportion busy seconds across every window the span overlaps.
          const auto first = window_index(event.start, rule.window_s);
          for (auto w = first; w <= index; ++w) {
            const double wt0 = static_cast<double>(w) * rule.window_s;
            const double overlap = std::min(event.end, wt0 + rule.window_s) -
                                   std::max(event.start, wt0);
            if (overlap > 0.0) state.busy_s[w] += overlap;
          }
          state.first_index = std::min(state.first_index, first);
        }
        break;
      case SloMetric::kDeadlineMissRate:
        break;  // fed by note_deadline()
    }
  }
}

void HealthMonitor::poll(double now) {
  if (bus_ != nullptr) {
    scratch_.clear();
    bus_->poll(subscription_, scratch_);
    for (const auto& event : scratch_) ingest(event);
    scratch_.clear();
  }
  evaluate(now, /*include_open_windows=*/false);
}

void HealthMonitor::finish(double now) {
  if (bus_ != nullptr) {
    scratch_.clear();
    bus_->poll(subscription_, scratch_);
    for (const auto& event : scratch_) ingest(event);
    scratch_.clear();
  }
  evaluate(now, /*include_open_windows=*/true);
}

void HealthMonitor::evaluate(double now, bool include_open_windows) {
  for (auto& state : rules_) evaluate_rule(state, now, include_open_windows);
  if (config_.anomaly_k > 0.0) evaluate_anomalies(now, include_open_windows);
}

void HealthMonitor::evaluate_rule(RuleState& state, double now,
                                  bool include_open) {
  if (state.first_index == std::numeric_limits<std::int64_t>::max()) return;
  const SloRule& rule = state.rule;
  const double ws = rule.window_s;
  std::int64_t last = window_index(now, ws);
  if (!include_open) --last;  // only windows that closed strictly before now
  if (rule.metric == SloMetric::kUtilizationFloor) {
    // Windows after the stage's last activity are idle by completion, not by
    // stall; never judge them.
    const auto last_busy = state.busy_s.empty()
                               ? std::numeric_limits<std::int64_t>::min()
                               : state.busy_s.rbegin()->first;
    last = std::min(last, last_busy);
  }
  std::int64_t begin =
      state.evaluated_to == std::numeric_limits<std::int64_t>::min()
          ? state.first_index
          : state.evaluated_to + 1;
  for (std::int64_t w = begin; w <= last; ++w) {
    bool has_data = true;
    bool violated = false;
    double observed = 0.0;
    switch (rule.metric) {
      case SloMetric::kP99Latency:
      case SloMetric::kQueueWaitP99: {
        const auto& windows = state.values.windows();
        const auto pos = std::lower_bound(
            windows.begin(), windows.end(), w,
            [](const WindowStats& s, std::int64_t i) { return s.index < i; });
        if (pos != windows.end() && pos->index == w && pos->count > 0) {
          observed = pos->p99();
          violated = observed > rule.threshold;
        } else {
          // An empty window is a clean window: it can resolve a firing
          // episode but carries no new violation.
          has_data = state.firing;
        }
        break;
      }
      case SloMetric::kWanRetryBudget: {
        const auto it = state.retries.find(w);
        observed = it != state.retries.end() ? it->second : 0.0;
        violated = observed > rule.threshold;
        break;
      }
      case SloMetric::kDeadlineMissRate: {
        const auto it = state.deadlines.find(w);
        if (it == state.deadlines.end() || it->second.first == 0) {
          has_data = false;  // no outcomes => no information either way
        } else {
          observed = static_cast<double>(it->second.second) /
                     static_cast<double>(it->second.first);
          violated = observed > rule.threshold;
        }
        break;
      }
      case SloMetric::kUtilizationFloor: {
        const auto it = state.busy_s.find(w);
        const double busy = it != state.busy_s.end() ? it->second : 0.0;
        const std::string& stage = rule.stage;
        const auto stage_it = stages_.find(stage);
        const double workers =
            stage_it != stages_.end() ? stage_it->second.capacity : 1.0;
        observed = std::min(1.0, busy / (workers * ws));
        violated = observed < rule.threshold;
        break;
      }
    }
    if (!has_data) continue;
    const double wt0 = static_cast<double>(w) * ws;
    if (violated && !state.firing) {
      state.firing = true;
      Alert alert;
      alert.rule = rule.name;
      alert.kind = "slo";
      alert.stage = rule.stage;
      alert.metric = to_string(rule.metric);
      alert.state = "firing";
      alert.threshold = rule.threshold;
      alert.observed = observed;
      alert.window_t0 = wt0;
      alert.at = now;
      alert.cause = attribute(rule.stage, wt0, ws);
      record_alert(std::move(alert));
    } else if (!violated && state.firing) {
      state.firing = false;
      Alert alert;
      alert.rule = rule.name;
      alert.kind = "slo";
      alert.stage = rule.stage;
      alert.metric = to_string(rule.metric);
      alert.state = "resolved";
      alert.threshold = rule.threshold;
      alert.observed = observed;
      alert.window_t0 = wt0;
      alert.at = now;
      record_alert(std::move(alert));
    }
  }
  state.evaluated_to = std::max(state.evaluated_to, last);
}

void HealthMonitor::evaluate_anomalies(double now, bool include_open) {
  const double ws = config_.window_s;
  std::int64_t last = window_index(now, ws);
  if (!include_open) --last;
  for (auto& [name, stage] : stages_) {
    for (const auto& window : stage.duration.windows()) {
      if (window.index <= stage.anomaly_evaluated_to || window.index > last)
        continue;
      if (window.count == 0) continue;
      const double mean = window.sum / static_cast<double>(window.count);
      bool anomalous = false;
      if (stage.ewma >= 0.0 &&
          stage.history.size() >= config_.anomaly_min_history) {
        std::vector<double> history(stage.history.begin(),
                                    stage.history.end());
        const double med = median_of(history);
        for (auto& h : history) h = std::fabs(h - med);
        const double mad = median_of(std::move(history));
        const double scale =
            std::max({kMadToSigma * mad,
                      kAnomalyScaleFloor * std::fabs(stage.ewma), 1e-12});
        anomalous = std::fabs(mean - stage.ewma) / scale > config_.anomaly_k;
      }
      const double wt0 = static_cast<double>(window.index) * ws;
      if (anomalous && !stage.anomaly_firing) {
        stage.anomaly_firing = true;
        Alert alert;
        alert.rule = "anomaly:" + name;
        alert.kind = "anomaly";
        alert.stage = name;
        alert.metric = "window_mean";
        alert.state = "firing";
        alert.threshold = stage.ewma;
        alert.observed = mean;
        alert.window_t0 = wt0;
        alert.at = now;
        alert.cause = attribute(name, wt0, ws);
        record_alert(std::move(alert));
      } else if (!anomalous && stage.anomaly_firing) {
        stage.anomaly_firing = false;
        Alert alert;
        alert.rule = "anomaly:" + name;
        alert.kind = "anomaly";
        alert.stage = name;
        alert.metric = "window_mean";
        alert.state = "resolved";
        alert.threshold = stage.ewma;
        alert.observed = mean;
        alert.window_t0 = wt0;
        alert.at = now;
        record_alert(std::move(alert));
      }
      if (!anomalous) {
        // Anomalous windows are excluded from the baseline so a burst does
        // not teach the detector that bursts are normal.
        stage.ewma = stage.ewma < 0.0 ? mean
                                      : config_.anomaly_alpha * mean +
                                            (1.0 - config_.anomaly_alpha) *
                                                stage.ewma;
        stage.history.push_back(mean);
        if (stage.history.size() > kAnomalyHistoryCap)
          stage.history.pop_front();
      }
      stage.anomaly_evaluated_to = window.index;
    }
  }
}

std::string HealthMonitor::attribute(const std::string& stage, double window_t0,
                                     double window_s) const {
  if (stage.empty()) {
    // Workflow-wide rule (deadline class): blame the stage with the worst
    // queue pressure in the window, if any stage shows queue dominance.
    const StageState* worst = nullptr;
    const std::string* worst_name = nullptr;
    double worst_queue = 0.0;
    for (const auto& [name, st] : stages_) {
      const auto queue = overlap_stats(st.queue_wait, window_t0, window_s);
      if (queue.count == 0) continue;
      const double p99 = queue.p99();
      if (p99 > worst_queue) {
        worst_queue = p99;
        worst = &st;
        worst_name = &name;
      }
    }
    if (worst != nullptr) {
      const auto duration = overlap_stats(worst->duration, window_t0,
                                          window_s);
      if (worst_queue >= config_.queue_share * duration.p99())
        return "queue-wait";
      (void)worst_name;
    }
    return "unattributed";
  }

  const auto it = stages_.find(stage);
  if (it == stages_.end()) return "unattributed";
  const StageState& st = it->second;
  const double retries = overlap_map_sum(st.retries, config_.window_s,
                                         window_t0, window_s);
  if (st.saw_download && retries > 0.0) return "wan-retry";
  const auto duration = overlap_stats(st.duration, window_t0, window_s);
  const auto queue = overlap_stats(st.queue_wait, window_t0, window_s);
  if (queue.count > 0 && duration.count > 0 &&
      queue.p99() >= config_.queue_share * duration.p99())
    return "queue-wait";
  const bool inflated = duration.count > 0 && st.duration.p50() > 0.0 &&
                        duration.p99() > kInflationFactor * st.duration.p50();
  if (st.saw_download && inflated) return "wan-slow";
  if (st.saw_flow) return "orchestration";
  if (inflated) return "node-contention";
  return "unattributed";
}

void HealthMonitor::set_alert_hook(std::function<void(const Alert&)> hook) {
  alert_hook_ = std::move(hook);
}

void HealthMonitor::record_alert(Alert alert) {
  alerts_.push_back(std::move(alert));
  if (alert_hook_) alert_hook_(alerts_.back());
}

std::size_t HealthMonitor::firing_count() const {
  std::size_t firing = 0;
  for (const auto& state : rules_)
    if (state.firing) ++firing;
  for (const auto& [name, stage] : stages_)
    if (stage.anomaly_firing) ++firing;
  return firing;
}

std::uint64_t HealthMonitor::dropped_events() const {
  return bus_ != nullptr ? bus_->dropped(subscription_) : 0;
}

std::string HealthMonitor::to_json(double now) const {
  util::JsonWriter w;
  w.begin_object();
  w.field("schema", "mfw.health/v1");
  w.field("now", now);
  w.field("window_s", config_.window_s);
  w.field("anomaly_k", config_.anomaly_k);
  w.field("events_seen", events_seen_);
  w.field("dropped_events", dropped_events());
  w.field("firing", firing_count());
  w.key("bus").begin_object();
  w.field("attached", bus_ != nullptr);
  if (bus_ != nullptr) {
    w.field("published", bus_->published());
    w.field("dropped_total", bus_->dropped_total());
    w.field("subscribers", bus_->subscriber_count());
    w.field("queue_capacity", bus_->queue_capacity());
  }
  w.end_object();

  w.key("rules").begin_array();
  for (const auto& state : rules_) {
    w.item("\n  ").begin_object();
    w.field("name", state.rule.name);
    w.field("stage", state.rule.stage);
    w.field("metric", to_string(state.rule.metric));
    w.field("threshold", state.rule.threshold);
    w.field("rule_window_s", state.rule.window_s);
    w.field("firing", state.firing);
    w.end_object();
  }
  w.end_array("\n");

  w.key("stages").begin_array();
  for (const auto& [name, stage] : stages_) {
    const double elapsed = stage.last_t - stage.first_t;
    const double busy_share =
        elapsed > 0.0
            ? std::min(1.0, stage.busy_total_s / (stage.capacity * elapsed))
            : 0.0;
    w.item("\n  ").begin_object();
    w.field("stage", name);
    w.field("spans", stage.spans);
    w.field("retries_total", stage.retries_total);
    w.field("capacity", stage.capacity);
    w.field("busy_share", busy_share);
    w.key("duration").begin_object();
    w.field("count", stage.duration.count());
    w.field("mean", stage.duration.mean());
    w.field("p50", stage.duration.p50());
    w.field("p99", stage.duration.p99());
    w.field("max", stage.duration.max());
    w.end_object();
    w.key("queue_wait").begin_object();
    w.field("count", stage.queue_wait.count());
    w.field("mean", stage.queue_wait.mean());
    w.field("p99", stage.queue_wait.p99());
    w.end_object();
    w.field("anomaly_firing", stage.anomaly_firing);
    w.end_object();
  }
  w.end_array("\n");

  w.key("alerts").begin_array();
  for (const auto& alert : alerts_) {
    w.item("\n  ").begin_object();
    w.field("rule", alert.rule);
    w.field("kind", alert.kind);
    w.field("stage", alert.stage);
    w.field("metric", alert.metric);
    w.field("state", alert.state);
    w.field("threshold", alert.threshold);
    w.field("observed", alert.observed);
    w.field("window_t0", alert.window_t0);
    w.field("at", alert.at);
    w.field("cause", alert.cause);
    w.end_object();
  }
  w.end_array("\n").end_object();
  return w.take();
}

std::string HealthMonitor::dashboard(double now) const {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof line,
                "health @ t=%.6gs | events %llu (%llu dropped) | rules %zu | "
                "alerts %zu (%zu firing)\n",
                now, static_cast<unsigned long long>(events_seen_),
                static_cast<unsigned long long>(dropped_events()),
                rules_.size(), alerts_.size(), firing_count());
  os << line;
  if (!stages_.empty()) {
    std::snprintf(line, sizeof line, "  %-14s %8s %10s %10s %10s %8s %6s\n",
                  "stage", "spans", "p50_s", "p99_s", "queue_p99", "retries",
                  "busy");
    os << line;
    for (const auto& [name, stage] : stages_) {
      const double elapsed = stage.last_t - stage.first_t;
      const double busy_share =
          elapsed > 0.0
              ? std::min(1.0, stage.busy_total_s / (stage.capacity * elapsed))
              : 0.0;
      std::snprintf(line, sizeof line,
                    "  %-14s %8llu %10.4g %10.4g %10.4g %8llu %5.0f%%\n",
                    name.c_str(),
                    static_cast<unsigned long long>(stage.spans),
                    stage.duration.p50(), stage.duration.p99(),
                    stage.queue_wait.p99(),
                    static_cast<unsigned long long>(stage.retries_total),
                    100.0 * busy_share);
      os << line;
    }
  }
  bool any_firing = false;
  for (const auto& state : rules_) {
    if (!state.firing) continue;
    if (!any_firing) os << "  firing:\n";
    any_firing = true;
    os << "    [slo] " << state.rule.name << " (" << state.rule.stage << " "
       << to_string(state.rule.metric) << " threshold "
       << num(state.rule.threshold) << ")\n";
  }
  for (const auto& [name, stage] : stages_) {
    if (!stage.anomaly_firing) continue;
    if (!any_firing) os << "  firing:\n";
    any_firing = true;
    os << "    [anomaly] " << name << " window_mean departed baseline "
       << num(stage.ewma) << "\n";
  }
  return os.str();
}

}  // namespace mfw::obs
