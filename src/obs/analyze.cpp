#include "obs/analyze.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "obs/export.hpp"
#include "obs/rollup.hpp"
#include "util/json_writer.hpp"
#include "util/stats.hpp"

namespace mfw::obs {

namespace {

constexpr double kEps = 1e-9;

const std::string* arg(const TraceSpan& span, std::string_view key) {
  for (const auto& [k, v] : span.args)
    if (k == key) return &v;
  return nullptr;
}

double arg_double(const TraceSpan& span, std::string_view key,
                  double fallback = 0.0) {
  const std::string* value = arg(span, key);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  return end == value->c_str() ? fallback : parsed;
}

/// Granule identity threaded through the stages ("granule" on task spans and
/// flow runs, "key" on granule.ready instants).
std::string granule_of(const TraceSpan& span) {
  if (const std::string* g = arg(span, "granule")) return *g;
  if (const std::string* k = arg(span, "key")) return *k;
  return {};
}

/// Second path component of a worker lane: "preprocess/node3/w1" -> "node3".
/// Lanes without a node level ("download/w0") keep the worker component.
std::string node_of(std::string_view track_name) {
  const auto first = track_name.find('/');
  if (first == std::string_view::npos) return std::string(track_name);
  auto rest = track_name.substr(first + 1);
  const auto second = rest.find('/');
  if (second != std::string_view::npos) rest = rest.substr(0, second);
  return std::string(rest);
}

std::string num(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

/// A task span plus its resolved track (worker lane).
struct Task {
  const TraceSpan* span = nullptr;
  const TraceTrack* track = nullptr;

  double duration() const { return span->duration(); }
};

/// Everything the walks need about one process, resolved once.
struct ProcessData {
  const TraceProcess* process = nullptr;
  double start = std::numeric_limits<double>::infinity();
  double end = -std::numeric_limits<double>::infinity();
  std::size_t spans = 0;
  std::size_t instants = 0;
  std::map<std::string, const TraceSpan*> stage_spans;  // stage name -> span
  std::map<std::string, std::vector<Task>> task_groups;  // stage -> tasks
  // Per granule: latest preprocess task carrying that identity.
  std::map<std::string, Task> granule_preprocess;
  std::vector<Task> flow_runs;                       // category "flow" spans
  std::map<std::uint32_t, std::vector<Task>> flow_states;  // by track index
};

void widen(ProcessData& data, double t) {
  data.start = std::min(data.start, t);
  data.end = std::max(data.end, t);
}

/// Stable snapshot of the recorder; ProcessData holds pointers into it.
struct Snapshot {
  std::vector<TraceProcess> processes;
  std::vector<TraceTrack> tracks;
  std::vector<TraceSpan> spans;
  std::vector<TraceInstant> instants;
};

std::vector<ProcessData> collect(const Snapshot& snapshot) {
  const auto& processes = snapshot.processes;
  const auto& tracks = snapshot.tracks;
  const auto& spans = snapshot.spans;
  const auto& instants = snapshot.instants;

  std::map<std::uint32_t, std::size_t> by_pid;
  std::vector<ProcessData> out;
  out.reserve(processes.size());
  for (const auto& process : processes) {
    by_pid[process.pid] = out.size();
    out.push_back({});
    out.back().process = &process;
  }

  for (const auto& span : spans) {
    if (span.track >= tracks.size() || !span.closed()) continue;
    const TraceTrack& track = tracks[span.track];
    const auto it = by_pid.find(track.process);
    if (it == by_pid.end()) continue;
    ProcessData& data = out[it->second];
    widen(data, span.start);
    widen(data, span.end);
    ++data.spans;

    const Task task{&span, &track};
    if (span.category == "stage") {
      const TraceSpan*& slot = data.stage_spans[span.name];
      if (!slot || span.duration() > slot->duration()) slot = &span;
    } else if (span.category == "compute" || span.category == "download" ||
               span.category == "serve") {
      const std::string stage = track_stage(track.name);
      data.task_groups[stage].push_back(task);
      if (span.category == "compute" && stage == "preprocess") {
        const std::string granule = granule_of(span);
        if (!granule.empty()) data.granule_preprocess[granule] = task;
      }
    } else if (span.category == "flow") {
      data.flow_runs.push_back(task);
    } else if (span.category == "flow.state") {
      data.flow_states[span.track].push_back(task);
    }
  }
  for (const auto& instant : instants) {
    if (instant.track >= tracks.size()) continue;
    const auto it = by_pid.find(tracks[instant.track].process);
    if (it == by_pid.end()) continue;
    widen(out[it->second], instant.at);
    ++out[it->second].instants;
  }
  for (auto& data : out) {
    for (auto& [stage, tasks] : data.task_groups)
      std::sort(tasks.begin(), tasks.end(), [](const Task& a, const Task& b) {
        return a.span->end < b.span->end;
      });
    for (auto& [track, states] : data.flow_states)
      std::sort(states.begin(), states.end(),
                [](const Task& a, const Task& b) {
                  return a.span->start < b.span->start;
                });
  }
  return out;
}

/// Stage window: the stage span when present, else the hull of the tasks.
std::pair<double, double> stage_window(const ProcessData& data,
                                       const std::string& stage,
                                       const std::vector<Task>& tasks) {
  const auto it = data.stage_spans.find(stage);
  if (it != data.stage_spans.end())
    return {it->second->start, it->second->end};
  double lo = tasks.front().span->start, hi = tasks.front().span->end;
  for (const Task& task : tasks) {
    lo = std::min(lo, task.span->start);
    hi = std::max(hi, task.span->end);
  }
  return {lo, hi};
}

void compute_stage_stats(const ProcessData& data, const AnalyzeOptions& options,
                         ProcessReport& report) {
  for (const auto& [stage, tasks] : data.task_groups) {
    StageStat stat;
    stat.stage = stage;
    std::tie(stat.start, stat.end) = stage_window(data, stage, tasks);
    stat.tasks = tasks.size();
    std::set<std::string> lanes;
    std::vector<double> durations, waits;
    durations.reserve(tasks.size());
    for (const Task& task : tasks) {
      lanes.insert(task.track->name);
      stat.busy_s += task.duration();
      durations.push_back(task.duration());
      waits.push_back(arg_double(*task.span, "queue_wait_s"));
    }
    stat.workers = lanes.size();
    const double capacity = stat.duration() * static_cast<double>(stat.workers);
    stat.utilization = capacity > 0.0 ? stat.busy_s / capacity : 0.0;
    stat.p50 = util::percentile(durations, 50.0);
    stat.p99 = util::percentile(durations, 99.0);
    stat.max = *std::max_element(durations.begin(), durations.end());
    stat.queue_p50 = util::percentile(waits, 50.0);
    stat.queue_p99 = util::percentile(waits, 99.0);
    stat.queue_max = *std::max_element(waits.begin(), waits.end());
    report.stages.push_back(std::move(stat));

    // Per-node occupancy within the stage window.
    std::map<std::string, NodeStat> nodes;
    for (const Task& task : tasks) {
      NodeStat& node = nodes[node_of(task.track->name)];
      node.stage = stage;
      ++node.tasks;
      node.busy_s += task.duration();
    }
    for (auto& [name, node] : nodes) {
      node.node = name;
      std::set<std::string> node_lanes;
      for (const Task& task : tasks)
        if (node_of(task.track->name) == name)
          node_lanes.insert(task.track->name);
      node.workers = node_lanes.size();
      const auto& stage_stat = report.stages.back();
      const double window =
          stage_stat.duration() * static_cast<double>(node.workers);
      node.utilization = window > 0.0 ? node.busy_s / window : 0.0;
      report.nodes.push_back(node);
    }

    // Binned busy-worker timeline.
    UtilizationTimeline timeline;
    timeline.stage = stage;
    timeline.t0 = report.stages.back().start;
    const double span_s = report.stages.back().duration();
    const auto bins = std::max<std::size_t>(options.utilization_bins, 1);
    timeline.bin_s = span_s > 0.0 ? span_s / static_cast<double>(bins) : 0.0;
    timeline.busy.assign(bins, 0.0);
    if (timeline.bin_s > 0.0) {
      for (const Task& task : tasks) {
        const double lo = std::max(task.span->start, timeline.t0);
        const double hi = std::min(task.span->end, timeline.t0 + span_s);
        if (hi <= lo) continue;
        auto first = static_cast<std::size_t>((lo - timeline.t0) /
                                              timeline.bin_s);
        first = std::min(first, bins - 1);
        auto last =
            static_cast<std::size_t>((hi - timeline.t0) / timeline.bin_s);
        last = std::min(last, bins - 1);
        for (std::size_t b = first; b <= last; ++b) {
          const double bin_lo = timeline.t0 + static_cast<double>(b) *
                                                  timeline.bin_s;
          const double overlap = std::min(hi, bin_lo + timeline.bin_s) -
                                 std::max(lo, bin_lo);
          if (overlap > 0.0) timeline.busy[b] += overlap / timeline.bin_s;
        }
      }
    }
    report.timelines.push_back(std::move(timeline));
  }
  // Stage spans with no task group (e.g. shipment) still get a row.
  for (const auto& [stage, span] : data.stage_spans) {
    if (data.task_groups.count(stage)) continue;
    StageStat stat;
    stat.stage = stage;
    stat.start = span->start;
    stat.end = span->end;
    report.stages.push_back(std::move(stat));
  }
  std::sort(report.stages.begin(), report.stages.end(),
            [](const StageStat& a, const StageStat& b) {
              return a.start < b.start;
            });
}

/// Mean concurrency on `node_tasks` during [lo, hi] (includes the task
/// itself): overlap-time integral / (hi - lo).
double mean_concurrency(const std::vector<const Task*>& node_tasks, double lo,
                        double hi) {
  if (hi - lo <= kEps) return 0.0;
  double overlap = 0.0;
  for (const Task* task : node_tasks) {
    overlap += std::max(
        0.0, std::min(task->span->end, hi) - std::max(task->span->start, lo));
  }
  return overlap / (hi - lo);
}

void detect_stragglers(const ProcessData& data, const AnalyzeOptions& options,
                       ProcessReport& report) {
  for (const auto& [stage, tasks] : data.task_groups) {
    if (tasks.size() < options.min_group) continue;
    std::vector<double> durations, payloads;
    durations.reserve(tasks.size());
    for (const Task& task : tasks) {
      durations.push_back(task.duration());
      payloads.push_back(arg_double(*task.span, "payload"));
    }
    StragglerGroup group;
    group.group = stage;
    group.count = tasks.size();
    group.median = util::percentile(durations, 50.0);
    const double median_payload = util::percentile(payloads, 50.0);
    if (group.median <= kEps) continue;

    // Node-local task lists for the contention check.
    std::map<std::string, std::vector<const Task*>> by_node;
    std::map<std::string, std::set<std::string>> node_lanes;
    const bool is_download = tasks.front().span->category == "download";
    if (!is_download) {
      for (const Task& task : tasks) {
        by_node[node_of(task.track->name)].push_back(&task);
        node_lanes[node_of(task.track->name)].insert(task.track->name);
      }
    }

    for (const Task& task : tasks) {
      const double duration = task.duration();
      if (duration <= options.straggler_k * group.median) continue;
      ++group.flagged_count;
      Straggler straggler;
      straggler.group = stage;
      straggler.name = task.span->name;
      straggler.track = task.track->name;
      straggler.granule = granule_of(*task.span);
      straggler.duration = duration;
      straggler.ratio = duration / group.median;
      straggler.queue_wait = arg_double(*task.span, "queue_wait_s");
      if (is_download) {
        straggler.attribution =
            arg_double(*task.span, "attempts", 1.0) > 1.0 ? "wan-retry"
                                                          : "wan-slow";
      } else if (straggler.queue_wait >= options.queue_share * duration) {
        straggler.attribution = "queue-wait";
      } else if (median_payload > 0.0 &&
                 arg_double(*task.span, "payload") >
                     options.payload_factor * median_payload) {
        straggler.attribution = "input-size";
      } else {
        const std::string node = node_of(task.track->name);
        const double concurrency = mean_concurrency(
            by_node[node], task.span->start, task.span->end);
        const auto workers = static_cast<double>(node_lanes[node].size());
        straggler.attribution =
            workers > 0.0 && concurrency >= 0.9 * workers ? "node-contention"
                                                          : "unattributed";
      }
      group.flagged.push_back(std::move(straggler));
    }
    std::sort(group.flagged.begin(), group.flagged.end(),
              [](const Straggler& a, const Straggler& b) {
                return a.duration > b.duration;
              });
    if (group.flagged.size() > options.max_flagged)
      group.flagged.resize(options.max_flagged);
    report.stragglers.push_back(std::move(group));
  }

  // Flow orchestration states, grouped by state name across runs.
  std::map<std::string, std::vector<Task>> states;
  for (const auto& [track, list] : data.flow_states)
    for (const Task& task : list) states[task.span->name].push_back(task);
  for (const auto& [state, tasks] : states) {
    if (tasks.size() < options.min_group) continue;
    std::vector<double> durations;
    durations.reserve(tasks.size());
    for (const Task& task : tasks) durations.push_back(task.duration());
    StragglerGroup group;
    group.group = "flow:" + state;
    group.count = tasks.size();
    group.median = util::percentile(durations, 50.0);
    if (group.median <= kEps) continue;
    for (const Task& task : tasks) {
      const double duration = task.duration();
      if (duration <= options.straggler_k * group.median) continue;
      ++group.flagged_count;
      Straggler straggler;
      straggler.group = group.group;
      straggler.name = task.span->name;
      straggler.track = task.track->name;
      straggler.granule = granule_of(*task.span);
      straggler.duration = duration;
      straggler.ratio = duration / group.median;
      const double overhead =
          arg_double(*task.span, "orchestration_overhead_s");
      straggler.attribution = overhead >= 0.5 * duration ? "orchestration"
                                                         : "action-service";
      group.flagged.push_back(std::move(straggler));
    }
    if (group.flagged.empty() && group.flagged_count == 0) continue;
    std::sort(group.flagged.begin(), group.flagged.end(),
              [](const Straggler& a, const Straggler& b) {
                return a.duration > b.duration;
              });
    if (group.flagged.size() > options.max_flagged)
      group.flagged.resize(options.max_flagged);
    report.stragglers.push_back(std::move(group));
  }
}

/// Stage charged for each segment kind when summing on-path time.
std::string path_stage(const std::string& kind) {
  if (kind == "download" || kind == "download-pipeline" || kind == "startup")
    return "download";
  if (kind == "preprocess" || kind == "queue-wait" || kind == "submit-wait")
    return "preprocess";
  if (kind == "shipment") return "shipment";
  return "inference";  // monitor-wait, orchestration, inference, flow.*,
                       // drain-wait
}

CriticalPath compute_critical_path(const ProcessData& data) {
  CriticalPath path;
  path.makespan = data.end - data.start;
  if (path.makespan <= kEps) return path;

  // Backward walk from process end, tiling [start, end]: each step pins the
  // task that released the cursor and charges the gap above it to a named
  // wait. Produces contiguous segments whose durations sum to the makespan.
  std::vector<PathSegment> reversed;
  double cursor = data.end;
  const auto emit = [&](const char* kind, std::string detail,
                        std::string granule, double start, double end) {
    end = std::min(end, cursor);
    start = std::max(start, data.start);
    if (end - start <= kEps) return;
    reversed.push_back(
        {kind, std::move(detail), std::move(granule), start, end});
    cursor = start;
  };
  const auto wait_to = [&](double t, const char* kind, const char* detail) {
    if (cursor - t > kEps) emit(kind, detail, "", t, cursor);
  };

  // 1. Shipment drains the run.
  if (const auto it = data.stage_spans.find("shipment");
      it != data.stage_spans.end() && it->second->end <= cursor + kEps) {
    wait_to(it->second->end, "drain-wait", "run teardown");
    emit("shipment", "results -> analysis facility", "", it->second->start,
         it->second->end);
  }

  // 2. The last inference flow (provenance bridge) or inference task.
  std::string granule;
  if (!data.flow_runs.empty()) {
    const Task* last = nullptr;
    for (const Task& run : data.flow_runs)
      if (run.span->end <= cursor + kEps &&
          (!last || run.span->end > last->span->end))
        last = &run;
    if (last) {
      wait_to(last->span->end, "drain-wait", "flow drain");
      granule = granule_of(*last->span);
      const auto states = data.flow_states.find(last->span->track);
      if (states != data.flow_states.end()) {
        for (auto it = states->second.rbegin(); it != states->second.rend();
             ++it) {
          wait_to(it->span->end, "orchestration", "flow transition");
          const std::string kind = it->span->name == "infer"
                                       ? "inference"
                                       : "flow." + it->span->name;
          emit(kind.c_str(), it->span->name, granule, it->span->start,
               it->span->end);
        }
      }
      wait_to(last->span->start, "orchestration", "flow launch");
    }
  } else if (const auto it = data.task_groups.find("inference");
             it != data.task_groups.end()) {
    const Task* last = nullptr;
    for (const Task& task : it->second)
      if (task.span->end <= cursor + kEps &&
          (!last || task.span->end > last->span->end))
        last = &task;
    if (last) {
      wait_to(last->span->end, "drain-wait", "inference drain");
      granule = granule_of(*last->span);
      emit("inference", last->span->name, granule, last->span->start,
           last->span->end);
      const double wait = arg_double(*last->span, "queue_wait_s");
      if (wait > kEps)
        emit("queue-wait", "inference queue", granule,
             last->span->start - wait, last->span->start);
    }
  }

  // 3. The preprocess task that produced that granule's tile (or, without an
  // identity, the latest preprocess task before the cursor).
  const Task* preprocess = nullptr;
  if (!granule.empty()) {
    const auto it = data.granule_preprocess.find(granule);
    if (it != data.granule_preprocess.end() &&
        it->second.span->end <= cursor + kEps)
      preprocess = &it->second;
  }
  if (!preprocess) {
    const auto it = data.task_groups.find("preprocess");
    if (it != data.task_groups.end()) {
      for (const Task& task : it->second)
        if (task.span->end <= cursor + kEps &&
            (!preprocess || task.span->end > preprocess->span->end))
          preprocess = &task;
    }
  }
  if (preprocess) {
    wait_to(preprocess->span->end, "monitor-wait", "tile -> flow trigger");
    granule = granule_of(*preprocess->span);
    emit("preprocess", preprocess->span->name, granule,
         preprocess->span->start, preprocess->span->end);
    const double wait = arg_double(*preprocess->span, "queue_wait_s");
    if (wait > kEps)
      emit("queue-wait", "preprocess queue", granule,
           preprocess->span->start - wait, preprocess->span->start);
  }

  // 4. The download that released the submit boundary. In barrier mode the
  // latest download before the cursor is the stage-closing one; in streaming
  // mode it is (one of) the file(s) completing the triplet just submitted.
  const auto downloads = data.task_groups.find("download");
  if (downloads != data.task_groups.end() && !downloads->second.empty()) {
    const Task* last = nullptr;
    for (const Task& task : downloads->second)
      if (task.span->end <= cursor + kEps &&
          (!last || task.span->end > last->span->end))
        last = &task;
    const auto stage_it = data.stage_spans.find("download");
    const TraceSpan* stage =
        stage_it != data.stage_spans.end() ? stage_it->second : nullptr;
    if (last) {
      const bool barrier =
          stage && std::abs(last->span->end - stage->end) <= 1e-6;
      wait_to(last->span->end, "submit-wait",
              barrier ? "download barrier release" : "dispatch wait");
      emit("download", last->span->name, granule_of(*last->span),
           last->span->start, last->span->end);
    }
    // Everything earlier is the pipelined download phase: the granule's own
    // history interleaves with every other transfer on the shared WAN, so it
    // is reported as one aggregate segment rather than a fake single chain.
    const double pipeline_start = stage ? stage->start
                                        : downloads->second.front().span->start;
    if (cursor - pipeline_start > kEps) {
      char detail[64];
      std::snprintf(detail, sizeof detail, "%zu files pipelined",
                    downloads->second.size());
      emit("download-pipeline", detail, "", pipeline_start, cursor);
    }
  }
  wait_to(data.start, "startup", "pre-pipeline startup");

  path.segments.assign(reversed.rbegin(), reversed.rend());
  std::map<std::string, double> by_stage;
  for (const auto& segment : path.segments) {
    path.length += segment.duration();
    by_stage[path_stage(segment.kind)] += segment.duration();
  }
  path.coverage = path.length / path.makespan;
  for (const auto& [stage, seconds] : by_stage)
    path.by_stage.emplace_back(stage, seconds);
  std::sort(path.by_stage.begin(), path.by_stage.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (!path.by_stage.empty()) path.dominant_stage = path.by_stage.front().first;
  return path;
}

}  // namespace

TraceReport analyze_trace(const TraceRecorder& recorder,
                          const AnalyzeOptions& options) {
  TraceReport report;
  const Snapshot snapshot{recorder.processes(), recorder.tracks(),
                          recorder.spans(), recorder.instants()};
  for (const ProcessData& data : collect(snapshot)) {
    if (data.spans + data.instants == 0) continue;
    ProcessReport process;
    process.process = data.process->name;
    process.start = data.start;
    process.end = data.end;
    process.spans = data.spans;
    process.instants = data.instants;
    compute_stage_stats(data, options, process);
    detect_stragglers(data, options, process);
    process.critical_path = compute_critical_path(data);
    const TraceSpan* longest = nullptr;
    for (const auto& [stage, span] : data.stage_spans)
      if (!longest || span->duration() > longest->duration()) longest = span;
    if (longest) {
      process.dominant_stage = longest->name;
    } else if (!process.critical_path.dominant_stage.empty()) {
      process.dominant_stage = process.critical_path.dominant_stage;
    }
    report.processes.push_back(std::move(process));
  }
  return report;
}

std::string TraceReport::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.field("schema", "mfw.trace_report/v1");
  w.key("processes").begin_array();
  for (const auto& p : processes) {
    w.item("\n").begin_object();
    w.field("process", p.process);
    w.field("start", p.start);
    w.field("end", p.end);
    w.field("makespan", p.makespan());
    w.field("dominant_stage", p.dominant_stage);
    w.field("spans", p.spans);
    w.field("instants", p.instants);
    w.key("stages", "\n ").begin_array();
    for (const auto& s : p.stages) {
      w.item("\n  ").begin_object();
      w.field("stage", s.stage);
      w.field("start", s.start);
      w.field("end", s.end);
      w.field("duration", s.duration());
      w.field("tasks", s.tasks);
      w.field("workers", s.workers);
      w.field("busy_s", s.busy_s);
      w.field("utilization", s.utilization);
      w.field("p50", s.p50);
      w.field("p99", s.p99);
      w.field("max", s.max);
      w.field("queue_p50", s.queue_p50);
      w.field("queue_p99", s.queue_p99);
      w.field("queue_max", s.queue_max);
      w.end_object();
    }
    w.end_array();
    w.key("nodes", "\n ").begin_array();
    for (const auto& n : p.nodes) {
      w.item("\n  ").begin_object();
      w.field("stage", n.stage);
      w.field("node", n.node);
      w.field("workers", n.workers);
      w.field("tasks", n.tasks);
      w.field("busy_s", n.busy_s);
      w.field("utilization", n.utilization);
      w.end_object();
    }
    w.end_array();
    w.key("timelines", "\n ").begin_array();
    for (const auto& t : p.timelines) {
      w.item("\n  ").begin_object();
      w.field("stage", t.stage);
      w.field("t0", t.t0);
      w.field("bin_s", t.bin_s);
      w.key("busy").begin_array();
      for (const double busy : t.busy) w.inline_item().value(busy);
      w.end_array().end_object();
    }
    w.end_array();
    const auto& cp = p.critical_path;
    w.key("critical_path", "\n ").begin_object();
    w.field("makespan", cp.makespan);
    w.field("length", cp.length);
    w.field("coverage", cp.coverage);
    w.field("dominant_stage", cp.dominant_stage);
    w.key("by_stage").begin_array();
    for (const auto& [stage, seconds] : cp.by_stage) {
      w.inline_item().begin_object();
      w.field("stage", stage);
      w.field("seconds", seconds);
      w.end_object();
    }
    w.end_array();
    w.key("segments", "\n  ").begin_array();
    for (const auto& seg : cp.segments) {
      w.item("\n   ").begin_object();
      w.field("kind", seg.kind);
      w.field("detail", seg.detail);
      w.field("granule", seg.granule);
      w.field("start", seg.start);
      w.field("end", seg.end);
      w.field("duration", seg.duration());
      w.end_object();
    }
    w.end_array().end_object();
    w.key("stragglers", "\n ").begin_array();
    for (const auto& group : p.stragglers) {
      w.item("\n  ").begin_object();
      w.field("group", group.group);
      w.field("count", group.count);
      w.field("median", group.median);
      w.field("flagged_count", group.flagged_count);
      w.key("flagged").begin_array();
      for (const auto& s : group.flagged) {
        w.item("\n   ").begin_object();
        w.field("name", s.name);
        w.field("track", s.track);
        w.field("granule", s.granule);
        w.field("attribution", s.attribution);
        w.field("duration", s.duration);
        w.field("ratio", s.ratio);
        w.field("queue_wait", s.queue_wait);
        w.end_object();
      }
      w.end_array().end_object();
    }
    w.end_array().end_object();
  }
  // The seed writer closed with an unconditional "\n]" even for an empty
  // process list; keep that byte-for-byte.
  w.raw("\n").end_array().end_object();
  return w.take();
}

std::string TraceReport::render_text() const {
  std::ostringstream os;
  char line[512];
  for (const auto& p : processes) {
    std::snprintf(line, sizeof line,
                  "process %s: makespan %.1f s, dominant stage %s (%zu spans, "
                  "%zu instants)\n",
                  p.process.c_str(), p.makespan(), p.dominant_stage.c_str(),
                  p.spans, p.instants);
    os << line;
    os << "  stages:\n";
    for (const auto& s : p.stages) {
      if (s.tasks == 0) {
        std::snprintf(line, sizeof line, "    %-11s [%8.1f, %8.1f]\n",
                      s.stage.c_str(), s.start, s.end);
        os << line;
        continue;
      }
      std::snprintf(line, sizeof line,
                    "    %-11s [%8.1f, %8.1f]  %5zu tasks  %3zu workers  "
                    "util %5.1f%%  p50 %.2fs p99 %.2fs  queue p99 %.2fs\n",
                    s.stage.c_str(), s.start, s.end, s.tasks, s.workers,
                    100.0 * s.utilization, s.p50, s.p99, s.queue_p99);
      os << line;
    }
    const auto& cp = p.critical_path;
    std::snprintf(line, sizeof line,
                  "  critical path: %.1f s over %zu segments (%.1f%% of "
                  "makespan), dominant %s\n",
                  cp.length, cp.segments.size(), 100.0 * cp.coverage,
                  cp.dominant_stage.c_str());
    os << line;
    for (const auto& [stage, seconds] : cp.by_stage) {
      std::snprintf(line, sizeof line, "    %-11s %8.1f s  (%.1f%%)\n",
                    stage.c_str(), seconds,
                    cp.makespan > 0.0 ? 100.0 * seconds / cp.makespan : 0.0);
      os << line;
    }
    for (const auto& group : p.stragglers) {
      if (group.flagged_count == 0) continue;
      std::snprintf(line, sizeof line,
                    "  stragglers in %s: %zu/%zu over %.1fx median %.2fs\n",
                    group.group.c_str(), group.flagged_count, group.count,
                    group.flagged.empty() ? 0.0 : group.flagged.front().ratio,
                    group.median);
      os << line;
      for (const auto& s : group.flagged) {
        std::snprintf(line, sizeof line,
                      "    %-28s %8.2fs  %5.1fx median  %s  [%s]\n",
                      s.name.c_str(), s.duration, s.ratio,
                      s.attribution.c_str(), s.track.c_str());
        os << line;
      }
    }
  }
  return os.str();
}

}  // namespace mfw::obs
