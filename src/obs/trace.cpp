#include "obs/trace.hpp"

namespace mfw::obs {

namespace {
/// Fallback time source when no clock is attached; origin at first use so
/// standalone tools still get small, positive timestamps.
const sim::Clock& wall_fallback() {
  static sim::WallClock wall;
  return wall;
}
}  // namespace

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::set_clock(const sim::Clock* clock) {
  std::lock_guard lock(mu_);
  clock_ = clock;
}

const sim::Clock* TraceRecorder::clock() const {
  std::lock_guard lock(mu_);
  return clock_;
}

double TraceRecorder::now() const {
  std::lock_guard lock(mu_);
  return (clock_ ? *clock_ : wall_fallback()).now();
}

void TraceRecorder::ensure_default_process_locked() {
  if (!processes_.empty()) return;
  processes_.push_back(TraceProcess{1, "mfw"});
  current_pid_ = 1;
}

std::uint32_t TraceRecorder::begin_process(std::string name) {
  std::lock_guard lock(mu_);
  ensure_default_process_locked();
  const auto pid = static_cast<std::uint32_t>(processes_.size() + 1);
  processes_.push_back(TraceProcess{pid, std::move(name)});
  current_pid_ = pid;
  return pid;
}

std::uint32_t TraceRecorder::intern_track_locked(std::string_view name) {
  ensure_default_process_locked();
  const auto key = std::make_pair(current_pid_, std::string(name));
  const auto it = track_index_.find(key);
  if (it != track_index_.end()) return it->second;
  const auto index = static_cast<std::uint32_t>(tracks_.size());
  TraceTrack track;
  track.process = current_pid_;
  track.tid = index + 1;
  track.name = key.second;
  tracks_.push_back(std::move(track));
  track_index_.emplace(key, index);
  return index;
}

void TraceRecorder::note_closed_locked(const TraceSpan& span) {
  ++observed_spans_;
  if (sink_) sink_->on_span(tracks_[span.track], span);
}

bool TraceRecorder::retain_sample_locked() const {
  return retention_.sample_every != 0 &&
         observed_spans_ % retention_.sample_every == 0 &&
         spans_.size() < retention_.max_retained;
}

SpanId TraceRecorder::begin_span(std::string_view track,
                                 std::string_view category,
                                 std::string_view name, Args args) {
  if (!enabled()) return {};
  std::lock_guard lock(mu_);
  TraceSpan span;
  span.track = intern_track_locked(track);
  span.category = std::string(category);
  span.name = std::string(name);
  span.start = (clock_ ? *clock_ : wall_fallback()).now();
  span.args = std::move(args);
  if (retention_.mode == RetentionMode::kStatsOnly) {
    const auto id = (++next_open_id_) | kBoundedBit;
    open_spans_.emplace(id, std::move(span));
    return SpanId{id};
  }
  spans_.push_back(std::move(span));
  return SpanId{spans_.size()};
}

void TraceRecorder::end_span(SpanId span, Args args) {
  if (!span.valid()) return;
  std::lock_guard lock(mu_);
  const double at = (clock_ ? *clock_ : wall_fallback()).now();
  if (span.id & kBoundedBit) {
    const auto it = open_spans_.find(span.id);
    if (it == open_spans_.end()) return;  // stale handle after clear()
    TraceSpan record = std::move(it->second);
    open_spans_.erase(it);
    record.end = at;
    for (auto& arg : args) record.args.push_back(std::move(arg));
    note_closed_locked(record);
    if (retain_sample_locked()) {
      spans_.push_back(std::move(record));
    } else {
      ++dropped_spans_;
    }
    return;
  }
  if (span.id > spans_.size()) return;  // stale handle after clear()
  TraceSpan& record = spans_[span.id - 1];
  record.end = at;
  for (auto& arg : args) record.args.push_back(std::move(arg));
  note_closed_locked(record);
}

void TraceRecorder::add_span(std::string_view track, std::string_view category,
                             std::string_view name, double start, double end,
                             Args args) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  TraceSpan span;
  span.track = intern_track_locked(track);
  span.category = std::string(category);
  span.name = std::string(name);
  span.start = start;
  span.end = end;
  span.args = std::move(args);
  note_closed_locked(span);
  if (retention_.mode == RetentionMode::kFull || retain_sample_locked()) {
    spans_.push_back(std::move(span));
  } else {
    ++dropped_spans_;
  }
}

void TraceRecorder::instant(std::string_view track, std::string_view category,
                            std::string_view name, Args args) {
  if (!enabled()) return;
  add_instant(track, category, name, now(), std::move(args));
}

void TraceRecorder::add_instant(std::string_view track,
                                std::string_view category,
                                std::string_view name, double at, Args args) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  TraceInstant event;
  event.track = intern_track_locked(track);
  event.category = std::string(category);
  event.name = std::string(name);
  event.at = at;
  event.args = std::move(args);
  if (sink_) sink_->on_instant(tracks_[event.track], event);
  if (retention_.mode == RetentionMode::kFull) {
    instants_.push_back(std::move(event));
  } else {
    ++dropped_instants_;
  }
}

void TraceRecorder::set_retention(RetentionPolicy policy) {
  std::lock_guard lock(mu_);
  retention_ = policy;
}

RetentionPolicy TraceRecorder::retention() const {
  std::lock_guard lock(mu_);
  return retention_;
}

void TraceRecorder::set_span_sink(SpanSink* sink) {
  std::lock_guard lock(mu_);
  sink_ = sink;
}

std::size_t TraceRecorder::observed_span_count() const {
  std::lock_guard lock(mu_);
  return observed_spans_;
}

std::size_t TraceRecorder::dropped_span_count() const {
  std::lock_guard lock(mu_);
  return dropped_spans_;
}

std::size_t TraceRecorder::dropped_instant_count() const {
  std::lock_guard lock(mu_);
  return dropped_instants_;
}

void TraceRecorder::clear() {
  std::lock_guard lock(mu_);
  processes_.clear();
  current_pid_ = 0;
  tracks_.clear();
  track_index_.clear();
  spans_.clear();
  instants_.clear();
  open_spans_.clear();
  next_open_id_ = 0;
  observed_spans_ = 0;
  dropped_spans_ = 0;
  dropped_instants_ = 0;
}

std::vector<TraceProcess> TraceRecorder::processes() const {
  std::lock_guard lock(mu_);
  return processes_;
}

std::vector<TraceTrack> TraceRecorder::tracks() const {
  std::lock_guard lock(mu_);
  return tracks_;
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  std::lock_guard lock(mu_);
  return spans_;
}

std::vector<TraceInstant> TraceRecorder::instants() const {
  std::lock_guard lock(mu_);
  return instants_;
}

std::size_t TraceRecorder::span_count() const {
  std::lock_guard lock(mu_);
  return spans_.size();
}

std::size_t TraceRecorder::instant_count() const {
  std::lock_guard lock(mu_);
  return instants_.size();
}

std::size_t TraceRecorder::open_span_count() const {
  std::lock_guard lock(mu_);
  std::size_t open = open_spans_.size();
  for (const auto& span : spans_)
    if (!span.closed()) ++open;
  return open;
}

}  // namespace mfw::obs
