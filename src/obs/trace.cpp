#include "obs/trace.hpp"

namespace mfw::obs {

namespace {
/// Fallback time source when no clock is attached; origin at first use so
/// standalone tools still get small, positive timestamps.
const sim::Clock& wall_fallback() {
  static sim::WallClock wall;
  return wall;
}
}  // namespace

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::set_clock(const sim::Clock* clock) {
  std::lock_guard lock(mu_);
  clock_ = clock;
}

const sim::Clock* TraceRecorder::clock() const {
  std::lock_guard lock(mu_);
  return clock_;
}

double TraceRecorder::now() const {
  std::lock_guard lock(mu_);
  return (clock_ ? *clock_ : wall_fallback()).now();
}

void TraceRecorder::ensure_default_process_locked() {
  if (!processes_.empty()) return;
  processes_.push_back(TraceProcess{1, "mfw"});
  current_pid_ = 1;
}

std::uint32_t TraceRecorder::begin_process(std::string name) {
  std::lock_guard lock(mu_);
  ensure_default_process_locked();
  const auto pid = static_cast<std::uint32_t>(processes_.size() + 1);
  processes_.push_back(TraceProcess{pid, std::move(name)});
  current_pid_ = pid;
  return pid;
}

std::uint32_t TraceRecorder::intern_track_locked(std::string_view name) {
  ensure_default_process_locked();
  const auto key = std::make_pair(current_pid_, std::string(name));
  const auto it = track_index_.find(key);
  if (it != track_index_.end()) return it->second;
  const auto index = static_cast<std::uint32_t>(tracks_.size());
  TraceTrack track;
  track.process = current_pid_;
  track.tid = index + 1;
  track.name = key.second;
  tracks_.push_back(std::move(track));
  track_index_.emplace(key, index);
  return index;
}

SpanId TraceRecorder::begin_span(std::string_view track,
                                 std::string_view category,
                                 std::string_view name, Args args) {
  if (!enabled()) return {};
  std::lock_guard lock(mu_);
  TraceSpan span;
  span.track = intern_track_locked(track);
  span.category = std::string(category);
  span.name = std::string(name);
  span.start = (clock_ ? *clock_ : wall_fallback()).now();
  span.args = std::move(args);
  spans_.push_back(std::move(span));
  return SpanId{spans_.size()};
}

void TraceRecorder::end_span(SpanId span, Args args) {
  if (!span.valid()) return;
  std::lock_guard lock(mu_);
  if (span.id > spans_.size()) return;  // stale handle after clear()
  TraceSpan& record = spans_[span.id - 1];
  record.end = (clock_ ? *clock_ : wall_fallback()).now();
  for (auto& arg : args) record.args.push_back(std::move(arg));
}

void TraceRecorder::add_span(std::string_view track, std::string_view category,
                             std::string_view name, double start, double end,
                             Args args) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  TraceSpan span;
  span.track = intern_track_locked(track);
  span.category = std::string(category);
  span.name = std::string(name);
  span.start = start;
  span.end = end;
  span.args = std::move(args);
  spans_.push_back(std::move(span));
}

void TraceRecorder::instant(std::string_view track, std::string_view category,
                            std::string_view name, Args args) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  TraceInstant event;
  event.track = intern_track_locked(track);
  event.category = std::string(category);
  event.name = std::string(name);
  event.at = (clock_ ? *clock_ : wall_fallback()).now();
  event.args = std::move(args);
  instants_.push_back(std::move(event));
}

void TraceRecorder::clear() {
  std::lock_guard lock(mu_);
  processes_.clear();
  current_pid_ = 0;
  tracks_.clear();
  track_index_.clear();
  spans_.clear();
  instants_.clear();
}

std::vector<TraceProcess> TraceRecorder::processes() const {
  std::lock_guard lock(mu_);
  return processes_;
}

std::vector<TraceTrack> TraceRecorder::tracks() const {
  std::lock_guard lock(mu_);
  return tracks_;
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  std::lock_guard lock(mu_);
  return spans_;
}

std::vector<TraceInstant> TraceRecorder::instants() const {
  std::lock_guard lock(mu_);
  return instants_;
}

std::size_t TraceRecorder::span_count() const {
  std::lock_guard lock(mu_);
  return spans_.size();
}

std::size_t TraceRecorder::instant_count() const {
  std::lock_guard lock(mu_);
  return instants_.size();
}

std::size_t TraceRecorder::open_span_count() const {
  std::lock_guard lock(mu_);
  std::size_t open = 0;
  for (const auto& span : spans_)
    if (!span.closed()) ++open;
  return open;
}

}  // namespace mfw::obs
