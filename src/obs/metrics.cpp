#include "obs/metrics.hpp"

#include <algorithm>

namespace mfw::obs {

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::SeriesKey MetricsRegistry::key_of(std::string_view name,
                                                   const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return {std::string(name), std::move(sorted)};
}

void MetricsRegistry::counter_add(std::string_view name, double delta,
                                  const Labels& labels) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  counters_[key_of(name, labels)] += delta;
}

void MetricsRegistry::gauge_set(std::string_view name, double value,
                                const Labels& labels) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  gauges_[key_of(name, labels)] = value;
}

void MetricsRegistry::observe(std::string_view name, double value,
                              const Labels& labels,
                              std::optional<HistogramSpec> spec) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  Distribution& dist = distributions_[key_of(name, labels)];
  dist.stats.add(value);
  if (!dist.histogram && spec)
    dist.histogram.emplace(spec->lo, spec->hi, spec->bins);
  if (dist.histogram) dist.histogram->add(value);
}

void MetricsRegistry::clear() {
  std::lock_guard lock(mu_);
  counters_.clear();
  gauges_.clear();
  distributions_.clear();
}

double MetricsRegistry::counter(std::string_view name,
                                const Labels& labels) const {
  std::lock_guard lock(mu_);
  const auto it = counters_.find(key_of(name, labels));
  return it == counters_.end() ? 0.0 : it->second;
}

std::optional<double> MetricsRegistry::gauge(std::string_view name,
                                             const Labels& labels) const {
  std::lock_guard lock(mu_);
  const auto it = gauges_.find(key_of(name, labels));
  if (it == gauges_.end()) return std::nullopt;
  return it->second;
}

std::optional<Distribution> MetricsRegistry::distribution(
    std::string_view name, const Labels& labels) const {
  std::lock_guard lock(mu_);
  const auto it = distributions_.find(key_of(name, labels));
  if (it == distributions_.end()) return std::nullopt;
  return it->second;
}

std::vector<MetricsRegistry::CounterEntry> MetricsRegistry::counters() const {
  std::lock_guard lock(mu_);
  std::vector<CounterEntry> out;
  out.reserve(counters_.size());
  for (const auto& [key, value] : counters_)
    out.push_back(CounterEntry{key.first, key.second, value});
  return out;
}

std::vector<MetricsRegistry::GaugeEntry> MetricsRegistry::gauges() const {
  std::lock_guard lock(mu_);
  std::vector<GaugeEntry> out;
  out.reserve(gauges_.size());
  for (const auto& [key, value] : gauges_)
    out.push_back(GaugeEntry{key.first, key.second, value});
  return out;
}

std::vector<MetricsRegistry::DistributionEntry>
MetricsRegistry::distributions() const {
  std::lock_guard lock(mu_);
  std::vector<DistributionEntry> out;
  out.reserve(distributions_.size());
  for (const auto& [key, dist] : distributions_)
    out.push_back(DistributionEntry{key.first, key.second, dist});
  return out;
}

}  // namespace mfw::obs
