#include "analysis/aicca.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "preprocess/tile_io.hpp"
#include "storage/ncl.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace mfw::analysis {

namespace {

struct ParsedFile {
  std::vector<TileRecord> records;
  bool skipped = false;
};

ParsedFile parse_tile_file(const std::vector<std::byte>& bytes) {
  const auto file = storage::NclFile::deserialize(bytes);
  ParsedFile parsed;
  if (!file.has_var("tiles") || !file.has_var("label")) {
    parsed.skipped = true;
    return parsed;
  }
  const auto granule_attr = file.attrs().find("granule");
  modis::GranuleId granule;
  if (granule_attr != file.attrs().end()) {
    if (const auto id = modis::parse_granule_filename(granule_attr->second))
      granule = *id;
  }
  const auto labels = file.var("label").as_i32();
  const auto lat = file.var("latitude").as_f32();
  const auto lon = file.var("longitude").as_f32();
  const auto cf = file.var("cloud_fraction").as_f32();
  const auto cot = file.var("cloud_optical_thickness").as_f32();
  const auto ctp = file.var("cloud_top_pressure").as_f32();
  const auto cwp = file.var("cloud_water_path").as_f32();
  parsed.records.reserve(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    TileRecord record;
    record.granule = granule;
    record.label = labels[i];
    record.latitude = lat[i];
    record.longitude = lon[i];
    record.cloud_fraction = cf[i];
    record.optical_thickness = cot[i];
    record.cloud_top_pressure = ctp[i];
    record.water_path = cwp[i];
    parsed.records.push_back(record);
  }
  return parsed;
}

}  // namespace

AiccaArchive AiccaArchive::load(storage::FileSystem& fs,
                                const std::string& pattern,
                                util::ThreadPool* pool) {
  AiccaArchive archive;
  const auto infos = fs.list(pattern);
  // Byte reads stay sequential — FileSystem implementations need not be
  // thread-safe — but deserialization and record extraction are pure CPU
  // work on private buffers, so those fan out per file.
  std::vector<std::vector<std::byte>> bytes;
  bytes.reserve(infos.size());
  for (const auto& info : infos) bytes.push_back(fs.read_file(info.path));
  std::vector<ParsedFile> parsed(bytes.size());
  if (pool != nullptr && bytes.size() > 1) {
    util::parallel_for(*pool, bytes.size(),
                       [&](std::size_t i) { parsed[i] = parse_tile_file(bytes[i]); });
  } else {
    for (std::size_t i = 0; i < bytes.size(); ++i)
      parsed[i] = parse_tile_file(bytes[i]);
  }
  // Concatenate in file order so the archive is independent of scheduling.
  archive.files_ = parsed.size();
  for (auto& p : parsed) {
    if (p.skipped) {
      ++archive.skipped_;
      continue;
    }
    archive.records_.insert(archive.records_.end(), p.records.begin(),
                            p.records.end());
  }
  return archive;
}

std::vector<std::size_t> AiccaArchive::class_histogram(int num_classes) const {
  if (num_classes <= 0)
    throw std::invalid_argument("class_histogram: num_classes must be > 0");
  std::vector<std::size_t> histogram(static_cast<std::size_t>(num_classes), 0);
  for (const auto& record : records_) {
    if (record.label < 0 || record.label >= num_classes)
      throw std::out_of_range("tile label " + std::to_string(record.label) +
                              " outside [0, " + std::to_string(num_classes) +
                              ")");
    ++histogram[static_cast<std::size_t>(record.label)];
  }
  return histogram;
}

std::map<int, ClassStats> AiccaArchive::class_stats() const {
  std::map<int, ClassStats> stats;
  for (const auto& record : records_) {
    auto& entry = stats[record.label];
    ++entry.count;
    entry.mean_cloud_fraction += record.cloud_fraction;
    entry.mean_optical_thickness += record.optical_thickness;
    entry.mean_cloud_top_pressure += record.cloud_top_pressure;
    entry.mean_water_path += record.water_path;
    entry.mean_abs_latitude += std::abs(record.latitude);
  }
  for (auto& [label, entry] : stats) {
    const auto n = static_cast<double>(entry.count);
    entry.mean_cloud_fraction /= n;
    entry.mean_optical_thickness /= n;
    entry.mean_cloud_top_pressure /= n;
    entry.mean_water_path /= n;
    entry.mean_abs_latitude /= n;
  }
  return stats;
}

std::vector<std::vector<std::size_t>> AiccaArchive::zonal_class_counts(
    int num_classes, double band_degrees) const {
  if (!(band_degrees > 0))
    throw std::invalid_argument("zonal_class_counts: band_degrees must be > 0");
  const auto bands = static_cast<std::size_t>(std::ceil(180.0 / band_degrees));
  std::vector<std::vector<std::size_t>> counts(
      bands, std::vector<std::size_t>(static_cast<std::size_t>(num_classes), 0));
  for (const auto& record : records_) {
    if (record.label < 0 || record.label >= num_classes) continue;
    auto band = static_cast<std::size_t>(
        (static_cast<double>(record.latitude) + 90.0) / band_degrees);
    band = std::min(band, bands - 1);
    ++counts[band][static_cast<std::size_t>(record.label)];
  }
  return counts;
}

std::string AiccaArchive::report(int num_classes) const {
  std::ostringstream os;
  os << "AICCA archive: " << tile_count() << " labelled tiles from "
     << file_count() - skipped_manifests() << " files";
  if (skipped_) os << " (" << skipped_ << " manifest-only files skipped)";
  os << "\n\n";

  util::Table classes({"class", "tiles", "mean CF", "mean COT", "mean CTP",
                       "mean CWP", "mean |lat|"});
  for (const auto& [label, stats] : class_stats()) {
    classes.add_row({std::to_string(label), std::to_string(stats.count),
                     util::Table::num(stats.mean_cloud_fraction, 3),
                     util::Table::num(stats.mean_optical_thickness, 2),
                     util::Table::num(stats.mean_cloud_top_pressure, 1),
                     util::Table::num(stats.mean_water_path, 1),
                     util::Table::num(stats.mean_abs_latitude, 1)});
  }
  os << classes.render() << "\n";

  os << "Zonal distribution (tiles per 15-degree latitude band):\n";
  const auto zonal = zonal_class_counts(num_classes, 15.0);
  for (std::size_t band = 0; band < zonal.size(); ++band) {
    std::size_t total = 0;
    for (auto c : zonal[band]) total += c;
    if (total == 0) continue;
    const double lat_lo = -90.0 + 15.0 * static_cast<double>(band);
    os << "  [" << lat_lo << ", " << lat_lo + 15.0 << "): " << total
       << " tiles\n";
  }
  return os.str();
}

}  // namespace mfw::analysis
