// Downstream AICCA analytics: what the shipment stage exists for.
//
// "Once in place, these files are readily accessible for research
// scientists and downstream workflows for further analysis" — this module
// is that downstream consumer: it loads the labelled tile archive from a
// facility filesystem (Frontier's Orion in the pipeline) and computes the
// climate quantities the AICCA paper derives from its atlas — class
// occurrence, per-class physical properties (cloud fraction, optical
// thickness, top pressure, water path), and zonal (latitude-band)
// distributions used to monitor cloud-regime changes over time.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "modis/catalog.hpp"
#include "storage/filesystem.hpp"

namespace mfw::util {
class ThreadPool;
}

namespace mfw::analysis {

/// One labelled ocean-cloud tile flattened out of a tile file.
struct TileRecord {
  modis::GranuleId granule;
  int label = -1;
  float latitude = 0.0f;
  float longitude = 0.0f;
  float cloud_fraction = 0.0f;
  float optical_thickness = 0.0f;
  float cloud_top_pressure = 0.0f;
  float water_path = 0.0f;
};

/// Per-class aggregate statistics.
struct ClassStats {
  std::size_t count = 0;
  double mean_cloud_fraction = 0.0;
  double mean_optical_thickness = 0.0;
  double mean_cloud_top_pressure = 0.0;
  double mean_water_path = 0.0;
  double mean_abs_latitude = 0.0;
};

/// The labelled tile archive (e.g. everything under Orion's aicca/).
class AiccaArchive {
 public:
  /// Loads every *labelled, pixel-bearing* tile file matching `pattern`
  /// from `fs`. Manifest-only files (timing-mode output) carry no per-tile
  /// variables and are counted in `skipped_manifests` instead. With a pool,
  /// byte reads stay sequential (FileSystem implementations need not be
  /// thread-safe) but container parsing fans out per file; records keep
  /// file order either way.
  static AiccaArchive load(storage::FileSystem& fs, const std::string& pattern,
                           util::ThreadPool* pool = nullptr);

  std::size_t tile_count() const { return records_.size(); }
  std::size_t file_count() const { return files_; }
  std::size_t skipped_manifests() const { return skipped_; }
  const std::vector<TileRecord>& records() const { return records_; }

  /// Occurrence count per class id (size = num_classes; out-of-range labels
  /// throw).
  std::vector<std::size_t> class_histogram(int num_classes) const;

  /// Aggregates per class (classes with zero tiles are absent).
  std::map<int, ClassStats> class_stats() const;

  /// counts[band][class]: tile counts per latitude band (from -90, width
  /// `band_degrees`) per class.
  std::vector<std::vector<std::size_t>> zonal_class_counts(
      int num_classes, double band_degrees = 15.0) const;

  /// Text report: class table + zonal distribution (for examples/benches).
  std::string report(int num_classes) const;

 private:
  std::vector<TileRecord> records_;
  std::size_t files_ = 0;
  std::size_t skipped_ = 0;
};

}  // namespace mfw::analysis
