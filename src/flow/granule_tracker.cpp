#include "flow/granule_tracker.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace mfw::flow {

namespace {
constexpr const char* kComponent = "granules";
}

GranuleTracker::GranuleTracker(EventBus& bus, GranuleTrackerConfig config)
    : bus_(bus), config_(std::move(config)) {
  if (config_.required.empty())
    throw std::invalid_argument("GranuleTracker needs >= 1 required product");
  if (config_.file_topic.empty() || config_.ready_topic.empty())
    throw std::invalid_argument("GranuleTracker needs non-empty topics");
  file_sub_ = bus_.subscribe(config_.file_topic, [this](const util::YamlNode& node) {
    if (const auto event = FileEvent::from_yaml(node)) observe_file(*event);
  });
}

GranuleTracker::~GranuleTracker() { bus_.unsubscribe(file_sub_); }

Subscription GranuleTracker::on_ready(ReadyHandler handler) {
  return bus_.subscribe(
      config_.ready_topic,
      [handler = std::move(handler)](const util::YamlNode& node) {
        if (const auto ready = ReadyGranule::from_yaml(node)) handler(*ready);
      });
}

void GranuleTracker::observe_file(const FileEvent& event) {
  if (std::find(config_.required.begin(), config_.required.end(),
                event.id.product) == config_.required.end()) {
    return;
  }
  ++files_;
  const auto key = GranuleKey::of(event.id);
  if (completed_.count(key)) return;  // late duplicate of a whole triplet
  auto [it, inserted] = partial_.emplace(key, Partial{});
  Partial& partial = it->second;
  if (inserted) partial.first_at = event.finished_at;
  partial.paths[event.id.product] = event.path;
  if (partial.paths.size() < config_.required.size()) return;

  ReadyGranule ready;
  ready.key = key;
  const auto path_of = [&partial](modis::ProductKind kind) {
    const auto pit = partial.paths.find(kind);
    return pit == partial.paths.end() ? std::string{} : pit->second;
  };
  ready.mod02_path = path_of(modis::ProductKind::kMod02);
  ready.mod03_path = path_of(modis::ProductKind::kMod03);
  ready.mod06_path = path_of(modis::ProductKind::kMod06);
  ready.first_file_at = partial.first_at;
  ready.ready_at = event.finished_at;
  partial_.erase(it);
  completed_.insert(key);
  ++ready_;
  MFW_DEBUG(kComponent, "granule ", ready.key.to_string(), " whole after ",
            ready.ready_at - ready.first_file_at, "s");
  if (auto& rec = obs::TraceRecorder::instance(); rec.enabled()) {
    const double assembly = ready.ready_at - ready.first_file_at;
    rec.instant("flow/granules", "flow", "granule.ready",
                {{"key", ready.key.to_string()},
                 {"assembly_s", std::to_string(assembly)}});
    auto& metrics = obs::MetricsRegistry::instance();
    metrics.counter_add("mfw.flow.granules_ready_total", 1.0);
    metrics.observe("mfw.flow.granule_assembly_seconds", assembly, {},
                    obs::HistogramSpec{0.0, 120.0, 24});
  }
  bus_.publish(config_.ready_topic, ready.to_yaml());
}

std::vector<GranuleKey> GranuleTracker::pending_keys() const {
  std::vector<GranuleKey> keys;
  keys.reserve(partial_.size());
  for (const auto& [key, partial] : partial_) keys.push_back(key);
  return keys;
}

}  // namespace mfw::flow
