// FlowRunner: executes FlowDefinitions against registered action providers.
//
// The runner is the Globus-Flows service analogue: it advances a run's state
// machine over the simulation engine, charging a small orchestration
// overhead per action transition (the paper measures ~50 ms for "the action
// to move execution and termination"), resolves "$.path" parameter
// references against the run context, merges action results back into the
// context, and writes a provenance record per run.
//
// Actions are asynchronous: an ActionFn receives its resolved parameters, a
// read-only view of the context, and succeed/fail continuations which it may
// call immediately or from any later simulation event.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "flow/definition.hpp"
#include "flow/provenance.hpp"
#include "flow/schema.hpp"
#include "sim/engine.hpp"

namespace mfw::flow {

/// Continuations handed to an action provider.
struct ActionHandle {
  std::function<void(util::YamlNode result)> succeed;
  std::function<void(std::string error)> fail;
};

/// `params` has "$.x" references already resolved; `context` is the run's
/// current context (valid only until a continuation is called).
using ActionFn = std::function<void(const util::YamlNode& params,
                                    const util::YamlNode& context,
                                    ActionHandle handle)>;

/// Sets `value` at a dotted path inside a map node, creating intermediate
/// maps. Exposed for tests and action implementations.
void context_set(util::YamlNode& root, std::string_view dotted,
                 util::YamlNode value);

struct FlowRunnerConfig {
  /// Orchestration overhead charged before each action invocation.
  double action_overhead = 0.05;
  /// Safety valve against zero-time definition loops.
  std::size_t max_transitions = 1'000'000;
};

class FlowRunner {
 public:
  explicit FlowRunner(sim::SimEngine& engine, ProvenanceLog* provenance = nullptr,
                      FlowRunnerConfig config = {});

  /// Registers (or replaces) an action provider under `name`. When a schema
  /// is supplied, resolved inputs and results are validated at run time; a
  /// violation fails the run with a descriptive error (§V-A's published
  /// component schemas).
  void register_action(std::string name, ActionFn action,
                       std::optional<ActionSchema> schema = std::nullopt);
  bool has_action(std::string_view name) const;
  /// Schema declared for an action (nullptr when none / unknown action).
  const ActionSchema* schema(std::string_view name) const;

  using RunCallback =
      std::function<void(const RunRecord&, const util::YamlNode& context)>;

  /// Optional provenance identity for a run (copied onto its RunRecord and,
  /// via flow::export_to_trace, onto the run's trace span).
  struct RunTags {
    std::string subject;  // e.g. the tile path the flow operates on
    std::string granule;  // canonical granule key ("terra.A2022001.s0095")
  };

  /// Starts a run; returns its id. The definition is copied. `on_finish`
  /// fires in virtual time at termination (succeed or fail).
  std::uint64_t start(const FlowDefinition& definition,
                      util::YamlNode initial_context = util::YamlNode::map(),
                      RunCallback on_finish = nullptr, RunTags tags = {});

  std::size_t active_runs() const { return runs_.size(); }
  const FlowRunnerConfig& config() const { return config_; }

 private:
  struct Run {
    std::uint64_t id;
    FlowDefinition definition;
    util::YamlNode context;
    RunRecord record;
    RunCallback on_finish;
    std::size_t transitions = 0;
  };

  void enter_state(std::uint64_t run_id, const std::string& state_name);
  void leave_state(Run& run, StateRecord record, const std::string& next);
  void finish_run(std::uint64_t run_id, bool succeeded, std::string error);
  util::YamlNode resolve_params(const util::YamlNode& params,
                                const util::YamlNode& context) const;
  static std::string context_string(const util::YamlNode& context,
                                    std::string_view dotted);

  sim::SimEngine& engine_;
  ProvenanceLog* provenance_;
  FlowRunnerConfig config_;
  std::map<std::string, ActionFn> actions_;
  std::map<std::string, ActionSchema, std::less<>> schemas_;
  std::map<std::uint64_t, std::unique_ptr<Run>> runs_;
  std::uint64_t next_run_id_ = 1;
};

}  // namespace mfw::flow
