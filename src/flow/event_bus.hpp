// Topic-based publish/subscribe bus for workflow events.
//
// Loosely models the event plumbing between workflow components (download
// complete -> preprocessing eligible; files landed -> monitor notified).
// Delivery is asynchronous: published events are dispatched as zero-delay
// simulation events so subscribers never run re-entrantly inside publish().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "util/yamlite.hpp"

namespace mfw::flow {

struct Subscription {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class EventBus {
 public:
  explicit EventBus(sim::SimEngine& engine) : engine_(engine) {}

  using Handler = std::function<void(const util::YamlNode& event)>;

  /// Subscribes to a topic; handler fires for every event published there.
  Subscription subscribe(const std::string& topic, Handler handler);
  void unsubscribe(Subscription subscription);

  /// Publishes an event; current subscribers receive it asynchronously.
  /// Delivery checks each subscriber is still registered: unsubscribing —
  /// even from inside a handler during dispatch — suppresses any pending
  /// deliveries to that subscription, and subscribers added after publish()
  /// do not see the event.
  void publish(const std::string& topic, util::YamlNode event);

  std::size_t subscriber_count(const std::string& topic) const;
  std::uint64_t published_count() const { return published_; }

 private:
  sim::SimEngine& engine_;
  std::map<std::string, std::map<std::uint64_t, Handler>> topics_;
  std::uint64_t next_id_ = 1;
  std::uint64_t published_ = 0;
};

}  // namespace mfw::flow
