// Action input/output schemas (paper §V-A: "publishing clear input and
// output schemas for each workflow component, we aim to minimize errors and
// support the creation of reliable, reusable workflows").
//
// A schema declares the fields an action requires in its (resolved)
// parameters and guarantees in its result. The FlowRunner validates both at
// run time: a violated input schema fails the run *before* the action
// executes; a violated output schema fails it before downstream states
// consume a malformed result.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/yamlite.hpp"

namespace mfw::flow {

struct FieldSpec {
  std::string key;  // dotted path within the node
  util::YamlNode::Kind kind = util::YamlNode::Kind::kScalar;
  bool required = true;
};

struct ActionSchema {
  std::vector<FieldSpec> inputs;
  std::vector<FieldSpec> outputs;
};

/// Checks `node` against `fields`; returns a description of the first
/// violation, or nullopt when valid. Extra fields are always allowed.
std::optional<std::string> validate_fields(const util::YamlNode& node,
                                           const std::vector<FieldSpec>& fields);

/// Human-readable kind name ("scalar", "list", "map", "null").
std::string_view kind_name(util::YamlNode::Kind kind);

}  // namespace mfw::flow
