#include "flow/event_bus.hpp"

#include <memory>

#include "obs/metrics.hpp"

namespace mfw::flow {

Subscription EventBus::subscribe(const std::string& topic, Handler handler) {
  const std::uint64_t id = next_id_++;
  topics_[topic].emplace(id, std::move(handler));
  return Subscription{id};
}

void EventBus::unsubscribe(Subscription subscription) {
  if (!subscription.valid()) return;
  for (auto& [topic, handlers] : topics_) handlers.erase(subscription.id);
}

void EventBus::publish(const std::string& topic, util::YamlNode event) {
  ++published_;
  if (auto& metrics = obs::MetricsRegistry::instance(); metrics.enabled())
    metrics.counter_add("mfw.flow.events_published_total", 1.0,
                        {{"topic", topic}});
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  // Snapshot subscriber *ids*, not handlers: subscribers added after
  // publish() do not see this event, and a subscriber removed before (or
  // during) dispatch is skipped — so unsubscribe() is safe to call from
  // inside a handler while the snapshot is being walked.
  std::vector<std::uint64_t> ids;
  ids.reserve(it->second.size());
  for (const auto& [id, handler] : it->second) ids.push_back(id);
  auto payload = std::make_shared<util::YamlNode>(std::move(event));
  const double published_at = engine_.now();
  engine_.schedule_after(0.0, [this, topic, ids = std::move(ids), payload,
                               published_at] {
    // Publish -> delivery gap: 0 in pure virtual time unless intervening
    // same-time events ran first; meaningful for wall-clock-coupled runs.
    if (auto& metrics = obs::MetricsRegistry::instance(); metrics.enabled())
      metrics.observe("mfw.flow.dispatch_latency_seconds",
                      engine_.now() - published_at, {{"topic", topic}},
                      obs::HistogramSpec{0.0, 0.1, 20});
    for (const auto id : ids) {
      const auto tit = topics_.find(topic);
      if (tit == topics_.end()) return;
      const auto hit = tit->second.find(id);
      if (hit == tit->second.end()) continue;  // unsubscribed since snapshot
      // Copy so a handler that unsubscribes itself stays alive for the call.
      const Handler handler = hit->second;
      handler(*payload);
    }
  });
}

std::size_t EventBus::subscriber_count(const std::string& topic) const {
  const auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.size();
}

}  // namespace mfw::flow
