#include "flow/event_bus.hpp"

#include <memory>

namespace mfw::flow {

Subscription EventBus::subscribe(const std::string& topic, Handler handler) {
  const std::uint64_t id = next_id_++;
  topics_[topic].emplace(id, std::move(handler));
  return Subscription{id};
}

void EventBus::unsubscribe(Subscription subscription) {
  if (!subscription.valid()) return;
  for (auto& [topic, handlers] : topics_) handlers.erase(subscription.id);
}

void EventBus::publish(const std::string& topic, util::YamlNode event) {
  ++published_;
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  // Snapshot the handlers: subscribers added/removed after publish() do not
  // see this event, and handlers run outside the publisher's stack frame.
  auto payload = std::make_shared<util::YamlNode>(std::move(event));
  for (const auto& [id, handler] : it->second) {
    engine_.schedule_after(0.0, [handler, payload] { handler(*payload); });
  }
}

std::size_t EventBus::subscriber_count(const std::string& topic) const {
  const auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.size();
}

}  // namespace mfw::flow
