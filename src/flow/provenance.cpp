#include "flow/provenance.hpp"

#include <sstream>

namespace mfw::flow {

double RunRecord::total_state_latency() const {
  double total = 0.0;
  for (const auto& s : states) total += s.latency();
  return total;
}

void ProvenanceLog::record(RunRecord run) { runs_.push_back(std::move(run)); }

std::vector<const RunRecord*> ProvenanceLog::runs_of(
    std::string_view flow_name) const {
  std::vector<const RunRecord*> out;
  for (const auto& run : runs_) {
    if (run.flow_name == flow_name) out.push_back(&run);
  }
  return out;
}

double ProvenanceLog::mean_action_overhead() const {
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& run : runs_) {
    for (const auto& state : run.states) {
      if (state.kind == "action") {
        total += state.orchestration_overhead();
        ++count;
      }
    }
  }
  return count ? total / static_cast<double>(count) : 0.0;
}

std::string ProvenanceLog::dump() const {
  std::ostringstream os;
  for (const auto& run : runs_) {
    os << "- run: " << run.run_id << "\n"
       << "  flow: " << run.flow_name << "\n"
       << "  started_at: " << run.started_at << "\n"
       << "  finished_at: " << run.finished_at << "\n"
       << "  status: " << (run.succeeded ? "ok" : "failed") << "\n";
    if (!run.error.empty()) os << "  error: " << run.error << "\n";
    os << "  states:\n";
    for (const auto& state : run.states) {
      os << "    - {name: " << state.state << ", kind: " << state.kind
         << ", start: " << state.started_at << ", end: " << state.finished_at
         << ", status: " << state.status << "}\n";
    }
  }
  return os.str();
}

}  // namespace mfw::flow
