#include "flow/provenance.hpp"

#include <sstream>

#include "obs/trace.hpp"

namespace mfw::flow {

double RunRecord::total_state_latency() const {
  double total = 0.0;
  for (const auto& s : states) total += s.latency();
  return total;
}

void ProvenanceLog::record(RunRecord run) { runs_.push_back(std::move(run)); }

std::vector<const RunRecord*> ProvenanceLog::runs_of(
    std::string_view flow_name) const {
  std::vector<const RunRecord*> out;
  for (const auto& run : runs_) {
    if (run.flow_name == flow_name) out.push_back(&run);
  }
  return out;
}

double ProvenanceLog::mean_action_overhead() const {
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& run : runs_) {
    for (const auto& state : run.states) {
      if (state.kind == "action") {
        total += state.orchestration_overhead();
        ++count;
      }
    }
  }
  return count ? total / static_cast<double>(count) : 0.0;
}

std::string ProvenanceLog::dump() const {
  std::ostringstream os;
  for (const auto& run : runs_) {
    os << "- run: " << run.run_id << "\n"
       << "  flow: " << run.flow_name << "\n"
       << "  started_at: " << run.started_at << "\n"
       << "  finished_at: " << run.finished_at << "\n"
       << "  status: " << (run.succeeded ? "ok" : "failed") << "\n";
    if (!run.error.empty()) os << "  error: " << run.error << "\n";
    os << "  states:\n";
    for (const auto& state : run.states) {
      os << "    - {name: " << state.state << ", kind: " << state.kind
         << ", start: " << state.started_at << ", end: " << state.finished_at
         << ", status: " << state.status << "}\n";
    }
  }
  return os.str();
}

void export_to_trace(const ProvenanceLog& log, obs::TraceRecorder& recorder) {
  if (!recorder.enabled()) return;
  for (const auto& run : log.runs()) {
    const std::string track = "flows/run" + std::to_string(run.run_id);
    obs::Args run_args = {{"status", run.succeeded ? "ok" : "failed"}};
    if (!run.subject.empty()) run_args.emplace_back("subject", run.subject);
    if (!run.granule.empty()) run_args.emplace_back("granule", run.granule);
    if (!run.error.empty()) run_args.emplace_back("error", run.error);
    recorder.add_span(track, "flow", run.flow_name, run.started_at,
                      run.finished_at, std::move(run_args));
    for (const auto& state : run.states) {
      obs::Args args = {{"kind", state.kind}, {"status", state.status}};
      // Thread the granule identity down to the state spans so per-granule
      // lineage (obs/lineage.hpp) sees the encode/label hops, not just the
      // run envelope.
      if (!run.granule.empty()) args.emplace_back("granule", run.granule);
      if (state.kind == "action")
        args.emplace_back("orchestration_overhead_s",
                          std::to_string(state.orchestration_overhead()));
      recorder.add_span(track, "flow.state", state.state, state.started_at,
                        state.finished_at, std::move(args));
    }
  }
}

}  // namespace mfw::flow
