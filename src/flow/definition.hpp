// Flow definitions: Globus-Flows-style state machines.
//
// A flow is a named set of states with a start state. State kinds mirror the
// subset of the Amazon-States-Language dialect Globus Flows uses and that
// the paper's monitor->inference->label->move Flow needs:
//
//   action : invoke a registered action provider (async), store its result
//            into the context under `result_path`, go to `next`
//   choice : route on a context value (equals / numeric comparisons)
//   wait   : pause for `seconds`, go to `next`
//   pass   : optionally set context values, go to `next`
//   succeed/fail : terminate the run
//
// Definitions are plain data, loadable from YAML:
//
//   name: inference-flow
//   start_at: crawl
//   states:
//     crawl:
//       type: action
//       action: fs.crawl
//       parameters: {pattern: "tiles/*.ncl"}
//       result_path: crawl
//       next: decide
//     decide:
//       type: choice
//       choices:
//         - variable: crawl.count
//           greater_than: 0
//           next: infer
//       default: done
//     ...
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/yamlite.hpp"

namespace mfw::flow {

enum class StateKind { kAction, kChoice, kWait, kPass, kSucceed, kFail };

struct ChoiceRule {
  std::string variable;  // dotted path into the run context
  enum class Op { kEquals, kNotEquals, kGreaterThan, kGreaterEq, kLessThan, kLessEq };
  Op op = Op::kEquals;
  std::string value;  // compared as string for equals, as double for numeric
  std::string next;
};

struct FlowState {
  std::string name;
  StateKind kind = StateKind::kPass;
  // kAction
  std::string action;
  util::YamlNode parameters;   // static parameters handed to the action
  std::string result_path;     // context key for the action result
  // kChoice
  std::vector<ChoiceRule> choices;
  std::string default_next;
  // kWait
  double wait_seconds = 0.0;
  // kPass
  util::YamlNode assignments;  // map merged into the context
  // kFail
  std::string error;
  // all non-terminal kinds
  std::string next;
};

class FlowDefinition {
 public:
  FlowDefinition() = default;

  /// Builds from parsed YAML; validates state graph (start exists, all
  /// `next` targets exist, terminal states present). Throws util::YamlError.
  static FlowDefinition from_yaml(const util::YamlNode& root);
  static FlowDefinition from_yaml_text(std::string_view text);

  const std::string& name() const { return name_; }
  const std::string& start_at() const { return start_at_; }
  bool has_state(std::string_view state) const;
  const FlowState& state(std::string_view state) const;
  const std::vector<FlowState>& states() const { return states_; }

  /// Programmatic construction (used by the pipeline's built-in flow).
  void set_name(std::string name) { name_ = std::move(name); }
  void set_start(std::string start) { start_at_ = std::move(start); }
  void add_state(FlowState state);
  /// Validates the graph; throws util::YamlError on dangling transitions.
  void validate() const;

 private:
  std::string name_;
  std::string start_at_;
  std::vector<FlowState> states_;
};

}  // namespace mfw::flow
