#include "flow/monitor.hpp"

#include <stdexcept>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace mfw::flow {

namespace {
constexpr const char* kComponent = "monitor";
}

FsMonitor::FsMonitor(sim::SimEngine& engine, storage::FileSystem& fs,
                     FsMonitorConfig config, Trigger trigger)
    : engine_(engine), fs_(fs), config_(std::move(config)),
      trigger_(std::move(trigger)) {
  if (config_.pattern.empty())
    throw std::invalid_argument("FsMonitor needs a pattern");
  if (!(config_.poll_interval > 0))
    throw std::invalid_argument("FsMonitor needs poll_interval > 0");
  if (!trigger_) throw std::invalid_argument("FsMonitor needs a trigger");
}

void FsMonitor::start() {
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  MFW_DEBUG(kComponent, "watching '", config_.pattern, "' every ",
            config_.poll_interval, "s");
  poll();
}

void FsMonitor::stop() {
  if (!running_) return;
  stop_requested_ = true;
  // Run the final drain poll immediately rather than waiting a full period.
  engine_.cancel(next_poll_);
  next_poll_ = engine_.schedule_after(0.0, [this] { poll(); });
}

void FsMonitor::poll() {
  next_poll_ = sim::EventHandle{};
  if (!running_) return;
  ++polls_;
  std::vector<storage::FileInfo> fresh;
  if (fs_.supports_journal()) {
    // Incremental path: replay the writes recorded since the last poll,
    // keeping only the latest entry per path (a path rewritten twice between
    // polls triggers once, as in a full scan) and dropping paths that were
    // removed again before we looked. The std::map keeps the batch
    // path-sorted, matching list() order.
    std::vector<storage::FileInfo> entries;
    cursor_ = fs_.journal_since(cursor_, entries);
    std::map<std::string, storage::FileInfo> latest;
    for (auto& info : entries) {
      if (!util::glob_match(config_.pattern, info.path)) continue;
      latest[info.path] = std::move(info);
    }
    for (auto& [path, info] : latest) {
      if (!fs_.exists(path)) continue;
      const auto it = seen_.find(path);
      if (it == seen_.end() || it->second != info.mtime) {
        seen_[path] = info.mtime;
        fresh.push_back(std::move(info));
      }
    }
  } else {
    for (const auto& info : fs_.list(config_.pattern)) {
      const auto it = seen_.find(info.path);
      if (it == seen_.end() || it->second != info.mtime) {
        seen_[info.path] = info.mtime;
        fresh.push_back(info);
      }
    }
  }
  if (!fresh.empty()) {
    ++batches_;
    MFW_DEBUG(kComponent, "batch of ", fresh.size(), " new files");
    trigger_(fresh);
  }
  if (stop_requested_ && (fresh.empty() || !config_.sticky)) {
    running_ = false;
    MFW_DEBUG(kComponent, "stopped after ", polls_, " polls");
    return;
  }
  next_poll_ = engine_.schedule_after(config_.poll_interval, [this] { poll(); });
}

}  // namespace mfw::flow
