#include "flow/monitor.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace mfw::flow {

namespace {
constexpr const char* kComponent = "monitor";
}

FsMonitor::FsMonitor(sim::SimEngine& engine, storage::FileSystem& fs,
                     FsMonitorConfig config, Trigger trigger)
    : engine_(engine), fs_(fs), config_(std::move(config)),
      trigger_(std::move(trigger)) {
  if (config_.pattern.empty())
    throw std::invalid_argument("FsMonitor needs a pattern");
  if (!(config_.poll_interval > 0))
    throw std::invalid_argument("FsMonitor needs poll_interval > 0");
  if (!trigger_) throw std::invalid_argument("FsMonitor needs a trigger");
}

void FsMonitor::start() {
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  MFW_DEBUG(kComponent, "watching '", config_.pattern, "' every ",
            config_.poll_interval, "s");
  poll();
}

void FsMonitor::stop() {
  if (!running_) return;
  stop_requested_ = true;
  // Run the final drain poll immediately rather than waiting a full period.
  engine_.cancel(next_poll_);
  next_poll_ = engine_.schedule_after(0.0, [this] { poll(); });
}

void FsMonitor::poll() {
  next_poll_ = sim::EventHandle{};
  if (!running_) return;
  ++polls_;
  std::vector<storage::FileInfo> fresh;
  for (const auto& info : fs_.list(config_.pattern)) {
    const auto it = seen_.find(info.path);
    if (it == seen_.end() || it->second != info.mtime) {
      seen_[info.path] = info.mtime;
      fresh.push_back(info);
    }
  }
  if (!fresh.empty()) {
    ++batches_;
    MFW_DEBUG(kComponent, "batch of ", fresh.size(), " new files");
    trigger_(fresh);
  }
  if (stop_requested_ && (fresh.empty() || !config_.sticky)) {
    running_ = false;
    MFW_DEBUG(kComponent, "stopped after ", polls_, " polls");
    return;
  }
  next_poll_ = engine_.schedule_after(config_.poll_interval, [this] { poll(); });
}

}  // namespace mfw::flow
