#include "flow/schema.hpp"

namespace mfw::flow {

std::string_view kind_name(util::YamlNode::Kind kind) {
  switch (kind) {
    case util::YamlNode::Kind::kNull: return "null";
    case util::YamlNode::Kind::kScalar: return "scalar";
    case util::YamlNode::Kind::kList: return "list";
    case util::YamlNode::Kind::kMap: return "map";
  }
  return "?";
}

std::optional<std::string> validate_fields(
    const util::YamlNode& node, const std::vector<FieldSpec>& fields) {
  for (const auto& field : fields) {
    const auto& value = node.path(field.key);
    if (value.is_null()) {
      if (field.required)
        return "missing required field '" + field.key + "'";
      continue;
    }
    if (value.kind() != field.kind) {
      return "field '" + field.key + "' is " +
             std::string(kind_name(value.kind())) + ", expected " +
             std::string(kind_name(field.kind));
    }
  }
  return std::nullopt;
}

}  // namespace mfw::flow
