// Typed dataflow events carried over the EventBus.
//
// The streaming scheduler replaces implicit whole-stage sequencing with an
// explicit event contract: stage boundaries communicate through these typed
// records, serialized to YamlNode payloads, so any bus subscriber (tests,
// telemetry, provenance tooling) can observe the dataflow without linking
// against the publishing stage. See DESIGN.md "Dataflow architecture".
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "modis/catalog.hpp"
#include "util/yamlite.hpp"

namespace mfw::flow {

namespace topics {
/// One archive file landed on the facility filesystem (DownloadService).
inline constexpr const char* kDownloadFile = "download.file";
/// One archive file was abandoned after exhausting its retry budget.
inline constexpr const char* kDownloadFailed = "download.failed";
/// A MOD02/MOD03/MOD06 triplet is whole and safe to preprocess
/// (GranuleTracker).
inline constexpr const char* kGranuleReady = "granule.ready";
/// Stage lifecycle events (EomlWorkflow).
inline constexpr const char* kWorkflow = "workflow";
}  // namespace topics

/// Product-independent identity of one 5-minute granule triplet.
struct GranuleKey {
  modis::Satellite satellite = modis::Satellite::kTerra;
  int year = 2022;
  int day_of_year = 1;
  int slot = 0;

  auto operator<=>(const GranuleKey&) const = default;

  /// e.g. "terra.A2022001.s0095"
  std::string to_string() const;
  static GranuleKey of(const modis::GranuleId& id);
};

/// Payload of topics::kDownloadFile / kDownloadFailed.
struct FileEvent {
  modis::GranuleId id;
  std::string path;  // empty for failures
  std::uint64_t bytes = 0;
  double finished_at = 0.0;
  int attempts = 1;

  util::YamlNode to_yaml() const;
  /// nullopt for payloads that do not carry a parseable granule filename.
  static std::optional<FileEvent> from_yaml(const util::YamlNode& node);
};

/// Payload of topics::kGranuleReady.
struct ReadyGranule {
  GranuleKey key;
  std::string mod02_path;
  std::string mod03_path;
  std::string mod06_path;
  double first_file_at = 0.0;  // first triplet member landed
  double ready_at = 0.0;       // triplet became whole

  util::YamlNode to_yaml() const;
  static std::optional<ReadyGranule> from_yaml(const util::YamlNode& node);
};

}  // namespace mfw::flow
