// Provenance and telemetry records for flow runs (paper §V-A: "integrate
// advanced provenance tracking and telemetry tools for real-time workflow
// insights").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mfw::obs {
class TraceRecorder;
}

namespace mfw::flow {

struct StateRecord {
  std::string state;
  std::string kind;
  double started_at = 0.0;
  /// For action states: the moment the action provider was invoked, after
  /// the orchestration hop. started_at..action_started_at is the pure flow
  /// overhead the paper reports as ~50 ms.
  double action_started_at = 0.0;
  double finished_at = 0.0;
  std::string status;  // "ok" | "failed"

  double latency() const { return finished_at - started_at; }
  double orchestration_overhead() const {
    return action_started_at > started_at ? action_started_at - started_at : 0.0;
  }
};

struct RunRecord {
  std::uint64_t run_id = 0;
  std::string flow_name;
  /// What the run operated on (e.g. the tile file path) and the granule
  /// identity it descends from — threaded onto the trace bridge so the
  /// analyzer can stitch the per-granule download->preprocess->inference DAG.
  std::string subject;
  std::string granule;
  double started_at = 0.0;
  double finished_at = 0.0;
  bool succeeded = false;
  std::string error;
  std::vector<StateRecord> states;

  double elapsed() const { return finished_at - started_at; }
  /// Sum of per-state latencies excluding action work — i.e. orchestration
  /// overhead (the paper's ~50 ms figure is per action transition).
  double total_state_latency() const;
};

/// Append-only log of completed runs.
class ProvenanceLog {
 public:
  void record(RunRecord run);

  std::size_t size() const { return runs_.size(); }
  const RunRecord& run(std::size_t index) const { return runs_.at(index); }
  const std::vector<RunRecord>& runs() const { return runs_; }

  /// All runs of one flow.
  std::vector<const RunRecord*> runs_of(std::string_view flow_name) const;

  /// Mean orchestration overhead per action transition across all runs.
  double mean_action_overhead() const;

  /// YAML dump for archival / debugging.
  std::string dump() const;

 private:
  std::vector<RunRecord> runs_;
};

/// Bridges runner-level provenance onto the obs timeline: each completed
/// RunRecord becomes a flow span (track "flows/run<id>") containing one child
/// span per state, annotated with kind/status and the orchestration overhead.
/// No-op while the recorder is disabled.
void export_to_trace(const ProvenanceLog& log, obs::TraceRecorder& recorder);

}  // namespace mfw::flow
