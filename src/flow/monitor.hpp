// FsMonitor: the "(3) Monitor & Trigger" stage's filesystem crawler.
//
// Polls a facility filesystem for files matching a glob pattern; newly seen
// files are batched and handed to the trigger callback (the paper launches
// a Globus Flow per batch that runs inference and appends labels). Files are
// remembered by path+mtime, so overwrites re-trigger.
//
// On filesystems with a write journal (FileSystem::supports_journal) each
// poll consumes only the writes recorded since the previous poll — O(new
// files) instead of O(all files) — with batches identical to the full scan.
// A year-long archive campaign performs ~9e5 polls over ~4e5 files; the full
// scan would make that quadratic.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "storage/filesystem.hpp"

namespace mfw::flow {

struct FsMonitorConfig {
  std::string pattern;      // glob over the watched filesystem
  double poll_interval = 1.0;
  /// When true (graceful drain), the monitor keeps polling after `stop()`
  /// until a poll finds nothing new — files that land while earlier batches
  /// are still being produced are never lost. When false, the drain poll
  /// after stop() is the last one: it still delivers whatever it finds, but
  /// the monitor stops even if that batch was non-empty.
  bool sticky = true;
};

class FsMonitor {
 public:
  using Trigger =
      std::function<void(const std::vector<storage::FileInfo>& new_files)>;

  FsMonitor(sim::SimEngine& engine, storage::FileSystem& fs,
            FsMonitorConfig config, Trigger trigger);

  /// Starts polling (idempotent).
  void start();
  /// Requests shutdown; the monitor performs one final poll so files that
  /// landed just before stop() are not lost.
  void stop();

  bool running() const { return running_; }
  std::size_t polls() const { return polls_; }
  std::size_t files_seen() const { return seen_.size(); }
  std::size_t batches_triggered() const { return batches_; }

 private:
  void poll();

  sim::SimEngine& engine_;
  storage::FileSystem& fs_;
  FsMonitorConfig config_;
  Trigger trigger_;
  std::map<std::string, double> seen_;  // path -> mtime
  storage::FileSystem::JournalCursor cursor_ = 0;
  bool running_ = false;
  bool stop_requested_ = false;
  std::size_t polls_ = 0;
  std::size_t batches_ = 0;
  sim::EventHandle next_poll_{};
};

}  // namespace mfw::flow
