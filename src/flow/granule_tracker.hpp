// GranuleTracker: per-granule readiness assembly over the EventBus.
//
// The paper delays preprocessing behind a whole-stage barrier because a
// granule must not be tiled while any of its MOD02/MOD03/MOD06 files is
// still being written (the HDF partial-read hazard). The tracker is the
// per-granule analogue of that barrier: it consumes topics::kDownloadFile
// events, groups them by (satellite, year, day, slot), and publishes
// topics::kGranuleReady the moment a triplet is whole — so a streaming
// scheduler can start preprocessing each granule individually while later
// downloads are still in flight.
//
// The tracker is a *typed* wrapper over the EventBus: payloads stay YamlNode
// on the wire (observable by any subscriber), while publishers and consumers
// work with FileEvent / ReadyGranule structs.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "flow/event_bus.hpp"
#include "flow/events.hpp"
#include "modis/catalog.hpp"

namespace mfw::flow {

struct GranuleTrackerConfig {
  std::string file_topic = topics::kDownloadFile;
  std::string ready_topic = topics::kGranuleReady;
  /// A granule is ready once every required product has landed.
  std::vector<modis::ProductKind> required = {modis::ProductKind::kMod02,
                                              modis::ProductKind::kMod03,
                                              modis::ProductKind::kMod06};
};

class GranuleTracker {
 public:
  explicit GranuleTracker(EventBus& bus, GranuleTrackerConfig config = {});
  ~GranuleTracker();

  GranuleTracker(const GranuleTracker&) = delete;
  GranuleTracker& operator=(const GranuleTracker&) = delete;

  using ReadyHandler = std::function<void(const ReadyGranule&)>;

  /// Typed subscription to the ready topic. The returned subscription
  /// belongs to the caller; cancel it with EventBus::unsubscribe.
  Subscription on_ready(ReadyHandler handler);

  /// Typed ingestion for publishers not wired to the bus; equivalent to a
  /// file-topic event. Duplicate files (retried overwrites) are idempotent.
  void observe_file(const FileEvent& event);

  /// Granules with at least one file landed but not yet whole.
  std::size_t pending() const { return partial_.size(); }
  std::size_t ready_count() const { return ready_; }
  std::size_t files_seen() const { return files_; }
  std::vector<GranuleKey> pending_keys() const;

 private:
  struct Partial {
    std::map<modis::ProductKind, std::string> paths;
    double first_at = 0.0;
  };

  EventBus& bus_;
  GranuleTrackerConfig config_;
  Subscription file_sub_;
  std::map<GranuleKey, Partial> partial_;
  std::set<GranuleKey> completed_;
  std::size_t ready_ = 0;
  std::size_t files_ = 0;
};

}  // namespace mfw::flow
