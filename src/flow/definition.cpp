#include "flow/definition.hpp"

#include <algorithm>

namespace mfw::flow {

namespace {

StateKind parse_kind(const std::string& kind, const std::string& state) {
  if (kind == "action") return StateKind::kAction;
  if (kind == "choice") return StateKind::kChoice;
  if (kind == "wait") return StateKind::kWait;
  if (kind == "pass") return StateKind::kPass;
  if (kind == "succeed") return StateKind::kSucceed;
  if (kind == "fail") return StateKind::kFail;
  throw util::YamlError("flow state '" + state + "': unknown type '" + kind + "'");
}

ChoiceRule parse_choice(const util::YamlNode& node, const std::string& state) {
  ChoiceRule rule;
  rule.variable = node.require("variable").as_string();
  rule.next = node.require("next").as_string();
  struct OpSpec {
    const char* key;
    ChoiceRule::Op op;
  };
  static constexpr OpSpec kOps[] = {
      {"equals", ChoiceRule::Op::kEquals},
      {"not_equals", ChoiceRule::Op::kNotEquals},
      {"greater_than", ChoiceRule::Op::kGreaterThan},
      {"greater_or_equal", ChoiceRule::Op::kGreaterEq},
      {"less_than", ChoiceRule::Op::kLessThan},
      {"less_or_equal", ChoiceRule::Op::kLessEq},
  };
  bool found = false;
  for (const auto& spec : kOps) {
    if (node.has(spec.key)) {
      if (found)
        throw util::YamlError("flow state '" + state +
                              "': choice rule has multiple operators");
      rule.op = spec.op;
      rule.value = node[spec.key].as_string();
      found = true;
    }
  }
  if (!found)
    throw util::YamlError("flow state '" + state +
                          "': choice rule needs a comparison operator");
  return rule;
}

}  // namespace

FlowDefinition FlowDefinition::from_yaml(const util::YamlNode& root) {
  FlowDefinition def;
  def.name_ = root["name"].as_string_or("flow");
  def.start_at_ = root.require("start_at").as_string();
  const auto& states = root.require("states");
  for (const auto& state_name : states.keys()) {
    const auto& node = states[state_name];
    FlowState state;
    state.name = state_name;
    state.kind = parse_kind(node.require("type").as_string(), state_name);
    state.next = node["next"].as_string_or("");
    switch (state.kind) {
      case StateKind::kAction:
        state.action = node.require("action").as_string();
        state.parameters = node["parameters"];
        state.result_path = node["result_path"].as_string_or("");
        break;
      case StateKind::kChoice: {
        const auto& choices = node.require("choices");
        for (const auto& rule : choices.items())
          state.choices.push_back(parse_choice(rule, state_name));
        state.default_next = node["default"].as_string_or("");
        break;
      }
      case StateKind::kWait:
        state.wait_seconds = node.require("seconds").as_double();
        break;
      case StateKind::kPass:
        state.assignments = node["set"];
        break;
      case StateKind::kFail:
        state.error = node["error"].as_string_or("failed");
        break;
      case StateKind::kSucceed:
        break;
    }
    def.add_state(std::move(state));
  }
  def.validate();
  return def;
}

FlowDefinition FlowDefinition::from_yaml_text(std::string_view text) {
  return from_yaml(util::parse_yaml(text));
}

bool FlowDefinition::has_state(std::string_view state) const {
  return std::any_of(states_.begin(), states_.end(),
                     [&](const FlowState& s) { return s.name == state; });
}

const FlowState& FlowDefinition::state(std::string_view state) const {
  const auto it = std::find_if(states_.begin(), states_.end(),
                               [&](const FlowState& s) { return s.name == state; });
  if (it == states_.end())
    throw util::YamlError("flow '" + name_ + "': no state named '" +
                          std::string(state) + "'");
  return *it;
}

void FlowDefinition::add_state(FlowState state) {
  if (has_state(state.name))
    throw util::YamlError("flow '" + name_ + "': duplicate state '" +
                          state.name + "'");
  states_.push_back(std::move(state));
}

void FlowDefinition::validate() const {
  if (states_.empty()) throw util::YamlError("flow has no states");
  if (start_at_.empty()) throw util::YamlError("flow has no start_at");
  if (!has_state(start_at_))
    throw util::YamlError("flow start state '" + start_at_ + "' not defined");
  auto check_target = [&](const std::string& from, const std::string& target) {
    if (!target.empty() && !has_state(target))
      throw util::YamlError("flow state '" + from +
                            "' transitions to unknown state '" + target + "'");
  };
  for (const auto& state : states_) {
    switch (state.kind) {
      case StateKind::kSucceed:
      case StateKind::kFail:
        break;
      case StateKind::kChoice:
        if (state.choices.empty())
          throw util::YamlError("choice state '" + state.name +
                                "' has no rules");
        for (const auto& rule : state.choices)
          check_target(state.name, rule.next);
        check_target(state.name, state.default_next);
        break;
      default:
        if (state.next.empty())
          throw util::YamlError("state '" + state.name +
                                "' is non-terminal but has no next");
        check_target(state.name, state.next);
        break;
    }
  }
}

}  // namespace mfw::flow
