#include "flow/runner.hpp"

#include <stdexcept>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace mfw::flow {

namespace {
constexpr const char* kComponent = "flow";

const char* kind_name(StateKind kind) {
  switch (kind) {
    case StateKind::kAction: return "action";
    case StateKind::kChoice: return "choice";
    case StateKind::kWait: return "wait";
    case StateKind::kPass: return "pass";
    case StateKind::kSucceed: return "succeed";
    case StateKind::kFail: return "fail";
  }
  return "?";
}

bool rule_matches(const ChoiceRule& rule, const std::string& actual) {
  auto numeric = [&](auto cmp) {
    try {
      return cmp(std::stod(actual), std::stod(rule.value));
    } catch (const std::exception&) {
      return false;
    }
  };
  switch (rule.op) {
    case ChoiceRule::Op::kEquals: return actual == rule.value;
    case ChoiceRule::Op::kNotEquals: return actual != rule.value;
    case ChoiceRule::Op::kGreaterThan:
      return numeric([](double a, double b) { return a > b; });
    case ChoiceRule::Op::kGreaterEq:
      return numeric([](double a, double b) { return a >= b; });
    case ChoiceRule::Op::kLessThan:
      return numeric([](double a, double b) { return a < b; });
    case ChoiceRule::Op::kLessEq:
      return numeric([](double a, double b) { return a <= b; });
  }
  return false;
}

}  // namespace

void context_set(util::YamlNode& root, std::string_view dotted,
                 util::YamlNode value) {
  if (!root.is_map())
    throw util::YamlError("context_set: root is not a map");
  const auto dot = dotted.find('.');
  const std::string head(dotted.substr(0, dot));
  if (head.empty()) throw util::YamlError("context_set: empty path segment");
  if (dot == std::string_view::npos) {
    root.set(head, std::move(value));
    return;
  }
  util::YamlNode child = root[head];
  if (!child.is_map()) child = util::YamlNode::map();
  context_set(child, dotted.substr(dot + 1), std::move(value));
  root.set(head, std::move(child));
}

FlowRunner::FlowRunner(sim::SimEngine& engine, ProvenanceLog* provenance,
                       FlowRunnerConfig config)
    : engine_(engine), provenance_(provenance), config_(config) {}

void FlowRunner::register_action(std::string name, ActionFn action,
                                 std::optional<ActionSchema> schema) {
  if (!action) throw std::invalid_argument("null action for " + name);
  if (schema) {
    schemas_.insert_or_assign(name, std::move(*schema));
  } else {
    schemas_.erase(name);
  }
  actions_[std::move(name)] = std::move(action);
}

bool FlowRunner::has_action(std::string_view name) const {
  return actions_.find(std::string(name)) != actions_.end();
}

const ActionSchema* FlowRunner::schema(std::string_view name) const {
  const auto it = schemas_.find(name);
  return it == schemas_.end() ? nullptr : &it->second;
}

std::uint64_t FlowRunner::start(const FlowDefinition& definition,
                                util::YamlNode initial_context,
                                RunCallback on_finish, RunTags tags) {
  definition.validate();
  // Every action referenced must exist before the run starts.
  for (const auto& state : definition.states()) {
    if (state.kind == StateKind::kAction && !has_action(state.action))
      throw std::invalid_argument("flow '" + definition.name() +
                                  "' references unregistered action '" +
                                  state.action + "'");
  }
  const std::uint64_t id = next_run_id_++;
  auto run = std::make_unique<Run>();
  run->id = id;
  run->definition = definition;
  run->context = initial_context.is_map() ? std::move(initial_context)
                                          : util::YamlNode::map();
  run->record.run_id = id;
  run->record.flow_name = definition.name();
  run->record.subject = std::move(tags.subject);
  run->record.granule = std::move(tags.granule);
  run->record.started_at = engine_.now();
  run->on_finish = std::move(on_finish);
  const std::string start_state = run->definition.start_at();
  runs_.emplace(id, std::move(run));
  MFW_DEBUG(kComponent, "run ", id, " of '", definition.name(), "' started");
  enter_state(id, start_state);
  return id;
}

std::string FlowRunner::context_string(const util::YamlNode& context,
                                       std::string_view dotted) {
  const auto& node = context.path(dotted);
  if (node.is_scalar()) return node.as_string();
  return "";
}

util::YamlNode FlowRunner::resolve_params(const util::YamlNode& params,
                                          const util::YamlNode& context) const {
  switch (params.kind()) {
    case util::YamlNode::Kind::kScalar: {
      const auto& s = params.as_string();
      if (util::starts_with(s, "$.")) {
        const auto& ref = context.path(std::string_view(s).substr(2));
        return ref;  // deep copy of the referenced node (may be null)
      }
      return params;
    }
    case util::YamlNode::Kind::kList: {
      auto out = util::YamlNode::list();
      for (const auto& item : params.items())
        out.push_back(resolve_params(item, context));
      return out;
    }
    case util::YamlNode::Kind::kMap: {
      auto out = util::YamlNode::map();
      for (const auto& key : params.keys())
        out.set(key, resolve_params(params[key], context));
      return out;
    }
    case util::YamlNode::Kind::kNull:
      return params;
  }
  return params;
}

void FlowRunner::enter_state(std::uint64_t run_id, const std::string& state_name) {
  const auto it = runs_.find(run_id);
  if (it == runs_.end()) return;
  Run& run = *it->second;
  if (++run.transitions > config_.max_transitions) {
    finish_run(run_id, false, "max_transitions exceeded (definition loop?)");
    return;
  }
  const FlowState& state = run.definition.state(state_name);
  StateRecord record;
  record.state = state.name;
  record.kind = kind_name(state.kind);
  record.started_at = engine_.now();

  switch (state.kind) {
    case StateKind::kAction: {
      // Orchestration overhead, then the action itself.
      engine_.schedule_after(config_.action_overhead, [this, run_id, state_name,
                                                       record]() mutable {
        const auto rit = runs_.find(run_id);
        if (rit == runs_.end()) return;
        Run& run = *rit->second;
        const FlowState& state = run.definition.state(state_name);
        record.action_started_at = engine_.now();
        const util::YamlNode params =
            resolve_params(state.parameters, run.context);
        const ActionSchema* action_schema = schema(state.action);
        ActionHandle handle;
        handle.fail = [this, run_id, record](std::string error) mutable {
          const auto rit2 = runs_.find(run_id);
          if (rit2 == runs_.end()) return;
          record.finished_at = engine_.now();
          record.status = "failed";
          rit2->second->record.states.push_back(std::move(record));
          finish_run(run_id, false, std::move(error));
        };
        // Published input schema: reject malformed parameters before the
        // action runs.
        if (action_schema) {
          if (const auto error = validate_fields(params, action_schema->inputs)) {
            handle.fail("action '" + state.action + "' input schema: " + *error);
            return;
          }
        }
        handle.succeed = [this, run_id, state_name, record, action_schema,
                          fail = handle.fail](util::YamlNode result) mutable {
          const auto rit2 = runs_.find(run_id);
          if (rit2 == runs_.end()) return;
          Run& run2 = *rit2->second;
          const FlowState& state2 = run2.definition.state(state_name);
          if (action_schema) {
            if (const auto error =
                    validate_fields(result, action_schema->outputs)) {
              fail("action '" + state2.action + "' output schema: " + *error);
              return;
            }
          }
          if (!state2.result_path.empty())
            context_set(run2.context, state2.result_path, std::move(result));
          record.finished_at = engine_.now();
          record.status = "ok";
          leave_state(run2, std::move(record), state2.next);
        };
        actions_.at(state.action)(params, run.context, std::move(handle));
      });
      return;
    }
    case StateKind::kChoice: {
      std::string next = state.default_next;
      for (const auto& rule : state.choices) {
        if (rule_matches(rule, context_string(run.context, rule.variable))) {
          next = rule.next;
          break;
        }
      }
      record.finished_at = engine_.now();
      if (next.empty()) {
        record.status = "failed";
        run.record.states.push_back(std::move(record));
        finish_run(run_id, false,
                   "choice state '" + state.name + "' had no matching rule");
        return;
      }
      record.status = "ok";
      leave_state(run, std::move(record), next);
      return;
    }
    case StateKind::kWait: {
      engine_.schedule_after(state.wait_seconds,
                             [this, run_id, state_name, record]() mutable {
                               const auto rit = runs_.find(run_id);
                               if (rit == runs_.end()) return;
                               Run& run = *rit->second;
                               const FlowState& state =
                                   run.definition.state(state_name);
                               record.finished_at = engine_.now();
                               record.status = "ok";
                               leave_state(run, std::move(record), state.next);
                             });
      return;
    }
    case StateKind::kPass: {
      if (state.assignments.is_map()) {
        for (const auto& key : state.assignments.keys())
          context_set(run.context, key,
                      resolve_params(state.assignments[key], run.context));
      }
      record.finished_at = engine_.now();
      record.status = "ok";
      leave_state(run, std::move(record), state.next);
      return;
    }
    case StateKind::kSucceed: {
      record.finished_at = engine_.now();
      record.status = "ok";
      run.record.states.push_back(std::move(record));
      finish_run(run_id, true, "");
      return;
    }
    case StateKind::kFail: {
      record.finished_at = engine_.now();
      record.status = "failed";
      run.record.states.push_back(std::move(record));
      finish_run(run_id, false, state.error);
      return;
    }
  }
}

void FlowRunner::leave_state(Run& run, StateRecord record,
                             const std::string& next) {
  run.record.states.push_back(std::move(record));
  enter_state(run.id, next);
}

void FlowRunner::finish_run(std::uint64_t run_id, bool succeeded,
                            std::string error) {
  const auto it = runs_.find(run_id);
  if (it == runs_.end()) return;
  auto run = std::move(it->second);
  runs_.erase(it);
  run->record.finished_at = engine_.now();
  run->record.succeeded = succeeded;
  run->record.error = std::move(error);
  MFW_DEBUG(kComponent, "run ", run_id, succeeded ? " succeeded" : " failed");
  if (provenance_) provenance_->record(run->record);
  if (run->on_finish) run->on_finish(run->record, run->context);
}

}  // namespace mfw::flow
