#include "flow/events.hpp"

#include <cstdio>

namespace mfw::flow {

namespace {

util::YamlNode scalar_num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", value);
  return util::YamlNode::scalar(buf);
}

}  // namespace

std::string GranuleKey::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s.A%04d%03d.s%04d",
                satellite == modis::Satellite::kTerra ? "terra" : "aqua", year,
                day_of_year, slot);
  return buf;
}

GranuleKey GranuleKey::of(const modis::GranuleId& id) {
  return GranuleKey{id.satellite, id.year, id.day_of_year, id.slot};
}

util::YamlNode FileEvent::to_yaml() const {
  auto node = util::YamlNode::map();
  node.set("file", util::YamlNode::scalar(id.filename()));
  node.set("path", util::YamlNode::scalar(path));
  node.set("bytes", util::YamlNode::scalar(std::to_string(bytes)));
  node.set("time", scalar_num(finished_at));
  node.set("attempts", util::YamlNode::scalar(std::to_string(attempts)));
  return node;
}

std::optional<FileEvent> FileEvent::from_yaml(const util::YamlNode& node) {
  if (!node.is_map() || !node.has("file")) return std::nullopt;
  const auto id = modis::parse_granule_filename(node["file"].as_string());
  if (!id) return std::nullopt;
  FileEvent event;
  event.id = *id;
  event.path = node.has("path") ? node["path"].as_string() : "";
  event.bytes =
      static_cast<std::uint64_t>(node.has("bytes") ? node["bytes"].as_int() : 0);
  event.finished_at = node.has("time") ? node["time"].as_double() : 0.0;
  event.attempts =
      static_cast<int>(node.has("attempts") ? node["attempts"].as_int() : 1);
  return event;
}

util::YamlNode ReadyGranule::to_yaml() const {
  auto node = util::YamlNode::map();
  node.set("granule", util::YamlNode::scalar(key.to_string()));
  node.set("satellite", util::YamlNode::scalar(modis::satellite_name(key.satellite)));
  node.set("year", util::YamlNode::scalar(std::to_string(key.year)));
  node.set("day", util::YamlNode::scalar(std::to_string(key.day_of_year)));
  node.set("slot", util::YamlNode::scalar(std::to_string(key.slot)));
  node.set("mod02", util::YamlNode::scalar(mod02_path));
  node.set("mod03", util::YamlNode::scalar(mod03_path));
  node.set("mod06", util::YamlNode::scalar(mod06_path));
  node.set("first_file_at", scalar_num(first_file_at));
  node.set("ready_at", scalar_num(ready_at));
  return node;
}

std::optional<ReadyGranule> ReadyGranule::from_yaml(const util::YamlNode& node) {
  if (!node.is_map() || !node.has("slot") || !node.has("day")) return std::nullopt;
  ReadyGranule ready;
  ready.key.satellite = node.has("satellite") &&
                                node["satellite"].as_string() == "Aqua"
                            ? modis::Satellite::kAqua
                            : modis::Satellite::kTerra;
  ready.key.year = static_cast<int>(node["year"].as_int_or(2022));
  ready.key.day_of_year = static_cast<int>(node["day"].as_int());
  ready.key.slot = static_cast<int>(node["slot"].as_int());
  ready.mod02_path = node.has("mod02") ? node["mod02"].as_string() : "";
  ready.mod03_path = node.has("mod03") ? node["mod03"].as_string() : "";
  ready.mod06_path = node.has("mod06") ? node["mod06"].as_string() : "";
  ready.first_file_at = node["first_file_at"].as_double_or(0.0);
  ready.ready_at = node["ready_at"].as_double_or(0.0);
  return ready;
}

}  // namespace mfw::flow
