#include "serve/api.hpp"

#include <cstdio>

#include "util/json_writer.hpp"

namespace mfw::serve {

const char* kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPoint: return "point";
    case QueryKind::kBbox: return "bbox";
    case QueryKind::kClass: return "class";
    case QueryKind::kTimeRange: return "time_range";
  }
  return "unknown";
}

std::string cache_key(const QueryRequest& request) {
  // Canonical per kind: only the fields that kind consults, so requests
  // differing in irrelevant fields share one cache entry.
  char buf[192];
  int n = 0;
  switch (request.kind) {
    case QueryKind::kPoint:
      n = std::snprintf(buf, sizeof(buf), "point|%.17g|%.17g", request.lat,
                        request.lon);
      break;
    case QueryKind::kBbox:
      n = std::snprintf(buf, sizeof(buf), "bbox|%.17g|%.17g|%.17g|%.17g",
                        request.lat_lo, request.lat_hi, request.lon_lo,
                        request.lon_hi);
      break;
    case QueryKind::kClass:
      n = std::snprintf(buf, sizeof(buf), "class|%d", request.label);
      break;
    case QueryKind::kTimeRange:
      n = std::snprintf(buf, sizeof(buf), "time_range");
      break;
  }
  std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                "|%d|%d|%zu", request.day_lo, request.day_hi,
                request.sample_limit);
  return buf;
}

std::string to_json(const QueryRequest& request,
                    const QueryResponse& response) {
  util::JsonWriter w;
  w.begin_object();
  w.field("schema", "mfw.serve/v1");
  w.field("kind", kind_name(request.kind));
  w.key("request", "\n ").begin_object();
  switch (request.kind) {
    case QueryKind::kPoint:
      w.field("lat", request.lat).field("lon", request.lon);
      break;
    case QueryKind::kBbox:
      w.field("lat_lo", request.lat_lo).field("lat_hi", request.lat_hi);
      w.field("lon_lo", request.lon_lo).field("lon_hi", request.lon_hi);
      break;
    case QueryKind::kClass:
      w.field("label", request.label);
      break;
    case QueryKind::kTimeRange:
      break;
  }
  w.field("day_lo", request.day_lo).field("day_hi", request.day_hi);
  w.field("sample_limit", request.sample_limit);
  w.end_object();
  w.field("matched", response.matched, "\n ");
  w.field("cache_hit", response.cache_hit);
  w.field("shards_probed", response.shards_probed);
  w.field("shards_pruned", response.shards_pruned);

  w.key("classes", "\n ").begin_array();
  for (const ClassRollup& rollup : response.classes) {
    w.item("\n  ").begin_object();
    w.field("label", rollup.label);
    w.field("count", rollup.stats.count);
    w.field("mean_cloud_fraction", rollup.stats.mean_cloud_fraction);
    w.field("mean_optical_thickness", rollup.stats.mean_optical_thickness);
    w.field("mean_cloud_top_pressure", rollup.stats.mean_cloud_top_pressure);
    w.field("mean_water_path", rollup.stats.mean_water_path);
    w.field("mean_abs_latitude", rollup.stats.mean_abs_latitude);
    w.end_object();
  }
  w.end_array(response.classes.empty() ? "" : "\n ");

  w.key("sample", "\n ").begin_array();
  for (const analysis::TileRecord& record : response.sample) {
    w.item("\n  ").begin_object();
    w.field("granule", record.granule.filename());
    w.field("label", record.label);
    w.field("latitude", static_cast<double>(record.latitude));
    w.field("longitude", static_cast<double>(record.longitude));
    w.field("cloud_fraction", static_cast<double>(record.cloud_fraction));
    w.field("optical_thickness", static_cast<double>(record.optical_thickness));
    w.field("cloud_top_pressure",
            static_cast<double>(record.cloud_top_pressure));
    w.field("water_path", static_cast<double>(record.water_path));
    w.end_object();
  }
  w.end_array(response.sample.empty() ? "" : "\n ");
  w.end_object().raw("\n");
  return w.take();
}

}  // namespace mfw::serve
