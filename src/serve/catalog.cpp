#include "serve/catalog.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace mfw::serve {

namespace {

/// Class-mask bit for a label: labels outside [0, 62] share the overflow
/// bit 63, so pruning stays conservative for any label value.
int class_bit(int label) { return (label >= 0 && label < 63) ? label : 63; }

/// Aggregation state while scanning; finalized into QueryResponse.
struct ClassSums {
  std::size_t count = 0;
  double cf = 0.0, cot = 0.0, ctp = 0.0, cwp = 0.0, abs_lat = 0.0;
};

struct Accumulator {
  std::uint64_t matched = 0;
  std::map<int, ClassSums> sums;
  std::vector<analysis::TileRecord> sample;
  std::size_t sample_limit = 0;

  void add(int label, float lat, float lon, float cf, float cot, float ctp,
           float cwp, std::uint32_t granule) {
    ++matched;
    ClassSums& s = sums[label];
    ++s.count;
    s.cf += cf;
    s.cot += cot;
    s.ctp += ctp;
    s.cwp += cwp;
    s.abs_lat += std::abs(static_cast<double>(lat));
    if (sample.size() < sample_limit) {
      analysis::TileRecord record;
      record.granule = unpack_granule(granule);
      record.label = label;
      record.latitude = lat;
      record.longitude = lon;
      record.cloud_fraction = cf;
      record.optical_thickness = cot;
      record.cloud_top_pressure = ctp;
      record.water_path = cwp;
      sample.push_back(record);
    }
  }

  QueryResponse finalize() && {
    QueryResponse response;
    response.matched = matched;
    response.classes.reserve(sums.size());
    for (const auto& [label, s] : sums) {
      ClassRollup rollup;
      rollup.label = label;
      rollup.stats.count = s.count;
      const double n = static_cast<double>(s.count);
      rollup.stats.mean_cloud_fraction = s.cf / n;
      rollup.stats.mean_optical_thickness = s.cot / n;
      rollup.stats.mean_cloud_top_pressure = s.ctp / n;
      rollup.stats.mean_water_path = s.cwp / n;
      rollup.stats.mean_abs_latitude = s.abs_lat / n;
      response.classes.push_back(rollup);
    }
    response.sample = std::move(sample);
    return response;
  }
};

}  // namespace

std::uint32_t pack_granule(const modis::GranuleId& id) {
  const auto product = static_cast<std::uint32_t>(id.product) & 0x3u;
  const auto sat = static_cast<std::uint32_t>(id.satellite) & 0x1u;
  const auto year =
      static_cast<std::uint32_t>(std::clamp(id.year - 2000, 0, 127));
  const auto doy = static_cast<std::uint32_t>(id.day_of_year) & 0x1ffu;
  const auto slot = static_cast<std::uint32_t>(id.slot) & 0x1fffu;
  return (product << 30) | (sat << 29) | (year << 22) | (doy << 13) | slot;
}

modis::GranuleId unpack_granule(std::uint32_t packed) {
  modis::GranuleId id;
  id.product = static_cast<modis::ProductKind>((packed >> 30) & 0x3u);
  id.satellite = static_cast<modis::Satellite>((packed >> 29) & 0x1u);
  id.year = 2000 + static_cast<int>((packed >> 22) & 0x7fu);
  id.day_of_year = static_cast<int>((packed >> 13) & 0x1ffu);
  id.slot = static_cast<int>(packed & 0x1fffu);
  return id;
}

// ---------------------------------------------------------------------------
// Shard
// ---------------------------------------------------------------------------

Shard::Shard(const CatalogConfig& config)
    : rows_per_chunk_(std::max<std::size_t>(1, config.rows_per_chunk)),
      max_chunks_(std::max<std::size_t>(1, config.max_chunks)),
      chunks_(new std::atomic<Chunk*>[std::max<std::size_t>(
          1, config.max_chunks)]) {
  for (std::size_t i = 0; i < max_chunks_; ++i)
    chunks_[i].store(nullptr, std::memory_order_relaxed);
}

Shard::~Shard() {
  delete index_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < max_chunks_; ++i)
    delete chunks_[i].load(std::memory_order_relaxed);
}

void Shard::append(const Row& row) {
  if (index_.load(std::memory_order_relaxed) != nullptr)
    throw std::logic_error("serve: append to sealed shard");
  if (size_ >= rows_per_chunk_ * max_chunks_)
    throw std::length_error("serve: shard capacity exhausted");
  const std::size_t ci = size_ / rows_per_chunk_;
  Chunk* chunk = chunks_[ci].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk(rows_per_chunk_);
    chunks_[ci].store(chunk, std::memory_order_release);
  }
  const std::size_t off = size_ % rows_per_chunk_;
  chunk->lat[off] = row.lat;
  chunk->lon[off] = row.lon;
  chunk->cf[off] = row.cf;
  chunk->cot[off] = row.cot;
  chunk->ctp[off] = row.ctp;
  chunk->cwp[off] = row.cwp;
  chunk->label[off] = row.label;
  chunk->cell[off] = row.cell;
  chunk->granule[off] = row.granule;
  chunk->day[off] = row.day;

  // Pruning metadata. Relaxed is enough: this thread is the only writer, and
  // readers order these against row visibility through the published_
  // release/acquire pair (they load published() before the metadata).
  min_lat_.store(std::min(min_lat_.load(std::memory_order_relaxed), row.lat),
                 std::memory_order_relaxed);
  max_lat_.store(std::max(max_lat_.load(std::memory_order_relaxed), row.lat),
                 std::memory_order_relaxed);
  min_lon_.store(std::min(min_lon_.load(std::memory_order_relaxed), row.lon),
                 std::memory_order_relaxed);
  max_lon_.store(std::max(max_lon_.load(std::memory_order_relaxed), row.lon),
                 std::memory_order_relaxed);
  min_day_.store(std::min(min_day_.load(std::memory_order_relaxed),
                          static_cast<int>(row.day)),
                 std::memory_order_relaxed);
  max_day_.store(std::max(max_day_.load(std::memory_order_relaxed),
                          static_cast<int>(row.day)),
                 std::memory_order_relaxed);
  class_mask_.store(class_mask_.load(std::memory_order_relaxed) |
                        (1ULL << class_bit(row.label)),
                    std::memory_order_relaxed);
  ++size_;
}

void Shard::publish() {
  if (published_.load(std::memory_order_relaxed) == size_) return;
  // Rows before count: the release store is what makes every row write (and
  // every metadata update) above visible to a reader that acquires the new
  // count. The generation bump comes after, so a response computed from the
  // old count can never be cached as current.
  published_.store(size_, std::memory_order_release);
  generation_.fetch_add(1, std::memory_order_release);
}

void Shard::seal() {
  if (index_.load(std::memory_order_relaxed) != nullptr) return;
  publish();
  auto* index = new SealedIndex;
  for (std::size_t row = 0; row < size_; ++row) {
    const Chunk& chunk = *chunks_[row / rows_per_chunk_].load(
        std::memory_order_relaxed);
    const std::size_t off = row % rows_per_chunk_;
    index->groups[SealedIndex::key(chunk.cell[off], chunk.day[off])]
        .push_back(static_cast<std::uint32_t>(row));
  }
  index_.store(index, std::memory_order_release);
  // Sealed point lookups visit rows in (day, append) order instead of pure
  // append order, which can reorder samples — invalidate cached entries.
  generation_.fetch_add(1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

Catalog::Catalog(CatalogConfig config) : config_(config) {
  if (config_.cell_deg <= 0.0) config_.cell_deg = 10.0;
  if (config_.shard_count == 0) config_.shard_count = 1;
  lat_cells_ = static_cast<std::uint32_t>(
      std::ceil(180.0 / config_.cell_deg));
  lon_cells_ = static_cast<std::uint32_t>(
      std::ceil(360.0 / config_.cell_deg));
  shards_.reserve(config_.shard_count);
  for (std::size_t i = 0; i < config_.shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>(config_));
}

std::uint32_t Catalog::cell_of(double lat, double lon) const {
  const auto index = [](double v, double lo, double width,
                        std::uint32_t cells) {
    const int i = static_cast<int>(std::floor((v - lo) / width));
    return static_cast<std::uint32_t>(
        std::clamp(i, 0, static_cast<int>(cells) - 1));
  };
  const std::uint32_t row = index(lat, -90.0, config_.cell_deg, lat_cells_);
  const std::uint32_t col = index(lon, -180.0, config_.cell_deg, lon_cells_);
  return row * lon_cells_ + col;
}

void Catalog::cell_center(std::uint32_t cell, double* lat, double* lon) const {
  const std::uint32_t row = cell / lon_cells_;
  const std::uint32_t col = cell % lon_cells_;
  if (lat != nullptr)
    *lat = std::min(-90.0 + (row + 0.5) * config_.cell_deg, 90.0);
  if (lon != nullptr)
    *lon = std::min(-180.0 + (col + 0.5) * config_.cell_deg, 180.0);
}

Row Catalog::make_row(const analysis::TileRecord& record) const {
  Row row;
  row.lat = record.latitude;
  row.lon = record.longitude;
  row.cf = record.cloud_fraction;
  row.cot = record.optical_thickness;
  row.ctp = record.cloud_top_pressure;
  row.cwp = record.water_path;
  row.label = record.label;
  row.cell = cell_of(record.latitude, record.longitude);
  row.day = static_cast<std::int16_t>(record.granule.day_of_year);
  row.granule = pack_granule(record.granule);
  return row;
}

void Catalog::append(const analysis::TileRecord& record) {
  const Row row = make_row(record);
  shards_[shard_of(row.cell, row.day)]->append(row);
}

void Catalog::publish() {
  for (auto& shard : shards_) shard->publish();
}

std::size_t Catalog::ingest(const std::vector<analysis::TileRecord>& records,
                            util::ThreadPool* pool) {
  // Partition once, then run exactly one writer per shard (the pool joins
  // before publish, so the calling thread's release-publish of each shard
  // happens-after that shard's appends).
  std::vector<std::vector<Row>> partitions(shards_.size());
  for (const analysis::TileRecord& record : records) {
    Row row = make_row(record);
    partitions[shard_of(row.cell, row.day)].push_back(row);
  }
  const auto fill = [&](std::size_t s) {
    for (const Row& row : partitions[s]) shards_[s]->append(row);
  };
  if (pool != nullptr && shards_.size() > 1) {
    util::parallel_for(*pool, shards_.size(), fill);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) fill(s);
  }
  publish();
  return records.size();
}

void Catalog::seal() {
  for (auto& shard : shards_) shard->seal();
}

bool Catalog::sealed() const {
  for (const auto& shard : shards_)
    if (!shard->sealed()) return false;
  return true;
}

std::size_t Catalog::tile_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->published();
  return total;
}

namespace {

/// Scans rows [0, limit) of a shard, feeding rows that satisfy `pred` into
/// the accumulator.
template <typename Pred>
void scan_shard(const Shard& shard, std::size_t limit, Accumulator& acc,
                Pred&& pred) {
  std::size_t base = 0;
  shard.scan(limit, [&](const Chunk& chunk, std::size_t begin,
                        std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (pred(chunk, i)) {
        acc.add(chunk.label[i], chunk.lat[i], chunk.lon[i], chunk.cf[i],
                chunk.cot[i], chunk.ctp[i], chunk.cwp[i], chunk.granule[i]);
      }
    }
    base += end - begin;
  });
  (void)base;
}

}  // namespace

std::vector<std::uint32_t> Catalog::candidate_shards(
    const QueryRequest& request) const {
  std::vector<std::uint32_t> out;
  if (request.kind == QueryKind::kPoint) {
    const std::uint32_t cell = cell_of(request.lat, request.lon);
    const int lo = std::max(request.day_lo, 1);
    const int hi = std::min(request.day_hi, 366);
    for (int day = lo; day <= hi; ++day) out.push_back(shard_of(cell, day));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  } else {
    out.resize(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s)
      out[s] = static_cast<std::uint32_t>(s);
  }
  return out;
}

std::vector<std::pair<std::uint32_t, std::uint64_t>>
Catalog::generation_snapshot(const QueryRequest& request) const {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> snapshot;
  for (std::uint32_t s : candidate_shards(request))
    snapshot.emplace_back(s, shards_[s]->generation());
  return snapshot;
}

bool Catalog::generations_current(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& snapshot)
    const {
  for (const auto& [shard, generation] : snapshot)
    if (shards_[shard]->generation() != generation) return false;
  return true;
}

QueryResponse Catalog::query(const QueryRequest& request) const {
  Accumulator acc;
  acc.sample_limit = request.sample_limit;
  std::uint32_t probed = 0;
  std::uint32_t pruned = 0;

  const int day_lo = std::max(request.day_lo, 1);
  const int day_hi = std::min(request.day_hi, 366);
  if (day_lo > day_hi) return std::move(acc).finalize();

  if (request.kind == QueryKind::kPoint) {
    const std::uint32_t cell = cell_of(request.lat, request.lon);
    // Candidate days per shard — shard_of(cell, day) is static, so only
    // these shards can hold matches.
    std::map<std::uint32_t, std::vector<int>> days_by_shard;
    for (int day = day_lo; day <= day_hi; ++day)
      days_by_shard[shard_of(cell, day)].push_back(day);
    // The target cell's latitude band, for metadata pruning (strict
    // comparisons: boundary rows belong to the neighbouring cell and simply
    // fail the cell test if scanned).
    const std::uint32_t cell_row = cell / lon_cells_;
    const double cell_lat_lo = -90.0 + cell_row * config_.cell_deg;
    const double cell_lat_hi =
        std::min(cell_lat_lo + config_.cell_deg, 90.0);

    for (const auto& [s, days] : days_by_shard) {
      const Shard& shard = *shards_[s];
      // published() first: its acquire orders the metadata loads below
      // against the writer's release, so pruning never lags the rows a
      // reader can see.
      const std::size_t limit = shard.published();
      if (limit == 0 || shard.max_day() < days.front() ||
          shard.min_day() > days.back() ||
          static_cast<double>(shard.min_lat()) > cell_lat_hi ||
          static_cast<double>(shard.max_lat()) < cell_lat_lo) {
        ++pruned;
        continue;
      }
      ++probed;
      if (const SealedIndex* index = shard.index()) {
        for (int day : days) {
          const auto it = index->groups.find(
              SealedIndex::key(cell, static_cast<std::int16_t>(day)));
          if (it == index->groups.end()) continue;
          for (std::uint32_t row : it->second) {
            const Chunk& chunk = shard.chunk_for(row);
            const std::size_t i = shard.chunk_offset(row);
            acc.add(chunk.label[i], chunk.lat[i], chunk.lon[i], chunk.cf[i],
                    chunk.cot[i], chunk.ctp[i], chunk.cwp[i],
                    chunk.granule[i]);
          }
        }
      } else {
        // Rows of this cell with a day in range can only live here, so one
        // range-filtered pass over the shard is exact.
        scan_shard(shard, limit, acc,
                   [&](const Chunk& chunk, std::size_t i) {
                     return chunk.cell[i] == cell && chunk.day[i] >= day_lo &&
                            chunk.day[i] <= day_hi;
                   });
      }
    }
  } else {
    for (const auto& shard_ptr : shards_) {
      const Shard& shard = *shard_ptr;
      const std::size_t limit = shard.published();
      bool skip = limit == 0 || shard.max_day() < day_lo ||
                  shard.min_day() > day_hi;
      if (!skip && request.kind == QueryKind::kBbox) {
        skip = static_cast<double>(shard.min_lat()) > request.lat_hi ||
               static_cast<double>(shard.max_lat()) < request.lat_lo ||
               static_cast<double>(shard.min_lon()) > request.lon_hi ||
               static_cast<double>(shard.max_lon()) < request.lon_lo;
      }
      if (!skip && request.kind == QueryKind::kClass) {
        skip = (shard.class_mask() &
                (1ULL << class_bit(request.label))) == 0;
      }
      if (skip) {
        ++pruned;
        continue;
      }
      ++probed;
      switch (request.kind) {
        case QueryKind::kBbox:
          scan_shard(shard, limit, acc,
                     [&](const Chunk& chunk, std::size_t i) {
                       const double lat = chunk.lat[i];
                       const double lon = chunk.lon[i];
                       return lat >= request.lat_lo && lat <= request.lat_hi &&
                              lon >= request.lon_lo && lon <= request.lon_hi &&
                              chunk.day[i] >= day_lo && chunk.day[i] <= day_hi;
                     });
          break;
        case QueryKind::kClass:
          scan_shard(shard, limit, acc,
                     [&](const Chunk& chunk, std::size_t i) {
                       return chunk.label[i] == request.label &&
                              chunk.day[i] >= day_lo && chunk.day[i] <= day_hi;
                     });
          break;
        case QueryKind::kTimeRange:
          scan_shard(shard, limit, acc,
                     [&](const Chunk& chunk, std::size_t i) {
                       return chunk.day[i] >= day_lo && chunk.day[i] <= day_hi;
                     });
          break;
        case QueryKind::kPoint:
          break;  // handled above
      }
    }
  }

  QueryResponse response = std::move(acc).finalize();
  response.shards_probed = probed;
  response.shards_pruned = pruned;
  return response;
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

QueryResponse brute_force_query(
    const std::vector<analysis::TileRecord>& records,
    const QueryRequest& request, const Catalog& catalog) {
  Accumulator acc;
  acc.sample_limit = request.sample_limit;
  const std::uint32_t target_cell =
      request.kind == QueryKind::kPoint
          ? catalog.cell_of(request.lat, request.lon)
          : 0;
  for (const analysis::TileRecord& record : records) {
    const int day = record.granule.day_of_year;
    if (day < request.day_lo || day > request.day_hi) continue;
    bool match = false;
    switch (request.kind) {
      case QueryKind::kPoint:
        match = catalog.cell_of(record.latitude, record.longitude) ==
                target_cell;
        break;
      case QueryKind::kBbox: {
        const double lat = record.latitude;
        const double lon = record.longitude;
        match = lat >= request.lat_lo && lat <= request.lat_hi &&
                lon >= request.lon_lo && lon <= request.lon_hi;
        break;
      }
      case QueryKind::kClass:
        match = record.label == request.label;
        break;
      case QueryKind::kTimeRange:
        match = true;
        break;
    }
    if (match) {
      acc.add(record.label, record.latitude, record.longitude,
              record.cloud_fraction, record.optical_thickness,
              record.cloud_top_pressure, record.water_path,
              pack_granule(record.granule));
    }
  }
  return std::move(acc).finalize();
}

}  // namespace mfw::serve
