// ServeService: the query front door — catalog + hot-cell result cache +
// optional obs tracing, safe for any number of concurrent caller threads.
//
// Per query: canonicalize the request to its cache key, try the cache and
// validate the entry's generation snapshot, otherwise snapshot generations,
// execute against the catalog, and install the result. Counters distinguish
// true hits, stale hits (entry present but a candidate shard published since
// it was computed), and cold misses — the load benchmarks report all three.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/cache.hpp"
#include "serve/catalog.hpp"

namespace mfw::serve {

struct ServeConfig {
  bool enable_cache = true;
  /// Total cached responses across ways.
  std::size_t cache_capacity = 8192;
  /// Lock partitions of the cache (see util::ShardedLruCache).
  std::size_t cache_ways = 64;
  /// Emit an obs span per query when the global TraceRecorder is enabled
  /// (free otherwise: one relaxed atomic load).
  bool trace = true;
};

struct ServeStats {
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_stale = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t matched_rows = 0;
  std::uint64_t cache_evictions = 0;

  double hit_rate() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(queries);
  }
};

class ServeService {
 public:
  explicit ServeService(const Catalog& catalog, ServeConfig config = {});

  /// Thread-safe; lock-free against the catalog, lock-striped in the cache.
  QueryResponse query(const QueryRequest& request);

  const Catalog& catalog() const { return catalog_; }
  const ServeConfig& config() const { return config_; }
  ServeStats stats() const;
  /// mfw.serve/v1 stats document (bench + smoke reporting).
  std::string stats_json() const;

 private:
  const Catalog& catalog_;
  ServeConfig config_;
  std::unique_ptr<ResultCache> cache_;  // null when caching disabled
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_stale_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> matched_rows_{0};
};

}  // namespace mfw::serve
