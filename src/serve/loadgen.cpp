#include "serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <thread>

#include "obs/rollup.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace mfw::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Per-worker measurement state, merged after join.
struct WorkerStats {
  obs::LogHistogram all;
  obs::LogHistogram base;
  obs::LogHistogram flash;
  double sum_us = 0.0;
  double max_us = 0.0;
  double base_sum_us = 0.0, base_max_us = 0.0;
  double flash_sum_us = 0.0, flash_max_us = 0.0;
  std::uint64_t count = 0;
  obs::WindowedSeries timeline;

  explicit WorkerStats(double window_s)
      : timeline(obs::RollupConfig{window_s, 100000}) {}
};

LatencySummary summarize(const obs::LogHistogram& hist, double mean_us,
                         double max_us) {
  LatencySummary s;
  s.count = hist.total();
  s.mean_us = mean_us;
  s.p50_us = hist.quantile(0.50);
  s.p99_us = hist.quantile(0.99);
  s.p999_us = hist.quantile(0.999);
  s.max_us = max_us;
  return s;
}

void append_summary(util::JsonWriter& w, const char* name,
                    const LatencySummary& s, std::string_view pre) {
  w.key(name, pre).begin_object();
  w.field("count", s.count);
  w.field("mean_us", s.mean_us);
  w.field("p50_us", s.p50_us);
  w.field("p99_us", s.p99_us);
  w.field("p999_us", s.p999_us);
  w.field("max_us", s.max_us);
  w.end_object();
}

}  // namespace

std::string LoadResult::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.field("requests", requests);
  w.field("users", users);
  w.field("threads", threads);
  w.field("wall_s", wall_s);
  w.field("qps", qps);
  if (offered_rate > 0.0) w.field("offered_rate", offered_rate);
  append_summary(w, "latency", all, "\n  ");
  if (flash.count > 0) {
    append_summary(w, "base", base, "\n  ");
    append_summary(w, "flash", flash, "\n  ");
  }
  w.field("cache_hit_rate", hit_rate, "\n  ");
  w.field("cache_hits", cache_hits);
  w.field("cache_stale", cache_stale);
  w.field("cache_misses", cache_misses);
  w.field("matched_rows", matched_rows);
  if (!timeline.empty()) {
    w.key("timeline", "\n  ").begin_array();
    for (const WindowPoint& point : timeline) {
      w.item("\n   ").begin_object();
      w.field("t_s", point.t_s);
      w.field("count", point.count);
      w.field("mean_us", point.mean_us);
      w.field("p99_us", point.p99_us);
      w.end_object();
    }
    w.end_array("\n  ");
  }
  w.end_object();
  return w.take();
}

LoadResult run_load(ServeService& service, const LoadConfig& config) {
  const Catalog& catalog = service.catalog();
  const std::size_t threads = std::max<std::size_t>(1, config.threads);
  const std::size_t users = std::max<std::size_t>(1, config.users);
  const std::size_t cells = catalog.cell_count();

  // Popularity ranking: a seeded permutation of cells; Zipf rank 0 (the
  // hottest cell) maps to perm[0].
  std::vector<std::uint32_t> perm(cells);
  for (std::size_t i = 0; i < cells; ++i)
    perm[i] = static_cast<std::uint32_t>(i);
  util::Rng perm_rng(util::mix64(config.seed, 0x9e1));
  for (std::size_t i = cells; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        perm_rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(perm[i - 1], perm[j]);
  }

  // Each user gets a fixed home cell by a Zipf draw over the ranking.
  const util::ZipfGenerator zipf(cells, config.zipf_s);
  std::vector<std::uint32_t> home(users);
  util::Rng user_rng(util::mix64(config.seed, 0x9e2));
  for (std::size_t u = 0; u < users; ++u) home[u] = perm[zipf(user_rng)];
  const std::uint32_t hottest = perm[0];

  const double cell_deg = catalog.config().cell_deg;
  const int data_day_lo = std::max(1, config.day_lo);
  const int data_day_hi = std::max(data_day_lo, std::min(366, config.day_hi));
  const int window = std::max(1, config.day_window);

  const ServeStats before = service.stats();
  std::vector<WorkerStats> stats;
  stats.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w)
    stats.emplace_back(config.timeline_window_s);

  const std::size_t per_worker = config.requests / threads;
  const std::size_t remainder = config.requests % threads;
  const double worker_rate =
      config.arrival_rate > 0.0
          ? config.arrival_rate / static_cast<double>(threads)
          : 0.0;

  const auto worker = [&](std::size_t w) {
    util::Rng rng(util::mix64(config.seed, 0x517 + w));
    WorkerStats& ws = stats[w];
    const std::size_t n = per_worker + (w < remainder ? 1 : 0);
    const std::size_t flash_begin = static_cast<std::size_t>(
        config.flash_start_frac * static_cast<double>(n));
    const std::size_t flash_end =
        flash_begin + static_cast<std::size_t>(config.flash_len_frac *
                                               static_cast<double>(n));
    double arrival = 0.0;       // virtual seconds (open loop)
    double prev_finish = 0.0;   // virtual seconds (open loop)

    for (std::size_t r = 0; r < n; ++r) {
      const bool in_flash =
          config.flash_crowd && r >= flash_begin && r < flash_end;

      QueryRequest request;
      request.sample_limit = config.sample_limit;
      if (in_flash && rng.bernoulli(config.flash_hot_frac)) {
        // Flash requests repeat one canonical hot-cell query, the shape a
        // viral "look at this storm" link produces.
        request.kind = QueryKind::kPoint;
        catalog.cell_center(hottest, &request.lat, &request.lon);
        request.day_hi = data_day_hi;
        request.day_lo = std::max(data_day_lo, data_day_hi - window + 1);
      } else {
        const auto user = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(users) - 1));
        const std::uint32_t cell = home[user];
        double center_lat = 0.0, center_lon = 0.0;
        catalog.cell_center(cell, &center_lat, &center_lon);
        // Requests are quantized the way real clients produce them (map
        // tiles, dashboard panels): coordinates snap to a sub-cell grid and
        // day windows to window-aligned blocks, so identical requests recur
        // and the result cache has something to do.
        const int d0 = static_cast<int>(
            rng.uniform_int(data_day_lo, data_day_hi));
        const int block = (d0 - data_day_lo) / window;
        request.day_lo = data_day_lo + block * window;
        request.day_hi = std::min(data_day_hi, request.day_lo + window - 1);
        const double mix = rng.uniform();
        if (mix < config.point_frac) {
          request.kind = QueryKind::kPoint;
          const double step = 0.3 * cell_deg;
          const auto q_lat = static_cast<double>(rng.uniform_int(-1, 1));
          const auto q_lon = static_cast<double>(rng.uniform_int(-1, 1));
          request.lat = std::clamp(center_lat + q_lat * step, -90.0, 90.0);
          request.lon = std::clamp(center_lon + q_lon * step, -180.0, 180.0);
        } else if (mix < config.point_frac + config.bbox_frac) {
          request.kind = QueryKind::kBbox;
          const double half =
              (0.5 + 0.5 * static_cast<double>(rng.uniform_int(0, 3))) *
              cell_deg;
          request.lat_lo = std::max(-90.0, center_lat - half);
          request.lat_hi = std::min(90.0, center_lat + half);
          request.lon_lo = std::max(-180.0, center_lon - half);
          request.lon_hi = std::min(180.0, center_lon + half);
        } else if (mix <
                   config.point_frac + config.bbox_frac + config.class_frac) {
          request.kind = QueryKind::kClass;
          request.label = static_cast<int>(
              rng.uniform_int(0, std::max(1, config.num_classes) - 1));
        } else {
          request.kind = QueryKind::kTimeRange;
        }
      }

      double latency_s = 0.0;
      const auto t0 = Clock::now();
      (void)service.query(request);
      const double service_s = seconds_since(t0);
      if (worker_rate > 0.0) {
        const double rate =
            in_flash ? worker_rate * config.flash_boost : worker_rate;
        arrival += rng.exponential(1.0 / rate);
        const double start = std::max(arrival, prev_finish);
        prev_finish = start + service_s;
        latency_s = prev_finish - arrival;
        ws.timeline.add(arrival, latency_s * 1e6);
      } else {
        latency_s = service_s;
      }

      const double latency_us = latency_s * 1e6;
      ws.all.add(latency_us);
      if (config.flash_crowd) {
        if (in_flash) {
          ws.flash.add(latency_us);
          ws.flash_sum_us += latency_us;
          ws.flash_max_us = std::max(ws.flash_max_us, latency_us);
        } else {
          ws.base.add(latency_us);
          ws.base_sum_us += latency_us;
          ws.base_max_us = std::max(ws.base_max_us, latency_us);
        }
      }
      ws.sum_us += latency_us;
      ws.max_us = std::max(ws.max_us, latency_us);
      ++ws.count;
    }
  };

  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) pool.emplace_back(worker, w);
  for (auto& t : pool) t.join();
  const double wall_s = seconds_since(t0);

  // Merge worker measurements.
  obs::LogHistogram all, base, flash;
  double sum_us = 0.0, max_us = 0.0;
  double base_sum = 0.0, base_max = 0.0, flash_sum = 0.0, flash_max = 0.0;
  std::uint64_t count = 0;
  struct MergedWindow {
    std::uint64_t count = 0;
    double sum = 0.0;
    obs::LogHistogram hist;
  };
  std::map<std::int64_t, MergedWindow> windows;
  for (const WorkerStats& ws : stats) {
    all.merge(ws.all);
    base.merge(ws.base);
    flash.merge(ws.flash);
    sum_us += ws.sum_us;
    max_us = std::max(max_us, ws.max_us);
    base_sum += ws.base_sum_us;
    base_max = std::max(base_max, ws.base_max_us);
    flash_sum += ws.flash_sum_us;
    flash_max = std::max(flash_max, ws.flash_max_us);
    count += ws.count;
    for (const obs::WindowStats& win : ws.timeline.windows()) {
      MergedWindow& merged = windows[win.index];
      merged.count += win.count;
      merged.sum += win.sum;
      merged.hist.merge(win.hist);
    }
  }
  const ServeStats after = service.stats();
  LoadResult result;
  result.requests = count;
  result.users = users;
  result.threads = threads;
  result.wall_s = wall_s;
  result.qps = wall_s > 0.0 ? static_cast<double>(count) / wall_s : 0.0;
  result.offered_rate = config.arrival_rate;
  result.all = summarize(all, count ? sum_us / static_cast<double>(count) : 0.0,
                         max_us);
  if (config.flash_crowd) {
    result.base = summarize(
        base, base.total() ? base_sum / static_cast<double>(base.total()) : 0.0,
        base_max);
    result.flash = summarize(
        flash,
        flash.total() ? flash_sum / static_cast<double>(flash.total()) : 0.0,
        flash_max);
  }
  result.hit_rate =
      after.queries > before.queries
          ? static_cast<double>(after.cache_hits - before.cache_hits) /
                static_cast<double>(after.queries - before.queries)
          : 0.0;
  result.cache_hits = after.cache_hits - before.cache_hits;
  result.cache_stale = after.cache_stale - before.cache_stale;
  result.cache_misses = after.cache_misses - before.cache_misses;
  result.matched_rows = after.matched_rows - before.matched_rows;
  if (worker_rate > 0.0) {
    result.timeline.reserve(windows.size());
    for (const auto& [index, merged] : windows) {
      WindowPoint point;
      point.t_s = static_cast<double>(index) * config.timeline_window_s;
      point.count = merged.count;
      point.mean_us =
          merged.count ? merged.sum / static_cast<double>(merged.count) : 0.0;
      point.p99_us = merged.hist.quantile(0.99);
      result.timeline.push_back(point);
    }
  }
  return result;
}

std::vector<analysis::TileRecord> synth_records(std::size_t n, int days,
                                                int num_classes,
                                                std::uint64_t seed) {
  util::Rng rng(seed);
  const util::ZipfGenerator class_zipf(
      static_cast<std::size_t>(std::max(1, num_classes)), 0.8);
  std::vector<analysis::TileRecord> records;
  records.reserve(n);
  const int max_day = std::clamp(days, 1, 366);
  for (std::size_t i = 0; i < n; ++i) {
    analysis::TileRecord record;
    record.granule.product = modis::ProductKind::kMod02;
    record.granule.satellite = rng.bernoulli(0.5) ? modis::Satellite::kTerra
                                                  : modis::Satellite::kAqua;
    record.granule.year = 2022;
    record.granule.day_of_year = static_cast<int>(rng.uniform_int(1, max_day));
    record.granule.slot = static_cast<int>(rng.uniform_int(0, 287));
    record.label = static_cast<int>(class_zipf(rng));
    // Two latitude clusters (subtropical stratocumulus decks) plus a broad
    // background, echoing the AICCA atlas's zonal structure.
    const double mode = rng.uniform();
    double lat;
    if (mode < 0.35) {
      lat = rng.normal(-18.0, 8.0);
    } else if (mode < 0.70) {
      lat = rng.normal(22.0, 8.0);
    } else {
      lat = rng.uniform(-85.0, 85.0);
    }
    record.latitude = static_cast<float>(std::clamp(lat, -90.0, 90.0));
    record.longitude = static_cast<float>(rng.uniform(-180.0, 180.0));
    record.cloud_fraction =
        static_cast<float>(std::clamp(rng.normal(0.65, 0.2), 0.3, 1.0));
    record.optical_thickness =
        static_cast<float>(rng.lognormal_median(12.0, 0.6));
    record.cloud_top_pressure =
        static_cast<float>(std::clamp(rng.normal(650.0, 180.0), 150.0, 1000.0));
    record.water_path = static_cast<float>(rng.lognormal_median(90.0, 0.7));
    records.push_back(record);
  }
  return records;
}

}  // namespace mfw::serve
