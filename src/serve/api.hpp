// Typed request/response API for the serving layer (schema mfw.serve/v1).
//
// Four query shapes cover the access patterns downstream consumers have
// (PAPER.md: scientists and follow-on workflows querying the class atlas):
//   point      — "what is at this coordinate?": the cell containing
//                (lat, lon), optionally filtered to a day range;
//   bbox       — inclusive lat/lon rectangle + day range;
//   class      — one class label everywhere (+ day range);
//   time_range — everything in a day-of-year range.
// Every response carries the matched-row count, per-class aggregate rollups
// (same math as AiccaArchive::class_stats: sums accumulated, divided once),
// a bounded sample of matching tiles in scan order, and execution metadata
// (cache hit, shards probed/pruned) that the load benchmarks report on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/aicca.hpp"

namespace mfw::serve {

enum class QueryKind : std::uint8_t {
  kPoint = 0,
  kBbox = 1,
  kClass = 2,
  kTimeRange = 3,
};

/// "point", "bbox", "class", "time_range".
const char* kind_name(QueryKind kind);

struct QueryRequest {
  QueryKind kind = QueryKind::kBbox;
  /// kPoint target coordinate.
  double lat = 0.0;
  double lon = 0.0;
  /// kBbox bounds (inclusive).
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;
  /// kClass label.
  int label = -1;
  /// Day-of-year filter, applied by every kind (kTimeRange's only filter).
  int day_lo = 1;
  int day_hi = 366;
  /// Max matching tiles returned verbatim (scan order).
  std::size_t sample_limit = 8;
};

/// Per-class aggregate within the matched set.
struct ClassRollup {
  int label = -1;
  analysis::ClassStats stats;
};

struct QueryResponse {
  std::uint64_t matched = 0;
  /// Sorted by label ascending.
  std::vector<ClassRollup> classes;
  std::vector<analysis::TileRecord> sample;
  bool cache_hit = false;
  std::uint32_t shards_probed = 0;
  std::uint32_t shards_pruned = 0;
};

/// Canonical request string: cache key and the "request" echo in responses.
/// Doubles are printed round-trip (%.17g) so distinct requests never collide.
std::string cache_key(const QueryRequest& request);

/// mfw.serve/v1 response document (request echo + matches + rollups).
std::string to_json(const QueryRequest& request, const QueryResponse& response);

}  // namespace mfw::serve
