#include "serve/service.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json_writer.hpp"

namespace mfw::serve {

namespace {

/// Query latencies are microseconds-to-milliseconds; bucket the histogram
/// accordingly (seconds).
constexpr obs::HistogramSpec kLatencyBuckets{0.0, 0.005, 25};

/// Counter + latency accounting for one finished query. Guarded by
/// MetricsRegistry::enabled() at the call site so the serving hot path pays
/// one relaxed load when metrics are off.
void record_query_metrics(QueryKind kind, const char* cache_result,
                          const QueryResponse& response, double latency_s) {
  auto& metrics = obs::MetricsRegistry::instance();
  const obs::Labels by_kind{{"kind", kind_name(kind)}};
  metrics.counter_add("mfw.serve.queries_total", 1.0, by_kind);
  metrics.counter_add("mfw.serve.cache_total", 1.0,
                      {{"result", cache_result}});
  metrics.counter_add("mfw.serve.matched_rows_total",
                      static_cast<double>(response.matched), by_kind);
  metrics.counter_add("mfw.serve.shard_probes_total",
                      static_cast<double>(response.shards_probed), by_kind);
  metrics.counter_add("mfw.serve.shards_pruned_total",
                      static_cast<double>(response.shards_pruned), by_kind);
  metrics.observe("mfw.serve.query_latency_seconds", latency_s, by_kind,
                  kLatencyBuckets);
}

}  // namespace

ServeService::ServeService(const Catalog& catalog, ServeConfig config)
    : catalog_(catalog), config_(config) {
  if (config_.enable_cache) {
    cache_ = std::make_unique<ResultCache>(config_.cache_capacity,
                                           config_.cache_ways);
  }
}

QueryResponse ServeService::query(const QueryRequest& request) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const bool metrics_on = obs::MetricsRegistry::instance().enabled();
  const auto wall_start = metrics_on
                              ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
  const auto latency_s = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start)
        .count();
  };
  obs::SpanId span;
  if (auto& rec = obs::TraceRecorder::instance();
      config_.trace && rec.enabled()) {
    span = rec.begin_span("serve/api", "serve", kind_name(request.kind));
  }

  std::string key;
  const char* cache_result = "uncached";
  if (cache_ != nullptr) {
    key = cache_key(request);
    if (auto entry = cache_->get(key)) {
      if (catalog_.generations_current(entry->generations)) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        QueryResponse response = entry->response;
        response.cache_hit = true;
        matched_rows_.fetch_add(response.matched, std::memory_order_relaxed);
        if (metrics_on)
          record_query_metrics(request.kind, "hit", response, latency_s());
        obs::TraceRecorder::instance().end_span(
            span, {{"cache", "hit"},
                   {"matched", std::to_string(response.matched)}});
        return response;
      }
      cache_stale_.fetch_add(1, std::memory_order_relaxed);
      cache_result = "stale";
    } else {
      cache_misses_.fetch_add(1, std::memory_order_relaxed);
      cache_result = "miss";
    }
  }

  // Snapshot generations *before* executing: a publish that lands while the
  // scan runs makes the stored snapshot stale, so the entry self-invalidates
  // on its next hit instead of serving a half-old response as current.
  auto entry = std::make_shared<CacheEntry>();
  if (cache_ != nullptr)
    entry->generations = catalog_.generation_snapshot(request);
  QueryResponse response = catalog_.query(request);
  matched_rows_.fetch_add(response.matched, std::memory_order_relaxed);
  if (cache_ != nullptr) {
    entry->response = response;
    cache_->put(key, std::move(entry));
  }
  if (metrics_on)
    record_query_metrics(request.kind, cache_result, response, latency_s());
  obs::TraceRecorder::instance().end_span(
      span, {{"cache", cache_result},
             {"matched", std::to_string(response.matched)},
             {"shards_probed", std::to_string(response.shards_probed)},
             {"shards_pruned", std::to_string(response.shards_pruned)}});
  return response;
}

ServeStats ServeService::stats() const {
  ServeStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_stale = cache_stale_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.matched_rows = matched_rows_.load(std::memory_order_relaxed);
  s.cache_evictions = cache_ != nullptr ? cache_->evictions() : 0;
  return s;
}

std::string ServeService::stats_json() const {
  const ServeStats s = stats();
  util::JsonWriter w;
  w.begin_object();
  w.field("schema", "mfw.serve/v1");
  w.field("doc", "service_stats");
  w.field("queries", s.queries, "\n ");
  w.field("cache_hits", s.cache_hits);
  w.field("cache_stale", s.cache_stale);
  w.field("cache_misses", s.cache_misses);
  w.field("cache_evictions", s.cache_evictions);
  w.field("hit_rate", s.hit_rate(), "\n ");
  w.field("matched_rows", s.matched_rows);
  w.field("tiles", catalog_.tile_count());
  w.field("shards", catalog_.shard_count());
  w.field("sealed", catalog_.sealed());
  w.end_object().raw("\n");
  return w.take();
}

}  // namespace mfw::serve
