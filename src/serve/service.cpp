#include "serve/service.hpp"

#include "obs/trace.hpp"
#include "util/json_writer.hpp"

namespace mfw::serve {

ServeService::ServeService(const Catalog& catalog, ServeConfig config)
    : catalog_(catalog), config_(config) {
  if (config_.enable_cache) {
    cache_ = std::make_unique<ResultCache>(config_.cache_capacity,
                                           config_.cache_ways);
  }
}

QueryResponse ServeService::query(const QueryRequest& request) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  obs::SpanId span;
  if (auto& rec = obs::TraceRecorder::instance();
      config_.trace && rec.enabled()) {
    span = rec.begin_span("serve/api", "serve", kind_name(request.kind));
  }

  std::string key;
  if (cache_ != nullptr) {
    key = cache_key(request);
    if (auto entry = cache_->get(key)) {
      if (catalog_.generations_current(entry->generations)) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        QueryResponse response = entry->response;
        response.cache_hit = true;
        matched_rows_.fetch_add(response.matched, std::memory_order_relaxed);
        obs::TraceRecorder::instance().end_span(
            span, {{"cache", "hit"}});
        return response;
      }
      cache_stale_.fetch_add(1, std::memory_order_relaxed);
    } else {
      cache_misses_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Snapshot generations *before* executing: a publish that lands while the
  // scan runs makes the stored snapshot stale, so the entry self-invalidates
  // on its next hit instead of serving a half-old response as current.
  auto entry = std::make_shared<CacheEntry>();
  if (cache_ != nullptr)
    entry->generations = catalog_.generation_snapshot(request);
  QueryResponse response = catalog_.query(request);
  matched_rows_.fetch_add(response.matched, std::memory_order_relaxed);
  if (cache_ != nullptr) {
    entry->response = response;
    cache_->put(key, std::move(entry));
  }
  obs::TraceRecorder::instance().end_span(
      span, {{"cache", "miss"},
             {"matched", std::to_string(response.matched)}});
  return response;
}

ServeStats ServeService::stats() const {
  ServeStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_stale = cache_stale_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.matched_rows = matched_rows_.load(std::memory_order_relaxed);
  s.cache_evictions = cache_ != nullptr ? cache_->evictions() : 0;
  return s;
}

std::string ServeService::stats_json() const {
  const ServeStats s = stats();
  util::JsonWriter w;
  w.begin_object();
  w.field("schema", "mfw.serve/v1");
  w.field("doc", "service_stats");
  w.field("queries", s.queries, "\n ");
  w.field("cache_hits", s.cache_hits);
  w.field("cache_stale", s.cache_stale);
  w.field("cache_misses", s.cache_misses);
  w.field("cache_evictions", s.cache_evictions);
  w.field("hit_rate", s.hit_rate(), "\n ");
  w.field("matched_rows", s.matched_rows);
  w.field("tiles", catalog_.tile_count());
  w.field("shards", catalog_.shard_count());
  w.field("sealed", catalog_.sealed());
  w.end_object().raw("\n");
  return w.take();
}

}  // namespace mfw::serve
