// Closed-/open-loop client load simulator for the serving layer.
//
// Simulates a population of users, each with a fixed home cell drawn from a
// Zipf popularity ranking over the catalog's spatial cells (util::Zipf), so
// a few hot cells carry most of the traffic. Worker threads replay a
// deterministic per-worker request stream (point / bbox / class / time-range
// mix) against a ServeService:
//
//  - closed loop: each worker issues back-to-back requests; latency is the
//    measured service time. This measures capacity (QPS at a thread count).
//  - open loop: requests arrive on a virtual Poisson clock at a configured
//    offered rate; latency_i = finish_i - arrival_i with
//    finish_i = max(arrival_i, finish_{i-1}) + measured service time, so
//    queueing delay appears in the tail exactly when the offered rate
//    exceeds capacity. This measures tail latency at a load point.
//
// A flash crowd — a request-index window where arrivals speed up by
// `flash_boost` and concentrate on the hottest cell — exercises the cache's
// best case and the tail's worst case at once. Latencies aggregate into
// obs::LogHistogram (p50/p99/p999) and per-window obs-style timelines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/service.hpp"

namespace mfw::serve {

struct LoadConfig {
  /// Simulated user population (each user has a fixed Zipf-ranked home cell).
  std::size_t users = 100000;
  /// Total requests across all workers.
  std::size_t requests = 200000;
  /// Reader worker threads.
  std::size_t threads = 4;
  /// Zipf skew over cell popularity (0 = uniform; ~1 = web-like).
  double zipf_s = 1.05;
  /// Request-kind mix; the remainder after point+bbox+class is time_range.
  double point_frac = 0.70;
  double bbox_frac = 0.20;
  double class_frac = 0.08;
  int num_classes = 42;
  /// Day-of-year span the data covers and the typical query window width.
  int day_lo = 1;
  int day_hi = 30;
  int day_window = 7;
  std::size_t sample_limit = 4;
  /// Open-loop offered rate in requests/s across all workers (0 = closed
  /// loop).
  double arrival_rate = 0.0;
  /// Flash crowd: inside the request-index window
  /// [flash_start_frac, flash_start_frac + flash_len_frac) of each worker's
  /// stream, arrivals speed up by flash_boost (open loop) and
  /// flash_hot_frac of requests aim at the hottest cell.
  bool flash_crowd = false;
  double flash_start_frac = 0.5;
  double flash_len_frac = 0.2;
  double flash_boost = 8.0;
  double flash_hot_frac = 0.9;
  std::uint64_t seed = 2024;
  /// Open-loop latency timeline window width (virtual seconds).
  double timeline_window_s = 0.05;
};

struct LatencySummary {
  std::uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
};

/// One merged latency window of the open-loop timeline.
struct WindowPoint {
  double t_s = 0.0;  // window start, virtual arrival time
  std::uint64_t count = 0;
  double mean_us = 0.0;
  double p99_us = 0.0;
};

struct LoadResult {
  std::size_t requests = 0;
  std::size_t users = 0;
  std::size_t threads = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  LatencySummary all;
  /// Split summaries when flash_crowd is on (empty otherwise).
  LatencySummary base;
  LatencySummary flash;
  /// Offered open-loop rate (0 for closed loop).
  double offered_rate = 0.0;
  /// Service cache counter deltas over the run.
  double hit_rate = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_stale = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t matched_rows = 0;
  /// Open-loop latency timeline (virtual time), merged across workers.
  std::vector<WindowPoint> timeline;

  /// JSON object fragment (no trailing newline) for embedding in bench docs.
  std::string to_json() const;
};

/// Runs the simulation. Deterministic request streams given (config.seed,
/// threads); measured latencies are real. The service's catalog must be
/// populated (and normally sealed) first.
LoadResult run_load(ServeService& service, const LoadConfig& config);

/// Deterministic synthetic labelled-tile archive for serve benchmarks:
/// `n` records over `days` days with AICCA-like marginals (clustered
/// latitudes, Zipf-skewed class frequencies, lognormal-ish physics).
std::vector<analysis::TileRecord> synth_records(std::size_t n, int days,
                                                int num_classes,
                                                std::uint64_t seed);

}  // namespace mfw::serve
