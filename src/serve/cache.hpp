// Hot-cell result cache (DESIGN.md §14).
//
// Entries are complete QueryResponses keyed by the canonical request string,
// held by shared_ptr so concurrent readers of the same hot entry share one
// immutable object. Each entry carries the (shard, generation) snapshot the
// response was computed *from* — taken before execution, so a publish that
// races the computation leaves the entry detectably stale: validation
// compares the snapshot against the catalog's current generations on every
// hit and treats any difference as a miss. Eviction is LRU within the
// hash-partitioned ways of util::ShardedLruCache; invalidation needs no
// writer→cache channel at all (no flush broadcast, no per-key tracking —
// the generation comparison is the whole protocol).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serve/api.hpp"
#include "util/lru.hpp"

namespace mfw::serve {

struct CacheEntry {
  QueryResponse response;
  /// Candidate-shard generations observed before the response was computed.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> generations;
};

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity, std::size_t ways = 16)
      : cache_(capacity, ways) {}

  std::shared_ptr<const CacheEntry> get(const std::string& key) {
    auto hit = cache_.get(key);
    return hit ? std::move(*hit) : nullptr;
  }

  void put(const std::string& key, std::shared_ptr<const CacheEntry> entry) {
    cache_.put(key, std::move(entry));
  }

  void clear() { cache_.clear(); }
  std::size_t size() const { return cache_.size(); }
  std::uint64_t evictions() const { return cache_.evictions(); }

 private:
  util::ShardedLruCache<std::string, std::shared_ptr<const CacheEntry>> cache_;
};

}  // namespace mfw::serve
