// Sharded in-memory catalog over the labelled-tile archive (DESIGN.md §14).
//
// The pipeline ends with labelled tiles on a facility filesystem; this layer
// is what makes them *servable*: `analysis::AiccaArchive` is a flat vector
// that every question must scan end to end, while downstream consumers (the
// AI-guided-simulation shape in PAPERS.md: many heterogeneous clients
// hitting one shared result store) care about queries/sec and tail latency.
//
// Layout: tiles are partitioned into `shard_count` shards by
// hash(spatial cell, day-of-year). Each shard is a column (SoA) store built
// from fixed-size chunks with
//   - a single append-only writer (per shard; batch ingest runs one writer
//     task per shard),
//   - lock-free readers: an atomic published-row count is release-stored by
//     the writer after the rows and pruning metadata are written, and
//     acquire-loaded by readers, so a reader never takes a lock and never
//     observes a partially written row,
//   - a monotonic per-shard generation, bumped *after* each publish, that
//     the hot-cell result cache snapshots for invalidation (a response is
//     cached with the generations observed before it was computed; any
//     publish in between makes the comparison fail and the entry recompute),
//   - an immutable index built at seal() time mapping (cell, day) to row
//     lists, published via an acquire/release atomic pointer; before seal,
//     point queries fall back to a filtered column scan of the shard.
//
// Because the shard of a row is a pure function of (cell, day), a point
// query's candidate shard set is computable without touching data — that is
// what keeps its generation snapshot small and its cache entries alive while
// *other* shards ingest.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "analysis/aicca.hpp"
#include "serve/api.hpp"
#include "util/rng.hpp"

namespace mfw::util {
class ThreadPool;
}

namespace mfw::serve {

struct CatalogConfig {
  /// Spatial cell edge in degrees (18 x 36 = 648 cells at the default).
  double cell_deg = 10.0;
  /// Number of shards; (cell, day) groups hash onto them.
  std::size_t shard_count = 32;
  /// Rows per column chunk (chunks are allocated full-size, never resized,
  /// so published rows are stable addresses).
  std::size_t rows_per_chunk = 16384;
  /// Chunk-pointer slots preallocated per shard (caps shard capacity at
  /// max_chunks * rows_per_chunk rows).
  std::size_t max_chunks = 4096;
};

/// Packs the parts of a GranuleId the serving rows keep (product, satellite,
/// year-2000, day-of-year, slot) into 32 bits; lossless for years 2000-2127.
std::uint32_t pack_granule(const modis::GranuleId& id);
modis::GranuleId unpack_granule(std::uint32_t packed);

/// One serving row in struct form (column stores hold the same fields).
struct Row {
  float lat = 0.0f, lon = 0.0f;
  float cf = 0.0f, cot = 0.0f, ctp = 0.0f, cwp = 0.0f;
  std::int32_t label = -1;
  std::uint32_t cell = 0;
  std::int16_t day = 0;
  std::uint32_t granule = 0;
};

/// Fixed-size struct-of-arrays chunk. Sized at construction; never resized.
struct Chunk {
  explicit Chunk(std::size_t rows)
      : lat(rows), lon(rows), cf(rows), cot(rows), ctp(rows), cwp(rows),
        label(rows), cell(rows), granule(rows), day(rows) {}
  std::vector<float> lat, lon, cf, cot, ctp, cwp;
  std::vector<std::int32_t> label;
  std::vector<std::uint32_t> cell, granule;
  std::vector<std::int16_t> day;
};

/// Row lists per (cell, day) group, built once at seal().
struct SealedIndex {
  static std::uint64_t key(std::uint32_t cell, std::int16_t day) {
    return (static_cast<std::uint64_t>(cell) << 16) |
           static_cast<std::uint16_t>(day);
  }
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> groups;
};

class Shard {
 public:
  explicit Shard(const CatalogConfig& config);
  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  // -- writer side (one writer thread at a time) ----------------------------
  /// Buffers a row; not visible to readers until publish().
  void append(const Row& row);
  /// Release-publishes all buffered rows and bumps the generation.
  void publish();
  /// Publishes, builds the (cell, day) index, and bumps the generation.
  /// Appending after seal is a contract violation (throws).
  void seal();

  // -- reader side (lock-free) ----------------------------------------------
  std::size_t published() const {
    return published_.load(std::memory_order_acquire);
  }
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  const SealedIndex* index() const {
    return index_.load(std::memory_order_acquire);
  }
  bool sealed() const { return index() != nullptr; }

  /// Row address helpers for readers (row < published()).
  const Chunk& chunk_for(std::size_t row) const {
    return *chunks_[row / rows_per_chunk_].load(std::memory_order_acquire);
  }
  std::size_t chunk_offset(std::size_t row) const {
    return row % rows_per_chunk_;
  }

  /// Visits published rows [0, limit) as (chunk, begin, end) ranges.
  template <typename F>
  void scan(std::size_t limit, F&& f) const {
    for (std::size_t base = 0; base < limit; base += rows_per_chunk_) {
      const Chunk* chunk = chunks_[base / rows_per_chunk_].load(
          std::memory_order_acquire);
      const std::size_t end = std::min(rows_per_chunk_, limit - base);
      f(*chunk, std::size_t{0}, end);
    }
  }

  // -- pruning metadata (conservative: bounds only ever widen, and a
  // reader's acquire of published() orders every update covering the rows it
  // sees) ---------------------------------------------------------------------
  float min_lat() const { return min_lat_.load(std::memory_order_relaxed); }
  float max_lat() const { return max_lat_.load(std::memory_order_relaxed); }
  float min_lon() const { return min_lon_.load(std::memory_order_relaxed); }
  float max_lon() const { return max_lon_.load(std::memory_order_relaxed); }
  int min_day() const { return min_day_.load(std::memory_order_relaxed); }
  int max_day() const { return max_day_.load(std::memory_order_relaxed); }
  /// Bit (label & 63) set when a row with that label was appended; labels
  /// >= 63 share bit 63, so pruning stays conservative for them.
  std::uint64_t class_mask() const {
    return class_mask_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t rows_per_chunk_;
  const std::size_t max_chunks_;
  std::unique_ptr<std::atomic<Chunk*>[]> chunks_;
  std::size_t size_ = 0;  // writer-private: rows buffered (>= published_)
  std::atomic<std::size_t> published_{0};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<SealedIndex*> index_{nullptr};

  std::atomic<float> min_lat_{90.0f}, max_lat_{-90.0f};
  std::atomic<float> min_lon_{180.0f}, max_lon_{-180.0f};
  std::atomic<int> min_day_{367}, max_day_{0};
  std::atomic<std::uint64_t> class_mask_{0};
};

class Catalog {
 public:
  explicit Catalog(CatalogConfig config = {});

  // -- cell geometry ---------------------------------------------------------
  /// Cell of a coordinate; +90 latitude (and +180 longitude) clamp into the
  /// last cell, mirroring AiccaArchive::zonal_class_counts band assignment.
  std::uint32_t cell_of(double lat, double lon) const;
  std::uint32_t cell_count() const { return lat_cells_ * lon_cells_; }
  /// Center coordinate of a cell (for synthetic load targeting).
  void cell_center(std::uint32_t cell, double* lat, double* lon) const;
  /// Shard that rows of (cell, day) land in — a pure function, so query
  /// planning can enumerate candidate shards without touching data.
  std::uint32_t shard_of(std::uint32_t cell, int day) const {
    return static_cast<std::uint32_t>(
        util::mix64(cell, static_cast<std::uint64_t>(day)) %
        shards_.size());
  }

  // -- ingest (single logical writer; batch ingest fans one writer task out
  // per shard) ---------------------------------------------------------------
  void append(const analysis::TileRecord& record);
  /// Publishes every shard's buffered rows.
  void publish();
  /// Partitions records by shard and appends them with one writer per shard
  /// (parallel when a pool is given), then publishes. Returns rows ingested.
  std::size_t ingest(const std::vector<analysis::TileRecord>& records,
                     util::ThreadPool* pool = nullptr);
  std::size_t ingest(const analysis::AiccaArchive& archive,
                     util::ThreadPool* pool = nullptr) {
    return ingest(archive.records(), pool);
  }
  /// Seals every shard (immutable from here on; cached entries stop aging).
  void seal();
  bool sealed() const;

  const CatalogConfig& config() const { return config_; }
  std::size_t shard_count() const { return shards_.size(); }
  const Shard& shard(std::size_t i) const { return *shards_[i]; }
  std::size_t tile_count() const;

  // -- queries (lock-free; any number of concurrent readers) -----------------
  QueryResponse query(const QueryRequest& request) const;

  /// Shards a request's execution may consult (point queries enumerate
  /// hash(cell, day) over the day range; everything else is all shards).
  std::vector<std::uint32_t> candidate_shards(const QueryRequest& request) const;
  /// (shard, generation) pairs for the candidate set — captured by the cache
  /// *before* computing a response so any concurrent publish invalidates it.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> generation_snapshot(
      const QueryRequest& request) const;
  bool generations_current(
      const std::vector<std::pair<std::uint32_t, std::uint64_t>>& snapshot)
      const;

 private:
  Row make_row(const analysis::TileRecord& record) const;

  CatalogConfig config_;
  std::uint32_t lat_cells_ = 0;
  std::uint32_t lon_cells_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Brute-force oracle: evaluates `request` by a linear scan over archive
/// records, sharing nothing with the sharded execution path except the cell
/// definition. Property tests (and `mfwctl serve-bench --check`) compare the
/// catalog's responses against this.
QueryResponse brute_force_query(
    const std::vector<analysis::TileRecord>& records,
    const QueryRequest& request, const Catalog& catalog);

}  // namespace mfw::serve
