// The policy-sweep laboratory: runs N concurrent campaign instances of a
// compiled WorkflowSpec (spec::StageGraph) on the discrete-event substrate —
// one ClusterExecutor + archive WAN FlowLink per facility, a SchedulerPolicy
// arbitrating task admission across campaigns — and reports the Pareto
// metrics (makespan, utilization, p99 queue wait, deadline misses) that
// bench/policy_sweep.cpp sweeps over policy x facility-count x load.
//
// Semantics of a run: campaign instance c arrives at c * arrival_spacing and
// is pinned to facility c % facilities. Each instance pushes `items` work
// units through the stage DAG; a stage item becomes ready when every input
// edge is satisfied — per-item for streaming edges, whole-stage for barrier
// edges. Transfer stages move bytes_per_item over the facility's WAN link
// (concurrency capped at the stage claim); compute stages become tasks on
// the facility executor, where the installed policy picks admission order.
// One policy instance is shared by all facilities, so fair-share accounting
// is global — exactly what cross-facility fairness means.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "spec/spec.hpp"

namespace mfw::spec {

struct LabConfig {
  StageGraph graph;
  /// Admission policy name (compute::make_policy): fifo, fair_share,
  /// deadline, wan_aware.
  std::string policy = "fifo";
  /// Identical facilities (each a caps-sized partition + its own WAN link);
  /// campaigns round-robin across them.
  int facilities = 1;
  /// Load multiplier on the spec's campaign count (rounded up, >= 1).
  double load = 1.0;
  /// Node contention-law calibration for the executors (Defiant default).
  double node_r_max = 38.5;
  double node_tau = 3.1;
};

struct LabResult {
  std::string workflow;
  std::string policy;
  int facilities = 1;
  double load = 1.0;
  int campaigns = 0;
  int items_per_campaign = 0;
  /// Last completion time across all campaigns (seconds).
  double makespan = 0.0;
  /// Busy-worker integral / (makespan x total workers), in [0, 1].
  double utilization = 0.0;
  double mean_queue_wait = 0.0;
  double p99_queue_wait = 0.0;
  std::size_t tasks = 0;
  /// Campaigns whose completion exceeded their arrival-relative deadline.
  int deadline_misses = 0;
  /// Per-campaign arrival-to-done durations, in campaign order.
  std::vector<double> campaign_makespans;

  // -- spec-declared SLOs (DESIGN.md §12) -------------------------------------
  /// Deadline-class SLO rules from the spec's `slo:` section evaluated for
  /// this point (stage-level latency rules need a traced run and are the
  /// watch layer's job; the lab feeds campaign outcomes only).
  int slo_rules = 0;
  /// Alert transitions (firing + resolved) those rules produced.
  int slo_alerts = 0;
  /// Rules still firing when the point finished.
  int slo_firing = 0;
};

/// Runs one laboratory configuration to completion. Deterministic: same
/// config -> same result.
LabResult run_lab(const LabConfig& config);

/// Serializes sweep results as the "mfw.policies/v1" JSON document consumed
/// by tools/ci_spec_smoke.sh and EXPERIMENTS.md (one record per
/// policy x facility-count x load point).
std::string results_to_json(const std::vector<LabResult>& results);

}  // namespace mfw::spec
