#include "spec/spec.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace mfw::spec {

namespace {

/// Rejects keys outside `allowed`, anchored at the stray key's value line.
void check_keys(const util::YamlNode& node,
                const std::vector<std::string_view>& allowed,
                const std::string& context) {
  if (!node.is_map()) return;
  for (const auto& key : node.keys()) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      throw SpecError(node[key].line(),
                      context + ": unknown key '" + key + "'");
    }
  }
}

EdgeMode parse_edge_mode(const util::YamlNode& node) {
  const auto& name = node.as_string();
  if (name == "barrier") return EdgeMode::kBarrier;
  if (name == "streaming") return EdgeMode::kStreaming;
  throw SpecError(node.line(), "unknown dataflow mode '" + name +
                                   "' (expected barrier or streaming)");
}

ResourceClaim parse_claim(const util::YamlNode& node,
                          const std::string& stage_name,
                          std::size_t stage_line) {
  ResourceClaim claim;
  claim.line = node.is_null() ? stage_line : node.line();
  if (node.is_null()) return claim;
  check_keys(node,
             {"nodes", "workers_per_node", "wan", "cpu_per_item",
              "demand_per_item", "bytes_per_item"},
             "stage '" + stage_name + "' claim");
  claim.nodes = static_cast<int>(node["nodes"].as_int_or(claim.nodes));
  claim.workers_per_node = static_cast<int>(
      node["workers_per_node"].as_int_or(claim.workers_per_node));
  if (node.has("wan"))
    claim.wan_bps = static_cast<double>(node["wan"].as_bytes());
  claim.cpu_seconds_per_item =
      node["cpu_per_item"].as_double_or(claim.cpu_seconds_per_item);
  claim.shared_demand_per_item =
      node["demand_per_item"].as_double_or(claim.shared_demand_per_item);
  if (node.has("bytes_per_item"))
    claim.bytes_per_item =
        static_cast<double>(node["bytes_per_item"].as_bytes());
  if (claim.nodes < 1 || claim.workers_per_node < 1)
    throw SpecError(claim.line, "stage '" + stage_name +
                                    "' claim: nodes and workers_per_node "
                                    "must be >= 1");
  return claim;
}

StageSpec parse_stage(const util::YamlNode& node) {
  if (!node.is_map())
    throw SpecError(node.line(), "each stage must be a map");
  check_keys(node, {"name", "kind", "inputs", "claim"}, "stage");
  StageSpec stage;
  stage.line = node.line();
  if (!node.has("name"))
    throw SpecError(node.line(), "stage is missing 'name'");
  stage.name = node["name"].as_string();
  stage.kind = node["kind"].as_string_or(stage.kind);
  if (stage.kind != "compute" && stage.kind != "transfer")
    throw SpecError(node["kind"].line(),
                    "stage '" + stage.name + "': unknown kind '" +
                        stage.kind + "' (expected compute or transfer)");
  if (node.has("inputs")) {
    for (const auto& input : node["inputs"].items())
      stage.inputs.push_back(input.as_string());
  }
  stage.claim = parse_claim(node["claim"], stage.name, stage.line);
  return stage;
}

}  // namespace

std::vector<SloSpec> parse_slo_list(const util::YamlNode& node) {
  std::vector<SloSpec> rules;
  if (node.is_null()) return rules;
  if (!node.is_list())
    throw SpecError(node.line(), "'slo' must be a list of objectives");
  for (const auto& entry : node.items()) {
    if (!entry.is_map())
      throw SpecError(entry.line(), "each slo entry must be a map");
    check_keys(entry, {"name", "stage", "metric", "threshold", "window"},
               "slo entry");
    SloSpec rule;
    rule.line = entry.line();
    if (!entry.has("name"))
      throw SpecError(entry.line(), "slo entry is missing 'name'");
    rule.name = entry["name"].as_string();
    rule.stage = entry["stage"].as_string_or(rule.stage);
    rule.metric = entry["metric"].as_string_or(rule.metric);
    obs::SloMetric metric;
    if (!obs::slo_metric_from_string(rule.metric, metric))
      throw SpecError(
          entry.has("metric") ? entry["metric"].line() : entry.line(),
          "slo '" + rule.name + "': unknown metric '" + rule.metric +
              "' (expected p99_latency, queue_wait_p99, deadline_miss_rate, "
              "utilization_floor, or wan_retry_budget)");
    if (!entry.has("threshold"))
      throw SpecError(entry.line(),
                      "slo '" + rule.name + "' is missing 'threshold'");
    rule.threshold = entry["threshold"].as_double();
    rule.window_s = entry["window"].as_double_or(rule.window_s);
    if (rule.window_s <= 0.0)
      throw SpecError(entry["window"].line(),
                      "slo '" + rule.name + "': window must be > 0");
    rules.push_back(std::move(rule));
  }
  return rules;
}

std::vector<obs::SloRule> health_rules(const WorkflowSpec& spec) {
  std::vector<obs::SloRule> rules;
  rules.reserve(spec.slo.size());
  for (const auto& entry : spec.slo) {
    obs::SloRule rule;
    rule.name = entry.name;
    rule.stage = entry.stage;
    obs::slo_metric_from_string(entry.metric, rule.metric);
    rule.threshold = entry.threshold;
    rule.window_s = entry.window_s;
    rules.push_back(std::move(rule));
  }
  return rules;
}

const char* to_string(EdgeMode mode) {
  return mode == EdgeMode::kStreaming ? "streaming" : "barrier";
}

WorkflowSpec WorkflowSpec::from_yaml(const util::YamlNode& root) {
  if (!root.is_map())
    throw SpecError(root.line(), "spec document must be a map");
  check_keys(root, {"name", "stages", "dataflow", "campaign", "slo"}, "spec");
  WorkflowSpec spec;
  spec.name = root["name"].as_string_or(spec.name);

  const auto& stages = root["stages"];
  if (!stages.is_list())
    throw SpecError(root.line(), "spec needs a 'stages' list");
  for (const auto& entry : stages.items())
    spec.stages.push_back(parse_stage(entry));

  const auto& dataflow = root["dataflow"];
  if (dataflow.is_list()) {
    for (const auto& entry : dataflow.items()) {
      if (!entry.is_map())
        throw SpecError(entry.line(), "each dataflow entry must be a map");
      check_keys(entry, {"from", "to", "mode"}, "dataflow edge");
      EdgeSpec edge;
      edge.line = entry.line();
      if (!entry.has("from") || !entry.has("to"))
        throw SpecError(entry.line(), "dataflow edge needs 'from' and 'to'");
      edge.from = entry["from"].as_string();
      edge.to = entry["to"].as_string();
      if (entry.has("mode")) edge.mode = parse_edge_mode(entry["mode"]);
      spec.dataflow.push_back(std::move(edge));
    }
  } else if (!dataflow.is_null()) {
    throw SpecError(dataflow.line(), "'dataflow' must be a list of edges");
  }

  const auto& campaign = root["campaign"];
  if (campaign.is_map()) {
    check_keys(campaign, {"count", "spacing", "items", "deadline"},
               "campaign");
    spec.campaign.line = campaign.line();
    spec.campaign.count =
        static_cast<int>(campaign["count"].as_int_or(spec.campaign.count));
    spec.campaign.arrival_spacing =
        campaign["spacing"].as_double_or(spec.campaign.arrival_spacing);
    spec.campaign.items =
        static_cast<int>(campaign["items"].as_int_or(spec.campaign.items));
    spec.campaign.deadline =
        campaign["deadline"].as_double_or(spec.campaign.deadline);
    if (spec.campaign.count < 1 || spec.campaign.items < 1)
      throw SpecError(spec.campaign.line,
                      "campaign: count and items must be >= 1");
  } else if (!campaign.is_null()) {
    throw SpecError(campaign.line(), "'campaign' must be a map");
  }

  spec.slo = parse_slo_list(root["slo"]);
  return spec;
}

WorkflowSpec WorkflowSpec::from_yaml_text(std::string_view text) {
  return from_yaml(util::parse_yaml(text));
}

StageGraph StageGraph::compile(const WorkflowSpec& spec,
                               const FacilityCaps& caps) {
  if (spec.stages.empty())
    throw SpecError(0, "workflow '" + spec.name + "' has no stages");

  // Duplicate-name check; remember declaration lines for later anchors.
  std::map<std::string, const StageSpec*, std::less<>> by_name;
  for (const auto& stage : spec.stages) {
    const auto [it, inserted] = by_name.emplace(stage.name, &stage);
    if (!inserted) {
      throw SpecError(stage.line, "duplicate stage name '" + stage.name +
                                      "' (first declared at line " +
                                      std::to_string(it->second->line) + ")");
    }
  }

  // Undeclared-input check: every declared input must name a stage.
  for (const auto& stage : spec.stages) {
    for (const auto& input : stage.inputs) {
      if (by_name.find(input) == by_name.end())
        throw SpecError(stage.line, "stage '" + stage.name +
                                        "' reads from undeclared input '" +
                                        input + "'");
      if (input == stage.name)
        throw SpecError(stage.line,
                        "stage '" + stage.name + "' lists itself as input");
    }
  }

  // Dataflow overrides must match a declared input edge.
  for (const auto& edge : spec.dataflow) {
    const auto it = by_name.find(edge.to);
    if (by_name.find(edge.from) == by_name.end() || it == by_name.end())
      throw SpecError(edge.line, "dataflow edge '" + edge.from + " -> " +
                                     edge.to + "' names an unknown stage");
    const auto& inputs = it->second->inputs;
    if (std::find(inputs.begin(), inputs.end(), edge.from) == inputs.end())
      throw SpecError(edge.line, "dataflow edge '" + edge.from + " -> " +
                                     edge.to + "': stage '" + edge.to +
                                     "' does not declare input '" +
                                     edge.from + "'");
  }

  // Claim-vs-capacity check.
  for (const auto& stage : spec.stages) {
    const auto& claim = stage.claim;
    if (claim.nodes > caps.total_nodes)
      throw SpecError(claim.line,
                      "stage '" + stage.name + "' claims " +
                          std::to_string(claim.nodes) + " nodes but facility '" +
                          caps.name + "' has " +
                          std::to_string(caps.total_nodes));
    if (claim.workers_per_node > caps.max_workers_per_node)
      throw SpecError(claim.line,
                      "stage '" + stage.name + "' claims " +
                          std::to_string(claim.workers_per_node) +
                          " workers/node but facility '" + caps.name +
                          "' allows " +
                          std::to_string(caps.max_workers_per_node));
    if (claim.wan_bps > caps.wan_bps)
      throw SpecError(claim.line,
                      "stage '" + stage.name + "' claims " +
                          std::to_string(claim.wan_bps) +
                          " B/s WAN but facility '" + caps.name + "' has " +
                          std::to_string(caps.wan_bps) + " B/s");
  }

  // SLO validation: unique names, resolvable stage references, thresholds
  // that make sense for the metric. Metric spelling was already checked by
  // parse_slo_list; programmatically-built specs get the same checks here.
  std::set<std::string, std::less<>> slo_names;
  for (const auto& rule : spec.slo) {
    if (!slo_names.insert(rule.name).second)
      throw SpecError(rule.line, "duplicate slo name '" + rule.name + "'");
    obs::SloMetric metric;
    if (!obs::slo_metric_from_string(rule.metric, metric))
      throw SpecError(rule.line, "slo '" + rule.name + "': unknown metric '" +
                                     rule.metric + "'");
    if (rule.window_s <= 0.0)
      throw SpecError(rule.line,
                      "slo '" + rule.name + "': window must be > 0");
    if (metric == obs::SloMetric::kDeadlineMissRate) {
      if (!rule.stage.empty())
        throw SpecError(rule.line,
                        "slo '" + rule.name +
                            "': deadline_miss_rate is workflow-wide; drop "
                            "'stage'");
      if (rule.threshold < 0.0 || rule.threshold >= 1.0)
        throw SpecError(rule.line, "slo '" + rule.name +
                                       "': deadline_miss_rate threshold must "
                                       "be in [0, 1)");
    } else {
      if (rule.stage.empty())
        throw SpecError(rule.line, "slo '" + rule.name + "': metric '" +
                                       rule.metric + "' needs a 'stage'");
      if (by_name.find(rule.stage) == by_name.end())
        throw SpecError(rule.line, "slo '" + rule.name +
                                       "' watches undeclared stage '" +
                                       rule.stage + "'");
      if (metric == obs::SloMetric::kUtilizationFloor) {
        if (rule.threshold <= 0.0 || rule.threshold > 1.0)
          throw SpecError(rule.line, "slo '" + rule.name +
                                         "': utilization_floor threshold "
                                         "must be in (0, 1]");
      } else if (rule.threshold < 0.0) {
        throw SpecError(rule.line, "slo '" + rule.name +
                                       "': threshold must be >= 0");
      }
    }
  }

  // Kahn topological sort, stable in declaration order; leftovers = cycle.
  StageGraph graph;
  graph.spec_ = spec;
  graph.caps_ = caps;
  std::map<std::string, int, std::less<>> pending_inputs;
  for (const auto& stage : spec.stages)
    pending_inputs[stage.name] = static_cast<int>(stage.inputs.size());
  std::set<std::string, std::less<>> done;
  while (graph.topo_.size() < spec.stages.size()) {
    bool advanced = false;
    for (const auto& stage : spec.stages) {
      if (done.count(stage.name) || pending_inputs[stage.name] != 0) continue;
      graph.topo_.push_back(stage.name);
      done.insert(stage.name);
      advanced = true;
      for (const auto& other : spec.stages) {
        if (std::find(other.inputs.begin(), other.inputs.end(), stage.name) !=
            other.inputs.end())
          --pending_inputs[other.name];
      }
    }
    if (!advanced) {
      // Anchor the cycle report at the first (declaration order) stage that
      // never became ready.
      for (const auto& stage : spec.stages) {
        if (!done.count(stage.name))
          throw SpecError(stage.line, "dependency cycle involving stage '" +
                                          stage.name + "'");
      }
    }
  }
  return graph;
}

const StageSpec& StageGraph::stage(std::string_view name) const {
  for (const auto& stage : spec_.stages)
    if (stage.name == name) return stage;
  throw SpecError(0, "unknown stage '" + std::string(name) + "'");
}

bool StageGraph::has_stage(std::string_view name) const {
  for (const auto& stage : spec_.stages)
    if (stage.name == name) return true;
  return false;
}

EdgeMode StageGraph::edge_mode(std::string_view from,
                               std::string_view to) const {
  const auto& inputs = stage(to).inputs;
  if (std::find(inputs.begin(), inputs.end(), from) == inputs.end())
    throw SpecError(0, "no edge '" + std::string(from) + " -> " +
                           std::string(to) + "'");
  for (const auto& edge : spec_.dataflow) {
    if (edge.from == from && edge.to == to) return edge.mode;
  }
  return EdgeMode::kBarrier;
}

std::vector<std::string> StageGraph::downstream(std::string_view name) const {
  std::vector<std::string> out;
  for (const auto& stage : spec_.stages) {
    if (std::find(stage.inputs.begin(), stage.inputs.end(), name) !=
        stage.inputs.end())
      out.push_back(stage.name);
  }
  return out;
}

std::string StageGraph::describe() const {
  std::ostringstream os;
  os << "workflow '" << spec_.name << "' on facility '" << caps_.name << "' ("
     << caps_.total_nodes << " nodes, " << caps_.wan_bps << " B/s WAN)\n";
  const auto& c = spec_.campaign;
  os << "campaign: " << c.count << " instance(s) x " << c.items
     << " item(s), spacing " << c.arrival_spacing << "s";
  if (c.deadline != std::numeric_limits<double>::infinity())
    os << ", deadline " << c.deadline << "s";
  os << "\nstages (topological order):\n";
  for (const auto& name : topo_) {
    const auto& st = stage(name);
    os << "  " << st.name << " [" << st.kind << "] claim{nodes=" << st.claim.nodes
       << " workers/node=" << st.claim.workers_per_node;
    if (st.claim.wan_bps > 0) os << " wan=" << st.claim.wan_bps << "B/s";
    if (st.claim.cpu_seconds_per_item > 0)
      os << " cpu/item=" << st.claim.cpu_seconds_per_item << "s";
    if (st.claim.shared_demand_per_item > 0)
      os << " demand/item=" << st.claim.shared_demand_per_item;
    if (st.claim.bytes_per_item > 0)
      os << " bytes/item=" << st.claim.bytes_per_item;
    os << "}\n";
  }
  os << "edges:\n";
  bool any = false;
  for (const auto& name : topo_) {
    for (const auto& to : downstream(name)) {
      os << "  " << name << " -> " << to << " ["
         << to_string(edge_mode(name, to)) << "]\n";
      any = true;
    }
  }
  if (!any) os << "  (none)\n";
  if (!spec_.slo.empty()) {
    os << "slo:\n";
    for (const auto& rule : spec_.slo) {
      os << "  " << rule.name << ": "
         << (rule.stage.empty() ? "workflow" : rule.stage) << " "
         << rule.metric << " "
         << (rule.metric == "utilization_floor" ? ">= " : "<= ")
         << rule.threshold << " over " << rule.window_s << "s windows\n";
    }
  }
  return os.str();
}

}  // namespace mfw::spec
