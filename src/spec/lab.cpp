#include "spec/lab.hpp"

#include "util/json_writer.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <sstream>
#include <stdexcept>

#include "compute/cluster.hpp"
#include "compute/policy.hpp"
#include "sim/engine.hpp"
#include "sim/link.hpp"

namespace mfw::spec {

namespace {

/// Trapezoid-free busy integral of a (time, active) transition series up to
/// `end` (the series is piecewise constant between transitions).
double busy_integral(const std::vector<std::pair<double, int>>& activity,
                     double end) {
  double total = 0.0;
  for (std::size_t i = 0; i < activity.size(); ++i) {
    const double next = i + 1 < activity.size() ? activity[i + 1].first : end;
    total += activity[i].second * std::max(0.0, next - activity[i].first);
  }
  return total;
}

class Lab {
 public:
  explicit Lab(const LabConfig& config) : config_(config) {}

  LabResult run() {
    const auto& graph = config_.graph;
    const auto& caps = graph.caps();
    const auto& campaign = graph.spec().campaign;
    if (config_.facilities < 1)
      throw std::invalid_argument("lab: facilities must be >= 1");
    const int n_campaigns = std::max(
        1, static_cast<int>(std::ceil(campaign.count * config_.load)));

    // Facility substrate: one executor (the batch partition) + one archive
    // WAN link per facility. Worker width per node is the largest compute
    // claim (already validated against caps).
    int workers_per_node = 1;
    for (const auto& stage : graph.spec().stages)
      if (stage.kind == "compute")
        workers_per_node = std::max(workers_per_node,
                                    stage.claim.workers_per_node);
    auto law = [this] {
      return std::make_unique<sim::SaturatingExpLaw>(config_.node_r_max,
                                                     config_.node_tau);
    };
    auto policy = std::shared_ptr<compute::SchedulerPolicy>(
        compute::make_policy(config_.policy, [this](const std::string& c) {
          const auto it = wan_in_flight_.find(c);
          return it == wan_in_flight_.end() ? 0.0 : it->second;
        }));
    for (int f = 0; f < config_.facilities; ++f) {
      auto exec = std::make_unique<compute::ClusterExecutor>(engine_, law);
      exec->set_label("facility" + std::to_string(f));
      exec->set_policy(policy);
      for (int n = 0; n < caps.total_nodes; ++n)
        exec->add_node(workers_per_node);
      executors_.push_back(std::move(exec));
      wan_.push_back(std::make_unique<sim::FlowLink>(
          engine_, "wan" + std::to_string(f), caps.wan_bps));
    }

    // Campaign instances, round-robin across facilities.
    for (int c = 0; c < n_campaigns; ++c) {
      auto inst = std::make_unique<Campaign>();
      inst->name = "campaign" + std::to_string(c);
      inst->arrival = c * campaign.arrival_spacing;
      inst->facility = c % config_.facilities;
      inst->deadline_abs = inst->arrival + campaign.deadline;
      inst->remaining =
          static_cast<int>(graph.spec().stages.size()) * campaign.items;
      for (const auto& stage : graph.spec().stages) {
        StageState state;
        state.spec = &stage;
        state.needed_inputs = static_cast<int>(stage.inputs.size());
        state.inputs_satisfied.assign(
            static_cast<std::size_t>(campaign.items), 0);
        state.done.assign(static_cast<std::size_t>(campaign.items), 0);
        inst->stages.emplace(stage.name, std::move(state));
      }
      Campaign* raw = inst.get();
      campaigns_.push_back(std::move(inst));
      engine_.schedule_at(raw->arrival, [this, raw] { arrive(*raw); });
    }

    engine_.run();

    // -- roll up Pareto metrics ---------------------------------------------
    LabResult result;
    result.workflow = graph.spec().name;
    result.policy = config_.policy;
    result.facilities = config_.facilities;
    result.load = config_.load;
    result.campaigns = n_campaigns;
    result.items_per_campaign = campaign.items;
    for (const auto& inst : campaigns_) {
      if (inst->finished_at < 0)
        throw std::logic_error("lab: campaign never completed (spec bug?)");
      result.makespan = std::max(result.makespan, inst->finished_at);
      result.campaign_makespans.push_back(inst->finished_at - inst->arrival);
      if (inst->finished_at > inst->deadline_abs) ++result.deadline_misses;
    }
    std::vector<double> waits;
    double busy = 0.0;
    double capacity = 0.0;
    for (const auto& exec : executors_) {
      for (const auto& r : exec->results()) waits.push_back(r.queue_wait());
      busy += busy_integral(exec->activity(), result.makespan);
      capacity += static_cast<double>(exec->total_workers()) * result.makespan;
    }
    result.tasks = waits.size();
    if (!waits.empty()) {
      double sum = 0.0;
      for (double w : waits) sum += w;
      result.mean_queue_wait = sum / static_cast<double>(waits.size());
      std::sort(waits.begin(), waits.end());
      const auto idx = static_cast<std::size_t>(
          std::min<double>(static_cast<double>(waits.size()) - 1,
                           std::ceil(0.99 * waits.size()) - 1));
      result.p99_queue_wait = waits[idx];
    }
    if (capacity > 0) result.utilization = busy / capacity;

    // Spec-declared deadline SLOs, evaluated the same way a live run would:
    // each campaign outcome lands in the rule's window at its finish time.
    std::vector<obs::SloRule> deadline_rules;
    for (const auto& rule : health_rules(graph.spec())) {
      if (rule.metric == obs::SloMetric::kDeadlineMissRate)
        deadline_rules.push_back(rule);
    }
    result.slo_rules = static_cast<int>(deadline_rules.size());
    if (!deadline_rules.empty()) {
      obs::HealthMonitor monitor({}, deadline_rules);
      for (const auto& inst : campaigns_)
        monitor.note_deadline(inst->finished_at,
                              inst->finished_at > inst->deadline_abs);
      monitor.finish(result.makespan);
      result.slo_alerts = static_cast<int>(monitor.alerts().size());
      result.slo_firing = static_cast<int>(monitor.firing_count());
    }
    return result;
  }

 private:
  struct StageState {
    const StageSpec* spec = nullptr;
    int needed_inputs = 0;
    std::vector<int> inputs_satisfied;  // per item
    std::vector<char> done;             // per item
    int done_count = 0;
    std::deque<int> transfer_queue;     // transfer stages: queued items
    int transfer_active = 0;
  };

  struct Campaign {
    std::string name;
    double arrival = 0.0;
    int facility = 0;
    double deadline_abs = 0.0;
    std::map<std::string, StageState, std::less<>> stages;
    int remaining = 0;
    double finished_at = -1.0;
  };

  void arrive(Campaign& inst) {
    // Source stages (no inputs): every item is ready on arrival.
    for (auto& [name, state] : inst.stages) {
      if (state.needed_inputs != 0) continue;
      const int items = static_cast<int>(state.done.size());
      for (int item = 0; item < items; ++item)
        item_ready(inst, state, item);
    }
  }

  void item_ready(Campaign& inst, StageState& state, int item) {
    if (state.spec->kind == "transfer") {
      state.transfer_queue.push_back(item);
      pump_transfers(inst, state);
      return;
    }
    compute::SimTaskDesc desc;
    desc.cpu_seconds = state.spec->claim.cpu_seconds_per_item;
    desc.shared_demand = state.spec->claim.shared_demand_per_item;
    desc.payload = 1.0;
    desc.label = state.spec->name;
    desc.campaign = inst.name;
    desc.deadline = inst.deadline_abs;
    auto* statep = &state;
    auto* instp = &inst;
    executors_[static_cast<std::size_t>(inst.facility)]->submit(
        std::move(desc), [this, instp, statep, item](
                             const compute::SimTaskResult&) {
          item_done(*instp, *statep, item);
        });
  }

  /// Starts queued transfers up to the stage's claimed stream concurrency.
  void pump_transfers(Campaign& inst, StageState& state) {
    const auto& claim = state.spec->claim;
    const int streams = std::max(1, claim.nodes * claim.workers_per_node);
    auto& link = *wan_[static_cast<std::size_t>(inst.facility)];
    while (state.transfer_active < streams && !state.transfer_queue.empty()) {
      const int item = state.transfer_queue.front();
      state.transfer_queue.pop_front();
      ++state.transfer_active;
      const double bytes = std::max(1.0, claim.bytes_per_item);
      const double cap = claim.wan_bps > 0 ? claim.wan_bps : link.capacity();
      wan_in_flight_[inst.name] += bytes;
      auto* statep = &state;
      auto* instp = &inst;
      link.start_flow(bytes, cap, [this, instp, statep, item, bytes](double) {
        wan_in_flight_[instp->name] -= bytes;
        --statep->transfer_active;
        pump_transfers(*instp, *statep);
        item_done(*instp, *statep, item);
      });
    }
  }

  void item_done(Campaign& inst, StageState& state, int item) {
    state.done[static_cast<std::size_t>(item)] = 1;
    ++state.done_count;
    const int items = static_cast<int>(state.done.size());
    // Propagate readiness along outgoing edges.
    for (const auto& down : config_.graph.downstream(state.spec->name)) {
      auto& dstate = inst.stages.at(down);
      const auto mode = config_.graph.edge_mode(state.spec->name, down);
      if (mode == EdgeMode::kStreaming) {
        satisfy(inst, dstate, item);
      } else if (state.done_count == items) {
        for (int i = 0; i < items; ++i) satisfy(inst, dstate, i);
      }
    }
    if (--inst.remaining == 0) inst.finished_at = engine_.now();
  }

  void satisfy(Campaign& inst, StageState& state, int item) {
    if (++state.inputs_satisfied[static_cast<std::size_t>(item)] ==
        state.needed_inputs)
      item_ready(inst, state, item);
  }

  LabConfig config_;
  sim::SimEngine engine_;
  std::vector<std::unique_ptr<compute::ClusterExecutor>> executors_;
  std::vector<std::unique_ptr<sim::FlowLink>> wan_;
  std::vector<std::unique_ptr<Campaign>> campaigns_;
  std::map<std::string, double, std::less<>> wan_in_flight_;
};

}  // namespace

LabResult run_lab(const LabConfig& config) { return Lab(config).run(); }

std::string results_to_json(const std::vector<LabResult>& results) {
  util::JsonWriter w;
  w.begin_object();
  w.field("schema", "mfw.policies/v1", "\n  ");
  w.field("workflow", results.empty() ? "" : results.front().workflow,
          "\n  ");
  w.key("results", "\n  ").begin_array();
  for (const auto& r : results) {
    w.item("\n    ").begin_object();
    w.field("policy", r.policy);
    w.field("facilities", r.facilities);
    w.field("load", r.load);
    w.field("campaigns", r.campaigns);
    w.field("items", r.items_per_campaign);
    w.field("makespan", r.makespan);
    w.field("utilization", r.utilization);
    w.field("mean_queue_wait", r.mean_queue_wait);
    w.field("p99_queue_wait", r.p99_queue_wait);
    w.field("tasks", r.tasks);
    w.field("deadline_misses", r.deadline_misses);
    w.field("slo_rules", r.slo_rules);
    w.field("slo_alerts", r.slo_alerts);
    w.field("slo_firing", r.slo_firing);
    w.end_object();
  }
  w.end_array("\n  ").raw("\n").end_object().raw("\n");
  return w.take();
}

}  // namespace mfw::spec
