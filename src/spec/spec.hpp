// Declarative workflow specifications (ROADMAP item 4).
//
// The paper hand-wires one EO-ML pipeline; the declarative-workflow line of
// related work (Dflow; "From Specification to Execution") argues the durable
// artifact is a *spec* compiled onto an execution engine, with scheduling as
// a swappable policy rather than baked-in control flow. mfw::spec is that
// layer: a YAML document (util::yamlite) describing
//
//   stages:    named units of work with per-stage resource claims (nodes x
//              workers, WAN bandwidth, a walltime model) and declared inputs
//   dataflow:  per-edge coupling — barrier (downstream waits for the whole
//              upstream stage) vs streaming (per-item handoff)
//   campaign:  how many concurrent instances of the workflow run, their
//              arrival spacing, items per instance, and a deadline
//
// validated into a typed DAG (StageGraph): duplicate-stage, unknown-input,
// cycle, undeclared-dataflow-edge, and claim-vs-facility-capacity checks,
// each anchored to the offending YAML line. The compiled graph then runs on
// the existing sim/compute/flow substrate (spec::CampaignLab, and the paper
// pipeline itself via pipeline::spec_for_config).
#pragma once

#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/watch.hpp"
#include "util/yamlite.hpp"

namespace mfw::spec {

/// Validation error anchored to the YAML source line of the offending
/// element ("spec:<line>: ..."); line 0 (programmatically built specs)
/// drops the anchor ("spec: ...").
class SpecError : public std::runtime_error {
 public:
  SpecError(std::size_t line, const std::string& what)
      : std::runtime_error(line > 0
                               ? "spec:" + std::to_string(line) + ": " + what
                               : "spec: " + what),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Per-edge coupling, mirroring pipeline::SchedulingMode at spec level.
enum class EdgeMode { kBarrier, kStreaming };

const char* to_string(EdgeMode mode);

/// What a stage asks of the facility. The walltime model is linear:
/// processing one item costs cpu_seconds_per_item exclusive CPU plus
/// shared_demand_per_item on the node's contended substrate; transfer
/// stages move bytes_per_item over the WAN instead.
struct ResourceClaim {
  int nodes = 1;
  int workers_per_node = 1;
  /// WAN bandwidth this stage claims while active (bytes/s; 0 = no claim).
  double wan_bps = 0.0;
  double cpu_seconds_per_item = 0.0;
  double shared_demand_per_item = 0.0;
  double bytes_per_item = 0.0;
  std::size_t line = 0;  // YAML anchor for capacity errors
};

struct StageSpec {
  std::string name;
  /// "compute" (task farm) or "transfer" (WAN flow per item).
  std::string kind = "compute";
  /// Upstream stages whose output this stage consumes: the DAG edges.
  std::vector<std::string> inputs;
  ResourceClaim claim;
  std::size_t line = 0;
};

struct EdgeSpec {
  std::string from;
  std::string to;
  EdgeMode mode = EdgeMode::kBarrier;
  std::size_t line = 0;
};

/// One entry of the spec's `slo:` list — a declared service-level objective
/// the watch layer (obs::HealthMonitor, DESIGN.md §12) evaluates online.
/// Metric names use the obs::SloMetric vocabulary: p99_latency,
/// queue_wait_p99, deadline_miss_rate, utilization_floor, wan_retry_budget.
struct SloSpec {
  std::string name;
  /// Stage the objective watches; empty (and required so) for the
  /// workflow-wide deadline_miss_rate metric.
  std::string stage;
  std::string metric = "p99_latency";
  double threshold = 0.0;
  /// Evaluation window in seconds.
  double window_s = 60.0;
  std::size_t line = 0;
};

struct CampaignSpec {
  /// Concurrent workflow instances competing for the facility.
  int count = 1;
  /// Inter-arrival spacing between instance starts (seconds).
  double arrival_spacing = 0.0;
  /// Work items (granules) per instance.
  int items = 40;
  /// Per-instance completion deadline relative to its arrival (seconds);
  /// infinity = none. Feeds deadline-aware scheduling.
  double deadline = std::numeric_limits<double>::infinity();
  std::size_t line = 0;
};

struct WorkflowSpec {
  std::string name = "workflow";
  std::vector<StageSpec> stages;
  /// Per-edge mode overrides; edges not listed default to barrier.
  std::vector<EdgeSpec> dataflow;
  CampaignSpec campaign;
  /// Declared service-level objectives (may be empty).
  std::vector<SloSpec> slo;

  /// Parses the YAML shape documented in DESIGN.md §11. Structural errors
  /// throw SpecError anchored at the offending line; semantic validation
  /// happens in StageGraph::compile.
  static WorkflowSpec from_yaml(const util::YamlNode& root);
  static WorkflowSpec from_yaml_text(std::string_view text);
};

/// Parses a `slo:` list node (shared by WorkflowSpec::from_yaml and the
/// pipeline config's top-level `slo:` section). Metric names and windows are
/// checked here, anchored at the offending line; stage references are
/// resolved later by StageGraph::compile.
std::vector<SloSpec> parse_slo_list(const util::YamlNode& node);

/// Converts validated SLO specs into the watch layer's rule type.
std::vector<obs::SloRule> health_rules(const WorkflowSpec& spec);

/// The slice of a facility the validator checks claims against. Neutral
/// struct (no federation dependency); federation::FacilityProfile converts
/// trivially.
struct FacilityCaps {
  std::string name = "olcf_defiant";
  int total_nodes = 36;
  int max_workers_per_node = 64;
  double wan_bps = 23.5 * 1024 * 1024;
};

/// A validated, topologically ordered workflow DAG.
class StageGraph {
 public:
  /// Validates `spec` against `caps` and builds the DAG. Throws SpecError
  /// (line-anchored) on: duplicate stage name, unknown input stage, cycle,
  /// dataflow edge not matching a declared input, claim exceeding facility
  /// capacity.
  static StageGraph compile(const WorkflowSpec& spec,
                            const FacilityCaps& caps);

  const WorkflowSpec& spec() const { return spec_; }
  const FacilityCaps& caps() const { return caps_; }

  /// Stage names in topological (dependency-respecting) order; stable with
  /// respect to declaration order among independent stages.
  const std::vector<std::string>& topo_order() const { return topo_; }

  const StageSpec& stage(std::string_view name) const;
  bool has_stage(std::string_view name) const;

  /// Mode of the edge from -> to (declared input). Defaults to barrier when
  /// no dataflow override names the edge; throws SpecError if the edge does
  /// not exist.
  EdgeMode edge_mode(std::string_view from, std::string_view to) const;

  /// Stages that consume `name`'s output, in declaration order.
  std::vector<std::string> downstream(std::string_view name) const;

  /// Human-readable compiled plan (stages in topo order, edges with modes,
  /// claims, campaign) for `mfwctl plan`.
  std::string describe() const;

 private:
  WorkflowSpec spec_;
  FacilityCaps caps_;
  std::vector<std::string> topo_;
};

}  // namespace mfw::spec
