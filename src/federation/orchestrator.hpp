// Cross-facility campaign orchestrator (the Zambeze-flavoured layer of
// paper §V-A: "remote configuration, invocation, and monitoring of workflow
// components" across facilities).
//
// A campaign is a set of independent day-jobs (one EO-ML workflow each).
// The orchestrator brokers each job to one of the federated facilities
// using a placement policy, applies that facility's profile to the job's
// configuration, runs the workflows, and aggregates a campaign report.
//
// Facilities process their assigned jobs sequentially (a facility's
// partition is busy while a job runs); different facilities run in
// parallel. The campaign makespan is therefore the slowest facility's
// queue — exactly the quantity a broker minimizes.
#pragma once

#include <functional>
#include <vector>

#include "federation/facility_profile.hpp"
#include "federation/registry.hpp"

namespace mfw::federation {

enum class PlacementPolicy {
  kRoundRobin,
  /// Assign each job to the facility with the least accumulated busy time,
  /// estimating job cost from granule count / facility throughput.
  kLeastLoaded,
};

struct CampaignJob {
  std::string pipeline;        // registry template name
  std::string overrides_yaml;  // per-job overrides (day span etc.)
};

struct JobOutcome {
  std::string facility;
  int day = 0;
  double started_at = 0.0;   // campaign-relative virtual time
  double finished_at = 0.0;
  std::size_t granules = 0;
  std::size_t tiles = 0;
  std::size_t shipped_files = 0;
  double makespan = 0.0;     // the job's own workflow makespan
};

struct CampaignReport {
  std::vector<JobOutcome> jobs;
  double campaign_makespan = 0.0;  // slowest facility queue
  std::size_t total_tiles = 0;
  std::size_t total_files = 0;

  /// Busy time accumulated per facility, in job order.
  std::vector<std::pair<std::string, double>> facility_busy_time;
};

class CampaignOrchestrator {
 public:
  CampaignOrchestrator(const PipelineRegistry& registry,
                       std::vector<FacilityProfile> facilities,
                       PlacementPolicy policy = PlacementPolicy::kLeastLoaded);

  /// Runs all jobs; `on_job` (optional) observes each outcome as it lands.
  CampaignReport run(const std::vector<CampaignJob>& jobs,
                     const std::function<void(const JobOutcome&)>& on_job = nullptr);

  const std::vector<FacilityProfile>& facilities() const { return facilities_; }

 private:
  std::size_t place(const std::vector<double>& busy, std::size_t job_index) const;

  const PipelineRegistry& registry_;
  std::vector<FacilityProfile> facilities_;
  PlacementPolicy policy_;
};

}  // namespace mfw::federation
