// Pipeline registry: the "federated pipeline-as-a-service" of paper §V-A —
// "a shareable and publicly accessible repository of complete workflows or
// individual workflow steps, which can be customized with various
// components".
//
// A registry entry is a named, documented EO-ML configuration template
// (YAML). Users instantiate a template, optionally deep-merging override
// YAML on top (util::merge_yaml), and receive a validated EomlConfig —
// which "minimizes access barriers": a scientist reuses a vetted pipeline
// by name and only states what differs.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pipeline/config.hpp"

namespace mfw::federation {

struct PipelineEntry {
  std::string name;
  std::string description;
  std::string yaml;  // the configuration template
};

class PipelineRegistry {
 public:
  /// Registers (or replaces) a template. Throws util::YamlError if the
  /// template does not parse into a valid EomlConfig.
  void publish(PipelineEntry entry);

  bool has(std::string_view name) const;
  const PipelineEntry& entry(std::string_view name) const;
  std::vector<std::string> names() const;
  std::size_t size() const { return entries_.size(); }

  /// Instantiates a template, deep-merging `overrides_yaml` (may be empty)
  /// onto it. Throws for unknown names or invalid merged configurations.
  pipeline::EomlConfig instantiate(std::string_view name,
                                   std::string_view overrides_yaml = {}) const;

  /// Registers the built-in community templates (aicca-daily,
  /// aicca-scaling, aicca-streaming-batch).
  void publish_builtin();

 private:
  std::map<std::string, PipelineEntry, std::less<>> entries_;
};

}  // namespace mfw::federation
