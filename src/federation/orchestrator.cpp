#include "federation/orchestrator.hpp"

#include <algorithm>
#include <stdexcept>

#include "pipeline/eoml_workflow.hpp"
#include "util/log.hpp"

namespace mfw::federation {

namespace {
constexpr const char* kComponent = "campaign";
}

CampaignOrchestrator::CampaignOrchestrator(
    const PipelineRegistry& registry, std::vector<FacilityProfile> facilities,
    PlacementPolicy policy)
    : registry_(registry), facilities_(std::move(facilities)), policy_(policy) {
  if (facilities_.empty())
    throw std::invalid_argument("campaign needs >= 1 facility");
}

std::size_t CampaignOrchestrator::place(const std::vector<double>& busy,
                                        std::size_t job_index) const {
  switch (policy_) {
    case PlacementPolicy::kRoundRobin:
      return job_index % facilities_.size();
    case PlacementPolicy::kLeastLoaded: {
      std::size_t best = 0;
      for (std::size_t f = 1; f < facilities_.size(); ++f) {
        if (busy[f] < busy[best]) best = f;
      }
      return best;
    }
  }
  return 0;
}

CampaignReport CampaignOrchestrator::run(
    const std::vector<CampaignJob>& jobs,
    const std::function<void(const JobOutcome&)>& on_job) {
  CampaignReport report;
  std::vector<double> busy(facilities_.size(), 0.0);

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const std::size_t f = place(busy, j);
    const FacilityProfile& facility = facilities_[f];

    pipeline::EomlConfig config =
        registry_.instantiate(jobs[j].pipeline, jobs[j].overrides_yaml);
    facility.apply(config);

    pipeline::EomlWorkflow workflow(config);
    const auto wf_report = workflow.run();

    JobOutcome outcome;
    outcome.facility = facility.name;
    outcome.day = config.span.first_day;
    outcome.started_at = busy[f];
    outcome.finished_at = busy[f] + wf_report.makespan;
    outcome.granules = wf_report.granules;
    outcome.tiles = wf_report.total_tiles;
    outcome.shipped_files = wf_report.shipped_files;
    outcome.makespan = wf_report.makespan;
    busy[f] = outcome.finished_at;

    report.total_tiles += outcome.tiles;
    report.total_files += outcome.shipped_files;
    MFW_INFO(kComponent, "job ", j, " (day ", outcome.day, ") on ",
             outcome.facility, ": ", outcome.tiles, " tiles in ",
             outcome.makespan, "s");
    if (on_job) on_job(outcome);
    report.jobs.push_back(std::move(outcome));
  }

  for (std::size_t f = 0; f < facilities_.size(); ++f) {
    report.facility_busy_time.emplace_back(facilities_[f].name, busy[f]);
    report.campaign_makespan = std::max(report.campaign_makespan, busy[f]);
  }
  return report;
}

}  // namespace mfw::federation
