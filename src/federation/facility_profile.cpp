#include "federation/facility_profile.hpp"

#include <algorithm>

namespace mfw::federation {

FacilityProfile FacilityProfile::olcf_defiant() {
  FacilityProfile profile;
  profile.name = "OLCF-Defiant";
  return profile;  // defaults are the Defiant calibration
}

FacilityProfile FacilityProfile::nersc_perlmutter_like() {
  FacilityProfile profile;
  profile.name = "NERSC-Perlmutter-like";
  profile.total_nodes = 64;
  profile.default_workers_per_node = 8;
  profile.scheduler_latency = 2.5;
  profile.node_r_max = 34.0;
  profile.node_tau = 3.6;
  profile.archive_bandwidth_bps = 40.0 * 1024 * 1024;
  profile.analysis_link_bps = 0.8 * 1024 * 1024 * 1024;
  return profile;
}

FacilityProfile FacilityProfile::alcf_polaris_like() {
  FacilityProfile profile;
  profile.name = "ALCF-Polaris-like";
  profile.total_nodes = 24;
  profile.default_workers_per_node = 16;
  profile.scheduler_latency = 4.0;  // PBS-flavoured grant latency
  profile.node_r_max = 44.0;
  profile.node_tau = 2.8;
  profile.archive_bandwidth_bps = 30.0 * 1024 * 1024;
  profile.analysis_link_bps = 0.6 * 1024 * 1024 * 1024;
  return profile;
}

FacilityProfile FacilityProfile::from_yaml(const util::YamlNode& node) {
  FacilityProfile profile;
  profile.name = node["name"].as_string_or(profile.name);
  profile.total_nodes =
      static_cast<int>(node["total_nodes"].as_int_or(profile.total_nodes));
  profile.default_workers_per_node = static_cast<int>(
      node["workers_per_node"].as_int_or(profile.default_workers_per_node));
  profile.scheduler_latency =
      node["scheduler_latency"].as_double_or(profile.scheduler_latency);
  profile.node_r_max = node["node_r_max"].as_double_or(profile.node_r_max);
  profile.node_tau = node["node_tau"].as_double_or(profile.node_tau);
  if (node.has("archive_bandwidth"))
    profile.archive_bandwidth_bps =
        static_cast<double>(node["archive_bandwidth"].as_bytes());
  if (node.has("analysis_link"))
    profile.analysis_link_bps =
        static_cast<double>(node["analysis_link"].as_bytes());
  if (profile.total_nodes <= 0 || profile.default_workers_per_node <= 0 ||
      !(profile.node_r_max > 0) || !(profile.node_tau > 0))
    throw util::YamlError("facility profile: invalid parameters for '" +
                          profile.name + "'");
  return profile;
}

void FacilityProfile::apply(pipeline::EomlConfig& config) const {
  config.facility_total_nodes = total_nodes;
  config.slurm_latency = scheduler_latency;
  config.node_r_max = node_r_max;
  config.node_tau = node_tau;
  config.wan_capacity_bps = archive_bandwidth_bps;
  config.facility_link_bps = analysis_link_bps;
  config.preprocess_nodes = std::min(config.preprocess_nodes, total_nodes);
  if (config.workers_per_node <= 0)
    config.workers_per_node = default_workers_per_node;
}

}  // namespace mfw::federation
