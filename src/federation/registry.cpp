#include "federation/registry.hpp"

#include <stdexcept>

namespace mfw::federation {

void PipelineRegistry::publish(PipelineEntry entry) {
  if (entry.name.empty())
    throw std::invalid_argument("pipeline entry needs a name");
  // Validate eagerly: a broken template must not enter the shared registry.
  (void)pipeline::EomlConfig::from_yaml_text(entry.yaml);
  entries_.insert_or_assign(entry.name, std::move(entry));
}

bool PipelineRegistry::has(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

const PipelineEntry& PipelineRegistry::entry(std::string_view name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::invalid_argument("no pipeline named '" + std::string(name) + "'");
  return it->second;
}

std::vector<std::string> PipelineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

pipeline::EomlConfig PipelineRegistry::instantiate(
    std::string_view name, std::string_view overrides_yaml) const {
  const auto& tpl = entry(name);
  util::YamlNode merged = util::parse_yaml(tpl.yaml);
  if (!overrides_yaml.empty())
    merged = util::merge_yaml(merged, util::parse_yaml(overrides_yaml));
  return pipeline::EomlConfig::from_yaml(merged);
}

void PipelineRegistry::publish_builtin() {
  publish(PipelineEntry{
      "aicca-daily",
      "One day of Terra ocean-cloud tiles, labelled and shipped to Orion "
      "(the paper's production configuration).",
      R"(
workflow:
  satellite: Terra
  products: [MOD02, MOD03, MOD06]
  span: {year: 2022, first_day: 1}
  daytime_only: true
download:   {workers: 3}
preprocess: {nodes: 10, workers_per_node: 8, tile_size: 128, min_cloud_fraction: 0.3}
monitor:    {poll_interval: 1.0}
inference:  {workers: 1}
shipment:   {streams: 4}
)"});
  publish(PipelineEntry{
      "aicca-scaling",
      "The benchmarking configuration of §IV: capped file count, MOD02 only "
      "download accounting, static allocation.",
      R"(
workflow:
  satellite: Terra
  products: [MOD02, MOD03, MOD06]
  span: {year: 2022, first_day: 1}
  max_files: 80
  daytime_only: true
download:   {workers: 3}
preprocess: {nodes: 10, workers_per_node: 8}
inference:  {workers: 1}
)"});
  publish(PipelineEntry{
      "aicca-elastic",
      "Elastic-block variant: Parsl-style blocks scale with queue depth "
      "(the dynamic allocation of Fig. 6).",
      R"(
workflow:
  satellite: Terra
  products: [MOD02, MOD03, MOD06]
  span: {year: 2022, first_day: 1}
  max_files: 40
  daytime_only: true
preprocess:
  elastic: true
  block: {nodes_per_block: 1, init_blocks: 1, max_blocks: 8, idle_timeout: 10}
  workers_per_node: 8
)"});
}

}  // namespace mfw::federation
