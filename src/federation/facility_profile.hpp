// Facility profiles for cross-facility orchestration (paper §V-A).
//
// "The workflow orchestration across DOE computing facilities (OLCF, NERSC,
// ALCF) is fragmented, with each using different systems. To achieve
// interoperability, our strategy involves aligning these systems for
// seamless data and resource sharing." — a FacilityProfile is that
// alignment: everything the workflow needs to know to run its compute
// stages at a facility (partition size, scheduler latency, node contention
// calibration, network reach). Built-in profiles model the three IRI
// facilities the paper names; additional facilities load from YAML.
#pragma once

#include <string>

#include "pipeline/config.hpp"
#include "util/yamlite.hpp"

namespace mfw::federation {

struct FacilityProfile {
  std::string name = "facility";
  /// Batch-partition size available to the workflow.
  int total_nodes = 36;
  int default_workers_per_node = 8;
  /// Scheduler grant latency (differs per batch system — Slurm, PBS, ...).
  double scheduler_latency = 1.5;
  /// Node contention-law calibration (saturating-exponential).
  double node_r_max = 38.5;
  double node_tau = 3.1;
  /// Archive -> facility effective throughput (bytes/s).
  double archive_bandwidth_bps = 23.5 * 1024 * 1024;
  /// Facility -> analysis-site (Frontier/Orion) link (bytes/s).
  double analysis_link_bps = 1.2 * 1024 * 1024 * 1024;

  /// The OLCF ACE Defiant testbed (the paper's measured system).
  static FacilityProfile olcf_defiant();
  /// A NERSC-Perlmutter-flavoured profile: bigger partition, slightly
  /// slower per-node substrate saturation, faster WAN (ESnet-adjacent).
  static FacilityProfile nersc_perlmutter_like();
  /// An ALCF-Polaris-flavoured profile: PBS-like slower scheduling, fewer
  /// nodes, higher per-node ceiling.
  static FacilityProfile alcf_polaris_like();

  static FacilityProfile from_yaml(const util::YamlNode& node);

  /// Applies this profile's facility characteristics onto a pipeline
  /// configuration (clamping node requests to the partition size).
  void apply(pipeline::EomlConfig& config) const;
};

}  // namespace mfw::federation
