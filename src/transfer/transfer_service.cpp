#include "transfer/transfer_service.hpp"

#include <stdexcept>

#include "util/crc32.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace mfw::transfer {

namespace {
constexpr const char* kComponent = "transfer";
}

TransferService::TransferService(sim::SimEngine& engine, sim::FlowLink& link)
    : engine_(engine), link_(link) {}

TransferTaskId TransferService::submit(TransferRequest request,
                                       EventCallback on_event) {
  if (!request.source || !request.destination)
    throw std::invalid_argument("TransferRequest needs source + destination");
  if (request.parallel_streams <= 0)
    throw std::invalid_argument("TransferRequest needs >= 1 stream");

  std::vector<std::string> paths = request.paths;
  if (paths.empty()) {
    if (request.pattern.empty())
      throw std::invalid_argument("TransferRequest needs paths or a pattern");
    for (const auto& info : request.source->list(request.pattern))
      paths.push_back(info.path);
  }
  if (paths.empty())
    throw std::invalid_argument("TransferRequest matched no files");

  const TransferTaskId id{next_id_++};
  Task task;
  task.request = std::move(request);
  task.on_event = std::move(on_event);
  task.pending = std::move(paths);
  task.status.total_files = task.pending.size();
  task.status.started_at = engine_.now();
  for (const auto& path : task.pending)
    task.status.total_bytes += task.request.source->file_size(path);
  auto [it, inserted] = tasks_.emplace(id.id, std::move(task));
  emit(it->second, id, TransferEventKind::kStarted);
  MFW_INFO(kComponent, "task ", id.id, ": ", it->second.status.total_files,
           " files queued to '", it->second.request.dest_prefix, "'");
  pump(id.id);
  return id;
}

const TransferTaskStatus& TransferService::status(TransferTaskId id) const {
  const auto it = tasks_.find(id.id);
  if (it == tasks_.end())
    throw std::invalid_argument("unknown transfer task id");
  return it->second.status;
}

void TransferService::pump(std::uint64_t task_id) {
  auto it = tasks_.find(task_id);
  if (it == tasks_.end()) return;
  Task& task = it->second;
  if (task.status.failed) return;
  while (task.in_flight < task.request.parallel_streams &&
         !task.pending.empty()) {
    const std::string path = task.pending.back();
    task.pending.pop_back();
    ++task.in_flight;
    move_file(task_id, path, /*attempt=*/1);
  }
  if (task.in_flight == 0 && task.pending.empty() &&
      task.status.done_files == task.status.total_files) {
    task.status.finished_at = engine_.now();
    emit(task, TransferTaskId{task_id}, TransferEventKind::kSucceeded);
    MFW_INFO(kComponent, "task ", task_id, " succeeded: ",
             task.status.done_files, " files");
  }
}

void TransferService::move_file(std::uint64_t task_id,
                                const std::string& src_path, int attempt) {
  Task& task = tasks_.at(task_id);
  std::uint64_t bytes = 0;
  try {
    bytes = task.request.source->file_size(src_path);
  } catch (const std::exception&) {
    // Fall through with a 1-byte flow; the read below reports the error.
  }
  // Zero-byte files move instantly; FlowLink requires positive sizes.
  const double flow_bytes = bytes > 0 ? static_cast<double>(bytes) : 1.0;
  link_.start_flow(
      flow_bytes, task.request.per_stream_cap_bps,
      [this, task_id, src_path, attempt](double /*mean_bps*/) {
        auto it = tasks_.find(task_id);
        if (it == tasks_.end()) return;
        Task& task = it->second;
        const TransferTaskId id{task_id};
        try {
          const auto data = task.request.source->read_file(src_path);
          const std::string dst_path = util::path_join(
              task.request.dest_prefix, util::path_basename(src_path));
          task.request.destination->write_file(dst_path, data);
          if (task.request.verify_checksum) {
            const auto landed = task.request.destination->read_file(dst_path);
            if (util::crc32(landed) != util::crc32(data))
              throw std::runtime_error("checksum mismatch on " + dst_path);
          }
          task.status.moved_bytes += data.size();
          ++task.status.done_files;
          --task.in_flight;
          emit(task, id, TransferEventKind::kFileDone, dst_path);
          pump(task_id);
        } catch (const std::exception& e) {
          if (attempt <= task.request.max_retries) {
            ++task.status.retries;
            MFW_WARN(kComponent, "task ", task_id, ": retrying ", src_path,
                     " (attempt ", attempt + 1, "): ", e.what());
            move_file(task_id, src_path, attempt + 1);
            return;
          }
          task.status.failed = true;
          task.status.finished_at = engine_.now();
          --task.in_flight;
          emit(task, id, TransferEventKind::kFailed, src_path, e.what());
          MFW_ERROR(kComponent, "task ", task_id, " failed: ", e.what());
        }
      });
}

void TransferService::emit(Task& task, TransferTaskId id,
                           TransferEventKind kind, const std::string& path,
                           const std::string& message) {
  if (!task.on_event) return;
  TransferEvent event;
  event.kind = kind;
  event.task = id;
  event.time = engine_.now();
  event.path = path;
  event.message = message;
  task.on_event(event);
}

}  // namespace mfw::transfer
