// TransferService: the workflow's "(5) Shipment" stage — a Globus-Transfer-
// like bulk data mover between facility endpoints.
//
// A transfer task names a set of files on a source filesystem and a
// destination prefix on another facility's filesystem. Files move as flows
// over the inter-facility link with a configurable number of parallel
// streams (per-task concurrency), bytes are actually copied between the two
// FileSystem objects, and integrity is verified end-to-end with CRC32 —
// mirroring Globus Transfer's checksum verification. Listeners receive
// lifecycle events (started / per-file / succeeded / failed).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/link.hpp"
#include "storage/filesystem.hpp"

namespace mfw::transfer {

struct TransferTaskId {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

struct TransferRequest {
  storage::FileSystem* source = nullptr;
  storage::FileSystem* destination = nullptr;
  /// Explicit paths; if empty, `pattern` selects source files (glob).
  std::vector<std::string> paths;
  std::string pattern;
  /// Destination directory; basenames are preserved.
  std::string dest_prefix;
  /// Concurrent file streams for this task.
  int parallel_streams = 4;
  /// Verify CRC32 of every file after landing (Globus checksum mode).
  bool verify_checksum = true;
  /// Per-stream throughput ceiling (bytes/s) on the shared link.
  double per_stream_cap_bps = 300.0 * 1024 * 1024;
  /// Retries per file on I/O or checksum failure before the task fails
  /// (Globus Transfer's faults-and-retries behaviour).
  int max_retries = 2;
};

enum class TransferEventKind { kStarted, kFileDone, kSucceeded, kFailed };

struct TransferEvent {
  TransferEventKind kind;
  TransferTaskId task;
  double time = 0.0;
  std::string path;     // for kFileDone
  std::string message;  // for kFailed
};

struct TransferTaskStatus {
  std::size_t total_files = 0;
  std::size_t done_files = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t moved_bytes = 0;
  std::size_t retries = 0;
  double started_at = 0.0;
  double finished_at = 0.0;
  bool failed = false;
};

class TransferService {
 public:
  /// `link` is the inter-facility network path (e.g. Defiant -> Orion).
  TransferService(sim::SimEngine& engine, sim::FlowLink& link);

  using EventCallback = std::function<void(const TransferEvent&)>;

  /// Validates and starts a transfer task. Throws std::invalid_argument on a
  /// malformed request (missing endpoints / no matching files).
  TransferTaskId submit(TransferRequest request, EventCallback on_event);

  const TransferTaskStatus& status(TransferTaskId id) const;

 private:
  struct Task {
    TransferRequest request;
    EventCallback on_event;
    std::vector<std::string> pending;  // source paths not yet started
    TransferTaskStatus status;
    int in_flight = 0;
  };

  void pump(std::uint64_t task_id);
  void move_file(std::uint64_t task_id, const std::string& src_path,
                 int attempt);
  void emit(Task& task, TransferTaskId id, TransferEventKind kind,
            const std::string& path = {}, const std::string& message = {});

  sim::SimEngine& engine_;
  sim::FlowLink& link_;
  std::map<std::uint64_t, Task> tasks_;
  std::uint64_t next_id_ = 1;
};

}  // namespace mfw::transfer
