// DownloadService: the workflow's "(1) Data download" stage.
//
// Models the remotely executable Globus Compute function of the paper: a
// pool of download workers pulls granule-file tasks for the configured
// products/time span from the LAADS-like archive and writes them to the
// facility filesystem. Each worker holds one HTTPS connection whose
// throughput is sampled per file (lognormal) and capped by the shared WAN
// link (max-min fair sharing) — this produces Fig. 3's behaviour: more
// workers raise aggregate speed by a few MB/s except for single-file
// downloads, where connection setup overhead dominates.
//
// "If a worker completes its download task and additional time spans are
// queued, it automatically begins the next task. If no further tasks are
// available, the worker gracefully terminates." — reproduced verbatim by the
// worker loop below.
#pragma once

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "flow/event_bus.hpp"
#include "modis/catalog.hpp"
#include "obs/trace.hpp"
#include "sim/link.hpp"
#include "storage/filesystem.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mfw::transfer {

struct DownloadConfig {
  int workers = 3;
  std::vector<modis::ProductKind> products = {modis::ProductKind::kMod02,
                                              modis::ProductKind::kMod03,
                                              modis::ProductKind::kMod06};
  modis::Satellite satellite = modis::Satellite::kTerra;
  modis::DaySpan span{};
  /// Directory prefix on the destination filesystem.
  std::string dest_prefix = "staging";
  /// Cap on files per product (chronological prefix); for benchmarks that
  /// sweep download sizes.
  std::optional<std::size_t> max_files_per_product;
  /// Skip night granules (the AICCA pipeline only tiles daytime MOD02).
  bool daytime_only = false;

  // -- network model ---------------------------------------------------------
  /// Median single-connection HTTPS throughput (bytes/s).
  double per_connection_median_bps = 7.5 * 1024 * 1024;
  /// Log-space sigma of per-file connection throughput.
  double per_connection_sigma = 0.22;
  /// Per-file request/handshake overhead (seconds).
  double request_overhead = 0.6;
  /// Globus Compute endpoint worker launch time (part of Fig. 7's 5.63 s).
  double endpoint_launch = 3.4;
  /// LAADS catalog listing time (rest of the 5.63 s launch latency).
  double listing_latency = 2.2;

  // -- resilience ------------------------------------------------------------
  /// Probability that a download attempt fails mid-transfer (connection
  /// reset, HTTP 5xx); the worker retries with backoff.
  double transient_failure_rate = 0.0;
  /// Maximum attempts per file (>= 1). A file that exhausts its attempts is
  /// recorded in DownloadReport::failed and skipped.
  int max_attempts = 4;
  /// Base retry backoff in seconds (scaled by the attempt number).
  double retry_backoff = 1.5;

  // -- content materialization ----------------------------------------------
  /// When true, downloaded files contain real hdfl granule bytes at
  /// `geometry` (needed when preprocessing/inference will actually read
  /// them); otherwise a small stub record is written and only the *timing*
  /// uses the catalog byte size.
  bool materialize = false;
  modis::GranuleGeometry geometry = modis::kSmallGeometry;

  std::uint64_t seed = 7;
};

struct DownloadedFile {
  modis::GranuleId id;
  std::string path;
  std::uint64_t bytes = 0;
  double started_at = 0.0;
  double finished_at = 0.0;
  double mean_bps = 0.0;  // effective per-file throughput incl. overheads
  int attempts = 1;       // 1 = clean first try
};

struct DownloadReport {
  double started_at = 0.0;
  /// Workers launched + catalog listed (start of actual transfers).
  double transfers_started_at = 0.0;
  double finished_at = 0.0;
  std::vector<DownloadedFile> files;
  std::uint64_t total_bytes = 0;
  /// Total retry attempts across all files.
  std::size_t retries = 0;
  /// Files abandoned after max_attempts.
  std::vector<modis::GranuleId> failed;

  double launch_latency() const { return transfers_started_at - started_at; }
  double elapsed() const { return finished_at - started_at; }
  /// Aggregate throughput over the transfer phase (bytes/s).
  double aggregate_bps() const;
  /// Mean of per-file throughputs (the paper's Fig. 3 metric).
  double mean_file_bps() const;
  double stddev_file_bps() const;
};

class DownloadService {
 public:
  /// All references must outlive the service. `wan` is the shared
  /// LAADS->facility link.
  DownloadService(sim::SimEngine& engine, const modis::ArchiveService& archive,
                  sim::FlowLink& wan, storage::FileSystem& destination,
                  DownloadConfig config);

  using FileObserver = std::function<void(const DownloadedFile&)>;

  /// Attaches a bus for per-file completion events: every stored file is
  /// published as a typed flow::FileEvent on flow::topics::kDownloadFile and
  /// every abandoned file on flow::topics::kDownloadFailed. This is the
  /// event contract the streaming scheduler consumes (via GranuleTracker);
  /// the terminal report remains the stage summary. Call before start().
  void set_event_bus(flow::EventBus* bus) { bus_ = bus; }

  /// Registers a typed in-process observer invoked synchronously as each
  /// file is stored (before the bus event is published). Call before
  /// start().
  void set_file_observer(FileObserver observer) {
    file_observer_ = std::move(observer);
  }

  /// Starts the stage; `on_complete` fires (virtual time) when every file is
  /// stored. May be called once.
  void start(std::function<void(const DownloadReport&)> on_complete);

  /// (time, active download workers) transitions for Fig. 6 timelines.
  const std::vector<std::pair<double, int>>& activity() const {
    return activity_;
  }

  std::size_t queued() const { return next_task_ >= tasks_.size()
                                          ? 0
                                          : tasks_.size() - next_task_; }

 private:
  void build_task_list();
  void worker_loop(int worker);
  void attempt_download(int worker, const modis::CatalogEntry& entry,
                        int attempt, double first_started_at);
  void store_file(const modis::CatalogEntry& entry, double first_started_at,
                  int attempt);
  void record_activity();
  /// Opens the per-file obs span on the worker's track (no-op when tracing
  /// is disabled).
  void begin_file_span(int worker, const modis::CatalogEntry& entry);
  /// Closes the worker's open file span, stamping outcome + attempt count.
  void end_file_span(int worker, const char* status, int attempt);

  sim::SimEngine& engine_;
  const modis::ArchiveService& archive_;
  sim::FlowLink& wan_;
  storage::FileSystem& destination_;
  DownloadConfig config_;
  util::Rng rng_;

  std::vector<modis::CatalogEntry> tasks_;
  std::size_t next_task_ = 0;
  int active_workers_ = 0;
  int finished_workers_ = 0;
  bool started_ = false;
  DownloadReport report_;
  std::function<void(const DownloadReport&)> on_complete_;
  std::vector<std::pair<double, int>> activity_;
  flow::EventBus* bus_ = nullptr;
  FileObserver file_observer_;
  /// Open per-file obs span per worker (all invalid while tracing is off).
  std::vector<obs::SpanId> worker_spans_;
};

}  // namespace mfw::transfer
