#include "transfer/download.hpp"

#include <algorithm>
#include <stdexcept>

#include "flow/events.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace mfw::transfer {

namespace {
constexpr const char* kComponent = "download";
/// Per-file download durations dominated by the WAN window (Fig. 3: tens of
/// seconds to a few minutes at 3 workers).
constexpr obs::HistogramSpec kFileSecondsSpec{0.0, 120.0, 24};
}

double DownloadReport::aggregate_bps() const {
  const double window = finished_at - transfers_started_at;
  if (window <= 0) return 0.0;
  return static_cast<double>(total_bytes) / window;
}

double DownloadReport::mean_file_bps() const {
  util::StreamingStats stats;
  for (const auto& f : files) stats.add(f.mean_bps);
  return stats.mean();
}

double DownloadReport::stddev_file_bps() const {
  util::StreamingStats stats;
  for (const auto& f : files) stats.add(f.mean_bps);
  return stats.stddev();
}

DownloadService::DownloadService(sim::SimEngine& engine,
                                 const modis::ArchiveService& archive,
                                 sim::FlowLink& wan,
                                 storage::FileSystem& destination,
                                 DownloadConfig config)
    : engine_(engine),
      archive_(archive),
      wan_(wan),
      destination_(destination),
      config_(std::move(config)),
      rng_(util::mix64(config_.seed, 0x0d0a11c3)) {
  if (config_.workers <= 0)
    throw std::invalid_argument("DownloadService needs >= 1 worker");
  if (config_.products.empty())
    throw std::invalid_argument("DownloadService needs >= 1 product");
}

void DownloadService::build_task_list() {
  for (const auto product : config_.products) {
    auto entries = archive_.list(product, config_.satellite, config_.span);
    if (config_.daytime_only) {
      std::erase_if(entries, [](const modis::CatalogEntry& e) {
        return !modis::is_daytime(e.id.satellite, e.id.slot, e.id.day_of_year);
      });
    }
    if (config_.max_files_per_product &&
        entries.size() > *config_.max_files_per_product) {
      entries.resize(*config_.max_files_per_product);
    }
    tasks_.insert(tasks_.end(), entries.begin(), entries.end());
  }
  // Interleave products chronologically so that each time step's MOD02/03/06
  // triplet lands close together (the preprocessing join wants all three).
  std::stable_sort(tasks_.begin(), tasks_.end(),
                   [](const modis::CatalogEntry& a, const modis::CatalogEntry& b) {
                     if (a.id.day_of_year != b.id.day_of_year)
                       return a.id.day_of_year < b.id.day_of_year;
                     return a.id.slot < b.id.slot;
                   });
}

void DownloadService::start(std::function<void(const DownloadReport&)> on_complete) {
  if (started_) throw std::logic_error("DownloadService::start called twice");
  started_ = true;
  on_complete_ = std::move(on_complete);
  report_.started_at = engine_.now();

  // Launch phase: start Globus Compute workers, connect to LAADS, list the
  // archive (Fig. 7's 5.63 s "download launch" latency).
  const double launch = config_.endpoint_launch + config_.listing_latency;
  engine_.schedule_after(launch, [this] {
    build_task_list();
    report_.transfers_started_at = engine_.now();
    MFW_INFO(kComponent, "listed ", tasks_.size(), " files after ",
             util::format_seconds(report_.transfers_started_at -
                                  report_.started_at),
             " launch latency");
    if (tasks_.empty()) {
      report_.finished_at = engine_.now();
      if (on_complete_) on_complete_(report_);
      return;
    }
    const int workers =
        std::min<int>(config_.workers, static_cast<int>(tasks_.size()));
    for (int w = 0; w < workers; ++w) {
      ++active_workers_;
      record_activity();
      worker_loop(w);
    }
  });
}

void DownloadService::worker_loop(int worker) {
  if (next_task_ >= tasks_.size()) {
    // "If no further tasks are available, the worker gracefully terminates."
    --active_workers_;
    ++finished_workers_;
    record_activity();
    if (active_workers_ == 0) {
      report_.finished_at = engine_.now();
      MFW_INFO(kComponent, "completed ", report_.files.size(), " files, ",
               util::format_bytes(report_.total_bytes), " in ",
               util::format_seconds(report_.elapsed()));
      if (on_complete_) on_complete_(report_);
    }
    return;
  }
  const modis::CatalogEntry entry = tasks_[next_task_++];
  begin_file_span(worker, entry);
  attempt_download(worker, entry, 1, engine_.now());
}

void DownloadService::begin_file_span(int worker,
                                      const modis::CatalogEntry& entry) {
  auto& rec = obs::TraceRecorder::instance();
  if (!rec.enabled()) return;
  if (worker_spans_.size() <= static_cast<std::size_t>(worker))
    worker_spans_.resize(worker + 1);
  worker_spans_[worker] = rec.begin_span(
      "download/w" + std::to_string(worker), "download", entry.id.filename(),
      {{"bytes", std::to_string(entry.size_bytes)},
       {"product",
        modis::product_short_name(entry.id.product, entry.id.satellite)},
       {"granule", flow::GranuleKey::of(entry.id).to_string()}});
}

void DownloadService::end_file_span(int worker, const char* status,
                                    int attempt) {
  if (worker_spans_.size() <= static_cast<std::size_t>(worker)) return;
  obs::SpanId& span = worker_spans_[worker];
  if (!span.valid()) return;
  obs::TraceRecorder::instance().end_span(
      span, {{"status", status}, {"attempts", std::to_string(attempt)}});
  span = {};
}

void DownloadService::attempt_download(int worker,
                                       const modis::CatalogEntry& entry,
                                       int attempt, double first_started_at) {
  // Per-file request/handshake overhead, then the body as a WAN flow capped
  // at this connection's sampled throughput.
  const double overhead =
      config_.request_overhead * (0.7 + 0.6 * rng_.uniform());
  const double conn_bps = rng_.lognormal_median(
      config_.per_connection_median_bps, config_.per_connection_sigma);

  if (rng_.bernoulli(config_.transient_failure_rate)) {
    // The connection dies partway through: time is lost for a fraction of
    // the body, then the worker backs off and retries (or gives up).
    const double wasted = overhead + rng_.uniform(0.1, 0.9) *
                                         static_cast<double>(entry.size_bytes) /
                                         conn_bps;
    if (attempt >= config_.max_attempts) {
      MFW_WARN(kComponent, "giving up on ", entry.id.filename(), " after ",
               attempt, " attempts");
      engine_.schedule_after(wasted, [this, worker, entry, attempt] {
        report_.failed.push_back(entry.id);
        end_file_span(worker, "failed", attempt);
        if (auto& metrics = obs::MetricsRegistry::instance();
            metrics.enabled()) {
          metrics.counter_add("mfw.download.failed_total", 1.0,
                              {{"stage", "download"}});
          obs::TraceRecorder::instance().instant(
              "download/w" + std::to_string(worker), "download",
              "download.failed", {{"file", entry.id.filename()}});
        }
        if (bus_) {
          flow::FileEvent event;
          event.id = entry.id;
          event.bytes = entry.size_bytes;
          event.finished_at = engine_.now();
          event.attempts = attempt;
          bus_->publish(flow::topics::kDownloadFailed, event.to_yaml());
        }
        worker_loop(worker);
      });
      return;
    }
    ++report_.retries;
    obs::MetricsRegistry::instance().counter_add("mfw.download.retries_total",
                                                 1.0);
    const double backoff = config_.retry_backoff * attempt;
    MFW_DEBUG(kComponent, "transient failure on ", entry.id.filename(),
              " (attempt ", attempt, "); retrying in ", backoff, "s");
    engine_.schedule_after(
        wasted + backoff, [this, worker, entry, attempt, first_started_at] {
          attempt_download(worker, entry, attempt + 1, first_started_at);
        });
    return;
  }

  engine_.schedule_after(
      overhead, [this, worker, entry, attempt, first_started_at, conn_bps] {
        wan_.start_flow(static_cast<double>(entry.size_bytes), conn_bps,
                        [this, worker, entry, attempt,
                         first_started_at](double /*flow_bps*/) {
                          store_file(entry, first_started_at, attempt);
                          end_file_span(worker, "ok", attempt);
                          worker_loop(worker);
                        });
      });
}

void DownloadService::store_file(const modis::CatalogEntry& entry,
                                 double first_started_at, int attempt) {
  const std::string path =
      util::path_join(config_.dest_prefix, entry.id.filename());
  if (config_.materialize) {
    destination_.write_file(path,
                            archive_.materialize(entry.id, config_.geometry));
  } else {
    // Stub record: id + nominal size (timing already accounted).
    destination_.write_text(path, "granule-stub " + entry.id.filename() +
                                      " bytes=" +
                                      std::to_string(entry.size_bytes) + "\n");
  }
  DownloadedFile done;
  done.id = entry.id;
  done.path = path;
  done.bytes = entry.size_bytes;
  done.started_at = first_started_at;
  done.finished_at = engine_.now();
  done.mean_bps = static_cast<double>(entry.size_bytes) /
                  std::max(done.finished_at - done.started_at, 1e-9);
  done.attempts = attempt;
  report_.total_bytes += entry.size_bytes;
  report_.files.push_back(std::move(done));

  const DownloadedFile& stored = report_.files.back();
  if (auto& metrics = obs::MetricsRegistry::instance(); metrics.enabled()) {
    const obs::Labels product_label = {
        {"product",
         modis::product_short_name(entry.id.product, entry.id.satellite)}};
    metrics.counter_add("mfw.download.bytes_total",
                        static_cast<double>(entry.size_bytes), product_label);
    metrics.counter_add("mfw.download.files_total", 1.0, product_label);
    metrics.observe("mfw.download.file_seconds",
                    stored.finished_at - stored.started_at, {},
                    kFileSecondsSpec);
  }
  if (file_observer_) file_observer_(stored);
  if (bus_) {
    flow::FileEvent event;
    event.id = stored.id;
    event.path = stored.path;
    event.bytes = stored.bytes;
    event.finished_at = stored.finished_at;
    event.attempts = stored.attempts;
    bus_->publish(flow::topics::kDownloadFile, event.to_yaml());
  }
}

void DownloadService::record_activity() {
  activity_.emplace_back(engine_.now(), active_workers_);
}

}  // namespace mfw::transfer
