// EO-ML workflow configuration.
//
// "To initiate the workflow the user defines configuration in a YAML file" —
// EomlConfig mirrors that file: data selection (satellite, products, time
// span), per-stage resources (download workers, preprocessing nodes x
// workers, inference workers), network/facility parameters, and the
// execution mode (timing-only simulation vs materialized content with real
// tiling + RICC inference).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "compute/block_provider.hpp"
#include "modis/catalog.hpp"
#include "preprocess/tasks.hpp"
#include "spec/spec.hpp"
#include "util/yamlite.hpp"

namespace mfw::pipeline {

/// How stage boundaries are sequenced (see DESIGN.md "Dataflow
/// architecture").
enum class SchedulingMode {
  /// Paper-faithful: preprocessing is delayed until every download lands
  /// (the whole-stage HDF partial-read barrier). Reproduction default.
  kBarrier,
  /// Event-driven: each granule is preprocessed the moment its
  /// MOD02/MOD03/MOD06 triplet is whole (granule.ready), overlapping
  /// Download/Preprocess/Inference and shrinking makespan.
  kStreaming,
};

const char* to_string(SchedulingMode mode);

struct EomlConfig {
  // -- data selection --------------------------------------------------------
  modis::Satellite satellite = modis::Satellite::kTerra;
  std::vector<modis::ProductKind> products = {modis::ProductKind::kMod02,
                                              modis::ProductKind::kMod03,
                                              modis::ProductKind::kMod06};
  modis::DaySpan span{2022, 1, 1};
  /// Cap on MOD02 granules (chronological prefix after filtering).
  std::optional<std::size_t> max_files;
  bool daytime_only = true;
  std::uint64_t seed = 2022;

  // -- stage coupling --------------------------------------------------------
  SchedulingMode scheduling = SchedulingMode::kBarrier;

  // -- download stage --------------------------------------------------------
  int download_workers = 3;
  /// Effective LAADS->facility throughput ceiling (server-side per-user
  /// fairness dominates; see bench/fig3_download.cpp).
  double wan_capacity_bps = 23.5 * 1024 * 1024;
  double per_connection_median_bps = 7.5 * 1024 * 1024;
  double per_connection_sigma = 0.22;

  // -- preprocess stage ------------------------------------------------------
  int preprocess_nodes = 4;
  int workers_per_node = 8;
  /// When true, nodes are managed by the elastic BlockProvider instead of a
  /// single static Slurm allocation.
  bool elastic = false;
  compute::BlockConfig block{};
  preprocess::TilerOptions tiler{};
  preprocess::PreprocessCostModel preprocess_cost{};
  double slurm_latency = 1.5;
  /// Walltime requested for the static preprocess allocation. The default
  /// covers the paper's single-week runs; archive-scale campaigns must raise
  /// it or the allocation expires mid-run.
  double preprocess_walltime = 7 * 24 * 3600.0;

  // -- facility characteristics (defaults: OLCF ACE Defiant) ------------------
  /// Total nodes in the facility's batch partition.
  int facility_total_nodes = 36;
  /// Node contention-law calibration (see DESIGN.md): aggregate rate
  /// saturates at node_r_max tile-equivalents/s with time constant node_tau.
  double node_r_max = 38.5;
  double node_tau = 3.1;

  // -- monitor & trigger -----------------------------------------------------
  double poll_interval = 1.0;
  double flow_action_overhead = 0.05;
  /// Keep per-flow-run provenance records in the final report. Disable for
  /// archive-scale campaigns where the O(runs) record list dominates memory
  /// and only the aggregate report matters.
  bool retain_provenance = true;

  // -- inference stage -------------------------------------------------------
  int inference_workers = 1;
  preprocess::InferenceCostModel inference_cost{};
  /// Encoder implementation for materialized inference (DESIGN.md §13):
  /// "layers" (default; the fp32 oracle, bit-for-bit the historical
  /// outputs), "fused" (fp32, bitwise identical, fewer allocations), or
  /// "int8" (quantized fast path, accuracy-gated in CI).
  std::string encode_path = "layers";
  /// Bounded-memory tile streaming for materialized inference: 0 keeps the
  /// classic whole-granule materialization; > 0 streams encode batches with
  /// at most this many decoded tiles resident at once (must be >=
  /// inference_batch).
  std::size_t inference_tile_budget = 0;
  /// Tiles per streamed encode batch.
  std::size_t inference_batch = 32;

  // -- shipment stage --------------------------------------------------------
  int shipment_streams = 4;
  double facility_link_bps = 1.2 * 1024 * 1024 * 1024;

  // -- content mode ----------------------------------------------------------
  /// Materialize granule bytes and run the real tiler + RICC model (content
  /// geometry below); otherwise timing-only manifests flow through.
  bool materialize = false;
  modis::GranuleGeometry geometry = modis::kSmallGeometry;
  /// Path (on the Defiant filesystem, pre-loaded by the caller) of a saved
  /// RICC model for materialized inference; empty -> pseudo-labels.
  std::string model_path;

  // -- service-level objectives ----------------------------------------------
  /// Top-level `slo:` section, forwarded verbatim into the compiled builtin
  /// spec (pipeline::spec_for_config) and evaluated online by the watch
  /// layer when a HealthMonitor is attached (mfwctl watch, DESIGN.md §12).
  std::vector<spec::SloSpec> slos;

  static EomlConfig from_yaml(const util::YamlNode& root);
  static EomlConfig from_yaml_text(std::string_view text);

  void validate() const;
};

}  // namespace mfw::pipeline
