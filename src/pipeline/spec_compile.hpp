// The paper pipeline as a built-in workflow spec.
//
// After the declarative-workflow refactor (DESIGN.md §11) the five-stage
// EO-ML pipeline is not a special case: EomlWorkflow builds this spec from
// its EomlConfig, compiles it through spec::StageGraph (so every run passes
// cycle/input/capacity validation), and consults the compiled edge modes for
// its dataflow decisions. The barrier-mode run stays bit-for-bit identical
// to the seed — the spec encodes exactly the stage graph the seed hard-wired,
// and the executor keeps its null-policy FIFO path.
#pragma once

#include "pipeline/config.hpp"
#include "spec/spec.hpp"

namespace mfw::pipeline {

/// The five-stage paper workflow as a spec: download -> preprocess ->
/// monitor -> inference -> shipment. The download->preprocess edge carries
/// config.scheduling (the paper's barrier vs the event-driven streaming
/// mode); monitor and inference stream per batch; shipment waits for the
/// whole inference stage, as the seed does.
spec::WorkflowSpec spec_for_config(const EomlConfig& config);

/// Facility capacity slice of the config (Defiant by default).
spec::FacilityCaps caps_for_config(const EomlConfig& config);

/// Validates and compiles the built-in paper spec for `config`.
spec::StageGraph compile_config(const EomlConfig& config);

}  // namespace mfw::pipeline
