#include "pipeline/config.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mfw::pipeline {

namespace {

modis::Satellite parse_satellite(const std::string& name) {
  if (name == "Terra" || name == "terra") return modis::Satellite::kTerra;
  if (name == "Aqua" || name == "aqua") return modis::Satellite::kAqua;
  throw util::YamlError("unknown satellite: " + name);
}

std::vector<modis::ProductKind> parse_products(const util::YamlNode& node) {
  std::vector<modis::ProductKind> out;
  for (const auto& item : node.items()) {
    const auto& name = item.as_string();
    if (name == "MOD02" || name == "MOD021KM" || name == "MYD021KM") {
      out.push_back(modis::ProductKind::kMod02);
    } else if (name == "MOD03" || name == "MYD03") {
      out.push_back(modis::ProductKind::kMod03);
    } else if (name == "MOD06" || name == "MOD06_L2" || name == "MYD06_L2") {
      out.push_back(modis::ProductKind::kMod06);
    } else {
      throw util::YamlError("unknown product: " + name);
    }
  }
  return out;
}

SchedulingMode parse_scheduling(const std::string& name) {
  if (name == "barrier") return SchedulingMode::kBarrier;
  if (name == "streaming") return SchedulingMode::kStreaming;
  throw util::YamlError("unknown scheduling mode: " + name);
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t next = std::min(
          {row[j] + 1, row[j - 1] + 1, diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

constexpr const char* kTopLevelKeys[] = {
    "workflow", "download", "preprocess", "monitor",
    "inference", "shipment", "facility", "content", "slo"};

/// Typos used to silently fall back to defaults ("downlaod:" configured
/// nothing); reject them, suggesting the closest section name.
void reject_unknown_sections(const util::YamlNode& root) {
  if (!root.is_map()) return;
  for (const auto& key : root.keys()) {
    bool known = false;
    for (const char* valid : kTopLevelKeys) known = known || key == valid;
    if (known) continue;
    const char* nearest = kTopLevelKeys[0];
    std::size_t best = std::numeric_limits<std::size_t>::max();
    for (const char* valid : kTopLevelKeys) {
      const auto d = edit_distance(key, valid);
      if (d < best) {
        best = d;
        nearest = valid;
      }
    }
    throw util::YamlError("config: unknown top-level key '" + key +
                          "' (did you mean '" + std::string(nearest) + "'?)");
  }
}

}  // namespace

const char* to_string(SchedulingMode mode) {
  return mode == SchedulingMode::kStreaming ? "streaming" : "barrier";
}

EomlConfig EomlConfig::from_yaml(const util::YamlNode& root) {
  reject_unknown_sections(root);
  EomlConfig config;
  const auto& wf = root["workflow"];
  if (wf.is_map()) {
    if (wf.has("satellite"))
      config.satellite = parse_satellite(wf["satellite"].as_string());
    if (wf.has("products")) config.products = parse_products(wf["products"]);
    if (wf.has("span")) {
      const auto& span = wf["span"];
      config.span.year = static_cast<int>(span["year"].as_int_or(2022));
      config.span.first_day = static_cast<int>(span["first_day"].as_int_or(1));
      config.span.last_day = static_cast<int>(
          span["last_day"].as_int_or(config.span.first_day));
    }
    if (wf.has("max_files"))
      config.max_files = static_cast<std::size_t>(wf["max_files"].as_int());
    config.daytime_only = wf["daytime_only"].as_bool_or(config.daytime_only);
    config.seed = static_cast<std::uint64_t>(
        wf["seed"].as_int_or(static_cast<std::int64_t>(config.seed)));
    if (wf.has("scheduling"))
      config.scheduling = parse_scheduling(wf["scheduling"].as_string());
  }

  const auto& dl = root["download"];
  if (dl.is_map()) {
    config.download_workers =
        static_cast<int>(dl["workers"].as_int_or(config.download_workers));
    if (dl.has("wan_capacity"))
      config.wan_capacity_bps =
          static_cast<double>(dl["wan_capacity"].as_bytes());
    if (dl.has("connection_speed"))
      config.per_connection_median_bps =
          static_cast<double>(dl["connection_speed"].as_bytes());
  }

  const auto& pp = root["preprocess"];
  if (pp.is_map()) {
    config.preprocess_nodes =
        static_cast<int>(pp["nodes"].as_int_or(config.preprocess_nodes));
    config.workers_per_node = static_cast<int>(
        pp["workers_per_node"].as_int_or(config.workers_per_node));
    config.elastic = pp["elastic"].as_bool_or(config.elastic);
    if (pp.has("block")) {
      const auto& block = pp["block"];
      config.block.nodes_per_block = static_cast<int>(
          block["nodes_per_block"].as_int_or(config.block.nodes_per_block));
      config.block.workers_per_node = static_cast<int>(
          block["workers_per_node"].as_int_or(config.workers_per_node));
      config.block.init_blocks = static_cast<int>(
          block["init_blocks"].as_int_or(config.block.init_blocks));
      config.block.min_blocks = static_cast<int>(
          block["min_blocks"].as_int_or(config.block.min_blocks));
      config.block.max_blocks = static_cast<int>(
          block["max_blocks"].as_int_or(config.block.max_blocks));
      config.block.idle_timeout =
          block["idle_timeout"].as_double_or(config.block.idle_timeout);
    }
    config.tiler.tile_size =
        static_cast<int>(pp["tile_size"].as_int_or(config.tiler.tile_size));
    config.tiler.channels =
        static_cast<int>(pp["channels"].as_int_or(config.tiler.channels));
    config.tiler.min_cloud_fraction = pp["min_cloud_fraction"].as_double_or(
        config.tiler.min_cloud_fraction);
    config.slurm_latency = pp["slurm_latency"].as_double_or(config.slurm_latency);
    config.preprocess_walltime =
        pp["walltime"].as_double_or(config.preprocess_walltime);
    // Uniform scaling of the calibrated cost model. Primarily a fault/
    // regression-injection knob: CI's diff smoke gate slows preprocess 2x
    // and requires `mfwctl diff` to attribute the makespan delta to it.
    const double cost_scale = pp["cost_scale"].as_double_or(1.0);
    if (!(cost_scale > 0.0))
      throw util::YamlError("config: preprocess cost_scale must be > 0");
    config.preprocess_cost.cpu_seconds *= cost_scale;
    config.preprocess_cost.demand_per_tile *= cost_scale;
    config.preprocess_cost.min_demand *= cost_scale;
  }

  const auto& mon = root["monitor"];
  if (mon.is_map()) {
    config.poll_interval =
        mon["poll_interval"].as_double_or(config.poll_interval);
    config.flow_action_overhead =
        mon["action_overhead"].as_double_or(config.flow_action_overhead);
    config.retain_provenance =
        mon["retain_provenance"].as_bool_or(config.retain_provenance);
  }

  const auto& inf = root["inference"];
  if (inf.is_map()) {
    config.inference_workers =
        static_cast<int>(inf["workers"].as_int_or(config.inference_workers));
    config.model_path = inf["model"].as_string_or(config.model_path);
    config.encode_path = inf["encode_path"].as_string_or(config.encode_path);
    config.inference_tile_budget = static_cast<std::size_t>(inf["tile_budget"].as_int_or(
        static_cast<std::int64_t>(config.inference_tile_budget)));
    config.inference_batch = static_cast<std::size_t>(inf["batch"].as_int_or(
        static_cast<std::int64_t>(config.inference_batch)));
    const double cost_scale = inf["cost_scale"].as_double_or(1.0);
    if (!(cost_scale > 0.0))
      throw util::YamlError("config: inference cost_scale must be > 0");
    config.inference_cost.cpu_seconds *= cost_scale;
    config.inference_cost.demand_per_tile *= cost_scale;
  }

  const auto& ship = root["shipment"];
  if (ship.is_map()) {
    config.shipment_streams =
        static_cast<int>(ship["streams"].as_int_or(config.shipment_streams));
    if (ship.has("link_capacity"))
      config.facility_link_bps =
          static_cast<double>(ship["link_capacity"].as_bytes());
  }

  const auto& facility = root["facility"];
  if (facility.is_map()) {
    config.facility_total_nodes = static_cast<int>(
        facility["total_nodes"].as_int_or(config.facility_total_nodes));
    config.node_r_max = facility["node_r_max"].as_double_or(config.node_r_max);
    config.node_tau = facility["node_tau"].as_double_or(config.node_tau);
  }

  const auto& content = root["content"];
  if (content.is_map()) {
    config.materialize = content["materialize"].as_bool_or(config.materialize);
    config.geometry.rows =
        static_cast<int>(content["rows"].as_int_or(config.geometry.rows));
    config.geometry.cols =
        static_cast<int>(content["cols"].as_int_or(config.geometry.cols));
    config.geometry.bands =
        static_cast<int>(content["bands"].as_int_or(config.geometry.bands));
  }

  // Parsed with the spec layer's parser (line-anchored errors) and validated
  // against the builtin stage graph when the workflow compiles.
  config.slos = spec::parse_slo_list(root["slo"]);

  config.validate();
  return config;
}

EomlConfig EomlConfig::from_yaml_text(std::string_view text) {
  return from_yaml(util::parse_yaml(text));
}

void EomlConfig::validate() const {
  if (products.empty()) throw std::invalid_argument("config: no products");
  if (scheduling == SchedulingMode::kStreaming) {
    // The per-granule readiness trigger is defined over whole triplets: with
    // any product missing from the stream, granule.ready would never fire.
    const auto has = [this](modis::ProductKind kind) {
      return std::find(products.begin(), products.end(), kind) !=
             products.end();
    };
    if (!has(modis::ProductKind::kMod02) || !has(modis::ProductKind::kMod03) ||
        !has(modis::ProductKind::kMod06))
      throw std::invalid_argument(
          "config: streaming scheduling requires MOD02+MOD03+MOD06 products");
  }
  if (download_workers <= 0)
    throw std::invalid_argument("config: download_workers must be >= 1");
  if (preprocess_nodes <= 0 || workers_per_node <= 0)
    throw std::invalid_argument("config: preprocessing resources must be >= 1");
  if (facility_total_nodes < preprocess_nodes)
    throw std::invalid_argument(
        "config: preprocess_nodes exceeds facility_total_nodes");
  if (!(node_r_max > 0) || !(node_tau > 0))
    throw std::invalid_argument("config: contention law parameters must be > 0");
  if (inference_workers <= 0)
    throw std::invalid_argument("config: inference_workers must be >= 1");
  if (encode_path != "layers" && encode_path != "fused" &&
      encode_path != "int8")
    throw std::invalid_argument(
        "config: encode_path must be layers|fused|int8, got '" + encode_path +
        "'");
  if (inference_batch == 0)
    throw std::invalid_argument("config: inference batch must be >= 1");
  if (inference_tile_budget != 0 && inference_tile_budget < inference_batch)
    throw std::invalid_argument(
        "config: inference tile_budget must be >= batch (or 0 to disable "
        "streaming)");
  if (shipment_streams <= 0)
    throw std::invalid_argument("config: shipment_streams must be >= 1");
  if (!(wan_capacity_bps > 0) || !(facility_link_bps > 0))
    throw std::invalid_argument("config: link capacities must be > 0");
  if (!(poll_interval > 0))
    throw std::invalid_argument("config: poll_interval must be > 0");
  if (!(preprocess_walltime > 0))
    throw std::invalid_argument("config: preprocess_walltime must be > 0");
  if (span.first_day < 1 || span.last_day < span.first_day || span.last_day > 366)
    throw std::invalid_argument("config: invalid day span");
  if (materialize &&
      (tiler.tile_size > geometry.rows || tiler.tile_size > geometry.cols))
    throw std::invalid_argument(
        "config: tile_size exceeds materialized geometry");
}

}  // namespace mfw::pipeline
