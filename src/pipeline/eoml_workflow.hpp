// EomlWorkflow: the paper's primary contribution — the automated, five-stage
// multi-facility EO-ML workflow.
//
//   (1) Download   — DownloadService pulls MODIS products from the LAADS
//                    archive over the WAN onto ACE Defiant's filesystem.
//   (2) Preprocess — a Parsl-like task farm (SlurmSim allocation, optionally
//                    elastic blocks) tiles each MOD02 granule into
//                    ocean-cloud tiles written as ncl files. In barrier mode
//                    (the paper-faithful default) preprocessing is delayed
//                    until all downloads complete (HDF partial-read hazard,
//                    as in the paper); in streaming mode each granule is
//                    tiled the moment GranuleTracker reports its
//                    MOD02/03/06 triplet whole (granule.ready), overlapping
//                    the download stage.
//   (3) Monitor &  — an FsMonitor crawls the tile directory; each batch of
//       Trigger      new files triggers a Globus-Flows-style run.
//   (4) Inference  — the triggered flow runs RICC inference (42 AICCA
//                    classes), appends a `label` variable to the ncl file,
//                    and moves it to the transfer-out directory. Inference
//                    overlaps preprocessing.
//   (5) Shipment   — TransferService moves labelled files to Frontier's
//                    Orion filesystem with checksum verification.
//
// The workflow runs entirely on a discrete-event engine; with
// config.materialize it moves real granule bytes and runs the real tiler and
// a real (or pseudo-label) RICC model, while timing still follows the
// calibrated cost models.
#pragma once

#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "compute/block_provider.hpp"
#include "compute/cluster.hpp"
#include "compute/slurm_sim.hpp"
#include "flow/event_bus.hpp"
#include "flow/granule_tracker.hpp"
#include "flow/monitor.hpp"
#include "flow/provenance.hpp"
#include "flow/runner.hpp"
#include "ml/ricc.hpp"
#include "obs/trace.hpp"
#include "obs/watch.hpp"
#include "pipeline/config.hpp"
#include "pipeline/spec_compile.hpp"
#include "pipeline/timeline.hpp"
#include "spec/spec.hpp"
#include "storage/lustre_sim.hpp"
#include "storage/memfs.hpp"
#include "transfer/download.hpp"
#include "transfer/transfer_service.hpp"

namespace mfw::pipeline {

struct StageSpan {
  double start = -1.0;
  double end = -1.0;
  bool ran() const { return start >= 0.0 && end >= start; }
  double duration() const { return ran() ? end - start : 0.0; }
};

struct EomlReport {
  SchedulingMode scheduling = SchedulingMode::kBarrier;
  transfer::DownloadReport download;
  StageSpan download_span;
  StageSpan preprocess_span;
  StageSpan inference_span;  // first flow start .. last flow end
  StageSpan shipment_span;
  double makespan = 0.0;

  std::size_t granules = 0;       // MOD02 files preprocessed
  std::size_t total_tiles = 0;    // tiles produced by preprocessing
  std::size_t labeled_files = 0;
  std::size_t labeled_tiles = 0;
  // -- bounded-memory inference (config inference.tile_budget > 0) ----------
  /// High-water mark of decoded tiles resident during streamed labeling;
  /// stays <= the configured tile budget.
  std::size_t inference_peak_tiles_resident = 0;
  /// Encode batches delivered by the streaming reader (0 when the classic
  /// whole-granule path ran).
  std::size_t inference_streamed_batches = 0;
  std::size_t shipped_files = 0;
  std::uint64_t shipped_bytes = 0;
  /// Granules whose triplet never became whole (download failures);
  /// streaming mode skips them. Always 0 in barrier mode, which preprocesses
  /// from the catalog listing regardless.
  std::size_t incomplete_granules = 0;

  /// Tiles/second over the preprocessing span (Table I's metric).
  double preprocess_throughput() const;

  // -- dataflow overlap metrics ---------------------------------------------
  /// Per-granule dwell: triplet whole (granule.ready) -> tiles written. In
  /// barrier mode the dwell includes the whole-stage wait for the last
  /// download; streaming shrinks it to queueing + tiling time.
  std::vector<double> granule_dwell;
  double dwell_p50() const;
  double dwell_p95() const;
  /// Wall-clock overlap between the download and preprocess spans (0 in
  /// barrier mode, by construction).
  double download_preprocess_overlap() const;

  // -- Fig. 7 latency breakdown ---------------------------------------------
  double download_launch_latency = 0.0;  // workers + listing (paper: 5.63 s)
  double slurm_allocation_latency = 0.0; // request -> nodes granted
  double mean_flow_action_overhead = 0.0;  // paper: ~50 ms
  /// Gap between the first tile file landing and its flow starting (the
  /// asynchronous monitor hop; "inconsequential" per the paper).
  double monitor_trigger_gap = 0.0;

  TimelineRecorder timeline;
  flow::ProvenanceLog provenance;

  /// Human-readable multi-line summary.
  std::string summary() const;
};

class EomlWorkflow {
 public:
  explicit EomlWorkflow(EomlConfig config);
  ~EomlWorkflow();

  EomlWorkflow(const EomlWorkflow&) = delete;
  EomlWorkflow& operator=(const EomlWorkflow&) = delete;

  /// Runs the workflow to completion (drains the event engine) and returns
  /// the report. May be called once.
  EomlReport run();

  /// Wires a live obs::HealthMonitor to this run (DESIGN.md §12): declares
  /// the builtin stages' worker capacities, polls the monitor (read-only) at
  /// natural workflow beats — stage lifecycle events, per-file download
  /// completions, granule readiness — and, when `snapshot_interval` > 0,
  /// runs a self-rescheduling engine tick that polls and invokes
  /// `on_snapshot(now)` every interval until the workflow finishes. All
  /// hooks only observe; no simulation state is touched, so the run is
  /// bit-for-bit identical with or without a monitor attached. Call before
  /// run(); `monitor` must outlive it. Feeding the monitor telemetry is the
  /// caller's job (attach a TelemetryBus as the recorder's span sink).
  void attach_health(obs::HealthMonitor& monitor,
                     double snapshot_interval = 0.0,
                     std::function<void(double)> on_snapshot = {});

  // -- accessors for tests, examples, and benches ---------------------------
  /// Live telemetry: the workflow publishes lifecycle events on topic
  /// "workflow" (fields: stage, event=started|completed, plus stage-specific
  /// counters). Subscribe before run().
  flow::EventBus& events() { return bus_; }
  sim::SimEngine& engine() { return engine_; }
  const EomlConfig& config() const { return config_; }
  /// The compiled built-in paper spec this run executes (DESIGN.md §11):
  /// every construction validates the stage DAG, and the dataflow decisions
  /// below consult its edge modes.
  const spec::StageGraph& plan() const { return graph_; }
  const modis::ArchiveService& archive() const { return laads_; }
  storage::FileSystem& defiant_fs() { return defiant_fs_; }
  storage::FileSystem& orion_fs() { return orion_fs_; }
  const storage::LustreSimFs& defiant_lustre() const { return defiant_fs_; }

 private:
  /// The scheduling switch is a property of the compiled DAG, not of the
  /// config: the download->preprocess edge mode decides whether granules
  /// stream into the farm or wait for the whole-stage barrier.
  bool streaming() const {
    return graph_.edge_mode("download", "preprocess") ==
           spec::EdgeMode::kStreaming;
  }

  void start_download();
  void on_downloads_complete(const transfer::DownloadReport& dr);
  void start_preprocess();
  /// Requests the preprocess allocation (static Slurm job or elastic
  /// blocks); `on_nodes` fires once nodes are granted (static) or the block
  /// provider is running (elastic).
  void request_preprocess_nodes(std::function<void()> on_nodes);
  void submit_preprocess_tasks();
  /// Streaming dataflow edge: one granule.ready -> one preprocess task.
  void on_granule_ready(const flow::ReadyGranule& granule);
  /// Streaming completion: seals the farm once downloads are done and every
  /// whole triplet has been submitted.
  void maybe_seal_preprocess();
  void finish_preprocess();
  void on_preprocess_task_done(const compute::SimTaskResult& result,
                               const modis::GranuleId& id);
  void start_monitor();
  void trigger_flows(const std::vector<storage::FileInfo>& files);
  void register_actions();
  void check_shipment();
  void start_shipment();
  std::vector<std::int32_t> label_tiles(const std::string& path,
                                        std::size_t count);
  void publish_stage_event(const char* stage, const char* event,
                           std::initializer_list<std::pair<const char*, std::string>>
                               fields = {});
  /// Re-arms the read-only health snapshot tick (attach_health).
  void schedule_health_tick();

  EomlConfig config_;
  /// Validated paper spec (built from config_ before any substrate spins
  /// up; construction fails fast on an invalid stage graph).
  spec::StageGraph graph_;
  sim::SimEngine engine_;
  modis::ArchiveService laads_;

  storage::MemFs defiant_raw_;
  storage::LustreSimFs defiant_fs_;
  storage::MemFs orion_raw_;
  storage::LustreSimFs orion_fs_;

  sim::FlowLink wan_;
  sim::FlowLink facility_link_;

  compute::SlurmSim slurm_;
  compute::ClusterExecutor preprocess_exec_;
  compute::ClusterExecutor inference_exec_;
  std::optional<compute::BlockProvider> blocks_;
  transfer::TransferService shipper_;

  flow::ProvenanceLog provenance_;
  flow::EventBus bus_{engine_};
  /// Assembles download.file events into granule.ready events in both
  /// scheduling modes (the event contract is always observable); only the
  /// streaming scheduler acts on them.
  flow::GranuleTracker tracker_{bus_};
  flow::FlowRunner runner_;
  flow::FlowDefinition inference_flow_;
  std::unique_ptr<flow::FsMonitor> monitor_;
  std::unique_ptr<transfer::DownloadService> downloader_;

  std::optional<ml::RiccModel> model_;

  EomlReport report_;
  bool started_ = false;
  bool downloads_done_ = false;
  bool preprocess_done_ = false;
  bool shipping_ = false;
  bool finished_ = false;
  std::size_t preprocess_pending_ = 0;
  /// Paths whose inference flow has already been launched: the append-labels
  /// rewrite bumps the tile file's mtime, and without this set the monitor
  /// would re-trigger a duplicate flow for the same granule.
  std::set<std::string> triggered_paths_;
  compute::SlurmJobId preprocess_job_{};
  double slurm_request_time_ = -1.0;
  double first_tile_time_ = -1.0;
  double first_flow_time_ = -1.0;
  /// Open obs stage spans keyed by stage name (all invalid while the global
  /// TraceRecorder is disabled).
  std::map<std::string, obs::SpanId> stage_spans_;

  // -- live health (attach_health) -------------------------------------------
  obs::HealthMonitor* health_ = nullptr;
  double health_snapshot_interval_ = 0.0;
  std::function<void(double)> health_snapshot_;

  // -- streaming dataflow state ----------------------------------------------
  /// ready_at per granule (fed by granule.ready in both modes; powers the
  /// dwell metrics).
  std::map<flow::GranuleKey, double> granule_ready_at_;
  /// Whole triplets expected from the download report; known once the
  /// terminal report lands.
  std::size_t expected_granules_ = 0;
  std::size_t granules_submitted_ = 0;
  bool preprocess_sealed_ = false;
};

}  // namespace mfw::pipeline
