// Timeline recording for Fig. 6-style "automation timeline" plots: active
// worker counts per workflow stage over virtual time.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace mfw::pipeline {

/// One stage's (time, active workers) transition series.
struct StageTimeline {
  std::string stage;
  std::vector<std::pair<double, int>> transitions;

  /// Active count at time t (step function; 0 before the first transition).
  int at(double t) const;
  int peak() const;
};

class TimelineRecorder {
 public:
  void add_stage(std::string stage,
                 std::vector<std::pair<double, int>> transitions);

  const std::vector<StageTimeline>& stages() const { return stages_; }
  const StageTimeline& stage(std::string_view name) const;

  /// Latest transition time across all stages.
  double end_time() const;

  /// Samples all stages on a shared grid of `samples` points and renders a
  /// CSV table: time, stage1, stage2, ...
  std::string to_csv(std::size_t samples = 120) const;

  /// ASCII plot of all stages on a shared canvas.
  std::string render(std::size_t samples = 120, std::size_t width = 72,
                     std::size_t height = 14) const;

  /// Same plot restricted to virtual times [from, to] — for zooming into a
  /// phase (e.g. the preprocess/inference window after a long download).
  std::string render_window(double from, double to, std::size_t samples = 120,
                            std::size_t width = 72,
                            std::size_t height = 14) const;

 private:
  std::vector<StageTimeline> stages_;
};

}  // namespace mfw::pipeline
