#include "pipeline/eoml_workflow.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "flow/events.hpp"
#include "preprocess/tile_io.hpp"
#include "preprocess/tile_stream.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace mfw::pipeline {

namespace {
constexpr const char* kComponent = "eoml";
constexpr const char* kTilesDir = "tiles";
constexpr const char* kOutboxDir = "outbox";
constexpr const char* kAiccaDir = "aicca";
// Nominal Defiant Lustre aggregate bandwidth exposed to telemetry.
constexpr double kDefiantLustreBps = 40.0 * 1024 * 1024 * 1024;

flow::FlowDefinition build_inference_flow() {
  // The paper's Globus Flow: inference -> append labels -> move to
  // transfer-out. (The crawl step is the FsMonitor that starts the run.)
  flow::FlowDefinition def;
  def.set_name("aicca-inference");
  def.set_start("infer");

  flow::FlowState infer;
  infer.name = "infer";
  infer.kind = flow::StateKind::kAction;
  infer.action = "inference.run";
  auto params = util::YamlNode::map();
  params.set("path", util::YamlNode::scalar("$.file.path"));
  infer.parameters = params;
  infer.result_path = "inference";
  infer.next = "append";
  def.add_state(std::move(infer));

  flow::FlowState append;
  append.name = "append";
  append.kind = flow::StateKind::kAction;
  append.action = "labels.append";
  params = util::YamlNode::map();
  params.set("path", util::YamlNode::scalar("$.file.path"));
  params.set("labels", util::YamlNode::scalar("$.inference.labels"));
  append.parameters = params;
  append.result_path = "append";
  append.next = "move";
  def.add_state(std::move(append));

  flow::FlowState move;
  move.name = "move";
  move.kind = flow::StateKind::kAction;
  move.action = "files.move";
  params = util::YamlNode::map();
  params.set("path", util::YamlNode::scalar("$.file.path"));
  move.parameters = params;
  move.result_path = "move";
  move.next = "done";
  def.add_state(std::move(move));

  flow::FlowState done;
  done.name = "done";
  done.kind = flow::StateKind::kSucceed;
  def.add_state(std::move(done));

  def.validate();
  return def;
}

/// Canonical granule identity of a tile path ("tiles/MOD021KM.A2022001.
/// 0050.061.hdf.ncl" -> "terra.A2022001.s0010"); empty when unparseable.
std::string granule_key_of_path(std::string_view path) {
  std::string_view base = util::path_basename(path);
  if (base.size() > 4 && base.substr(base.size() - 4) == ".ncl")
    base = base.substr(0, base.size() - 4);
  if (const auto id = modis::parse_granule_filename(base))
    return flow::GranuleKey::of(*id).to_string();
  return {};
}

}  // namespace

double EomlReport::preprocess_throughput() const {
  const double d = preprocess_span.duration();
  return d > 0 ? static_cast<double>(total_tiles) / d : 0.0;
}

double EomlReport::dwell_p50() const { return util::percentile(granule_dwell, 50.0); }

double EomlReport::dwell_p95() const { return util::percentile(granule_dwell, 95.0); }

double EomlReport::download_preprocess_overlap() const {
  if (!download_span.ran() || !preprocess_span.ran()) return 0.0;
  const double lo = std::max(download_span.start, preprocess_span.start);
  const double hi = std::min(download_span.end, preprocess_span.end);
  return std::max(0.0, hi - lo);
}

std::string EomlReport::summary() const {
  std::ostringstream os;
  os << "EO-ML workflow report\n"
     << "  makespan:            " << util::format_seconds(makespan) << "\n"
     << "  download:            " << util::format_seconds(download_span.duration())
     << "  (" << download.files.size() << " files, "
     << util::format_bytes(download.total_bytes)
     << ", launch " << util::format_seconds(download_launch_latency) << ")\n"
     << "  preprocess:          "
     << util::format_seconds(preprocess_span.duration()) << "  (" << granules
     << " granules -> " << total_tiles << " tiles, "
     << util::Table::num(preprocess_throughput(), 2) << " tiles/s, slurm alloc "
     << util::format_seconds(slurm_allocation_latency) << ")\n"
     << "  inference:           "
     << util::format_seconds(inference_span.duration()) << "  ("
     << labeled_files << " files, " << labeled_tiles
     << " tiles labeled; action overhead "
     << util::format_seconds(mean_flow_action_overhead)
     << ", trigger gap " << util::format_seconds(monitor_trigger_gap) << ")\n"
     << "  shipment:            "
     << util::format_seconds(shipment_span.duration()) << "  (" << shipped_files
     << " files, " << util::format_bytes(shipped_bytes) << " to Orion)\n"
     << "  scheduling:          " << to_string(scheduling) << "  (dl/pp overlap "
     << util::format_seconds(download_preprocess_overlap()) << ", dwell p50 "
     << util::format_seconds(dwell_p50()) << ", p95 "
     << util::format_seconds(dwell_p95());
  if (incomplete_granules > 0)
    os << ", " << incomplete_granules << " incomplete triplets skipped";
  os << ")\n";
  return os.str();
}

EomlWorkflow::EomlWorkflow(EomlConfig config)
    : config_(std::move(config)),
      graph_(compile_config(config_)),
      laads_(config_.seed),
      defiant_raw_("defiant", &engine_),
      defiant_fs_(defiant_raw_, kDefiantLustreBps),
      orion_raw_("orion", &engine_),
      orion_fs_(orion_raw_, kDefiantLustreBps),
      wan_(engine_, "laads-wan", config_.wan_capacity_bps),
      facility_link_(engine_, "defiant-orion", config_.facility_link_bps),
      slurm_(engine_, compute::SlurmSimConfig{config_.facility_total_nodes,
                                              config_.slurm_latency}),
      preprocess_exec_(engine_,
                       [r = config_.node_r_max, tau = config_.node_tau] {
                         return std::unique_ptr<sim::ContentionLaw>(
                             std::make_unique<sim::SaturatingExpLaw>(r, tau));
                       }),
      inference_exec_(engine_,
                      [r = config_.node_r_max, tau = config_.node_tau] {
                        return std::unique_ptr<sim::ContentionLaw>(
                            std::make_unique<sim::SaturatingExpLaw>(r, tau));
                      }),
      shipper_(engine_, facility_link_),
      runner_(engine_, config_.retain_provenance ? &provenance_ : nullptr,
              flow::FlowRunnerConfig{config_.flow_action_overhead, 1'000'000}),
      inference_flow_(build_inference_flow()) {
  config_.validate();
  register_actions();
  preprocess_exec_.set_label("preprocess");
  inference_exec_.set_label("inference");
  // Inference resources are static: the paper pins one (GPU) worker.
  inference_exec_.add_node(config_.inference_workers);
}

EomlWorkflow::~EomlWorkflow() {
  // The recorder must never outlive this engine as its time source.
  auto& rec = obs::TraceRecorder::instance();
  if (rec.clock() == &engine_) rec.set_clock(nullptr);
}

EomlReport EomlWorkflow::run() {
  if (started_) throw std::logic_error("EomlWorkflow::run called twice");
  started_ = true;
  report_.scheduling = config_.scheduling;
  if (auto& rec = obs::TraceRecorder::instance(); rec.enabled()) {
    // One trace process per run: barrier and streaming variants of the same
    // bench land side by side in Perfetto instead of overlapping.
    rec.set_clock(&engine_);
    rec.begin_process(std::string("eoml-") + to_string(config_.scheduling));
  }
  tracker_.on_ready(
      [this](const flow::ReadyGranule& granule) { on_granule_ready(granule); });
  if (streaming()) {
    // The dataflow graph has no download->preprocess barrier: the allocation
    // and the tile monitor come up with the stream, so nodes are ready when
    // the first whole triplet arrives.
    request_preprocess_nodes({});
    start_monitor();
  }
  start_download();
  engine_.run();
  if (!finished_)
    throw std::logic_error(
        "EO-ML workflow deadlocked: engine drained before shipment finished");

  report_.makespan = report_.shipment_span.end;
  report_.mean_flow_action_overhead = provenance_.mean_action_overhead();
  if (first_tile_time_ >= 0 && first_flow_time_ >= first_tile_time_)
    report_.monitor_trigger_gap = first_flow_time_ - first_tile_time_;
  report_.provenance = provenance_;

  report_.timeline.add_stage("download", downloader_->activity());
  report_.timeline.add_stage("preprocess", [this] {
    std::vector<std::pair<double, int>> series;
    for (const auto& [t, n] : preprocess_exec_.activity()) series.emplace_back(t, n);
    return series;
  }());
  report_.timeline.add_stage("inference", [this] {
    std::vector<std::pair<double, int>> series;
    for (const auto& [t, n] : inference_exec_.activity()) series.emplace_back(t, n);
    return series;
  }());
  if (auto& rec = obs::TraceRecorder::instance(); rec.enabled()) {
    // Runner-level provenance joins the obs spans on the same timeline.
    flow::export_to_trace(provenance_, rec);
    rec.set_clock(nullptr);
  }
  return report_;
}

void EomlWorkflow::attach_health(obs::HealthMonitor& monitor,
                                 double snapshot_interval,
                                 std::function<void(double)> on_snapshot) {
  if (started_)
    throw std::logic_error("EomlWorkflow::attach_health must precede run()");
  health_ = &monitor;
  // Builtin stage worker capacities for utilization-floor rules and the
  // dashboard's busy column.
  monitor.set_stage_capacity("download", config_.download_workers);
  monitor.set_stage_capacity(
      "preprocess", static_cast<double>(config_.preprocess_nodes) *
                        config_.workers_per_node);
  monitor.set_stage_capacity("inference", config_.inference_workers);
  monitor.set_stage_capacity("shipment", config_.shipment_streams);
  // Read-only polls at the workflow's natural beats. The bus delivers these
  // as zero-delay dispatch events, and the handlers only observe, so the
  // rest of the event order — and every outcome — is unchanged.
  const auto poll = [this, &monitor](const util::YamlNode&) {
    monitor.poll(engine_.now());
  };
  bus_.subscribe("workflow", poll);
  bus_.subscribe(flow::topics::kDownloadFile, poll);
  bus_.subscribe(flow::topics::kGranuleReady, poll);
  if (snapshot_interval > 0.0) {
    health_snapshot_interval_ = snapshot_interval;
    health_snapshot_ = std::move(on_snapshot);
    schedule_health_tick();
  }
}

void EomlWorkflow::schedule_health_tick() {
  engine_.schedule_after(health_snapshot_interval_, [this] {
    if (health_ == nullptr) return;
    health_->poll(engine_.now());
    if (health_snapshot_) health_snapshot_(engine_.now());
    // Stop re-arming once the workflow finishes so the engine can drain.
    if (!finished_) schedule_health_tick();
  });
}

void EomlWorkflow::publish_stage_event(
    const char* stage, const char* event,
    std::initializer_list<std::pair<const char*, std::string>> fields) {
  if (auto& rec = obs::TraceRecorder::instance(); rec.enabled()) {
    // Stage lifecycle -> top-level spans, one track per stage (stages
    // overlap freely in streaming mode, so they cannot share a lane).
    if (std::string_view(event) == "started") {
      stage_spans_[stage] =
          rec.begin_span(std::string("stages/") + stage, "stage", stage);
    } else if (std::string_view(event) == "completed") {
      obs::Args args;
      for (const auto& [key, value] : fields) args.emplace_back(key, value);
      rec.end_span(stage_spans_[stage], std::move(args));
      stage_spans_[stage] = {};
    }
  }
  auto payload = util::YamlNode::map();
  payload.set("stage", util::YamlNode::scalar(stage));
  payload.set("event", util::YamlNode::scalar(event));
  payload.set("time", util::YamlNode::scalar(std::to_string(engine_.now())));
  for (const auto& [key, value] : fields)
    payload.set(key, util::YamlNode::scalar(value));
  bus_.publish("workflow", std::move(payload));
}

void EomlWorkflow::start_download() {
  transfer::DownloadConfig dl;
  dl.workers = config_.download_workers;
  dl.products = config_.products;
  dl.satellite = config_.satellite;
  dl.span = config_.span;
  dl.dest_prefix = "staging";
  dl.max_files_per_product = config_.max_files;
  dl.daytime_only = config_.daytime_only;
  dl.per_connection_median_bps = config_.per_connection_median_bps;
  dl.per_connection_sigma = config_.per_connection_sigma;
  dl.materialize = config_.materialize;
  dl.geometry = config_.geometry;
  dl.seed = config_.seed;
  downloader_ = std::make_unique<transfer::DownloadService>(
      engine_, laads_, wan_, defiant_fs_, dl);
  downloader_->set_event_bus(&bus_);
  report_.download_span.start = engine_.now();
  publish_stage_event("download", "started");
  downloader_->start([this](const transfer::DownloadReport& dr) {
    on_downloads_complete(dr);
  });
}

void EomlWorkflow::on_downloads_complete(const transfer::DownloadReport& dr) {
  report_.download = dr;
  report_.download_span.end = engine_.now();
  report_.download_launch_latency = dr.launch_latency();
  downloads_done_ = true;
  publish_stage_event("download", "completed",
                      {{"files", std::to_string(dr.files.size())},
                       {"bytes", std::to_string(dr.total_bytes)}});
  if (!streaming()) {
    MFW_INFO(kComponent, "downloads complete; starting preprocessing");
    // "preprocessing is delayed until all downloads are complete"
    start_preprocess();
    start_monitor();
    return;
  }
  // Streaming: the farm has been running since t=0. The bus may still hold
  // in-flight granule.ready dispatches (this callback races ahead of the last
  // file event's delivery), so completion cannot be "tracker is idle" —
  // instead count the whole triplets the report guarantees and seal once that
  // many have been submitted.
  std::map<flow::GranuleKey, unsigned> have;
  for (const auto& file : dr.files)
    have[flow::GranuleKey::of(file.id)] |=
        1u << static_cast<unsigned>(file.id.product);
  std::set<flow::GranuleKey> all_keys;
  for (const auto& [key, bits] : have) all_keys.insert(key);
  for (const auto& id : dr.failed) all_keys.insert(flow::GranuleKey::of(id));
  constexpr unsigned kWhole =
      (1u << static_cast<unsigned>(modis::ProductKind::kMod02)) |
      (1u << static_cast<unsigned>(modis::ProductKind::kMod03)) |
      (1u << static_cast<unsigned>(modis::ProductKind::kMod06));
  expected_granules_ = 0;
  for (const auto& [key, bits] : have)
    if (bits == kWhole) ++expected_granules_;
  report_.incomplete_granules = all_keys.size() - expected_granules_;
  MFW_INFO(kComponent, "downloads complete; ", expected_granules_,
           " whole triplets in stream");
  maybe_seal_preprocess();
}

void EomlWorkflow::start_preprocess() {
  report_.preprocess_span.start = engine_.now();
  publish_stage_event("preprocess", "started");
  request_preprocess_nodes([this] { submit_preprocess_tasks(); });
}

void EomlWorkflow::request_preprocess_nodes(std::function<void()> on_nodes) {
  slurm_request_time_ = engine_.now();
  if (config_.elastic) {
    compute::BlockConfig block = config_.block;
    block.workers_per_node = config_.workers_per_node;
    blocks_.emplace(engine_, slurm_, preprocess_exec_, block);
    blocks_->start();
    report_.slurm_allocation_latency = config_.slurm_latency;  // per block
    if (on_nodes) on_nodes();
  } else {
    preprocess_job_ = slurm_.submit(
        config_.preprocess_nodes, config_.preprocess_walltime,
        [this, on_nodes = std::move(on_nodes)](
            const compute::SlurmAllocation& alloc) {
          report_.slurm_allocation_latency = engine_.now() - slurm_request_time_;
          for (std::size_t i = 0; i < alloc.node_ids.size(); ++i)
            preprocess_exec_.add_node(config_.workers_per_node);
          MFW_INFO(kComponent, "preprocess allocation: ", alloc.node_ids.size(),
                   " nodes x ", config_.workers_per_node, " workers");
          if (on_nodes) on_nodes();
        });
  }
}

void EomlWorkflow::on_granule_ready(const flow::ReadyGranule& granule) {
  // Both modes record readiness (powers the dwell metrics); only the
  // streaming scheduler turns the event into an immediate task.
  granule_ready_at_[granule.key] = granule.ready_at;
  if (!streaming()) return;
  if (report_.preprocess_span.start < 0) {
    report_.preprocess_span.start = engine_.now();
    publish_stage_event("preprocess", "started");
  }
  modis::GranuleId id;
  id.product = modis::ProductKind::kMod02;
  id.satellite = granule.key.satellite;
  id.year = granule.key.year;
  id.day_of_year = granule.key.day_of_year;
  id.slot = granule.key.slot;
  ++report_.granules;
  ++granules_submitted_;
  auto desc = preprocess::make_preprocess_task(laads_.generator(), id,
                                               config_.preprocess_cost);
  if (obs::TraceRecorder::instance().enabled())
    desc.trace_args.emplace_back("granule", granule.key.to_string());
  preprocess_exec_.submit(desc,
                          [this, id](const compute::SimTaskResult& result) {
                            on_preprocess_task_done(result, id);
                          });
  maybe_seal_preprocess();
}

void EomlWorkflow::maybe_seal_preprocess() {
  if (!streaming() || preprocess_sealed_ || !downloads_done_) return;
  if (granules_submitted_ < expected_granules_) return;
  preprocess_sealed_ = true;
  if (report_.incomplete_granules > 0)
    MFW_WARN(kComponent, report_.incomplete_granules,
             " granules never completed their triplet; skipped");
  if (report_.preprocess_span.start < 0) {
    // Degenerate stream: no whole triplet ever formed.
    report_.preprocess_span.start = engine_.now();
    publish_stage_event("preprocess", "started");
  }
  preprocess_exec_.seal();
  preprocess_exec_.notify_all_complete([this] { finish_preprocess(); });
}

void EomlWorkflow::submit_preprocess_tasks() {
  // One task per MOD02 granule, matching the paper's file-level parallelism.
  auto entries =
      laads_.list(modis::ProductKind::kMod02, config_.satellite, config_.span);
  if (config_.daytime_only) {
    std::erase_if(entries, [](const modis::CatalogEntry& e) {
      return !modis::is_daytime(e.id.satellite, e.id.slot, e.id.day_of_year);
    });
  }
  if (config_.max_files && entries.size() > *config_.max_files)
    entries.resize(*config_.max_files);

  report_.granules = entries.size();
  preprocess_pending_ = entries.size();
  if (entries.empty()) {
    preprocess_done_ = true;
    report_.preprocess_span.end = engine_.now();
    check_shipment();
    return;
  }
  for (const auto& entry : entries) {
    auto desc = preprocess::make_preprocess_task(laads_.generator(), entry.id,
                                                 config_.preprocess_cost);
    if (obs::TraceRecorder::instance().enabled())
      desc.trace_args.emplace_back(
          "granule", flow::GranuleKey::of(entry.id).to_string());
    preprocess_exec_.submit(desc, [this, id = entry.id](
                                      const compute::SimTaskResult& result) {
      on_preprocess_task_done(result, id);
    });
  }
  MFW_INFO(kComponent, "submitted ", entries.size(), " preprocessing tasks");
}

void EomlWorkflow::on_preprocess_task_done(const compute::SimTaskResult& result,
                                           const modis::GranuleId& id) {
  const std::string out_path =
      util::path_join(kTilesDir, id.filename() + ".ncl");
  std::size_t tiles = 0;
  if (config_.materialize) {
    preprocess::GranulePaths paths;
    paths.mod02 = util::path_join("staging", id.filename());
    modis::GranuleId other = id;
    other.product = modis::ProductKind::kMod03;
    paths.mod03 = util::path_join("staging", other.filename());
    other.product = modis::ProductKind::kMod06;
    paths.mod06 = util::path_join("staging", other.filename());
    const auto tiled = preprocess::run_preprocess(defiant_fs_, paths,
                                                  defiant_fs_, out_path,
                                                  config_.tiler);
    tiles = tiled.tiles.size();
  } else {
    tiles = static_cast<std::size_t>(result.payload);
    preprocess::write_tile_manifest(defiant_fs_, out_path, id, tiles);
  }
  report_.total_tiles += tiles;
  if (first_tile_time_ < 0) first_tile_time_ = engine_.now();
  const auto ready_it = granule_ready_at_.find(flow::GranuleKey::of(id));
  if (ready_it != granule_ready_at_.end())
    report_.granule_dwell.push_back(engine_.now() - ready_it->second);

  // Barrier mode counts down its fixed batch; streaming completion goes
  // through seal() + notify_all_complete instead (the batch size is not
  // known until the download report lands).
  if (!streaming() && --preprocess_pending_ == 0) finish_preprocess();
}

void EomlWorkflow::finish_preprocess() {
  preprocess_done_ = true;
  report_.preprocess_span.end = engine_.now();
  publish_stage_event("preprocess", "completed",
                      {{"granules", std::to_string(report_.granules)},
                       {"tiles", std::to_string(report_.total_tiles)}});
  MFW_INFO(kComponent, "preprocessing complete: ", report_.total_tiles,
           " tiles at ",
           util::Table::num(report_.preprocess_throughput(), 2), " tiles/s");
  if (blocks_) {
    blocks_->stop();
  } else {
    slurm_.release(preprocess_job_);
  }
  monitor_->stop();
  check_shipment();
}

void EomlWorkflow::start_monitor() {
  flow::FsMonitorConfig mc;
  mc.pattern = std::string(kTilesDir) + "/*.ncl";
  mc.poll_interval = config_.poll_interval;
  monitor_ = std::make_unique<flow::FsMonitor>(
      engine_, defiant_fs_, mc,
      [this](const std::vector<storage::FileInfo>& files) {
        trigger_flows(files);
      });
  monitor_->start();
}

void EomlWorkflow::trigger_flows(const std::vector<storage::FileInfo>& files) {
  for (const auto& info : files) {
    if (!triggered_paths_.insert(info.path).second) continue;
    auto context = util::YamlNode::map();
    auto file = util::YamlNode::map();
    file.set("path", util::YamlNode::scalar(info.path));
    context.set("file", std::move(file));
    if (first_flow_time_ < 0) {
      first_flow_time_ = engine_.now();
      report_.inference_span.start = engine_.now();
      publish_stage_event("inference", "started");
    }
    runner_.start(inference_flow_, std::move(context),
                  [this](const flow::RunRecord& record,
                         const util::YamlNode& /*context*/) {
                    if (!record.succeeded) {
                      MFW_ERROR(kComponent, "inference flow failed: ",
                                record.error);
                    }
                    report_.inference_span.end = engine_.now();
                    check_shipment();
                  },
                  {info.path, granule_key_of_path(info.path)});
  }
}

std::vector<std::int32_t> EomlWorkflow::label_tiles(const std::string& path,
                                                    std::size_t count) {
  if (!model_ && config_.materialize && !config_.model_path.empty()) {
    // Lazy load: the model artifact is staged onto the Defiant filesystem by
    // the caller (or an earlier training run) after workflow construction.
    model_.emplace(ml::RiccModel::load(storage::HdflFile::deserialize(
        defiant_fs_.read_file(config_.model_path))));
    // The fused plan compiles straight off the loaded weights; the int8
    // plan additionally needs activation calibration, which happens lazily
    // on the first pixel-bearing tile file below.
    if (config_.encode_path == "fused")
      model_->set_encode_path(ml::RiccModel::EncodePath::kFused);
  }
  std::vector<std::int32_t> labels;
  labels.reserve(count);
  if (model_) {
    const auto file = preprocess::read_tile_file(defiant_fs_, path);
    const std::size_t pixel_tiles = preprocess::pixel_tile_count(file);
    if (config_.encode_path == "int8" && !model_->int8_ready() &&
        pixel_tiles > 0) {
      // Calibrate on this campaign's own tiles (first pixel file, capped):
      // deterministic under the event engine, no side-channel sample set.
      const std::size_t sample_n = std::min<std::size_t>(pixel_tiles, 32);
      std::vector<ml::Tensor> sample;
      sample.reserve(sample_n);
      for (std::size_t i = 0; i < sample_n; ++i) {
        preprocess::Tile tile = preprocess::tile_from_ncl(file, i);
        sample.emplace_back(
            std::vector<int>{tile.channels, tile.tile_size, tile.tile_size},
            std::move(tile.data));
      }
      model_->calibrate_int8(sample);
      model_->set_encode_path(ml::RiccModel::EncodePath::kInt8);
      MFW_INFO(kComponent, "int8 encode path calibrated on ", sample_n,
               " tiles from ", path);
    }
    if (pixel_tiles == count && config_.inference_tile_budget > 0) {
      // Bounded-memory path: stream decode -> batched encode under the
      // configured tile budget instead of materializing the whole granule.
      if (!model_->has_centroids())
        throw std::logic_error("label_tiles: model has no fitted centroids");
      preprocess::TileStreamOptions opts;
      opts.tile_budget = config_.inference_tile_budget;
      opts.batch_size = config_.inference_batch;
      const std::string paths[] = {path};
      const auto stats = preprocess::stream_tiles(
          defiant_fs_, paths, opts,
          [&](std::size_t, std::size_t,
              std::span<const preprocess::Tile> batch) {
            std::vector<ml::Tensor> inputs;
            inputs.reserve(batch.size());
            for (const auto& tile : batch)
              inputs.emplace_back(
                  std::vector<int>{tile.channels, tile.tile_size,
                                   tile.tile_size},
                  tile.data);
            const auto latents = model_->encode_batch(inputs);
            for (const auto& z : latents)
              labels.push_back(
                  ml::nearest_centroid(model_->centroids(), z.span()));
          });
      report_.inference_peak_tiles_resident =
          std::max(report_.inference_peak_tiles_resident,
                   stats.peak_tiles_resident);
      report_.inference_streamed_batches += stats.batches;
    } else {
      const auto tiles = preprocess::tiles_from_ncl(file);
      for (const auto& tile : tiles) {
        ml::Tensor input({tile.channels, tile.tile_size, tile.tile_size},
                         tile.data);
        labels.push_back(model_->predict(input));
      }
    }
    // Manifest-only files (no pixels) fall through to pseudo-labels below.
    if (labels.size() == count) return labels;
    labels.clear();
  }
  // Pseudo-labels: deterministic per (path, index) — the timing-only mode's
  // stand-in for the 42 AICCA classes.
  for (std::size_t i = 0; i < count; ++i) {
    labels.push_back(static_cast<std::int32_t>(
        util::mix64(std::hash<std::string>{}(path), i) % 42));
  }
  return labels;
}

void EomlWorkflow::register_actions() {
  // Published input/output schemas (§V-A) make the built-in flow
  // self-validating: malformed wiring fails fast with a named field.
  flow::ActionSchema infer_schema;
  infer_schema.inputs = {{"path", util::YamlNode::Kind::kScalar, true}};
  infer_schema.outputs = {{"count", util::YamlNode::Kind::kScalar, true},
                          {"labels", util::YamlNode::Kind::kList, true}};
  flow::ActionSchema append_schema;
  append_schema.inputs = {{"path", util::YamlNode::Kind::kScalar, true},
                          {"labels", util::YamlNode::Kind::kList, true}};
  append_schema.outputs = {{"ok", util::YamlNode::Kind::kScalar, true}};
  flow::ActionSchema move_schema;
  move_schema.inputs = {{"path", util::YamlNode::Kind::kScalar, true}};
  move_schema.outputs = {{"path", util::YamlNode::Kind::kScalar, true}};

  runner_.register_action(
      "inference.run",
      [this](const util::YamlNode& params, const util::YamlNode&,
             flow::ActionHandle handle) {
        const std::string path = params.require("path").as_string();
        std::size_t tiles = 0;
        try {
          tiles = preprocess::read_tile_summary(defiant_fs_, path).tile_count;
        } catch (const std::exception& e) {
          handle.fail(std::string("inference.run: ") + e.what());
          return;
        }
        auto desc = preprocess::make_inference_task(
            tiles, util::strformat("infer:%s", path.c_str()),
            config_.inference_cost);
        if (obs::TraceRecorder::instance().enabled()) {
          if (auto key = granule_key_of_path(path); !key.empty())
            desc.trace_args.emplace_back("granule", std::move(key));
        }
        inference_exec_.submit(desc, [this, path, tiles,
                                      succeed = handle.succeed](
                                         const compute::SimTaskResult&) {
          const auto labels = label_tiles(path, tiles);
          auto result = util::YamlNode::map();
          result.set("count", util::YamlNode::scalar(std::to_string(tiles)));
          auto list = util::YamlNode::list();
          for (auto label : labels)
            list.push_back(util::YamlNode::scalar(std::to_string(label)));
          result.set("labels", std::move(list));
          succeed(std::move(result));
        });
      },
      infer_schema);

  runner_.register_action(
      "labels.append",
      [this](const util::YamlNode& params, const util::YamlNode&,
             flow::ActionHandle handle) {
        try {
          const std::string path = params.require("path").as_string();
          std::vector<std::int32_t> labels;
          for (const auto& item : params.require("labels").items())
            labels.push_back(static_cast<std::int32_t>(item.as_int()));
          preprocess::append_labels(defiant_fs_, path, labels);
          report_.labeled_tiles += labels.size();
          auto result = util::YamlNode::map();
          result.set("ok", util::YamlNode::scalar("true"));
          handle.succeed(std::move(result));
        } catch (const std::exception& e) {
          handle.fail(std::string("labels.append: ") + e.what());
        }
      },
      append_schema);

  runner_.register_action(
      "files.move",
      [this](const util::YamlNode& params, const util::YamlNode&,
             flow::ActionHandle handle) {
        try {
          const std::string path = params.require("path").as_string();
          const std::string out =
              util::path_join(kOutboxDir, util::path_basename(path));
          defiant_fs_.rename(path, out);
          ++report_.labeled_files;
          auto result = util::YamlNode::map();
          result.set("path", util::YamlNode::scalar(out));
          handle.succeed(std::move(result));
        } catch (const std::exception& e) {
          handle.fail(std::string("files.move: ") + e.what());
        }
      },
      move_schema);
}

void EomlWorkflow::check_shipment() {
  if (shipping_ || !preprocess_done_) return;
  if (monitor_ && monitor_->running()) {
    // The monitor performs its drain poll shortly; re-check afterwards.
    engine_.schedule_after(config_.poll_interval, [this] { check_shipment(); });
    return;
  }
  if (runner_.active_runs() > 0) return;  // flow completion re-invokes us
  start_shipment();
}

void EomlWorkflow::start_shipment() {
  shipping_ = true;
  report_.shipment_span.start = engine_.now();
  if (report_.inference_span.ran())
    publish_stage_event("inference", "completed",
                        {{"files", std::to_string(report_.labeled_files)},
                         {"tiles", std::to_string(report_.labeled_tiles)}});
  publish_stage_event("shipment", "started");
  const auto outbox = defiant_fs_.list(std::string(kOutboxDir) + "/*.ncl");
  if (outbox.empty()) {
    report_.shipment_span.end = engine_.now();
    finished_ = true;
    publish_stage_event("shipment", "completed", {{"files", "0"}});
    MFW_WARN(kComponent, "nothing to ship");
    return;
  }
  transfer::TransferRequest request;
  request.source = &defiant_fs_;
  request.destination = &orion_fs_;
  request.pattern = std::string(kOutboxDir) + "/*.ncl";
  request.dest_prefix = kAiccaDir;
  request.parallel_streams = config_.shipment_streams;
  shipper_.submit(request, [this](const transfer::TransferEvent& event) {
    if (event.kind == transfer::TransferEventKind::kFileDone) {
      ++report_.shipped_files;
    } else if (event.kind == transfer::TransferEventKind::kSucceeded) {
      report_.shipment_span.end = engine_.now();
      report_.shipped_bytes = orion_fs_.total_bytes();
      finished_ = true;
      publish_stage_event("shipment", "completed",
                          {{"files", std::to_string(report_.shipped_files)}});
      MFW_INFO(kComponent, "shipment complete: ", report_.shipped_files,
               " files on Orion");
    } else if (event.kind == transfer::TransferEventKind::kFailed) {
      throw std::runtime_error("shipment failed: " + event.message);
    }
  });
}

}  // namespace pipeline
