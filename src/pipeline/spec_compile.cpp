#include "pipeline/spec_compile.hpp"

#include <algorithm>

namespace mfw::pipeline {

namespace {

// Mean MOD02 granule footprint used for the WAN walltime model; the actual
// run sizes granules from the catalog, this only parameterizes the spec's
// transfer claim.
constexpr double kMeanGranuleBytes = 178.0 * 1024 * 1024;

}  // namespace

spec::WorkflowSpec spec_for_config(const EomlConfig& config) {
  spec::WorkflowSpec spec;
  spec.name = "eoml_paper";

  spec::StageSpec download;
  download.name = "download";
  download.kind = "transfer";
  download.claim.nodes = 1;
  download.claim.workers_per_node = config.download_workers;
  download.claim.wan_bps = config.wan_capacity_bps;
  download.claim.bytes_per_item = kMeanGranuleBytes;
  spec.stages.push_back(std::move(download));

  spec::StageSpec preprocess;
  preprocess.name = "preprocess";
  preprocess.inputs = {"download"};
  preprocess.claim.nodes = config.preprocess_nodes;
  preprocess.claim.workers_per_node = config.workers_per_node;
  preprocess.claim.cpu_seconds_per_item = config.preprocess_cost.cpu_seconds;
  preprocess.claim.shared_demand_per_item =
      config.preprocess_cost.demand_per_tile;
  spec.stages.push_back(std::move(preprocess));

  spec::StageSpec monitor;
  monitor.name = "monitor";
  monitor.inputs = {"preprocess"};
  monitor.claim.nodes = 1;
  monitor.claim.workers_per_node = 1;
  spec.stages.push_back(std::move(monitor));

  spec::StageSpec inference;
  inference.name = "inference";
  inference.inputs = {"monitor"};
  inference.claim.nodes = 1;
  inference.claim.workers_per_node = config.inference_workers;
  inference.claim.cpu_seconds_per_item = config.inference_cost.cpu_seconds;
  inference.claim.shared_demand_per_item =
      config.inference_cost.demand_per_tile;
  spec.stages.push_back(std::move(inference));

  spec::StageSpec shipment;
  shipment.name = "shipment";
  shipment.kind = "transfer";
  shipment.inputs = {"inference"};
  shipment.claim.nodes = 1;
  shipment.claim.workers_per_node = config.shipment_streams;
  spec.stages.push_back(std::move(shipment));

  // Edge modes. The download->preprocess edge is the paper's scheduling
  // switch; the monitor/inference hops are event-driven in both modes (the
  // FsMonitor triggers per batch); shipment waits for the whole labeled set.
  spec.dataflow = {
      {"download", "preprocess",
       config.scheduling == SchedulingMode::kStreaming
           ? spec::EdgeMode::kStreaming
           : spec::EdgeMode::kBarrier,
       0},
      {"preprocess", "monitor", spec::EdgeMode::kStreaming, 0},
      {"monitor", "inference", spec::EdgeMode::kStreaming, 0},
      {"inference", "shipment", spec::EdgeMode::kBarrier, 0},
  };

  spec.campaign.count = 1;
  spec.campaign.items = config.max_files
                            ? static_cast<int>(*config.max_files)
                            : spec.campaign.items;

  // Config-declared SLOs ride along so StageGraph::compile validates their
  // stage references against the builtin stages with the config's own line
  // anchors, and the watch layer can pick them up from the compiled plan.
  spec.slo = config.slos;
  return spec;
}

spec::FacilityCaps caps_for_config(const EomlConfig& config) {
  spec::FacilityCaps caps;
  caps.name = "olcf_defiant";
  caps.total_nodes = config.facility_total_nodes;
  caps.max_workers_per_node = std::max(64, config.workers_per_node);
  caps.wan_bps = config.wan_capacity_bps;
  return caps;
}

spec::StageGraph compile_config(const EomlConfig& config) {
  return spec::StageGraph::compile(spec_for_config(config),
                                   caps_for_config(config));
}

}  // namespace mfw::pipeline
