#include "pipeline/timeline.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/ascii_plot.hpp"
#include "util/table.hpp"

namespace mfw::pipeline {

int StageTimeline::at(double t) const {
  int value = 0;
  for (const auto& [time, count] : transitions) {
    if (time > t) break;
    value = count;
  }
  return value;
}

int StageTimeline::peak() const {
  int peak = 0;
  for (const auto& [time, count] : transitions) peak = std::max(peak, count);
  return peak;
}

void TimelineRecorder::add_stage(
    std::string stage, std::vector<std::pair<double, int>> transitions) {
  stages_.push_back(StageTimeline{std::move(stage), std::move(transitions)});
}

const StageTimeline& TimelineRecorder::stage(std::string_view name) const {
  const auto it =
      std::find_if(stages_.begin(), stages_.end(),
                   [&](const StageTimeline& s) { return s.stage == name; });
  if (it == stages_.end())
    throw std::invalid_argument("no stage named " + std::string(name));
  return *it;
}

double TimelineRecorder::end_time() const {
  double end = 0.0;
  for (const auto& stage : stages_) {
    if (!stage.transitions.empty())
      end = std::max(end, stage.transitions.back().first);
  }
  return end;
}

std::string TimelineRecorder::to_csv(std::size_t samples) const {
  std::vector<std::string> header{"time_s"};
  for (const auto& stage : stages_) header.push_back(stage.stage);
  util::Table table(std::move(header));
  const double end = end_time();
  for (std::size_t i = 0; i <= samples; ++i) {
    const double t = end * static_cast<double>(i) / static_cast<double>(samples);
    std::vector<std::string> row{util::Table::num(t, 2)};
    for (const auto& stage : stages_)
      row.push_back(std::to_string(stage.at(t)));
    table.add_row(std::move(row));
  }
  return table.to_csv();
}

std::string TimelineRecorder::render(std::size_t samples, std::size_t width,
                                     std::size_t height) const {
  return render_window(0.0, end_time(), samples, width, height);
}

std::string TimelineRecorder::render_window(double from, double to,
                                            std::size_t samples,
                                            std::size_t width,
                                            std::size_t height) const {
  if (!(to > from)) to = from + 1.0;
  std::vector<util::Series> series;
  static constexpr char kMarkers[] = {'D', 'P', 'I', 'S', '+', 'o'};
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    util::Series line;
    line.name = stages_[s].stage;
    line.marker = kMarkers[s % sizeof kMarkers];
    for (std::size_t i = 0; i <= samples; ++i) {
      const double t = from + (to - from) * static_cast<double>(i) /
                                  static_cast<double>(samples);
      line.xs.push_back(t);
      line.ys.push_back(stages_[s].at(t));
    }
    series.push_back(std::move(line));
  }
  return util::ascii_plot(series, width, height, "time (s)", "active workers");
}

}  // namespace mfw::pipeline
