#include "preprocess/tiler.hpp"

#include <stdexcept>

namespace mfw::preprocess {

namespace {
void check_consistent(const modis::Mod02Granule& mod02,
                      const modis::Mod03Granule& mod03,
                      const modis::Mod06Granule& mod06) {
  auto same = [](const modis::GranuleSpec& a, const modis::GranuleSpec& b) {
    return a.satellite == b.satellite && a.year == b.year &&
           a.day_of_year == b.day_of_year && a.slot == b.slot &&
           a.geometry.rows == b.geometry.rows &&
           a.geometry.cols == b.geometry.cols;
  };
  if (!same(mod02.spec, mod03.spec) || !same(mod02.spec, mod06.spec))
    throw std::invalid_argument(
        "make_tiles: product granules do not match (satellite/time/geometry)");
}
}  // namespace

TilerResult make_tiles(const modis::Mod02Granule& mod02,
                       const modis::Mod03Granule& mod03,
                       const modis::Mod06Granule& mod06,
                       const TilerOptions& options) {
  check_consistent(mod02, mod03, mod06);
  if (options.tile_size <= 0 || options.channels <= 0)
    throw std::invalid_argument("make_tiles: bad options");
  const auto& geometry = mod02.spec.geometry;
  if (options.channels > geometry.bands)
    throw std::invalid_argument("make_tiles: more channels than bands");

  TilerResult result;
  result.daytime = mod02.daytime;
  const int ts = options.tile_size;
  const int tile_rows = geometry.rows / ts;
  const int tile_cols = geometry.cols / ts;
  result.candidate_positions = tile_rows * tile_cols;
  if (!mod02.daytime) return result;  // no valid reflective bands at night

  const int cols = geometry.cols;
  for (int tr = 0; tr < tile_rows; ++tr) {
    for (int tc = 0; tc < tile_cols; ++tc) {
      const int r0 = tr * ts;
      const int c0 = tc * ts;
      // Pass 1: masks + aggregates.
      bool any_land = false;
      int cloudy = 0;
      double lat_sum = 0.0, lon_sum = 0.0;
      double cot_sum = 0.0, ctp_sum = 0.0, cwp_sum = 0.0;
      int cloud_pixels = 0;
      for (int r = r0; r < r0 + ts && !any_land; ++r) {
        for (int c = c0; c < c0 + ts; ++c) {
          const std::size_t i = static_cast<std::size_t>(r) * cols + c;
          if (mod03.land_mask[i]) {
            any_land = true;
            break;
          }
          lat_sum += mod03.latitude[i];
          lon_sum += mod03.longitude[i];
          if (mod06.cloud_mask[i]) {
            ++cloudy;
            cot_sum += mod06.cloud_optical_thickness[i];
            // Cloud-top pressure uses the fill value outside clouds; only
            // cloudy pixels contribute.
            ctp_sum += mod06.cloud_top_pressure[i];
            cwp_sum += mod06.cloud_water_path[i];
            ++cloud_pixels;
          }
        }
      }
      if (any_land) {
        ++result.rejected_land;
        continue;
      }
      const double pixels = static_cast<double>(ts) * ts;
      const double cloud_fraction = cloudy / pixels;
      if (cloud_fraction < options.min_cloud_fraction) {
        ++result.rejected_clear;
        continue;
      }
      // Pass 2: copy the leading `channels` bands.
      Tile tile;
      tile.origin_row = r0;
      tile.origin_col = c0;
      tile.tile_size = ts;
      tile.channels = options.channels;
      tile.data.resize(static_cast<std::size_t>(options.channels) * ts * ts);
      std::size_t out = 0;
      for (int b = 0; b < options.channels; ++b) {
        for (int r = r0; r < r0 + ts; ++r) {
          for (int c = c0; c < c0 + ts; ++c) {
            tile.data[out++] = mod02.at(b, r, c);
          }
        }
      }
      tile.center_lat = static_cast<float>(lat_sum / pixels);
      tile.center_lon = static_cast<float>(lon_sum / pixels);
      tile.cloud_fraction = static_cast<float>(cloud_fraction);
      if (cloud_pixels > 0) {
        tile.mean_optical_thickness =
            static_cast<float>(cot_sum / cloud_pixels);
        tile.mean_cloud_top_pressure =
            static_cast<float>(ctp_sum / cloud_pixels);
        tile.mean_water_path = static_cast<float>(cwp_sum / cloud_pixels);
      }
      result.tiles.push_back(std::move(tile));
    }
  }
  return result;
}

}  // namespace mfw::preprocess
