// Swath -> tile decomposition ("(2) Preprocess" stage, the real computation).
//
// Subdivides a MODIS swath into non-overlapping square tiles, joins the
// three products at each pixel, and applies the AICCA ocean-cloud selection:
// a tile is kept iff it contains *no* land pixels, the granule is daytime
// (reflective bands valid), and its cloud fraction (from the MOD06 cloud
// mask) is at least `min_cloud_fraction` (30% in the papers). Kept tiles
// carry the first `channels` radiance bands plus per-tile physical
// aggregates from MOD06 used by downstream climate analysis.
#pragma once

#include <vector>

#include "modis/products.hpp"

namespace mfw::preprocess {

struct TilerOptions {
  int tile_size = 128;
  int channels = 6;  // leading MOD02 bands to keep (the RICC bands)
  double min_cloud_fraction = 0.3;
};

struct Tile {
  int origin_row = 0;
  int origin_col = 0;
  int tile_size = 0;
  int channels = 0;
  /// [channels][tile_size][tile_size], row-major.
  std::vector<float> data;
  float center_lat = 0.0f;
  float center_lon = 0.0f;
  float cloud_fraction = 0.0f;
  float mean_optical_thickness = 0.0f;
  float mean_cloud_top_pressure = 0.0f;
  float mean_water_path = 0.0f;

  float at(int channel, int row, int col) const {
    return data[(static_cast<std::size_t>(channel) * tile_size + row) *
                    tile_size +
                col];
  }
};

struct TilerResult {
  bool daytime = false;
  int candidate_positions = 0;  // full tile grid positions
  int rejected_land = 0;
  int rejected_clear = 0;       // ocean tiles under the cloud threshold
  std::vector<Tile> tiles;      // selected ocean-cloud tiles
};

/// Runs the tiler over one granule triplet. All three granules must share
/// the same spec/geometry; throws std::invalid_argument otherwise.
TilerResult make_tiles(const modis::Mod02Granule& mod02,
                       const modis::Mod03Granule& mod03,
                       const modis::Mod06Granule& mod06,
                       const TilerOptions& options = {});

}  // namespace mfw::preprocess
