#include "preprocess/tile_io.hpp"

#include <stdexcept>

namespace mfw::preprocess {

namespace {

void put_granule_attrs(storage::NclFile& file, const modis::GranuleId& granule) {
  auto& attrs = file.attrs();
  attrs["granule"] = granule.filename();
  attrs["satellite"] = modis::satellite_name(granule.satellite);
  attrs["year"] = std::to_string(granule.year);
  attrs["day_of_year"] = std::to_string(granule.day_of_year);
  attrs["slot"] = std::to_string(granule.slot);
}

modis::GranuleId granule_from_attrs(const storage::NclFile& file) {
  const auto it = file.attrs().find("granule");
  if (it == file.attrs().end())
    throw storage::FormatError("tile file missing 'granule' attribute");
  // The MOD02 filename encodes satellite/date/slot; parse it back.
  const auto id = modis::parse_granule_filename(it->second);
  if (!id) throw storage::FormatError("bad granule attribute: " + it->second);
  return *id;
}

}  // namespace

void write_tile_file(storage::FileSystem& fs, const std::string& path,
                     const modis::GranuleId& granule,
                     const TilerResult& result) {
  storage::NclFile file;
  put_granule_attrs(file, granule);
  file.attrs()["kind"] = "tiles";
  const std::size_t n = result.tiles.size();
  file.attrs()["tile_count"] = std::to_string(n);
  if (n > 0) {
    const auto& first = result.tiles.front();
    file.add_dim("tile", n);
    file.add_dim("channel", static_cast<std::uint64_t>(first.channels));
    file.add_dim("y", static_cast<std::uint64_t>(first.tile_size));
    file.add_dim("x", static_cast<std::uint64_t>(first.tile_size));

    const std::size_t per_tile = first.data.size();
    std::vector<float> pixels;
    pixels.reserve(n * per_tile);
    std::vector<float> lat, lon, cf, cot, ctp, cwp;
    std::vector<std::int32_t> orow, ocol;
    for (const auto& tile : result.tiles) {
      if (tile.data.size() != per_tile)
        throw std::invalid_argument("write_tile_file: ragged tile sizes");
      pixels.insert(pixels.end(), tile.data.begin(), tile.data.end());
      lat.push_back(tile.center_lat);
      lon.push_back(tile.center_lon);
      cf.push_back(tile.cloud_fraction);
      cot.push_back(tile.mean_optical_thickness);
      ctp.push_back(tile.mean_cloud_top_pressure);
      cwp.push_back(tile.mean_water_path);
      orow.push_back(tile.origin_row);
      ocol.push_back(tile.origin_col);
    }
    file.add_f32("tiles", {"tile", "channel", "y", "x"}, pixels);
    file.add_f32("latitude", {"tile"}, lat);
    file.add_f32("longitude", {"tile"}, lon);
    file.add_f32("cloud_fraction", {"tile"}, cf);
    file.add_f32("cloud_optical_thickness", {"tile"}, cot);
    file.add_f32("cloud_top_pressure", {"tile"}, ctp);
    file.add_f32("cloud_water_path", {"tile"}, cwp);
    file.add_i32("origin_row", {"tile"}, orow);
    file.add_i32("origin_col", {"tile"}, ocol);
  }
  fs.write_file(path, file.serialize());
}

void write_tile_manifest(storage::FileSystem& fs, const std::string& path,
                         const modis::GranuleId& granule,
                         std::size_t tile_count) {
  storage::NclFile file;
  put_granule_attrs(file, granule);
  file.attrs()["kind"] = "tile-manifest";
  file.attrs()["tile_count"] = std::to_string(tile_count);
  fs.write_file(path, file.serialize());
}

TileFileSummary read_tile_summary(storage::FileSystem& fs,
                                  const std::string& path) {
  const auto file = read_tile_file(fs, path);
  TileFileSummary summary;
  // The granule attr stores a MOD02 filename; keep the id it parses to.
  summary.granule = granule_from_attrs(file);
  const auto it = file.attrs().find("tile_count");
  if (it == file.attrs().end())
    throw storage::FormatError("tile file missing 'tile_count'");
  summary.tile_count = static_cast<std::size_t>(std::stoull(it->second));
  summary.has_pixel_data = file.has_var("tiles");
  summary.has_labels = file.has_var("label") ||
                       file.attrs().find("labeled") != file.attrs().end();
  return summary;
}

storage::NclFile read_tile_file(storage::FileSystem& fs,
                                const std::string& path) {
  return storage::NclFile::deserialize(fs.read_file(path));
}

std::size_t pixel_tile_count(const storage::NclFile& file) {
  if (!file.has_var("tiles")) return 0;
  return static_cast<std::size_t>(file.dim("tile"));
}

Tile tile_from_ncl(const storage::NclFile& file, std::size_t index) {
  const std::size_t n = pixel_tile_count(file);
  if (index >= n)
    throw std::out_of_range("tile_from_ncl: tile " + std::to_string(index) +
                            " of " + std::to_string(n));
  const int channels = static_cast<int>(file.dim("channel"));
  const int ts = static_cast<int>(file.dim("y"));
  const auto pixels = file.var("tiles").as_f32();
  const std::size_t per_tile = static_cast<std::size_t>(channels) * ts * ts;
  Tile tile;
  tile.tile_size = ts;
  tile.channels = channels;
  tile.origin_row = file.var("origin_row").as_i32()[index];
  tile.origin_col = file.var("origin_col").as_i32()[index];
  tile.center_lat = file.var("latitude").as_f32()[index];
  tile.center_lon = file.var("longitude").as_f32()[index];
  tile.cloud_fraction = file.var("cloud_fraction").as_f32()[index];
  tile.mean_optical_thickness =
      file.var("cloud_optical_thickness").as_f32()[index];
  tile.mean_cloud_top_pressure =
      file.var("cloud_top_pressure").as_f32()[index];
  tile.mean_water_path = file.var("cloud_water_path").as_f32()[index];
  tile.data.assign(
      pixels.begin() + static_cast<std::ptrdiff_t>(index * per_tile),
      pixels.begin() + static_cast<std::ptrdiff_t>((index + 1) * per_tile));
  return tile;
}

std::vector<Tile> tiles_from_ncl(const storage::NclFile& file) {
  std::vector<Tile> out;
  const std::size_t n = pixel_tile_count(file);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(tile_from_ncl(file, i));
  return out;
}

void append_labels(storage::FileSystem& fs, const std::string& path,
                   std::span<const std::int32_t> labels) {
  auto file = read_tile_file(fs, path);
  const auto it = file.attrs().find("tile_count");
  if (it == file.attrs().end())
    throw storage::FormatError("append_labels: not a tile file");
  const auto count = static_cast<std::size_t>(std::stoull(it->second));
  if (labels.size() != count)
    throw std::invalid_argument("append_labels: got " +
                                std::to_string(labels.size()) +
                                " labels for " + std::to_string(count) +
                                " tiles");
  if (file.has_dim("tile")) {
    file.add_i32("label", {"tile"},
                 std::vector<std::int32_t>(labels.begin(), labels.end()));
  }
  file.attrs()["labeled"] = "1";
  fs.write_file(path, file.serialize());
}

}  // namespace mfw::preprocess
