// Bounded-memory tile streaming (DESIGN.md §13): decode → materialize →
// batched consume without ever holding a whole campaign's tiles in memory.
//
// The classic inference path materializes every tile of a granule file
// (tiles_from_ncl) before the encoder sees the first one; at campaign scale
// that is O(tiles_per_granule) resident Tiles per file and a cold encoder
// while decode runs. stream_tiles instead drives a producer/consumer pair in
// the style of per-stage ISP pipelines (cf. libpisp): the producer decodes
// granule files and materializes fixed-size batches, the consumer (the
// caller's callback, typically a batched encode) drains them, and a fixed
// *tile budget* bounds how many materialized tiles may be resident at once —
// the producer blocks rather than run ahead of the budget.
//
// Determinism: batches are delivered strictly in (file order, tile order),
// on the caller's thread, regardless of pool size — the pool only overlaps
// decode/materialize with consumption, it never reorders delivery. With
// pool == nullptr the same batches are produced sequentially inline (no
// overlap, same bounded memory, same callback sequence).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "preprocess/tiler.hpp"
#include "storage/filesystem.hpp"

namespace mfw::util {
class ThreadPool;
}

namespace mfw::preprocess {

struct TileStreamOptions {
  /// Max materialized-but-unconsumed tiles resident at any instant
  /// (producer queue + the batch the consumer is processing). Must be
  /// >= batch_size.
  std::size_t tile_budget = 256;
  /// Tiles per delivered batch (the last batch of a file may be smaller).
  std::size_t batch_size = 32;
  /// Overlaps decode with consumption when non-null (one producer task);
  /// nullptr streams sequentially on the caller's thread.
  util::ThreadPool* pool = nullptr;
};

struct TileStreamStats {
  std::size_t files = 0;    // files visited (including manifests)
  std::size_t tiles = 0;    // tiles delivered
  std::size_t batches = 0;  // callbacks made
  /// High-water mark of materialized tiles resident at once; always
  /// <= options.tile_budget.
  std::size_t peak_tiles_resident = 0;
};

/// Batch consumer: `file_index` indexes into `paths`, `first_tile` is the
/// in-file index of batch[0]. The span is only valid during the call.
using TileBatchFn = std::function<void(
    std::size_t file_index, std::size_t first_tile, std::span<const Tile> batch)>;

/// Streams every pixel-bearing tile of `paths` (ncl tile files on `fs`)
/// through `on_batch` under the options' tile budget. Manifest files (no
/// pixel data) are visited but deliver no batches. Throws
/// std::invalid_argument on bad options; exceptions from decode or the
/// callback abort the stream (the producer is joined) and propagate.
TileStreamStats stream_tiles(storage::FileSystem& fs,
                             std::span<const std::string> paths,
                             const TileStreamOptions& options,
                             const TileBatchFn& on_batch);

}  // namespace mfw::preprocess
