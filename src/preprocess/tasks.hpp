// Preprocessing work units: the real function executed per granule, and the
// calibrated cost descriptors the discrete-event executor schedules.
//
// The real path (run_preprocess) is what a worker does: read the granule
// triplet from the facility filesystem, run the tiler, write the tile file.
// The simulated path (make_preprocess_task) describes that same work to the
// ClusterExecutor: a fixed CPU phase (file open/decode) plus shared-resource
// demand proportional to the tiles the granule yields — the quantity that
// Table I's tiles/second throughput counts.
#pragma once

#include <string>

#include "compute/task.hpp"
#include "modis/catalog.hpp"
#include "preprocess/tiler.hpp"
#include "storage/filesystem.hpp"

namespace mfw::preprocess {

struct PreprocessCostModel {
  /// Fixed per-file CPU cost (open, HDF decode, metadata) in seconds.
  double cpu_seconds = 0.3;
  /// Shared-resource demand per selected tile (tile-equivalents; the node
  /// contention law is calibrated in the same unit).
  double demand_per_tile = 1.0;
  /// Demand for granules yielding no tiles (night / all-land / clear): the
  /// masks must still be scanned.
  double min_demand = 0.5;
};

/// Builds the executor descriptor for preprocessing one MOD02 granule, using
/// sparse workload estimation (no pixel data materialized). If `out_stats`
/// is non-null it receives the estimate.
compute::SimTaskDesc make_preprocess_task(
    const modis::GranuleGenerator& generator, const modis::GranuleId& id,
    const PreprocessCostModel& cost = {},
    modis::GranuleStats* out_stats = nullptr);

struct InferenceCostModel {
  /// Fixed per-batch cost (model/session setup amortization) in seconds.
  double cpu_seconds = 0.05;
  /// Shared demand per tile inferred. Inference is far cheaper than tile
  /// creation (encode + nearest-centroid vs full swath I/O).
  double demand_per_tile = 0.02;
};

/// Builds the executor descriptor for labelling `tile_count` tiles.
compute::SimTaskDesc make_inference_task(std::size_t tile_count,
                                         const std::string& label,
                                         const InferenceCostModel& cost = {});

/// Paths of one granule triplet on the staging filesystem.
struct GranulePaths {
  std::string mod02;
  std::string mod03;
  std::string mod06;
};

/// The real preprocessing function: reads the triplet (hdfl), tiles it, and
/// writes the tile file to `out_path` on `out_fs`. Returns the tiler result
/// (pixel data included).
TilerResult run_preprocess(storage::FileSystem& fs, const GranulePaths& in,
                           storage::FileSystem& out_fs,
                           const std::string& out_path,
                           const TilerOptions& options = {});

}  // namespace mfw::preprocess
