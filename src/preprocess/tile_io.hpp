// Tile file I/O: one ncl container per granule, holding the selected tiles,
// their geolocation/physical metadata, and — after inference — the appended
// `label` variable, matching the paper's NetCDF outputs.
//
// Two flavours exist:
//   - full files (write_tile_file): tile pixel data included; what the real
//     preprocessing stage emits when content is materialized.
//   - manifest files (write_tile_manifest): metadata + tile count only; what
//     the pure-timing simulation emits so downstream stages (monitor,
//     inference accounting, shipment) exercise identical code paths without
//     materializing pixels.
#pragma once

#include <optional>
#include <string>

#include "modis/catalog.hpp"
#include "preprocess/tiler.hpp"
#include "storage/filesystem.hpp"
#include "storage/ncl.hpp"

namespace mfw::preprocess {

struct TileFileSummary {
  modis::GranuleId granule;
  std::size_t tile_count = 0;
  bool has_pixel_data = false;
  bool has_labels = false;
};

/// Serializes a TilerResult (with pixel data) to `path` on `fs`.
void write_tile_file(storage::FileSystem& fs, const std::string& path,
                     const modis::GranuleId& granule, const TilerResult& result);

/// Serializes a metadata-only manifest recording `tile_count` tiles.
void write_tile_manifest(storage::FileSystem& fs, const std::string& path,
                         const modis::GranuleId& granule,
                         std::size_t tile_count);

/// Parses either flavour's header.
TileFileSummary read_tile_summary(storage::FileSystem& fs,
                                  const std::string& path);

/// Loads the full ncl container (throws storage::FormatError on stubs when
/// pixel data is required by the caller).
storage::NclFile read_tile_file(storage::FileSystem& fs,
                                const std::string& path);

/// Number of tiles whose pixel data `file` actually carries (0 for
/// manifests, which record a tile_count attribute but no `tiles` variable).
std::size_t pixel_tile_count(const storage::NclFile& file);

/// Extracts tile `index` (with pixel data) from a full tile file. The ncl
/// variable accessors are zero-copy spans, so this materializes exactly one
/// Tile — the primitive the bounded-memory streaming reader builds on.
Tile tile_from_ncl(const storage::NclFile& file, std::size_t index);

/// Extracts all tiles (with pixel data) from a full tile file.
std::vector<Tile> tiles_from_ncl(const storage::NclFile& file);

/// Appends an i32 `label` variable (one per tile) and rewrites the file.
/// For manifests, records the labels' presence in attributes only.
void append_labels(storage::FileSystem& fs, const std::string& path,
                   std::span<const std::int32_t> labels);

}  // namespace mfw::preprocess
