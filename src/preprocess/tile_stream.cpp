#include "preprocess/tile_stream.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>

#include "preprocess/tile_io.hpp"
#include "util/thread_pool.hpp"

namespace mfw::preprocess {

namespace {

void validate(const TileStreamOptions& options) {
  if (options.batch_size == 0)
    throw std::invalid_argument("stream_tiles: batch_size must be >= 1");
  if (options.tile_budget < options.batch_size)
    throw std::invalid_argument(
        "stream_tiles: tile_budget must be >= batch_size");
}

TileStreamStats stream_sequential(storage::FileSystem& fs,
                                  std::span<const std::string> paths,
                                  const TileStreamOptions& options,
                                  const TileBatchFn& on_batch) {
  TileStreamStats stats;
  stats.files = paths.size();
  std::vector<Tile> batch;
  for (std::size_t f = 0; f < paths.size(); ++f) {
    const storage::NclFile file = read_tile_file(fs, paths[f]);
    const std::size_t n = pixel_tile_count(file);
    for (std::size_t first = 0; first < n; first += options.batch_size) {
      const std::size_t last = std::min(n, first + options.batch_size);
      batch.clear();
      for (std::size_t i = first; i < last; ++i)
        batch.push_back(tile_from_ncl(file, i));
      stats.peak_tiles_resident =
          std::max(stats.peak_tiles_resident, batch.size());
      on_batch(f, first, batch);
      stats.tiles += batch.size();
      ++stats.batches;
    }
  }
  return stats;
}

}  // namespace

TileStreamStats stream_tiles(storage::FileSystem& fs,
                             std::span<const std::string> paths,
                             const TileStreamOptions& options,
                             const TileBatchFn& on_batch) {
  validate(options);
  if (options.pool == nullptr)
    return stream_sequential(fs, paths, options, on_batch);

  struct Batch {
    std::size_t file_index = 0;
    std::size_t first_tile = 0;
    std::vector<Tile> tiles;
  };

  std::mutex mu;
  std::condition_variable cv_space;  // producer waits for budget headroom
  std::condition_variable cv_data;   // consumer waits for batches / eof
  std::deque<Batch> queue;
  std::size_t resident = 0;  // materialized tiles: queued + being consumed
  std::size_t peak = 0;
  bool aborted = false;
  bool producer_done = false;
  std::exception_ptr producer_error;

  auto produce_all = [&] {
    for (std::size_t f = 0; f < paths.size(); ++f) {
      const storage::NclFile file = read_tile_file(fs, paths[f]);
      const std::size_t n = pixel_tile_count(file);
      for (std::size_t first = 0; first < n; first += options.batch_size) {
        const std::size_t last = std::min(n, first + options.batch_size);
        const std::size_t count = last - first;
        {
          // Reserve budget *before* materializing, so resident tiles never
          // exceed the budget even transiently.
          std::unique_lock lock(mu);
          cv_space.wait(lock, [&] {
            return aborted || resident + count <= options.tile_budget;
          });
          if (aborted) return;
          resident += count;
          peak = std::max(peak, resident);
        }
        Batch batch;
        batch.file_index = f;
        batch.first_tile = first;
        batch.tiles.reserve(count);
        for (std::size_t i = first; i < last; ++i)
          batch.tiles.push_back(tile_from_ncl(file, i));
        {
          std::lock_guard lock(mu);
          if (aborted) return;  // budget reservation is moot past abort
          queue.push_back(std::move(batch));
          cv_data.notify_one();
        }
      }
    }
  };
  const bool submitted = options.pool->submit([&] {
    try {
      produce_all();
    } catch (...) {
      std::lock_guard lock(mu);
      producer_error = std::current_exception();
    }
    // Final touch of the shared state: done + notify under the lock, so the
    // consumer cannot outrun this task and destroy mu/cv beneath it.
    std::lock_guard lock(mu);
    producer_done = true;
    cv_data.notify_all();
  });
  if (!submitted) {
    // Pool is shutting down; fall back to the inline path.
    return stream_sequential(fs, paths, options, on_batch);
  }

  TileStreamStats stats;
  stats.files = paths.size();
  std::exception_ptr consumer_error;
  for (;;) {
    Batch batch;
    {
      std::unique_lock lock(mu);
      cv_data.wait(lock, [&] { return !queue.empty() || producer_done; });
      if (queue.empty()) break;  // producer done and fully drained
      batch = std::move(queue.front());
      queue.pop_front();
    }
    if (consumer_error == nullptr) {
      try {
        on_batch(batch.file_index, batch.first_tile, batch.tiles);
        stats.tiles += batch.tiles.size();
        ++stats.batches;
      } catch (...) {
        consumer_error = std::current_exception();
        std::lock_guard lock(mu);
        aborted = true;
        cv_space.notify_all();
      }
    }
    {
      std::lock_guard lock(mu);
      resident -= batch.tiles.size();
      cv_space.notify_all();
    }
  }
  stats.peak_tiles_resident = peak;
  if (consumer_error != nullptr) std::rethrow_exception(consumer_error);
  if (producer_error != nullptr) std::rethrow_exception(producer_error);
  return stats;
}

}  // namespace mfw::preprocess
