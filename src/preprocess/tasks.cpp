#include "preprocess/tasks.hpp"

#include <algorithm>

#include "preprocess/tile_io.hpp"
#include "storage/hdfl.hpp"

namespace mfw::preprocess {

compute::SimTaskDesc make_preprocess_task(
    const modis::GranuleGenerator& generator, const modis::GranuleId& id,
    const PreprocessCostModel& cost, modis::GranuleStats* out_stats) {
  modis::GranuleSpec spec;
  spec.satellite = id.satellite;
  spec.year = id.year;
  spec.day_of_year = id.day_of_year;
  spec.slot = id.slot;
  spec.geometry = modis::kFullGeometry;
  const auto stats = modis::estimate_granule_stats(generator, spec);
  if (out_stats) *out_stats = stats;

  compute::SimTaskDesc desc;
  desc.cpu_seconds = cost.cpu_seconds;
  desc.shared_demand =
      std::max(cost.min_demand,
               cost.demand_per_tile * static_cast<double>(stats.selected_tiles));
  desc.payload = static_cast<double>(stats.selected_tiles);
  desc.label = id.filename();
  return desc;
}

compute::SimTaskDesc make_inference_task(std::size_t tile_count,
                                         const std::string& label,
                                         const InferenceCostModel& cost) {
  compute::SimTaskDesc desc;
  desc.cpu_seconds = cost.cpu_seconds;
  desc.shared_demand =
      std::max(cost.demand_per_tile,
               cost.demand_per_tile * static_cast<double>(tile_count));
  desc.payload = static_cast<double>(tile_count);
  desc.label = label;
  return desc;
}

TilerResult run_preprocess(storage::FileSystem& fs, const GranulePaths& in,
                           storage::FileSystem& out_fs,
                           const std::string& out_path,
                           const TilerOptions& options) {
  const auto mod02 = modis::Mod02Granule::from_hdfl(
      storage::HdflFile::deserialize(fs.read_file(in.mod02)));
  const auto mod03 = modis::Mod03Granule::from_hdfl(
      storage::HdflFile::deserialize(fs.read_file(in.mod03)));
  const auto mod06 = modis::Mod06Granule::from_hdfl(
      storage::HdflFile::deserialize(fs.read_file(in.mod06)));
  TilerResult result = make_tiles(mod02, mod03, mod06, options);

  modis::GranuleId id;
  id.product = modis::ProductKind::kMod02;
  id.satellite = mod02.spec.satellite;
  id.year = mod02.spec.year;
  id.day_of_year = mod02.spec.day_of_year;
  id.slot = mod02.spec.slot;
  write_tile_file(out_fs, out_path, id, result);
  return result;
}

}  // namespace mfw::preprocess
