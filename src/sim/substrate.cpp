#include "sim/substrate.hpp"

#include <atomic>
#include <cstdlib>

namespace mfw::sim::substrate {

namespace {
std::atomic<bool>& naive_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("MFW_SIM_NAIVE_SUBSTRATE");
    return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  }();
  return flag;
}
}  // namespace

bool use_naive() { return naive_flag().load(std::memory_order_relaxed); }
void set_use_naive(bool on) {
  naive_flag().store(on, std::memory_order_relaxed);
}

}  // namespace mfw::sim::substrate
