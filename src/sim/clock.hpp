// Clock abstraction: all orchestration code (pipeline, flows, transfer,
// executors) reads time through Clock so the same logic runs against the
// discrete-event virtual clock (benchmarks, scaling studies) and the wall
// clock (real-thread tests, examples).
#pragma once

#include <chrono>

namespace mfw::sim {

/// Monotonic time source in seconds.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now() const = 0;
};

/// Wall clock backed by std::chrono::steady_clock; origin at construction.
class WallClock final : public Clock {
 public:
  WallClock() : origin_(std::chrono::steady_clock::now()) {}

  double now() const override {
    const auto dt = std::chrono::steady_clock::now() - origin_;
    return std::chrono::duration<double>(dt).count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace mfw::sim
