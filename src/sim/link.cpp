#include "sim/link.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sim/substrate.hpp"

namespace mfw::sim {

namespace {
constexpr double kEpsilon = 1e-6;  // bytes
// Occupancy at which the fast path trades the exact (oracle-identical)
// water-filling pass for the incremental structures; see SharedResource's
// kVirtualCutover for the rationale.
constexpr std::size_t kVirtualCutover = 64;
}

FlowLink::FlowLink(SimEngine& engine, std::string name, double capacity_bps)
    : engine_(engine),
      name_(std::move(name)),
      capacity_(capacity_bps),
      naive_(substrate::use_naive()) {
  if (!(capacity_bps > 0))
    throw std::invalid_argument("FlowLink capacity must be > 0");
  last_update_ = engine_.now();
}

FlowLink::~FlowLink() { engine_.cancel(pending_event_); }

FlowId FlowLink::start_flow(double bytes, double rate_cap_bps,
                            std::function<void(double)> on_complete) {
  if (!(bytes > 0)) throw std::invalid_argument("flow bytes must be > 0");
  if (!(rate_cap_bps > 0))
    throw std::invalid_argument("flow rate cap must be > 0");
  advance();
  const std::uint64_t id = next_id_++;
  if (virtual_mode_) {
    auto [it, inserted] = fast_flows_.emplace(
        id, FastFlow{bytes, rate_cap_bps, engine_.now(), false, 0.0, 0.0,
                     std::move(on_complete)});
    // New flows enter the shared group (safe: keeps the group non-empty
    // during fix-up); the partition fix caps them if cap < level.
    insert_shared(id, it->second, bytes);
    fix_partition();
  } else {
    flows_.emplace(id, Flow{bytes, bytes, rate_cap_bps, engine_.now(),
                            std::move(on_complete)});
    if (!naive_ && flows_.size() >= kVirtualCutover) {
      convert_to_virtual();
    } else {
      recompute_rates();
    }
  }
  reschedule();
  return FlowId{id};
}

void FlowLink::convert_to_virtual() {
  // cum_shared_ rebases to 0, so each shared finish credit starts as the
  // flow's residual, bit-for-bit; rounding only enters once fix_partition
  // caps flows, i.e. after the regimes have already diverged in scale.
  cum_shared_ = 0.0;
  capped_sum_ = 0.0;
  for (auto& [id, flow] : flows_) {
    auto [it, inserted] = fast_flows_.emplace(
        id, FastFlow{flow.total, flow.cap, flow.started_at, false, 0.0, 0.0,
                     std::move(flow.on_complete)});
    insert_shared(id, it->second, flow.remaining);
  }
  flows_.clear();
  rates_.clear();
  virtual_mode_ = true;
  fix_partition();
}

void FlowLink::cancel(FlowId id) {
  if (!id.valid()) return;
  advance();
  if (virtual_mode_) {
    const auto it = fast_flows_.find(id.id);
    if (it != fast_flows_.end()) {
      erase_flow(it);
      fix_partition();
    }
  } else {
    flows_.erase(id.id);
    recompute_rates();
  }
  reschedule();
}

double FlowLink::rate_of(FlowId id) const {
  if (!virtual_mode_) {
    const auto it = rates_.find(id.id);
    return it == rates_.end() ? 0.0 : it->second;
  }
  const auto it = fast_flows_.find(id.id);
  if (it == fast_flows_.end()) return 0.0;
  return it->second.capped ? it->second.cap : level();
}

double FlowLink::remaining_of(const FastFlow& flow) const {
  // Valid only right after advance() (last_update_ == now).
  return flow.capped ? flow.cap * (flow.finish_time - engine_.now())
                     : flow.finish_credit - cum_shared_;
}

void FlowLink::insert_shared(std::uint64_t id, FastFlow& flow,
                             double remaining) {
  flow.capped = false;
  flow.finish_credit = cum_shared_ + remaining;
  shared_by_finish_.insert({flow.finish_credit, id});
  shared_by_cap_.insert({flow.cap, id});
}

void FlowLink::insert_capped(std::uint64_t id, FastFlow& flow,
                             double remaining) {
  flow.capped = true;
  flow.finish_time = engine_.now() + remaining / flow.cap;
  capped_by_finish_.insert({flow.finish_time, id});
  capped_by_cap_.insert({flow.cap, id});
  capped_sum_ += flow.cap;
}

void FlowLink::detach(std::uint64_t id, FastFlow& flow) {
  if (flow.capped) {
    capped_by_finish_.erase({flow.finish_time, id});
    capped_by_cap_.erase({flow.cap, id});
    capped_sum_ -= flow.cap;
  } else {
    shared_by_finish_.erase({flow.finish_credit, id});
    shared_by_cap_.erase({flow.cap, id});
  }
}

void FlowLink::erase_flow(std::map<std::uint64_t, FastFlow>::iterator it) {
  detach(it->first, it->second);
  fast_flows_.erase(it);
}

void FlowLink::fix_partition() {
  // Max-min fairness with caps: a flow is rate-limited by its own cap exactly
  // when cap < L, where L = (C - sum of capped caps) / |shared|. Each move
  // below raises (never lowers) L, so a flow crosses the boundary at most
  // twice and the loop terminates. With the shared group empty every flow
  // runs at its own cap, which is optimal whenever sum(caps) <= C — an
  // invariant maintained by only capping flows with cap < L.
  while (!shared_by_cap_.empty()) {
    const double water = level();
    if (!capped_by_cap_.empty() && capped_by_cap_.rbegin()->first >= water) {
      const auto [cap, id] = *capped_by_cap_.rbegin();
      FastFlow& flow = fast_flows_.at(id);
      const double rem = remaining_of(flow);
      detach(id, flow);
      insert_shared(id, flow, rem);
      continue;
    }
    if (shared_by_cap_.begin()->first < water) {
      const auto [cap, id] = *shared_by_cap_.begin();
      FastFlow& flow = fast_flows_.at(id);
      const double rem = remaining_of(flow);
      detach(id, flow);
      insert_capped(id, flow, rem);
      continue;
    }
    break;
  }
}

void FlowLink::advance() {
  const double now = engine_.now();
  const double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0) return;
  if (!virtual_mode_) {
    for (auto& [id, flow] : flows_) {
      const auto rit = rates_.find(id);
      if (rit != rates_.end()) flow.remaining -= rit->second * dt;
    }
    return;
  }
  // Capped flows carry absolute finish times; only the shared group's common
  // credit accumulates.
  if (!shared_by_cap_.empty()) cum_shared_ += level() * dt;
}

void FlowLink::recompute_rates() {
  // Max-min fair allocation (water-filling): repeatedly give every
  // unsaturated flow an equal share of the leftover capacity; flows whose cap
  // is below the share are frozen at their cap. (Exact regime only; the
  // virtual regime maintains the partition incrementally in fix_partition.)
  rates_.clear();
  if (flows_.empty()) return;
  double leftover = capacity_;
  std::vector<std::pair<std::uint64_t, double>> open;  // (id, cap)
  open.reserve(flows_.size());
  for (const auto& [id, flow] : flows_) open.emplace_back(id, flow.cap);
  std::sort(open.begin(), open.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::size_t remaining = open.size();
  for (const auto& [id, cap] : open) {
    const double share = leftover / static_cast<double>(remaining);
    const double rate = std::min(cap, share);
    rates_[id] = rate;
    leftover -= rate;
    --remaining;
  }
}

void FlowLink::reschedule() {
  engine_.cancel(pending_event_);
  pending_event_ = EventHandle{};
  if (!virtual_mode_) {
    if (flows_.empty()) return;
    double soonest = std::numeric_limits<double>::infinity();
    for (const auto& [id, flow] : flows_) {
      const double rate = rates_.at(id);
      if (rate <= 0) continue;
      soonest = std::min(soonest, std::max(flow.remaining, 0.0) / rate);
    }
    if (!std::isfinite(soonest)) return;
    pending_event_ = engine_.schedule_after(soonest, [this] { on_event(); });
    return;
  }
  if (fast_flows_.empty()) {
    cum_shared_ = 0.0;  // drained: rebase and fall back to the exact regime
    capped_sum_ = 0.0;
    virtual_mode_ = false;
    return;
  }
  double soonest = std::numeric_limits<double>::infinity();
  if (!shared_by_finish_.empty()) {
    const double water = level();
    if (water > 0) {
      soonest = std::max(shared_by_finish_.begin()->first - cum_shared_, 0.0) /
                water;
    }
  }
  if (!capped_by_finish_.empty()) {
    soonest = std::min(
        soonest,
        std::max(capped_by_finish_.begin()->first - engine_.now(), 0.0));
  }
  if (!std::isfinite(soonest)) return;
  pending_event_ = engine_.schedule_after(soonest, [this] { on_event(); });
}

void FlowLink::on_event() {
  pending_event_ = EventHandle{};
  advance();
  const double now = engine_.now();
  if (!virtual_mode_) {
    std::vector<std::pair<std::function<void(double)>, double>> done;
    for (auto it = flows_.begin(); it != flows_.end();) {
      Flow& flow = it->second;
      // A flow completes when its residual is negligible in bytes OR would
      // finish within a nanosecond at its current rate. The latter guards
      // against floating-point stalls: at large virtual times a sub-quantum
      // dt cannot advance the clock, so byte residuals must not keep the
      // event loop alive.
      const auto rit = rates_.find(it->first);
      const double rate = rit == rates_.end() ? 0.0 : rit->second;
      if (flow.remaining <= std::max(kEpsilon, rate * 1e-9)) {
        const double elapsed = std::max(now - flow.started_at, 1e-12);
        done.emplace_back(std::move(flow.on_complete), flow.total / elapsed);
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
    if (done.empty() && !flows_.empty()) {
      // This event was scheduled *for* a completion; if rounding left every
      // residual above the epsilons, force the smallest one to preserve
      // progress (the error is bounded by one epsilon of service).
      auto min_it = flows_.begin();
      for (auto it = flows_.begin(); it != flows_.end(); ++it) {
        if (it->second.remaining < min_it->second.remaining) min_it = it;
      }
      Flow& flow = min_it->second;
      const double elapsed = std::max(now - flow.started_at, 1e-12);
      done.emplace_back(std::move(flow.on_complete), flow.total / elapsed);
      flows_.erase(min_it);
    }
    recompute_rates();
    reschedule();
    for (auto& [fn, mean_bps] : done) {
      if (fn) fn(mean_bps);
    }
    return;
  }

  // Fast path. Same per-flow completion rule as above (residual below
  // kEpsilon bytes or below a nanosecond of service at the flow's rate).
  std::vector<std::uint64_t> done_ids;
  if (!shared_by_finish_.empty()) {
    // All shared flows progress at the same rate, so the due set is a prefix
    // of the finish-credit order.
    const double water = level();
    const double threshold = std::max(kEpsilon, water * 1e-9);
    for (auto it = shared_by_finish_.begin();
         it != shared_by_finish_.end() && it->first - cum_shared_ <= threshold;
         ++it) {
      done_ids.push_back(it->second);
    }
  }
  if (!capped_by_finish_.empty()) {
    // Capped flows have per-flow completion windows (kEpsilon/cap differs),
    // so the due set is not exactly a finish-time prefix; scan the prefix
    // that the widest window could reach and test each flow individually.
    const double min_cap = capped_by_cap_.begin()->first;
    const double max_window = std::max(kEpsilon / min_cap, 1e-9);
    for (auto it = capped_by_finish_.begin();
         it != capped_by_finish_.end() && it->first - now <= max_window;
         ++it) {
      const FastFlow& flow = fast_flows_.at(it->second);
      const double residual = flow.cap * (it->first - now);
      if (residual <= std::max(kEpsilon, flow.cap * 1e-9))
        done_ids.push_back(it->second);
    }
  }
  if (done_ids.empty() && !fast_flows_.empty()) {
    // Forced-min fallback (see the naive branch). Rare rounding case, so the
    // O(n) scan is acceptable; the id-ordered map keeps tie-breaks (strictly
    // smaller wins, first id kept) identical to the naive scan.
    auto min_it = fast_flows_.begin();
    double min_rem = remaining_of(min_it->second);
    for (auto it = std::next(fast_flows_.begin()); it != fast_flows_.end();
         ++it) {
      const double rem = remaining_of(it->second);
      if (rem < min_rem) {
        min_rem = rem;
        min_it = it;
      }
    }
    done_ids.push_back(min_it->first);
  }
  std::sort(done_ids.begin(), done_ids.end());
  std::vector<std::pair<std::function<void(double)>, double>> done;
  done.reserve(done_ids.size());
  for (const auto id : done_ids) {
    const auto it = fast_flows_.find(id);
    FastFlow& flow = it->second;
    const double elapsed = std::max(now - flow.started_at, 1e-12);
    done.emplace_back(std::move(flow.on_complete), flow.total / elapsed);
    erase_flow(it);
  }
  fix_partition();
  reschedule();
  for (auto& [fn, mean_bps] : done) {
    if (fn) fn(mean_bps);
  }
}

}  // namespace mfw::sim
