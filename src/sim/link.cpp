#include "sim/link.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace mfw::sim {

namespace {
constexpr double kEpsilon = 1e-6;  // bytes
}

FlowLink::FlowLink(SimEngine& engine, std::string name, double capacity_bps)
    : engine_(engine), name_(std::move(name)), capacity_(capacity_bps) {
  if (!(capacity_bps > 0))
    throw std::invalid_argument("FlowLink capacity must be > 0");
  last_update_ = engine_.now();
}

FlowLink::~FlowLink() { engine_.cancel(pending_event_); }

FlowId FlowLink::start_flow(double bytes, double rate_cap_bps,
                            std::function<void(double)> on_complete) {
  if (!(bytes > 0)) throw std::invalid_argument("flow bytes must be > 0");
  if (!(rate_cap_bps > 0))
    throw std::invalid_argument("flow rate cap must be > 0");
  advance();
  const std::uint64_t id = next_id_++;
  flows_.emplace(
      id, Flow{bytes, bytes, rate_cap_bps, engine_.now(), std::move(on_complete)});
  recompute_rates();
  reschedule();
  return FlowId{id};
}

void FlowLink::cancel(FlowId id) {
  if (!id.valid()) return;
  advance();
  flows_.erase(id.id);
  recompute_rates();
  reschedule();
}

double FlowLink::rate_of(FlowId id) const {
  const auto it = rates_.find(id.id);
  return it == rates_.end() ? 0.0 : it->second;
}

void FlowLink::advance() {
  const double now = engine_.now();
  const double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0) return;
  for (auto& [id, flow] : flows_) {
    const auto rit = rates_.find(id);
    if (rit != rates_.end()) flow.remaining -= rit->second * dt;
  }
}

void FlowLink::recompute_rates() {
  // Max-min fair allocation (water-filling): repeatedly give every
  // unsaturated flow an equal share of the leftover capacity; flows whose cap
  // is below the share are frozen at their cap.
  rates_.clear();
  if (flows_.empty()) return;
  double leftover = capacity_;
  std::vector<std::pair<std::uint64_t, double>> open;  // (id, cap)
  open.reserve(flows_.size());
  for (const auto& [id, flow] : flows_) open.emplace_back(id, flow.cap);
  std::sort(open.begin(), open.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::size_t remaining = open.size();
  for (const auto& [id, cap] : open) {
    const double share = leftover / static_cast<double>(remaining);
    const double rate = std::min(cap, share);
    rates_[id] = rate;
    leftover -= rate;
    --remaining;
  }
}

void FlowLink::reschedule() {
  engine_.cancel(pending_event_);
  pending_event_ = EventHandle{};
  if (flows_.empty()) return;
  double soonest = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    const double rate = rates_.at(id);
    if (rate <= 0) continue;
    soonest = std::min(soonest, std::max(flow.remaining, 0.0) / rate);
  }
  if (!std::isfinite(soonest)) return;
  pending_event_ = engine_.schedule_after(soonest, [this] { on_event(); });
}

void FlowLink::on_event() {
  pending_event_ = EventHandle{};
  advance();
  std::vector<std::pair<std::function<void(double)>, double>> done;
  const double now = engine_.now();
  for (auto it = flows_.begin(); it != flows_.end();) {
    Flow& flow = it->second;
    // A flow completes when its residual is negligible in bytes OR would
    // finish within a nanosecond at its current rate. The latter guards
    // against floating-point stalls: at large virtual times a sub-quantum
    // dt cannot advance the clock, so byte residuals must not keep the
    // event loop alive.
    const auto rit = rates_.find(it->first);
    const double rate = rit == rates_.end() ? 0.0 : rit->second;
    if (flow.remaining <= std::max(kEpsilon, rate * 1e-9)) {
      const double elapsed = std::max(now - flow.started_at, 1e-12);
      done.emplace_back(std::move(flow.on_complete), flow.total / elapsed);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  if (done.empty() && !flows_.empty()) {
    // This event was scheduled *for* a completion; if rounding left every
    // residual above the epsilons, force the smallest one to preserve
    // progress (the error is bounded by one epsilon of service).
    auto min_it = flows_.begin();
    for (auto it = flows_.begin(); it != flows_.end(); ++it) {
      if (it->second.remaining < min_it->second.remaining) min_it = it;
    }
    Flow& flow = min_it->second;
    const double elapsed = std::max(now - flow.started_at, 1e-12);
    done.emplace_back(std::move(flow.on_complete), flow.total / elapsed);
    flows_.erase(min_it);
  }
  recompute_rates();
  reschedule();
  for (auto& [fn, mean_bps] : done) {
    if (fn) fn(mean_bps);
  }
}

}  // namespace mfw::sim
