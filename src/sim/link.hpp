// Bandwidth-shared network link with per-flow rate caps (water-filling).
//
// Models both the WAN between NASA LAADS and the OLCF border (per-connection
// HTTPS throughput caps + shared trunk capacity, Fig. 3) and the
// Defiant -> Frontier/Orion path used by the shipment stage. A flow's rate is
// min(its own cap, its max-min fair share of the link capacity).
//
// Two implementations share this interface (selected at construction via
// sim::substrate::use_naive(), env MFW_SIM_NAIVE_SUBSTRATE):
//   naive — rates are recomputed by a full cap-sorted water-filling pass and
//           every flow's residual is walked on each occupancy change: O(n) /
//           O(n log n) per flow event. Kept as the oracle.
//   fast  — incremental water-filling (DESIGN.md §9): flows are partitioned
//           into a *capped* group (rate = own cap, absolute finish times) and
//           a *shared* group progressing at the common water level
//           L = (C - sum of caps in capped) / |shared|. The shared group uses
//           the virtual-time trick (cumulative credit, finish credits in an
//           ordered set); occupancy changes move only the flows that cross
//           the L boundary, O(log n) amortized per change.
//
// As in SharedResource, the fast implementation keeps the naive arithmetic
// while occupancy stays below a small cutover (bounded work, bit-for-bit
// identical to the oracle) and converts to the incremental structures when
// the flow count reaches it, reverting when the link drains.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "sim/engine.hpp"

namespace mfw::sim {

struct FlowId {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class FlowLink {
 public:
  /// `capacity_bps`: total link capacity in bytes/second (> 0).
  FlowLink(SimEngine& engine, std::string name, double capacity_bps);
  ~FlowLink();

  FlowLink(const FlowLink&) = delete;
  FlowLink& operator=(const FlowLink&) = delete;

  /// Starts a flow of `bytes` with a per-flow rate ceiling `rate_cap_bps`
  /// (e.g. a single HTTPS connection's achievable throughput). The callback
  /// receives the flow's effective mean throughput (bytes/sec).
  FlowId start_flow(double bytes, double rate_cap_bps,
                    std::function<void(double mean_bps)> on_complete);

  /// Aborts a flow; its callback never fires.
  void cancel(FlowId id);

  std::size_t active_flows() const {
    return flows_.size() + fast_flows_.size();
  }
  double capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

  /// Current max-min fair rate of one flow (0 when idle); for telemetry.
  double rate_of(FlowId id) const;

 private:
  struct Flow {
    double remaining;
    double total;
    double cap;
    double started_at;
    std::function<void(double)> on_complete;
  };

  struct FastFlow {
    double total;
    double cap;
    double started_at;
    bool capped;
    double finish_time;    // capped: absolute completion time at rate = cap
    double finish_credit;  // shared: completion credit on cum_shared_
    std::function<void(double)> on_complete;
  };
  /// (sort key, id): id breaks ties deterministically.
  using OrderKey = std::pair<double, std::uint64_t>;

  void advance();
  void recompute_rates();
  void reschedule();
  void on_event();

  // -- fast-path helpers -----------------------------------------------------
  /// Water level for the shared group; call only when it is non-empty.
  double level() const {
    return (capacity_ - capped_sum_) /
           static_cast<double>(shared_by_cap_.size());
  }
  double remaining_of(const FastFlow& flow) const;
  void insert_shared(std::uint64_t id, FastFlow& flow, double remaining);
  void insert_capped(std::uint64_t id, FastFlow& flow, double remaining);
  void detach(std::uint64_t id, FastFlow& flow);
  /// Moves flows across the capped/shared boundary until the partition is
  /// consistent with the current water level (each flow moves O(1) times, so
  /// the work is amortized O(log n) per occupancy change).
  void fix_partition();
  void erase_flow(std::map<std::uint64_t, FastFlow>::iterator it);
  /// Moves every in-flight flow from the exact per-flow representation into
  /// the incremental structures (credit rebased to 0, residuals exact).
  void convert_to_virtual();

  SimEngine& engine_;
  std::string name_;
  double capacity_;
  const bool naive_;
  /// True while the incremental structures are authoritative; always false
  /// in naive mode and in the fast path's small-occupancy exact regime.
  bool virtual_mode_ = false;
  std::uint64_t next_id_ = 1;
  double last_update_ = 0.0;
  EventHandle pending_event_{};

  // -- exact (per-flow residual) state ---------------------------------------
  std::map<std::uint64_t, Flow> flows_;
  std::map<std::uint64_t, double> rates_;  // current per-flow rate

  // -- fast (incremental water-filling) state --------------------------------
  std::map<std::uint64_t, FastFlow> fast_flows_;
  /// Cumulative service delivered to one shared flow since the virtual
  /// regime was entered (the drain rebases it to 0, bounding error).
  double cum_shared_ = 0.0;
  double capped_sum_ = 0.0;  // sum of caps over the capped group
  std::set<OrderKey> shared_by_finish_;  // (finish credit, id)
  std::set<OrderKey> shared_by_cap_;     // (cap, id)
  std::set<OrderKey> capped_by_finish_;  // (finish time, id)
  std::set<OrderKey> capped_by_cap_;     // (cap, id)
};

}  // namespace mfw::sim
