// Bandwidth-shared network link with per-flow rate caps (water-filling).
//
// Models both the WAN between NASA LAADS and the OLCF border (per-connection
// HTTPS throughput caps + shared trunk capacity, Fig. 3) and the
// Defiant -> Frontier/Orion path used by the shipment stage. A flow's rate is
// min(its own cap, its max-min fair share of the link capacity); rates are
// recomputed whenever a flow starts or finishes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/engine.hpp"

namespace mfw::sim {

struct FlowId {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class FlowLink {
 public:
  /// `capacity_bps`: total link capacity in bytes/second (> 0).
  FlowLink(SimEngine& engine, std::string name, double capacity_bps);
  ~FlowLink();

  FlowLink(const FlowLink&) = delete;
  FlowLink& operator=(const FlowLink&) = delete;

  /// Starts a flow of `bytes` with a per-flow rate ceiling `rate_cap_bps`
  /// (e.g. a single HTTPS connection's achievable throughput). The callback
  /// receives the flow's effective mean throughput (bytes/sec).
  FlowId start_flow(double bytes, double rate_cap_bps,
                    std::function<void(double mean_bps)> on_complete);

  /// Aborts a flow; its callback never fires.
  void cancel(FlowId id);

  std::size_t active_flows() const { return flows_.size(); }
  double capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

  /// Current max-min fair rate of one flow (0 when idle); for telemetry.
  double rate_of(FlowId id) const;

 private:
  struct Flow {
    double remaining;
    double total;
    double cap;
    double started_at;
    std::function<void(double)> on_complete;
  };

  void advance();
  void recompute_rates();
  void reschedule();
  void on_event();

  SimEngine& engine_;
  std::string name_;
  double capacity_;
  std::map<std::uint64_t, Flow> flows_;
  std::map<std::uint64_t, double> rates_;  // current per-flow rate
  std::uint64_t next_id_ = 1;
  double last_update_ = 0.0;
  EventHandle pending_event_{};
};

}  // namespace mfw::sim
