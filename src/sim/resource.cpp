#include "sim/resource.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sim/substrate.hpp"

namespace mfw::sim {

namespace {
// Jobs whose remaining demand falls below this fraction of a unit are
// considered complete; guards against float drift stalling the resource.
constexpr double kEpsilon = 1e-9;
// Occupancy at which the fast path trades the exact (oracle-identical)
// per-job arithmetic for the O(log n) virtual-time structures. Calibrated
// workflow runs never get near it (a node hosts <= 8 workers); archive-scale
// churn crosses it immediately.
constexpr std::size_t kVirtualCutover = 64;
}  // namespace

LinearCapLaw::LinearCapLaw(double per_task_rate, double capacity)
    : per_task_rate_(per_task_rate), capacity_(capacity) {
  if (per_task_rate <= 0 || capacity <= 0)
    throw std::invalid_argument("LinearCapLaw rates must be > 0");
}

double LinearCapLaw::aggregate_rate(std::size_t active) const {
  return std::min(per_task_rate_ * static_cast<double>(active), capacity_);
}

SaturatingExpLaw::SaturatingExpLaw(double r_max, double tau)
    : r_max_(r_max), tau_(tau) {
  if (r_max <= 0 || tau <= 0)
    throw std::invalid_argument("SaturatingExpLaw parameters must be > 0");
}

double SaturatingExpLaw::aggregate_rate(std::size_t active) const {
  if (active == 0) return 0.0;
  return r_max_ * (1.0 - std::exp(-static_cast<double>(active) / tau_));
}

StepCapLaw::StepCapLaw(double per_task_rate, std::size_t knee)
    : per_task_rate_(per_task_rate), knee_(knee) {
  if (per_task_rate <= 0 || knee == 0)
    throw std::invalid_argument("StepCapLaw parameters must be > 0");
}

double StepCapLaw::aggregate_rate(std::size_t active) const {
  return per_task_rate_ * static_cast<double>(std::min(active, knee_));
}

SharedResource::SharedResource(SimEngine& engine,
                               std::unique_ptr<ContentionLaw> law)
    : engine_(engine), law_(std::move(law)), naive_(substrate::use_naive()) {
  if (!law_) throw std::invalid_argument("SharedResource needs a law");
  last_update_ = engine_.now();
}

SharedResource::~SharedResource() { engine_.cancel(pending_event_); }

double SharedResource::per_job_rate(std::size_t active) const {
  return active == 0
             ? 0.0
             : law_->aggregate_rate(active) / static_cast<double>(active);
}

void SharedResource::convert_to_virtual() {
  // credit_ rebases to 0, so each finish credit is the job's residual,
  // bit-for-bit — the switch itself introduces no rounding.
  credit_ = 0.0;
  for (auto& [id, job] : jobs_) {
    by_finish_.emplace(FinishKey{job.remaining, id},
                       std::move(job.on_complete));
    finish_of_.emplace(id, job.remaining);
  }
  jobs_.clear();
  virtual_mode_ = true;
}

ResourceJobId SharedResource::submit(double demand,
                                     std::function<void()> on_complete) {
  if (!(demand > 0)) throw std::invalid_argument("job demand must be > 0");
  advance();
  const std::uint64_t id = next_id_++;
  if (virtual_mode_) {
    const double finish = credit_ + demand;
    by_finish_.emplace(FinishKey{finish, id}, std::move(on_complete));
    finish_of_.emplace(id, finish);
  } else {
    jobs_.emplace(id, Job{demand, std::move(on_complete)});
    if (!naive_ && jobs_.size() >= kVirtualCutover) convert_to_virtual();
  }
  reschedule();
  return ResourceJobId{id};
}

void SharedResource::cancel(ResourceJobId id) {
  if (!id.valid()) return;
  advance();
  if (virtual_mode_) {
    const auto it = finish_of_.find(id.id);
    if (it != finish_of_.end()) {
      by_finish_.erase(FinishKey{it->second, id.id});
      finish_of_.erase(it);
    }
  } else {
    jobs_.erase(id.id);
  }
  reschedule();
}

void SharedResource::advance() {
  const double now = engine_.now();
  const double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0) return;
  if (virtual_mode_) {
    if (by_finish_.empty()) return;
    credit_ += per_job_rate(by_finish_.size()) * dt;
  } else {
    if (jobs_.empty()) return;
    const double served = per_job_rate(jobs_.size()) * dt;
    for (auto& [id, job] : jobs_) job.remaining -= served;
  }
}

void SharedResource::reschedule() {
  engine_.cancel(pending_event_);
  pending_event_ = EventHandle{};
  if (!virtual_mode_) {
    if (jobs_.empty()) return;
    double min_remaining = std::numeric_limits<double>::infinity();
    for (const auto& [id, job] : jobs_)
      min_remaining = std::min(min_remaining, job.remaining);
    const double per_job = per_job_rate(jobs_.size());
    if (per_job <= 0) return;  // stalled (law returned 0); nothing to schedule
    const double dt = std::max(min_remaining, 0.0) / per_job;
    pending_event_ = engine_.schedule_after(dt, [this] { on_event(); });
    return;
  }
  if (by_finish_.empty()) {
    credit_ = 0.0;  // drained: rebase and fall back to the exact regime
    virtual_mode_ = false;
    return;
  }
  const double per_job = per_job_rate(by_finish_.size());
  if (per_job <= 0) return;
  const double min_remaining = by_finish_.begin()->first.first - credit_;
  const double dt = std::max(min_remaining, 0.0) / per_job;
  pending_event_ = engine_.schedule_after(dt, [this] { on_event(); });
}

void SharedResource::on_event() {
  pending_event_ = EventHandle{};
  advance();
  // Collect all jobs finished at this instant, then run callbacks after the
  // internal state is consistent (callbacks may submit new jobs). The
  // per-rate term guards against floating-point stalls at large virtual
  // times (see FlowLink::on_event for the rationale).
  if (!virtual_mode_) {
    const double per_job = per_job_rate(jobs_.size());
    std::vector<std::function<void()>> done;
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (it->second.remaining <= std::max(kEpsilon, per_job * 1e-9)) {
        ++completed_jobs_;
        done.push_back(std::move(it->second.on_complete));
        it = jobs_.erase(it);
      } else {
        ++it;
      }
    }
    if (done.empty() && !jobs_.empty()) {
      // Event was scheduled for a completion; force the smallest residual.
      auto min_it = jobs_.begin();
      for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
        if (it->second.remaining < min_it->second.remaining) min_it = it;
      }
      ++completed_jobs_;
      done.push_back(std::move(min_it->second.on_complete));
      jobs_.erase(min_it);
    }
    reschedule();
    for (auto& fn : done) {
      if (fn) fn();
    }
    return;
  }
  const double per_job = per_job_rate(by_finish_.size());
  const double threshold = std::max(kEpsilon, per_job * 1e-9);
  // Pop everything due from the front of the finish-credit order, then fire
  // in ascending id order — the exact set and order the exact-regime
  // id-keyed scan produces (residual = finish credit - credit).
  std::vector<std::pair<std::uint64_t, std::function<void()>>> done;
  while (!by_finish_.empty() &&
         by_finish_.begin()->first.first - credit_ <= threshold) {
    auto it = by_finish_.begin();
    ++completed_jobs_;
    done.emplace_back(it->first.second, std::move(it->second));
    finish_of_.erase(it->first.second);
    by_finish_.erase(it);
  }
  if (done.empty() && !by_finish_.empty()) {
    // Forced-min fallback: the front of the order is the smallest residual
    // (ties resolve to the lowest id, as in the exact-regime scan).
    auto it = by_finish_.begin();
    ++completed_jobs_;
    done.emplace_back(it->first.second, std::move(it->second));
    finish_of_.erase(it->first.second);
    by_finish_.erase(it);
  }
  reschedule();
  std::sort(done.begin(), done.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [id, fn] : done) {
    if (fn) fn();
  }
}

}  // namespace mfw::sim
