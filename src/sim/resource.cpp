#include "sim/resource.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace mfw::sim {

namespace {
// Jobs whose remaining demand falls below this fraction of a unit are
// considered complete; guards against float drift stalling the resource.
constexpr double kEpsilon = 1e-9;
}  // namespace

LinearCapLaw::LinearCapLaw(double per_task_rate, double capacity)
    : per_task_rate_(per_task_rate), capacity_(capacity) {
  if (per_task_rate <= 0 || capacity <= 0)
    throw std::invalid_argument("LinearCapLaw rates must be > 0");
}

double LinearCapLaw::aggregate_rate(std::size_t active) const {
  return std::min(per_task_rate_ * static_cast<double>(active), capacity_);
}

SaturatingExpLaw::SaturatingExpLaw(double r_max, double tau)
    : r_max_(r_max), tau_(tau) {
  if (r_max <= 0 || tau <= 0)
    throw std::invalid_argument("SaturatingExpLaw parameters must be > 0");
}

double SaturatingExpLaw::aggregate_rate(std::size_t active) const {
  if (active == 0) return 0.0;
  return r_max_ * (1.0 - std::exp(-static_cast<double>(active) / tau_));
}

StepCapLaw::StepCapLaw(double per_task_rate, std::size_t knee)
    : per_task_rate_(per_task_rate), knee_(knee) {
  if (per_task_rate <= 0 || knee == 0)
    throw std::invalid_argument("StepCapLaw parameters must be > 0");
}

double StepCapLaw::aggregate_rate(std::size_t active) const {
  return per_task_rate_ * static_cast<double>(std::min(active, knee_));
}

SharedResource::SharedResource(SimEngine& engine,
                               std::unique_ptr<ContentionLaw> law)
    : engine_(engine), law_(std::move(law)) {
  if (!law_) throw std::invalid_argument("SharedResource needs a law");
  last_update_ = engine_.now();
}

SharedResource::~SharedResource() { engine_.cancel(pending_event_); }

ResourceJobId SharedResource::submit(double demand,
                                     std::function<void()> on_complete) {
  if (!(demand > 0)) throw std::invalid_argument("job demand must be > 0");
  advance();
  const std::uint64_t id = next_id_++;
  jobs_.emplace(id, Job{demand, std::move(on_complete)});
  reschedule();
  return ResourceJobId{id};
}

void SharedResource::cancel(ResourceJobId id) {
  if (!id.valid()) return;
  advance();
  jobs_.erase(id.id);
  reschedule();
}

void SharedResource::advance() {
  const double now = engine_.now();
  const double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0 || jobs_.empty()) return;
  const double per_job =
      law_->aggregate_rate(jobs_.size()) / static_cast<double>(jobs_.size());
  const double served = per_job * dt;
  for (auto& [id, job] : jobs_) job.remaining -= served;
}

void SharedResource::reschedule() {
  engine_.cancel(pending_event_);
  pending_event_ = EventHandle{};
  if (jobs_.empty()) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, job] : jobs_)
    min_remaining = std::min(min_remaining, job.remaining);
  const double per_job =
      law_->aggregate_rate(jobs_.size()) / static_cast<double>(jobs_.size());
  if (per_job <= 0) return;  // stalled (law returned 0); nothing to schedule
  const double dt = std::max(min_remaining, 0.0) / per_job;
  pending_event_ = engine_.schedule_after(dt, [this] { on_event(); });
}

void SharedResource::on_event() {
  pending_event_ = EventHandle{};
  advance();
  // Collect all jobs finished at this instant, then run callbacks after the
  // internal state is consistent (callbacks may submit new jobs). The
  // per-rate term guards against floating-point stalls at large virtual
  // times (see FlowLink::on_event for the rationale).
  const double per_job =
      jobs_.empty() ? 0.0
                    : law_->aggregate_rate(jobs_.size()) /
                          static_cast<double>(jobs_.size());
  std::vector<std::function<void()>> done;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.remaining <= std::max(kEpsilon, per_job * 1e-9)) {
      ++completed_jobs_;
      done.push_back(std::move(it->second.on_complete));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  if (done.empty() && !jobs_.empty()) {
    // Event was scheduled for a completion; force the smallest residual.
    auto min_it = jobs_.begin();
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (it->second.remaining < min_it->second.remaining) min_it = it;
    }
    ++completed_jobs_;
    done.push_back(std::move(min_it->second.on_complete));
    jobs_.erase(min_it);
  }
  reschedule();
  for (auto& fn : done) {
    if (fn) fn();
  }
}

}  // namespace mfw::sim
