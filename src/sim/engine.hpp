// Discrete-event simulation engine.
//
// The multi-facility substrate (WAN links, Lustre bandwidth, node contention,
// Slurm allocation, flow triggers) runs as events on this engine so that
// cluster-scale experiments (10 nodes x 8 workers, 128-worker farms, year-long
// archive campaigns) execute deterministically on a single host. The engine is
// single-threaded by design: determinism and the ability to model thousands of
// concurrent activities matter more than host parallelism here (see
// DESIGN.md).
//
// Storage layout (DESIGN.md §9): callbacks live in a slab indexed by slot,
// recycled through a free list — no per-event node allocation, O(1) cancel.
// Handles carry a generation so a stale handle can never cancel the slot's
// next tenant. Cancellation is lazy (the heap entry dies in place); when dead
// entries exceed half the heap it is compacted in one O(n) pass, keeping the
// queue proportional to the number of *live* events. The (time, seq) FIFO
// tie-break is a total order, so heap layout never affects pop order.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/clock.hpp"

namespace mfw::sim {

/// Identifies a scheduled event; used to cancel it. The generation guards
/// against slot reuse: cancelling an already-fired (or already-cancelled)
/// handle is always a no-op, even after the slot hosts a new event.
struct EventHandle {
  std::uint64_t id = 0;       // slot index + 1; 0 = invalid
  std::uint32_t gen = 0;      // slot generation at scheduling time
  bool valid() const { return id != 0; }
};

class SimEngine final : public Clock {
 public:
  using Callback = std::function<void()>;

  SimEngine();
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Current virtual time in seconds.
  double now() const override { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (clamped to now()).
  EventHandle schedule_at(double t, Callback fn);

  /// Schedules `fn` after `dt` seconds (dt < 0 treated as 0).
  EventHandle schedule_after(double dt, Callback fn);

  /// Cancels a pending event; no-op if already fired or cancelled.
  void cancel(EventHandle handle);

  /// Runs until no events remain. Returns the number of events processed.
  std::size_t run();

  /// Processes all events with time <= t, then advances the clock to exactly
  /// t (even if idle). Returns events processed.
  std::size_t run_until(double t);

  /// Processes a single event if any; returns whether one was processed.
  bool step();

  bool empty() const { return live_ == 0; }
  std::size_t pending() const { return live_; }
  std::size_t processed() const { return processed_; }

  /// Heap entries whose event was cancelled but whose timestamp has not
  /// surfaced yet (lazy cancellation). Compaction keeps this below the live
  /// count; in naive-substrate mode it grows until timestamps surface,
  /// reproducing the original engine's behaviour.
  std::size_t dead_entries() const { return dead_; }
  /// Number of dead-entry compaction passes performed (telemetry).
  std::size_t compactions() const { return compactions_; }

 private:
  struct QueueEntry {
    double time;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    std::uint32_t slot;
    std::uint32_t gen;
    /// Strict total order (seq is unique), so pop order is independent of
    /// heap layout — compaction cannot perturb event ordering.
    bool operator>(const QueueEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct Slot {
    Callback fn;
    std::uint32_t gen = 0;
    bool live = false;
  };

  bool pop_next(QueueEntry& out);
  void heap_push(QueueEntry entry);
  void heap_pop();
  /// Extracts the callback and retires the slot for reuse.
  Callback take(std::uint32_t slot);
  void maybe_compact();

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::size_t live_ = 0;
  std::size_t dead_ = 0;
  std::size_t compactions_ = 0;
  bool naive_;  // sampled from substrate::use_naive() at construction
  std::vector<QueueEntry> heap_;     // binary min-heap on (time, seq)
  std::vector<Slot> slots_;          // slab of callbacks, indexed by slot
  std::vector<std::uint32_t> free_;  // retired slots available for reuse
};

}  // namespace mfw::sim
