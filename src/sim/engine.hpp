// Discrete-event simulation engine.
//
// The multi-facility substrate (WAN links, Lustre bandwidth, node contention,
// Slurm allocation, flow triggers) runs as events on this engine so that
// cluster-scale experiments (10 nodes x 8 workers, 128-worker farms) execute
// deterministically on a single host. The engine is single-threaded by
// design: determinism and the ability to model thousands of concurrent
// activities matter more than host parallelism here (see DESIGN.md).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "sim/clock.hpp"

namespace mfw::sim {

/// Identifies a scheduled event; used to cancel it.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class SimEngine final : public Clock {
 public:
  using Callback = std::function<void()>;

  SimEngine() = default;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Current virtual time in seconds.
  double now() const override { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (clamped to now()).
  EventHandle schedule_at(double t, Callback fn);

  /// Schedules `fn` after `dt` seconds (dt < 0 treated as 0).
  EventHandle schedule_after(double dt, Callback fn);

  /// Cancels a pending event; no-op if already fired or cancelled.
  void cancel(EventHandle handle);

  /// Runs until no events remain. Returns the number of events processed.
  std::size_t run();

  /// Processes all events with time <= t, then advances the clock to exactly
  /// t (even if idle). Returns events processed.
  std::size_t run_until(double t);

  /// Processes a single event if any; returns whether one was processed.
  bool step();

  bool empty() const { return callbacks_.empty(); }
  std::size_t pending() const { return callbacks_.size(); }
  std::size_t processed() const { return processed_; }

 private:
  struct QueueEntry {
    double time;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    std::uint64_t id;
    bool operator>(const QueueEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  bool pop_next(QueueEntry& out);

  double now_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  // Callbacks for *live* (non-cancelled) events; cancel() erases here and the
  // queue entry is skipped lazily on pop.
  std::map<std::uint64_t, Callback> callbacks_;
};

}  // namespace mfw::sim
