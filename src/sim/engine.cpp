#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

namespace mfw::sim {

EventHandle SimEngine::schedule_at(double t, Callback fn) {
  const double when = std::max(t, now_);
  const std::uint64_t id = next_id_++;
  queue_.push(QueueEntry{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return EventHandle{id};
}

EventHandle SimEngine::schedule_after(double dt, Callback fn) {
  return schedule_at(now_ + std::max(dt, 0.0), std::move(fn));
}

void SimEngine::cancel(EventHandle handle) {
  if (handle.valid()) callbacks_.erase(handle.id);
}

bool SimEngine::pop_next(QueueEntry& out) {
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    if (callbacks_.find(entry.id) == callbacks_.end()) {
      queue_.pop();  // cancelled; skip lazily
      continue;
    }
    out = entry;
    return true;
  }
  return false;
}

bool SimEngine::step() {
  QueueEntry entry;
  if (!pop_next(entry)) return false;
  queue_.pop();
  auto node = callbacks_.extract(entry.id);
  now_ = entry.time;
  ++processed_;
  node.mapped()();
  return true;
}

std::size_t SimEngine::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t SimEngine::run_until(double t) {
  std::size_t n = 0;
  QueueEntry entry;
  while (pop_next(entry) && entry.time <= t) {
    queue_.pop();
    auto node = callbacks_.extract(entry.id);
    now_ = entry.time;
    ++processed_;
    ++n;
    node.mapped()();
  }
  now_ = std::max(now_, t);
  return n;
}

}  // namespace mfw::sim
