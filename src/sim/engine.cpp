#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "sim/substrate.hpp"

namespace mfw::sim {

namespace {
// Below this heap size compaction is not worth the pass; also keeps the
// dead-fraction trigger from thrashing on tiny queues.
constexpr std::size_t kMinCompactSize = 64;
}  // namespace

SimEngine::SimEngine() : naive_(substrate::use_naive()) {}

void SimEngine::heap_push(QueueEntry entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

void SimEngine::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_.pop_back();
}

EventHandle SimEngine::schedule_at(double t, Callback fn) {
  const double when = std::max(t, now_);
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;
  ++live_;
  heap_push(QueueEntry{when, next_seq_++, slot, s.gen});
  return EventHandle{static_cast<std::uint64_t>(slot) + 1, s.gen};
}

EventHandle SimEngine::schedule_after(double dt, Callback fn) {
  return schedule_at(now_ + std::max(dt, 0.0), std::move(fn));
}

SimEngine::Callback SimEngine::take(std::uint32_t slot) {
  Slot& s = slots_[slot];
  Callback fn = std::move(s.fn);
  s.fn = nullptr;
  s.live = false;
  ++s.gen;  // invalidates every outstanding handle to this slot
  --live_;
  free_.push_back(slot);
  return fn;
}

void SimEngine::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  const std::uint64_t index = handle.id - 1;
  if (index >= slots_.size()) return;
  Slot& s = slots_[index];
  if (!s.live || s.gen != handle.gen) return;  // fired/cancelled/reused
  take(static_cast<std::uint32_t>(index));
  ++dead_;  // the heap entry outlives the event until popped or compacted
  maybe_compact();
}

void SimEngine::maybe_compact() {
  // Naive-substrate mode reproduces the original engine: cancelled entries
  // linger until their timestamps surface.
  if (naive_) return;
  if (heap_.size() < kMinCompactSize || dead_ * 2 <= heap_.size()) return;
  std::erase_if(heap_, [this](const QueueEntry& e) {
    const Slot& s = slots_[e.slot];
    return !s.live || s.gen != e.gen;
  });
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  dead_ = 0;
  ++compactions_;
}

bool SimEngine::pop_next(QueueEntry& out) {
  while (!heap_.empty()) {
    const QueueEntry& entry = heap_.front();
    const Slot& s = slots_[entry.slot];
    if (!s.live || s.gen != entry.gen) {
      heap_pop();  // cancelled; skip lazily
      if (dead_ > 0) --dead_;
      continue;
    }
    out = entry;
    return true;
  }
  return false;
}

bool SimEngine::step() {
  QueueEntry entry;
  if (!pop_next(entry)) return false;
  heap_pop();
  Callback fn = take(entry.slot);
  now_ = entry.time;
  ++processed_;
  fn();
  return true;
}

std::size_t SimEngine::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t SimEngine::run_until(double t) {
  std::size_t n = 0;
  QueueEntry entry;
  while (pop_next(entry) && entry.time <= t) {
    heap_pop();
    Callback fn = take(entry.slot);
    now_ = entry.time;
    ++processed_;
    ++n;
    fn();
  }
  now_ = std::max(now_, t);
  return n;
}

}  // namespace mfw::sim
