// Saturating processor-sharing resource: the on-node contention model.
//
// The paper's single-node strong-scaling column (Table I) shows aggregate
// preprocessing throughput saturating as workers are added to one Defiant
// node (10.5 t/s at 1 worker -> ~37-39 t/s from 8 workers on). We model a
// node's shared substrate (filesystem + memory bandwidth) as a resource that
// serves all active tasks at an aggregate rate R(n) given by a pluggable
// ContentionLaw, divided evenly among the n active tasks (processor
// sharing).
//
// Two implementations share this interface (selected at construction via
// sim::substrate::use_naive(), env MFW_SIM_NAIVE_SUBSTRATE):
//   naive — remaining demand stored per job; every occupancy change walks
//           all n jobs (advance) and rescans for the minimum (reschedule):
//           O(n) per event, O(n^2) per drained batch. Kept as the oracle.
//   fast  — virtual-service-time transformation (DESIGN.md §9): track the
//           cumulative per-job service credit S(t); a job with demand d
//           submitted at credit S finishes when the credit reaches S + d.
//           An ordered set on finish credit gives O(log n) submit/cancel and
//           O(1) advance; completions pop from the front.
//
// The fast implementation keeps the naive per-job arithmetic while occupancy
// stays below a small cutover (bounded, so still O(1) per event) and switches
// to the virtual-time structures when occupancy reaches it, reverting when
// the resource drains. The credit rebases to 0 at the switch, so conversion
// is exact; below the cutover the fast path is bit-for-bit identical to the
// naive oracle (reassociating the credit sums is not), which keeps every
// calibrated workflow run reproducible while the 1e5-job regime gets the
// O(log n) structures.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "sim/engine.hpp"

namespace mfw::sim {

/// Maps the number of concurrently active tasks to the aggregate service
/// rate (demand units per second) the resource delivers.
class ContentionLaw {
 public:
  virtual ~ContentionLaw() = default;
  virtual double aggregate_rate(std::size_t active) const = 0;
  virtual std::string name() const = 0;
};

/// R(n) = min(per_task_rate * n, capacity): classic linear ramp with a hard
/// ceiling (idealised bandwidth sharing).
class LinearCapLaw final : public ContentionLaw {
 public:
  LinearCapLaw(double per_task_rate, double capacity);
  double aggregate_rate(std::size_t active) const override;
  std::string name() const override { return "linear-cap"; }

 private:
  double per_task_rate_;
  double capacity_;
};

/// R(n) = r_max * (1 - exp(-n / tau)): smooth saturation. Calibrated to the
/// paper's Defiant node (r_max ~ 38.5 tiles/s-equivalent, tau ~ 3.1; see
/// DESIGN.md "Calibration note").
class SaturatingExpLaw final : public ContentionLaw {
 public:
  SaturatingExpLaw(double r_max, double tau);
  double aggregate_rate(std::size_t active) const override;
  std::string name() const override { return "saturating-exp"; }

 private:
  double r_max_;
  double tau_;
};

/// R(n) = per_task_rate * min(n, knee): linear then flat at the knee.
class StepCapLaw final : public ContentionLaw {
 public:
  StepCapLaw(double per_task_rate, std::size_t knee);
  double aggregate_rate(std::size_t active) const override;
  std::string name() const override { return "step-cap"; }

 private:
  double per_task_rate_;
  std::size_t knee_;
};

/// Identifies a job admitted to a SharedResource.
struct ResourceJobId {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

/// Processor-sharing resource on a SimEngine. Jobs carry a service *demand*
/// (abstract units, e.g. "tile-equivalents" or bytes); the resource completes
/// them according to the contention law and invokes their callbacks.
class SharedResource {
 public:
  /// The engine must outlive the resource. The law must be non-null.
  SharedResource(SimEngine& engine, std::unique_ptr<ContentionLaw> law);
  ~SharedResource();

  SharedResource(const SharedResource&) = delete;
  SharedResource& operator=(const SharedResource&) = delete;

  /// Admits a job with `demand` service units (> 0); `on_complete` fires at
  /// the virtual time the job finishes.
  ResourceJobId submit(double demand, std::function<void()> on_complete);

  /// Cancels an in-flight job (its callback never fires). No-op when done.
  void cancel(ResourceJobId id);

  std::size_t active() const { return jobs_.size() + by_finish_.size(); }
  const ContentionLaw& law() const { return *law_; }

  /// Number of jobs completed so far (for telemetry).
  std::size_t completed_jobs() const { return completed_jobs_; }

 private:
  struct Job {
    double remaining;
    std::function<void()> on_complete;
  };
  /// Ordered on (finish credit, id): the front is always the next completion,
  /// and equal-credit ties resolve to the lowest id (matching the naive
  /// implementation's id-ordered scan).
  using FinishKey = std::pair<double, std::uint64_t>;

  /// Applies service delivered since last_update_ (exact regime: walks all
  /// jobs; virtual regime: bumps the credit accumulator).
  void advance();
  /// Schedules (or re-schedules) the completion event of the soonest job.
  void reschedule();
  void on_event();
  double per_job_rate(std::size_t active) const;
  /// Moves every resident job from the exact per-job representation into the
  /// virtual-time structures (credit rebased to 0, so residuals are exact).
  void convert_to_virtual();

  SimEngine& engine_;
  std::unique_ptr<ContentionLaw> law_;
  const bool naive_;
  /// True while the virtual-time structures are authoritative; always false
  /// in naive mode and in the fast path's small-occupancy exact regime.
  bool virtual_mode_ = false;
  std::uint64_t next_id_ = 1;
  double last_update_ = 0.0;
  std::size_t completed_jobs_ = 0;
  EventHandle pending_event_{};

  // -- exact (per-job residual) state ----------------------------------------
  std::map<std::uint64_t, Job> jobs_;

  // -- virtual-service-time state --------------------------------------------
  /// Cumulative per-job service since the virtual regime was entered (the
  /// drain rebases it to 0, bounding cancellation error at large times).
  double credit_ = 0.0;
  std::map<FinishKey, std::function<void()>> by_finish_;
  std::unordered_map<std::uint64_t, double> finish_of_;  // id -> finish credit
};

}  // namespace mfw::sim
