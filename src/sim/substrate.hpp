// Runtime switch between the fast simulation substrates and the original
// (naive) reference implementations.
//
// The fast paths — slab/heap event engine with queue compaction, the
// virtual-service-time SharedResource, and the incremental water-filling
// FlowLink — replace O(n) per-event state walks with O(log n) structures
// (see DESIGN.md §9 "Substrate complexity"). The originals are kept verbatim
// as an equivalence oracle: set MFW_SIM_NAIVE_SUBSTRATE=1 (or call
// set_use_naive) to run every SimEngine/SharedResource/FlowLink constructed
// afterwards on the reference algorithms. Mirrors MFW_ML_NAIVE_KERNELS.
//
// The flag is sampled at construction, so a naive and a fast instance can
// coexist in one process (the equivalence tests rely on this).
#pragma once

namespace mfw::sim::substrate {

/// True when new substrate instances should use the naive reference
/// implementations (env MFW_SIM_NAIVE_SUBSTRATE, overridable at runtime).
bool use_naive();
void set_use_naive(bool on);

}  // namespace mfw::sim::substrate
