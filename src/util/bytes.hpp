// Byte-size parsing/formatting ("32GB" <-> 34359738368) used by configs and
// bench output. Units are powers of 1024 (KB == KiB here, matching common HPC
// usage in the paper's context).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mfw::util {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = kKiB * 1024ULL;
inline constexpr std::uint64_t kGiB = kMiB * 1024ULL;
inline constexpr std::uint64_t kTiB = kGiB * 1024ULL;

/// Parses "100MB", "8.4 GB", "512", "1.5TiB" (case-insensitive, optional 'i').
/// Throws std::invalid_argument on malformed input.
std::uint64_t parse_bytes(std::string_view text);

/// Formats a byte count with the largest unit that keeps the value >= 1,
/// e.g. 34359738368 -> "32.0GB".
std::string format_bytes(std::uint64_t bytes);

/// Formats a rate in bytes/second, e.g. "12.4MB/s".
std::string format_rate(double bytes_per_sec);

/// Formats seconds with adaptive precision ("44.0s", "5.63s", "50ms").
std::string format_seconds(double seconds);

}  // namespace mfw::util
