// LRU caches for the serving layer (DESIGN.md §14).
//
//  - LruCache: the single-threaded core — an intrusive recency list over an
//    unordered_map, O(1) get/put/erase, strict capacity with oldest-first
//    eviction. Not thread-safe.
//  - ShardedLruCache: the thread-safe wrapper the hot-cell result cache
//    uses — the key space is hash-partitioned into `ways` independent
//    LruCaches, each behind its own mutex, so readers on different ways never
//    contend; hit/miss/eviction counters are lock-free atomics. Capacity is
//    split evenly across ways (each way rounds up to at least one slot), so
//    the aggregate bound is capacity ± (ways - 1).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mfw::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  /// `capacity` >= 1 entries (0 is clamped to 1).
  explicit LruCache(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Returns the value and promotes the entry to most-recently-used.
  std::optional<Value> get(const Key& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites; evicts the least-recently-used entry past
  /// capacity.
  void put(const Key& key, Value value) {
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    map_.emplace(key, order_.begin());
    if (map_.size() > capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  bool erase(const Key& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    order_.erase(it->second);
    map_.erase(it);
    return true;
  }

  void clear() {
    map_.clear();
    order_.clear();
  }

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  std::size_t capacity_;
  std::list<std::pair<Key, Value>> order_;  // front = most recently used
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     Hash>
      map_;
  std::uint64_t evictions_ = 0;
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// Total capacity split across `ways` independently locked LruCaches.
  explicit ShardedLruCache(std::size_t capacity, std::size_t ways = 16) {
    if (ways == 0) ways = 1;
    const std::size_t per_way = (capacity + ways - 1) / ways;
    ways_.reserve(ways);
    for (std::size_t i = 0; i < ways; ++i)
      ways_.push_back(std::make_unique<Way>(per_way));
  }

  std::optional<Value> get(const Key& key) {
    Way& way = way_for(key);
    std::lock_guard lock(way.mu);
    auto hit = way.cache.get(key);
    if (hit) {
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return hit;
  }

  void put(const Key& key, Value value) {
    Way& way = way_for(key);
    std::lock_guard lock(way.mu);
    way.cache.put(key, std::move(value));
  }

  bool erase(const Key& key) {
    Way& way = way_for(key);
    std::lock_guard lock(way.mu);
    return way.cache.erase(key);
  }

  void clear() {
    for (auto& way : ways_) {
      std::lock_guard lock(way->mu);
      way->cache.clear();
    }
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (auto& way : ways_) {
      std::lock_guard lock(way->mu);
      total += way->cache.size();
    }
    return total;
  }

  std::size_t way_count() const { return ways_.size(); }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    std::uint64_t total = 0;
    for (auto& way : ways_) {
      std::lock_guard lock(way->mu);
      total += way->cache.evictions();
    }
    return total;
  }
  double hit_rate() const {
    const auto h = hits();
    const auto m = misses();
    return h + m == 0 ? 0.0 : static_cast<double>(h) / static_cast<double>(h + m);
  }

 private:
  struct Way {
    explicit Way(std::size_t capacity) : cache(capacity) {}
    mutable std::mutex mu;
    LruCache<Key, Value, Hash> cache;
  };

  Way& way_for(const Key& key) {
    // Mix the hash so caches keyed by small integers spread across ways.
    std::uint64_t h = Hash{}(key);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return *ways_[h % ways_.size()];
  }

  std::vector<std::unique_ptr<Way>> ways_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace mfw::util
