// Streaming and batch statistics used by benchmarks and telemetry.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace mfw::util {

/// Welford-style streaming accumulator for mean / variance / extrema.
class StreamingStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch helpers over a sample vector.
double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile(std::span<const double> xs, double p);

/// Fixed-width linear histogram over [lo, hi); out-of-range samples clamp to
/// the first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Renders "lo..hi: ####  (n)" rows for bench output.
  std::string render(std::size_t max_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mfw::util
