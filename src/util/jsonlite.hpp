// Minimal JSON reader for the report-consuming tools (mfwctl diff,
// mfwctl report --from). The repo's writers emit JSON through
// util::JsonWriter; this is the matching read side: a strict recursive-
// descent parser into a small DOM, with position-aware errors that
// distinguish *truncated* input (the stream ended mid-document — the
// common failure when a run was killed while writing a report) from
// plain syntax errors. No dependencies beyond the standard library; not
// a general-purpose library — no comments, no trailing commas, no NaN.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mfw::util {

/// Parse failure. `truncated()` is true when the input ended before the
/// document was complete (killed writer / partial download), false for a
/// malformed byte inside otherwise-available input.
class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& message, std::size_t offset, bool truncated)
      : std::runtime_error(message), offset_(offset), truncated_(truncated) {}

  /// Byte offset into the input where the failure was detected.
  std::size_t offset() const { return offset_; }
  bool truncated() const { return truncated_; }

 private:
  std::size_t offset_;
  bool truncated_;
};

/// One parsed JSON value. A tagged struct rather than a class hierarchy:
/// report documents are small (KBs to low MBs) and read once, so clarity
/// beats compactness. Object members keep document order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* find(std::string_view key) const;

  // -- tolerant typed accessors for report consumers -------------------------
  /// Member `key` as a number / string / bool, or `fallback` when the member
  /// is missing or has another type.
  double num(std::string_view key, double fallback = 0.0) const;
  std::string str(std::string_view key,
                  std::string_view fallback = {}) const;
  /// Member `key` as an array; empty when missing or not an array.
  const std::vector<JsonValue>& items(std::string_view key) const;
};

/// Parses exactly one JSON document (trailing whitespace allowed, trailing
/// data is an error). Throws JsonError.
JsonValue parse_json(std::string_view text);

}  // namespace mfw::util
