#include "util/yamlite.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

#include "util/bytes.hpp"
#include "util/strings.hpp"

namespace mfw::util {

namespace {

const YamlNode& null_node() {
  static const YamlNode node;
  return node;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw YamlError("yaml:" + std::to_string(line_no) + ": " + what);
}

struct Line {
  std::size_t number;   // 1-based source line
  std::size_t indent;   // leading spaces
  std::string content;  // after indent, comment stripped, rtrimmed
};

// Strips a trailing comment that is not inside quotes.
std::string strip_comment(std::string_view s) {
  bool in_single = false;
  bool in_double = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    else if (c == '"' && !in_single) in_double = !in_double;
    else if (c == '#' && !in_single && !in_double &&
             (i == 0 || s[i - 1] == ' ' || s[i - 1] == '\t')) {
      return std::string(trim(s.substr(0, i)));
    }
  }
  return std::string(trim(s));
}

std::vector<Line> to_lines(std::string_view text) {
  std::vector<Line> lines;
  std::size_t line_no = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      ++line_no;
      std::string_view raw = text.substr(start, i - start);
      start = i + 1;
      std::size_t indent = 0;
      while (indent < raw.size() && raw[indent] == ' ') ++indent;
      if (indent < raw.size() && raw[indent] == '\t')
        fail(line_no, "tab indentation is not supported");
      std::string content = strip_comment(raw.substr(indent));
      if (content.empty()) continue;
      if (content == "---") continue;  // document marker
      lines.push_back({line_no, indent, std::move(content)});
    }
  }
  return lines;
}

YamlNode parse_value(std::string_view token, std::size_t line_no);

// Splits `inner` on top-level commas (outside quotes, brackets, and braces)
// and invokes `consume` per field.
template <typename Fn>
void split_flow_fields(std::string_view inner, std::size_t line_no,
                       Fn&& consume) {
  bool in_single = false, in_double = false;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= inner.size(); ++i) {
    if (i < inner.size()) {
      const char c = inner[i];
      if (c == '\'' && !in_double) in_single = !in_single;
      else if (c == '"' && !in_single) in_double = !in_double;
      else if (!in_single && !in_double && (c == '[' || c == '{')) ++depth;
      else if (!in_single && !in_double && (c == ']' || c == '}')) --depth;
    }
    if (i == inner.size() ||
        (inner[i] == ',' && !in_single && !in_double && depth == 0)) {
      consume(inner.substr(start, i - start));
      start = i + 1;
    }
  }
  if (depth != 0 || in_single || in_double)
    fail(line_no, "unbalanced flow collection");
}

// Splits a flow collection body into fields, dropping a trailing
// empty/whitespace-only field so `[a, b,]` and `{a: 1,}` parse as the
// comma-less equivalents (interior empties stay significant: `[a, , b]`
// keeps its null item).
std::vector<std::string_view> flow_fields(std::string_view inner,
                                          std::size_t line_no) {
  std::vector<std::string_view> fields;
  split_flow_fields(inner, line_no,
                    [&](std::string_view field) { fields.push_back(field); });
  if (!fields.empty() && trim(fields.back()).empty()) fields.pop_back();
  return fields;
}

// Parses a scalar token: unquotes, recognizes flow lists and flow maps.
YamlNode parse_value(std::string_view token, std::size_t line_no) {
  token = trim(token);
  if (token.empty() || token == "~" || token == "null") {
    YamlNode node;
    node.set_line(line_no);
    return node;
  }
  if (token.front() == '[') {
    if (token.back() != ']') fail(line_no, "unterminated flow list");
    auto node = YamlNode::list();
    node.set_line(line_no);
    std::string_view inner = token.substr(1, token.size() - 2);
    if (trim(inner).empty()) return node;
    for (std::string_view field : flow_fields(inner, line_no)) {
      node.push_back(parse_value(field, line_no));
    }
    return node;
  }
  if (token.front() == '{') {
    if (token.back() != '}') fail(line_no, "unterminated flow map");
    auto node = YamlNode::map();
    node.set_line(line_no);
    std::string_view inner = token.substr(1, token.size() - 2);
    if (trim(inner).empty()) return node;
    for (std::string_view field : flow_fields(inner, line_no)) {
      field = trim(field);
      // Find the key separator at depth 0 (allowing nested collections in
      // the value).
      bool fs = false, fd = false;
      int depth = 0;
      std::size_t colon = std::string_view::npos;
      for (std::size_t i = 0; i < field.size(); ++i) {
        const char c = field[i];
        if (c == '\'' && !fd) fs = !fs;
        else if (c == '"' && !fs) fd = !fd;
        else if (!fs && !fd && (c == '[' || c == '{')) ++depth;
        else if (!fs && !fd && (c == ']' || c == '}')) --depth;
        else if (c == ':' && !fs && !fd && depth == 0) {
          colon = i;
          break;
        }
      }
      if (colon == std::string_view::npos)
        fail(line_no, "flow map entry missing ':'");
      std::string key(trim(field.substr(0, colon)));
      if (key.size() >= 2 && (key.front() == '"' || key.front() == '\'') &&
          key.back() == key.front()) {
        key = key.substr(1, key.size() - 2);
      }
      node.set(std::move(key), parse_value(field.substr(colon + 1), line_no));
    }
    return node;
  }
  YamlNode node =
      ((token.front() == '"' && token.back() == '"' && token.size() >= 2) ||
       (token.front() == '\'' && token.back() == '\'' && token.size() >= 2))
          ? YamlNode::scalar(std::string(token.substr(1, token.size() - 2)))
          : YamlNode::scalar(std::string(token));
  node.set_line(line_no);
  return node;
}

// Finds the ':' that splits "key: value" (outside quotes and outside flow
// collections — `- {a: 1}` is a flow-map list item, not an inline map
// entry keyed "{a"); returns npos if the line is not a map entry.
std::size_t find_key_colon(std::string_view s) {
  bool in_single = false, in_double = false;
  int depth = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    else if (c == '"' && !in_single) in_double = !in_double;
    else if (!in_single && !in_double && (c == '[' || c == '{')) ++depth;
    else if (!in_single && !in_double && (c == ']' || c == '}')) --depth;
    else if (c == ':' && !in_single && !in_double && depth == 0) {
      if (i + 1 == s.size() || s[i + 1] == ' ') return i;
    }
  }
  return std::string_view::npos;
}

class Parser {
 public:
  explicit Parser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  YamlNode parse() {
    if (lines_.empty()) return YamlNode::map();
    YamlNode root = parse_block(lines_.front().indent);
    if (pos_ != lines_.size()) fail(lines_[pos_].number, "unexpected dedent/indent");
    return root;
  }

 private:
  // Parses the block whose entries sit exactly at `indent`.
  YamlNode parse_block(std::size_t indent) {
    if (starts_with(lines_[pos_].content, "- ") || lines_[pos_].content == "-") {
      return parse_list(indent);
    }
    return parse_map(indent);
  }

  YamlNode parse_map(std::size_t indent) {
    auto node = YamlNode::map();
    if (pos_ < lines_.size()) node.set_line(lines_[pos_].number);
    while (pos_ < lines_.size() && lines_[pos_].indent == indent) {
      const Line& line = lines_[pos_];
      if (starts_with(line.content, "- "))
        fail(line.number, "list item in map block");
      const auto colon = find_key_colon(line.content);
      if (colon == std::string_view::npos)
        fail(line.number, "expected 'key: value'");
      std::string key(trim(std::string_view(line.content).substr(0, colon)));
      if (!key.empty() && (key.front() == '"' || key.front() == '\'') &&
          key.size() >= 2 && key.back() == key.front()) {
        key = key.substr(1, key.size() - 2);
      }
      std::string_view rest = trim(std::string_view(line.content).substr(colon + 1));
      ++pos_;
      if (!rest.empty()) {
        node.set(std::move(key), parse_value(rest, line.number));
      } else if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
        node.set(std::move(key), parse_block(lines_[pos_].indent));
      } else {
        YamlNode null_value;
        null_value.set_line(line.number);
        node.set(std::move(key), std::move(null_value));
      }
    }
    if (pos_ < lines_.size() && lines_[pos_].indent > indent)
      fail(lines_[pos_].number, "unexpected indent");
    return node;
  }

  YamlNode parse_list(std::size_t indent) {
    auto node = YamlNode::list();
    if (pos_ < lines_.size()) node.set_line(lines_[pos_].number);
    while (pos_ < lines_.size() && lines_[pos_].indent == indent &&
           (starts_with(lines_[pos_].content, "- ") || lines_[pos_].content == "-")) {
      Line& line = lines_[pos_];
      std::string_view rest =
          line.content == "-" ? std::string_view{}
                              : trim(std::string_view(line.content).substr(2));
      if (rest.empty()) {
        ++pos_;
        if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
          node.push_back(parse_block(lines_[pos_].indent));
        } else {
          YamlNode null_item;
          null_item.set_line(line.number);
          node.push_back(std::move(null_item));
        }
        continue;
      }
      const auto colon = find_key_colon(rest);
      if (colon != std::string_view::npos) {
        // "- key: value" opens an inline map whose further entries are
        // indented to the position of `key`. Rewrite this line in place as a
        // plain map entry at that virtual indent and re-parse as a map block.
        const std::size_t virtual_indent =
            line.indent + (line.content.size() - rest.size());
        line.indent = virtual_indent;
        line.content = std::string(rest);
        node.push_back(parse_map(virtual_indent));
      } else {
        ++pos_;
        node.push_back(parse_value(rest, line.number));
      }
    }
    if (pos_ < lines_.size() && lines_[pos_].indent > indent)
      fail(lines_[pos_].number, "unexpected indent after list");
    return node;
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

bool scalar_to_bool(const std::string& s, bool& out) {
  if (s == "true" || s == "True" || s == "yes" || s == "on") { out = true; return true; }
  if (s == "false" || s == "False" || s == "no" || s == "off") { out = false; return true; }
  return false;
}

void dump_node(const YamlNode& node, std::ostringstream& os, int indent);

bool needs_quotes(const std::string& s) {
  if (s.empty()) return true;
  for (char c : s) {
    if (c == ':' || c == '#' || c == '[' || c == ']' || c == '{' || c == '}' ||
        c == ',' || c == '\'' || c == '"' || c == '\n')
      return true;
  }
  return s.front() == ' ' || s.back() == ' ' || s == "null" || s == "~";
}

// Emits a map key, quoting it when the raw spelling would reparse as
// something else (e.g. a key containing ": ").
void dump_key(const std::string& key, std::ostringstream& os) {
  if (needs_quotes(key)) {
    os << '"';
    for (char c : key) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << '"';
  } else {
    os << key;
  }
}

void dump_scalar(const YamlNode& node, std::ostringstream& os) {
  if (node.is_null()) {
    os << "null";
    return;
  }
  const auto& s = node.as_string();
  if (needs_quotes(s)) {
    os << '"';
    for (char c : s) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << '"';
  } else {
    os << s;
  }
}

void dump_node(const YamlNode& node, std::ostringstream& os, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  switch (node.kind()) {
    case YamlNode::Kind::kNull:
    case YamlNode::Kind::kScalar:
      os << pad;
      dump_scalar(node, os);
      os << '\n';
      break;
    case YamlNode::Kind::kList:
      for (const auto& item : node.items()) {
        if (item.is_map() || item.is_list()) {
          os << pad << "-\n";
          dump_node(item, os, indent + 2);
        } else {
          os << pad << "- ";
          dump_scalar(item, os);
          os << '\n';
        }
      }
      break;
    case YamlNode::Kind::kMap:
      for (const auto& key : node.keys()) {
        const auto& value = node[key];
        os << pad;
        dump_key(key, os);
        if (value.is_map() || value.is_list()) {
          os << ":\n";
          dump_node(value, os, indent + 2);
        } else {
          os << ": ";
          dump_scalar(value, os);
          os << '\n';
        }
      }
      break;
  }
}

}  // namespace

YamlNode YamlNode::scalar(std::string value) {
  YamlNode node(Kind::kScalar);
  node.scalar_ = std::move(value);
  return node;
}

YamlNode YamlNode::list() { return YamlNode(Kind::kList); }
YamlNode YamlNode::map() { return YamlNode(Kind::kMap); }

const std::string& YamlNode::as_string() const {
  if (kind_ != Kind::kScalar) throw YamlError("node is not a scalar");
  return scalar_;
}

std::int64_t YamlNode::as_int() const {
  const auto& s = as_string();
  try {
    std::size_t used = 0;
    const auto v = std::stoll(s, &used, 0);
    if (used != s.size()) throw YamlError("trailing characters in int: " + s);
    return v;
  } catch (const std::invalid_argument&) {
    throw YamlError("not an integer: " + s);
  } catch (const std::out_of_range&) {
    throw YamlError("integer out of range: " + s);
  }
}

double YamlNode::as_double() const {
  const auto& s = as_string();
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw YamlError("trailing characters in double: " + s);
    return v;
  } catch (const std::invalid_argument&) {
    throw YamlError("not a number: " + s);
  } catch (const std::out_of_range&) {
    throw YamlError("number out of range: " + s);
  }
}

bool YamlNode::as_bool() const {
  bool out = false;
  if (!scalar_to_bool(as_string(), out))
    throw YamlError("not a boolean: " + as_string());
  return out;
}

std::uint64_t YamlNode::as_bytes() const {
  try {
    return parse_bytes(as_string());
  } catch (const std::invalid_argument& e) {
    throw YamlError(e.what());
  }
}

std::string YamlNode::as_string_or(std::string fallback) const {
  return is_null() ? std::move(fallback) : as_string();
}
std::int64_t YamlNode::as_int_or(std::int64_t fallback) const {
  return is_null() ? fallback : as_int();
}
double YamlNode::as_double_or(double fallback) const {
  return is_null() ? fallback : as_double();
}
bool YamlNode::as_bool_or(bool fallback) const {
  return is_null() ? fallback : as_bool();
}

std::size_t YamlNode::size() const {
  if (kind_ == Kind::kList) return list_.size();
  if (kind_ == Kind::kMap) return keys_.size();
  return 0;
}

const YamlNode& YamlNode::at(std::size_t index) const {
  if (kind_ != Kind::kList) throw YamlError("node is not a list");
  if (index >= list_.size()) throw YamlError("list index out of range");
  return list_[index];
}

const std::vector<YamlNode>& YamlNode::items() const {
  if (kind_ != Kind::kList) throw YamlError("node is not a list");
  return list_;
}

void YamlNode::push_back(YamlNode node) {
  if (kind_ != Kind::kList) throw YamlError("push_back on non-list");
  list_.push_back(std::move(node));
}

bool YamlNode::has(std::string_view key) const {
  return kind_ == Kind::kMap && map_.find(key) != map_.end();
}

const YamlNode& YamlNode::operator[](std::string_view key) const {
  if (kind_ != Kind::kMap) return null_node();
  const auto it = map_.find(key);
  return it == map_.end() ? null_node() : it->second;
}

const YamlNode& YamlNode::require(std::string_view key) const {
  if (kind_ != Kind::kMap) throw YamlError("node is not a map");
  const auto it = map_.find(key);
  if (it == map_.end()) throw YamlError("missing required key: " + std::string(key));
  return it->second;
}

const std::vector<std::string>& YamlNode::keys() const {
  if (kind_ != Kind::kMap) throw YamlError("node is not a map");
  return keys_;
}

void YamlNode::set(std::string key, YamlNode value) {
  if (kind_ != Kind::kMap) throw YamlError("set on non-map");
  if (map_.find(key) == map_.end()) keys_.push_back(key);
  map_[std::move(key)] = std::move(value);
}

const YamlNode& YamlNode::path(std::string_view dotted) const {
  const YamlNode* node = this;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= dotted.size(); ++i) {
    if (i == dotted.size() || dotted[i] == '.') {
      node = &(*node)[dotted.substr(start, i - start)];
      start = i + 1;
      if (node->is_null() && i != dotted.size()) return null_node();
    }
  }
  return *node;
}

std::string YamlNode::dump(int indent) const {
  std::ostringstream os;
  dump_node(*this, os, indent);
  return os.str();
}

YamlNode parse_yaml(std::string_view text) {
  return Parser(to_lines(text)).parse();
}

YamlNode merge_yaml(const YamlNode& base, const YamlNode& overlay) {
  if (!base.is_map() || !overlay.is_map()) return overlay;
  YamlNode merged = base;
  for (const auto& key : overlay.keys()) {
    if (base.has(key)) {
      merged.set(key, merge_yaml(base[key], overlay[key]));
    } else {
      merged.set(key, overlay[key]);
    }
  }
  return merged;
}

}  // namespace mfw::util
