// Minimal ASCII plotting for benchmark binaries: the figures in the paper are
// line plots (scaling curves, worker timelines); we render the same series as
// terminal plots plus CSV so the shape is inspectable without a plotting
// stack.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace mfw::util {

struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
  char marker = '*';
};

/// Renders one or more series on a shared canvas with axis labels.
/// `width`/`height` are the plot-area dimensions in characters.
std::string ascii_plot(const std::vector<Series>& series, std::size_t width = 64,
                       std::size_t height = 16, const std::string& x_label = "x",
                       const std::string& y_label = "y");

/// Horizontal bar chart: one labelled bar per entry.
std::string ascii_bars(const std::vector<std::pair<std::string, double>>& bars,
                       std::size_t width = 48);

}  // namespace mfw::util
