// Thread-safe multi-producer / multi-consumer queue with close semantics,
// used by the real-thread executor and the download worker pool.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mfw::util {

template <typename T>
class BlockingQueue {
 public:
  /// Pushes an item; returns false if the queue has been closed.
  bool push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// Returns nullopt in the latter case.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// After close(), pushes fail and pops drain remaining items then return
  /// nullopt. Idempotent.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mfw::util
