// yamlite: a deliberately small YAML-subset parser.
//
// The paper's workflow is configured "through a locally available YAML file"
// (download endpoints, products, time spans, worker counts) and Globus Flows
// are JSON/YAML state machines. We implement the subset those need:
//
//   - block maps (`key: value`, `key:` + indented block)
//   - block lists (`- item`, `- key: value` starting an inline map entry)
//   - scalars: strings (bare / single- / double-quoted), ints, doubles,
//     booleans, null
//   - flow lists on one line: `[a, b, c]`
//   - comments (`# ...`) and blank lines
//
// Anchors, aliases, multi-line scalars, and flow maps are out of scope.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mfw::util {

/// Parse/structure error with line information where available.
class YamlError : public std::runtime_error {
 public:
  explicit YamlError(const std::string& what) : std::runtime_error(what) {}
};

/// A parsed YAML node: scalar, list, or map (insertion-ordered keys).
class YamlNode {
 public:
  enum class Kind { kNull, kScalar, kList, kMap };

  YamlNode() : kind_(Kind::kNull) {}
  static YamlNode scalar(std::string value);
  static YamlNode list();
  static YamlNode map();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_scalar() const { return kind_ == Kind::kScalar; }
  bool is_list() const { return kind_ == Kind::kList; }
  bool is_map() const { return kind_ == Kind::kMap; }

  // -- Scalar accessors (throw YamlError on kind/format mismatch) ----------
  const std::string& as_string() const;
  std::int64_t as_int() const;
  double as_double() const;
  bool as_bool() const;
  /// Parses byte sizes like "32GB" via parse_bytes().
  std::uint64_t as_bytes() const;

  // Defaulted variants return `fallback` when the node is null.
  std::string as_string_or(std::string fallback) const;
  std::int64_t as_int_or(std::int64_t fallback) const;
  double as_double_or(double fallback) const;
  bool as_bool_or(bool fallback) const;

  // -- List access ----------------------------------------------------------
  std::size_t size() const;
  const YamlNode& at(std::size_t index) const;
  const std::vector<YamlNode>& items() const;
  void push_back(YamlNode node);

  // -- Map access -----------------------------------------------------------
  /// True if the map contains `key` (false for non-maps).
  bool has(std::string_view key) const;
  /// Map lookup; returns a shared null node when the key is absent so that
  /// chained lookups like `cfg["a"]["b"].as_int_or(3)` are safe.
  const YamlNode& operator[](std::string_view key) const;
  /// Map lookup that throws YamlError when the key is missing.
  const YamlNode& require(std::string_view key) const;
  /// Insertion-ordered keys of a map.
  const std::vector<std::string>& keys() const;
  void set(std::string key, YamlNode value);

  /// Dotted-path lookup across nested maps: path("download.workers").
  const YamlNode& path(std::string_view dotted) const;

  /// 1-based source line this node was parsed from (0 for synthesized
  /// nodes). Consumers building layered validators (e.g. mfw::spec) use it
  /// to anchor semantic errors to the offending line.
  std::size_t line() const { return line_; }
  void set_line(std::size_t line) { line_ = line; }

  /// Serializes back to YAML text (round-trip subset, used by provenance).
  std::string dump(int indent = 0) const;

 private:
  explicit YamlNode(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::size_t line_ = 0;
  std::string scalar_;
  std::vector<YamlNode> list_;
  std::vector<std::string> keys_;
  std::map<std::string, YamlNode, std::less<>> map_;
};

/// Parses a YAML document. Throws YamlError with a line number on failure.
YamlNode parse_yaml(std::string_view text);

/// Deep-merges `overlay` onto `base`: maps merge key-by-key recursively;
/// any other kind (scalar, list, null-as-explicit-value) replaces. Used by
/// the pipeline registry to apply per-run overrides to shared templates.
YamlNode merge_yaml(const YamlNode& base, const YamlNode& overlay);

}  // namespace mfw::util
