#include "util/log.hpp"

#include <cstdio>

namespace mfw::util {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() = default;

void Logger::set_level(LogLevel level) {
  std::lock_guard lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::lock_guard lock(mu_);
  return level_;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard lock(mu_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message) {
  std::string line;
  line.reserve(component.size() + message.size() + 16);
  line.append("[").append(to_string(level)).append("] ");
  line.append(component).append(": ").append(message);

  std::lock_guard lock(mu_);
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  if (sink_) {
    sink_(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace mfw::util
