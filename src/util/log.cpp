#include "util/log.hpp"

#include <chrono>
#include <cstdio>

namespace mfw::util {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : start_(std::chrono::steady_clock::now()) {}

double Logger::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void Logger::set_sink(Sink sink) {
  std::lock_guard lock(mu_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (!enabled(level)) return;
  std::string line;
  line.reserve(component.size() + message.size() + 16);
  line.append("[").append(to_string(level)).append("] ");
  line.append(component).append(": ").append(message);

  std::lock_guard lock(mu_);
  if (sink_) {
    sink_(level, line);
  } else {
    // The default sink adds elapsed wall time so interleaved bench output
    // can be read as a coarse timeline without a trace viewer.
    std::fprintf(stderr, "[+%9.3fs] %s\n", elapsed_seconds(), line.c_str());
  }
}

}  // namespace mfw::util
