#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mfw::util {

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile p out of range");
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram needs >= 1 bin");
  if (!(hi > lo)) throw std::invalid_argument("Histogram needs hi > lo");
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

std::string Histogram::render(std::size_t max_width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto width = counts_[b] * max_width / peak;
    os << bin_lo(b) << " .. " << bin_hi(b) << " | "
       << std::string(width, '#') << "  (" << counts_[b] << ")\n";
  }
  return os.str();
}

}  // namespace mfw::util
