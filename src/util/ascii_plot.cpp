#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mfw::util {

namespace {
std::string short_num(double v) {
  char buf[32];
  if (std::abs(v) >= 1000.0 || (std::abs(v) < 0.01 && v != 0.0)) {
    std::snprintf(buf, sizeof buf, "%.2g", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}
}  // namespace

std::string ascii_plot(const std::vector<Series>& series, std::size_t width,
                       std::size_t height, const std::string& x_label,
                       const std::string& y_label) {
  double xmin = 0, xmax = 1, ymin = 0, ymax = 1;
  bool first = true;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.xs.size() && i < s.ys.size(); ++i) {
      if (first) {
        xmin = xmax = s.xs[i];
        ymin = ymax = s.ys[i];
        first = false;
      } else {
        xmin = std::min(xmin, s.xs[i]);
        xmax = std::max(xmax, s.xs[i]);
        ymin = std::min(ymin, s.ys[i]);
        ymax = std::max(ymax, s.ys[i]);
      }
    }
  }
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax == ymin) ymax = ymin + 1;

  std::vector<std::string> canvas(height, std::string(width, ' '));
  auto put = [&](double x, double y, char m) {
    const auto cx = static_cast<std::ptrdiff_t>(
        std::lround((x - xmin) / (xmax - xmin) * static_cast<double>(width - 1)));
    const auto cy = static_cast<std::ptrdiff_t>(
        std::lround((y - ymin) / (ymax - ymin) * static_cast<double>(height - 1)));
    if (cx < 0 || cy < 0 || cx >= static_cast<std::ptrdiff_t>(width) ||
        cy >= static_cast<std::ptrdiff_t>(height))
      return;
    canvas[height - 1 - static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] = m;
  };

  for (const auto& s : series) {
    // Line segments between consecutive points, drawn with '.', then markers.
    for (std::size_t i = 0; i + 1 < s.xs.size() && i + 1 < s.ys.size(); ++i) {
      const int steps = 24;
      for (int k = 0; k <= steps; ++k) {
        const double t = static_cast<double>(k) / steps;
        put(s.xs[i] + t * (s.xs[i + 1] - s.xs[i]),
            s.ys[i] + t * (s.ys[i + 1] - s.ys[i]), '.');
      }
    }
    for (std::size_t i = 0; i < s.xs.size() && i < s.ys.size(); ++i)
      put(s.xs[i], s.ys[i], s.marker);
  }

  std::ostringstream os;
  os << y_label << "  (" << short_num(ymin) << " .. " << short_num(ymax) << ")\n";
  for (const auto& row : canvas) os << "  |" << row << "\n";
  os << "  +" << std::string(width, '-') << "\n";
  os << "   " << short_num(xmin)
     << std::string(width > 24 ? width - 16 : 4, ' ') << short_num(xmax) << "   "
     << x_label << "\n";
  if (series.size() > 1 || (!series.empty() && !series.front().name.empty())) {
    os << "  legend:";
    for (const auto& s : series) os << "  '" << s.marker << "' = " << s.name;
    os << "\n";
  }
  return os.str();
}

std::string ascii_bars(const std::vector<std::pair<std::string, double>>& bars,
                       std::size_t width) {
  double peak = 0;
  std::size_t label_width = 0;
  for (const auto& [label, v] : bars) {
    peak = std::max(peak, v);
    label_width = std::max(label_width, label.size());
  }
  if (peak <= 0) peak = 1;
  std::ostringstream os;
  for (const auto& [label, v] : bars) {
    const auto w = static_cast<std::size_t>(
        std::lround(v / peak * static_cast<double>(width)));
    os << "  " << label << std::string(label_width - label.size(), ' ') << " | "
       << std::string(w, '#') << ' ' << short_num(v) << '\n';
  }
  return os.str();
}

}  // namespace mfw::util
