// Deterministic, seedable random number generation for simulation and
// synthetic data. We implement xoshiro256** (public-domain algorithm by
// Blackman & Vigna) rather than relying on std::mt19937 so that streams are
// cheap to split per-entity (per worker, per granule) and results are
// reproducible across standard library implementations.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace mfw::util {

/// SplitMix64: used to seed xoshiro streams and to hash integers into seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix, handy for deriving per-entity seeds from
/// (base_seed, entity_id) pairs.
inline std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9b1a5d3c7e2f4680ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Standard normal via Box-Muller (one value per call; simple > fast here).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Lognormal such that the *median* of the distribution is `median` and the
  /// log-space standard deviation is `sigma`. Used for network throughput
  /// variability.
  double lognormal_median(double median, double sigma) {
    return median * std::exp(sigma * normal());
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace mfw::util
