// Console table renderer for benchmark output (reproduces the paper's
// Table I layout) and CSV export for plotting.
#pragma once

#include <string>
#include <vector>

namespace mfw::util {

/// Column-aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);

  /// Renders with column alignment and a separator under the header.
  std::string render() const;

  /// Renders as CSV (no alignment padding).
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mfw::util
