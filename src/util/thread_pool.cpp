#include "util/thread_pool.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace mfw::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) throw std::invalid_argument("ThreadPool needs >= 1 thread");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  return queue_.push(std::move(task));
}

void ThreadPool::shutdown() {
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  while (auto task = queue_.pop()) {
    (*task)();
  }
}

namespace {
// Dispatch state shared between the caller and its helper tasks. Held via
// shared_ptr so a helper that the pool dequeues *after* the call returned
// (possible when the caller finished every chunk itself) finds no work,
// exits, and releases its reference — no dangling state, and no deadlock
// when parallel_for is invoked from inside a pool task whose helpers can
// never be scheduled.
struct ParallelForState {
  std::function<void(std::size_t, std::size_t)> fn;
  std::size_t n = 0;
  std::size_t chunk = 0;
  std::size_t chunks = 0;
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t next = 0;       // next chunk index to claim
  std::size_t in_flight = 0;  // chunks claimed but not yet finished
  std::exception_ptr error;

  // Claims and runs chunks until none are left (or a chunk threw).
  void run() {
    for (;;) {
      std::size_t c;
      {
        std::lock_guard lock(mu);
        if (next >= chunks || error) break;
        c = next++;
        ++in_flight;
      }
      const std::size_t begin = c * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard lock(mu);
        if (!error) error = std::current_exception();
      }
      {
        std::lock_guard lock(mu);
        --in_flight;
      }
      done_cv.notify_all();
    }
  }
};
}  // namespace

void parallel_for(ThreadPool& pool, std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (chunk == 0) throw std::invalid_argument("parallel_for: chunk must be > 0");
  const std::size_t chunks = (n + chunk - 1) / chunk;
  if (chunks == 1) {
    fn(0, n);
    return;
  }

  auto st = std::make_shared<ParallelForState>();
  st->fn = fn;
  st->n = n;
  st->chunk = chunk;
  st->chunks = chunks;

  const std::size_t helpers = std::min(pool.thread_count(), chunks - 1);
  for (std::size_t t = 0; t < helpers; ++t) {
    if (!pool.submit([st] { st->run(); })) break;  // pool shut down
  }

  st->run();  // the calling thread is worker #0

  // All chunks are claimed once st->run() returned; wait for the ones other
  // threads still hold. Unscheduled helper tasks find nothing to claim.
  std::unique_lock lock(st->mu);
  st->done_cv.wait(lock, [&] { return st->in_flight == 0; });
  if (st->error) std::rethrow_exception(st->error);
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  const std::size_t ways = 4 * (pool.thread_count() + 1);
  const std::size_t chunk = std::max<std::size_t>(1, (n + ways - 1) / ways);
  parallel_for(pool, n, chunk,
               [&fn](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) fn(i);
               });
}

}  // namespace mfw::util
