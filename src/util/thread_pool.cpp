#include "util/thread_pool.hpp"

#include <stdexcept>

namespace mfw::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) throw std::invalid_argument("ThreadPool needs >= 1 thread");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  return queue_.push(std::move(task));
}

void ThreadPool::shutdown() {
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  while (auto task = queue_.pop()) {
    (*task)();
  }
}

}  // namespace mfw::util
