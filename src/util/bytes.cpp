#include "util/bytes.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mfw::util {

std::uint64_t parse_bytes(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  std::size_t start = i;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.'))
    ++i;
  if (i == start) throw std::invalid_argument("parse_bytes: no number in input");
  const double value = std::stod(std::string(text.substr(start, i - start)));
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;

  std::string unit;
  for (; i < text.size(); ++i) {
    if (std::isspace(static_cast<unsigned char>(text[i]))) break;
    unit.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(text[i]))));
  }
  double scale = 1.0;
  if (unit.empty() || unit == "b") {
    scale = 1.0;
  } else if (unit == "k" || unit == "kb" || unit == "kib") {
    scale = static_cast<double>(kKiB);
  } else if (unit == "m" || unit == "mb" || unit == "mib") {
    scale = static_cast<double>(kMiB);
  } else if (unit == "g" || unit == "gb" || unit == "gib") {
    scale = static_cast<double>(kGiB);
  } else if (unit == "t" || unit == "tb" || unit == "tib") {
    scale = static_cast<double>(kTiB);
  } else {
    throw std::invalid_argument("parse_bytes: unknown unit '" + unit + "'");
  }
  return static_cast<std::uint64_t>(std::llround(value * scale));
}

namespace {
std::string format_with_unit(double value, const char* unit) {
  char buf[48];
  if (value >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.0f%s", value, unit);
  } else if (value >= 10.0) {
    std::snprintf(buf, sizeof buf, "%.1f%s", value, unit);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f%s", value, unit);
  }
  return buf;
}
}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  const auto v = static_cast<double>(bytes);
  if (bytes >= kTiB) return format_with_unit(v / static_cast<double>(kTiB), "TB");
  if (bytes >= kGiB) return format_with_unit(v / static_cast<double>(kGiB), "GB");
  if (bytes >= kMiB) return format_with_unit(v / static_cast<double>(kMiB), "MB");
  if (bytes >= kKiB) return format_with_unit(v / static_cast<double>(kKiB), "KB");
  return format_with_unit(v, "B");
}

std::string format_rate(double bytes_per_sec) {
  if (bytes_per_sec >= static_cast<double>(kGiB))
    return format_with_unit(bytes_per_sec / static_cast<double>(kGiB), "GB/s");
  if (bytes_per_sec >= static_cast<double>(kMiB))
    return format_with_unit(bytes_per_sec / static_cast<double>(kMiB), "MB/s");
  if (bytes_per_sec >= static_cast<double>(kKiB))
    return format_with_unit(bytes_per_sec / static_cast<double>(kKiB), "KB/s");
  return format_with_unit(bytes_per_sec, "B/s");
}

std::string format_seconds(double seconds) {
  char buf[48];
  if (seconds < 0.9995e-3) {
    std::snprintf(buf, sizeof buf, "%.0fus", seconds * 1e6);
  } else if (seconds < 0.9995) {
    std::snprintf(buf, sizeof buf, "%.0fms", seconds * 1e3);
  } else if (seconds < 60.0) {
    std::snprintf(buf, sizeof buf, "%.2fs", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof buf, "%dm%02.0fs", static_cast<int>(seconds / 60.0),
                  std::fmod(seconds, 60.0));
  } else {
    std::snprintf(buf, sizeof buf, "%dh%02dm",
                  static_cast<int>(seconds / 3600.0),
                  static_cast<int>(std::fmod(seconds, 3600.0) / 60.0));
  }
  return buf;
}

}  // namespace mfw::util
