// Zipf-distributed rank sampling for skewed-popularity workloads.
//
// Web-serving request streams are famously Zipfian: the k-th most popular
// item is requested with probability proportional to k^-s. The serve-layer
// load simulator uses this to give a small set of spatial cells the bulk of
// the traffic (the "hot cells" its result cache exists for). Sampling is by
// inverse-CDF binary search over a precomputed table — O(n) memory once,
// O(log n) per sample, deterministic given the caller's Rng, and exact (no
// rejection iterations), which keeps load generation reproducible across
// thread interleavings when each worker owns a seeded Rng.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace mfw::util {

class ZipfGenerator {
 public:
  /// Distribution over ranks [0, n): P(rank k) ∝ (k + 1)^-s. `s` = 0 is
  /// uniform; s ≈ 0.9–1.2 matches measured web workloads. n must be >= 1.
  explicit ZipfGenerator(std::size_t n, double s = 1.0) : cdf_(n == 0 ? 1 : n) {
    double total = 0.0;
    for (std::size_t k = 0; k < cdf_.size(); ++k) {
      total += std::pow(static_cast<double>(k + 1), -s);
      cdf_[k] = total;
    }
    for (auto& c : cdf_) c /= total;
    cdf_.back() = 1.0;  // guard against accumulated rounding
  }

  /// Samples a rank in [0, n).
  std::size_t operator()(Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it == cdf_.end() ? cdf_.size() - 1
                                                     : it - cdf_.begin());
  }

  std::size_t size() const { return cdf_.size(); }

  /// P(rank <= k), for tests and popularity accounting.
  double cdf(std::size_t k) const {
    return k >= cdf_.size() ? 1.0 : cdf_[k];
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace mfw::util
