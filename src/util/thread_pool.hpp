// Fixed-size thread pool over BlockingQueue. This is the *real-thread*
// execution substrate (used by ThreadPoolExecutor and tests); the scaling
// benchmarks use the discrete-event ClusterExecutor instead, since scaling
// curves cannot be measured on this host's core count.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "util/blocking_queue.hpp"

namespace mfw::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);

  /// Joins all workers; pending tasks are drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false after shutdown() / destruction began.
  bool submit(std::function<void()> task);

  /// Stops accepting tasks, drains the queue, and joins workers. Idempotent.
  void shutdown();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  BlockingQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
};

/// Runs fn(begin, end) over [0, n) in fixed chunks of `chunk` indices,
/// fanning chunks out across `pool` while the calling thread works too (so a
/// 1-thread pool, or one whose workers are busy, still makes progress).
/// Blocks until every chunk has run. Chunk boundaries depend only on (n,
/// chunk) — never on the pool's thread count — so callers that reduce
/// per-chunk results in chunk index order get results that are reproducible
/// at any thread count. If fn throws, remaining undispatched chunks are
/// skipped and the first exception is rethrown on the caller.
void parallel_for(ThreadPool& pool, std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t, std::size_t)>& fn);

/// Per-index convenience: runs fn(i) for i in [0, n) with an automatically
/// chosen chunk size (~4 chunks per pool thread for load balance).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace mfw::util
