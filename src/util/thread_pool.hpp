// Fixed-size thread pool over BlockingQueue. This is the *real-thread*
// execution substrate (used by ThreadPoolExecutor and tests); the scaling
// benchmarks use the discrete-event ClusterExecutor instead, since scaling
// curves cannot be measured on this host's core count.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "util/blocking_queue.hpp"

namespace mfw::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);

  /// Joins all workers; pending tasks are drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false after shutdown() / destruction began.
  bool submit(std::function<void()> task);

  /// Stops accepting tasks, drains the queue, and joins workers. Idempotent.
  void shutdown();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  BlockingQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace mfw::util
