// Small string / path helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mfw::util {

/// Splits on a single delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Glob-style match supporting '*' (any run) and '?' (single char).
/// Used by filesystem listing and the flow monitor's file patterns.
bool glob_match(std::string_view pattern, std::string_view text);

/// Joins path segments with '/' collapsing duplicate separators.
std::string path_join(std::string_view a, std::string_view b);

/// Final path component ("a/b/c.nc" -> "c.nc").
std::string_view path_basename(std::string_view path);

/// Directory part ("a/b/c.nc" -> "a/b"; "c.nc" -> "").
std::string_view path_dirname(std::string_view path);

/// printf-style formatting into std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace mfw::util
