// Minimal streaming JSON writer shared by every hand-written report emitter
// (obs trace reports, health streams, rollups, policy sweeps, serve
// responses). The existing report schemas were grown with idiosyncratic
// whitespace (newline-prefixed array items, ", "-separated members,
// "]"-vs-"\n]" closers) that CI gates pin byte-for-byte, so this writer
// exposes explicit separator control instead of imposing a pretty-printer:
// migrating an emitter onto JsonWriter must not change a single byte of its
// output.
//
// Numbers print as %.6g for doubles (the shared `num()` convention of the
// obs report writers — also what ostream<<double produces at default
// precision) and full decimal for integers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace mfw::util {

/// JSON-escapes `text` without surrounding quotes: quote, backslash, \n \r
/// \t shortcuts, plus \uXXXX for every other control character < 0x20, so
/// adversarial values (embedded newlines, NULs) cannot produce invalid JSON.
std::string json_escape(std::string_view text);

/// Appends the escaped form of `text` to `out` (allocation-light path used
/// by the trace exporter).
void append_json_escaped(std::string& out, std::string_view text);

/// %.6g double formatting, the report writers' shared number convention.
std::string json_num(double value);

class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  // -- structure -------------------------------------------------------------
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_object() { return close('}'); }
  /// Closes an array. When the array is non-empty, `close_prefix` is written
  /// before the ']' — the report writers' `(empty ? "]" : "\n]")` idiom.
  JsonWriter& end_array(std::string_view close_prefix = {});

  // -- members ---------------------------------------------------------------
  /// Starts an object member: a ',' when not the first member, then `pre`
  /// (default: a single space when not first, nothing when first), then
  /// `"name": `.
  JsonWriter& key(std::string_view name, std::string_view pre = {});
  /// Starts an array element: a ',' when not the first element, then `pre`
  /// (written for the first element too — the "\n  {…}" item idiom).
  JsonWriter& item(std::string_view pre = {});
  /// Starts an array element separated by `sep` (written only between
  /// elements — the inline "a, b, c" idiom).
  JsonWriter& inline_item(std::string_view sep = ", ");

  // -- values ----------------------------------------------------------------
  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v) { return raw(v ? "true" : "false"); }
  JsonWriter& value_int(std::int64_t v);
  JsonWriter& value_uint(std::uint64_t v);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>)
      return value_int(static_cast<std::int64_t>(v));
    else
      return value_uint(static_cast<std::uint64_t>(v));
  }
  /// Verbatim text (pre-rendered fragments).
  JsonWriter& raw(std::string_view text) {
    out_.append(text);
    return *this;
  }

  // -- convenience: key + value in one call ----------------------------------
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v,
                    std::string_view pre = {}) {
    key(name, pre);
    return value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  JsonWriter& open(char bracket);
  JsonWriter& close(char bracket);
  /// True when the enclosing container already holds a member/element.
  bool enclosing_nonempty() const {
    return !frames_.empty() && frames_.back();
  }
  void mark_member() {
    if (!frames_.empty()) frames_.back() = true;
  }

  std::string out_;
  std::vector<bool> frames_;  // per open container: has a member been written
};

}  // namespace mfw::util
