#include "util/jsonlite.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>

namespace mfw::util {
namespace {

/// Values nested deeper than this abort the parse: report documents are a
/// few levels deep, and a cap keeps adversarial input from exhausting the
/// stack.
constexpr std::size_t kMaxDepth = 128;

const std::vector<JsonValue> kEmptyArray;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size())
      fail("trailing data after JSON document", false);
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what, bool truncated) const {
    std::string message = what + " at byte " + std::to_string(pos_);
    if (truncated)
      message += " (input ends mid-document; file truncated?)";
    throw JsonError(message, pos_, truncated);
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  /// Next non-whitespace byte; a missing one means the document stopped
  /// early, which is always a truncation.
  char need(const char* context) {
    skip_ws();
    if (at_end()) fail(std::string("unexpected end of input ") + context, true);
    return text_[pos_];
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("document nested too deeply", false);
    const char c = need("while expecting a value");
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        JsonValue value;
        value.kind = JsonValue::Kind::kString;
        value.string = parse_string();
        return value;
      }
      case 't':
      case 'f': {
        JsonValue value;
        value.kind = JsonValue::Kind::kBool;
        value.boolean = c == 't';
        expect_word(c == 't' ? "true" : "false");
        return value;
      }
      case 'n':
        expect_word("null");
        return {};
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'", false);
    }
  }

  void expect_word(std::string_view word) {
    if (text_.size() - pos_ < word.size()) {
      if (text_.compare(pos_, text_.size() - pos_,
                        word.substr(0, text_.size() - pos_)) == 0)
        fail("unexpected end of input inside literal", true);
      fail("unrecognised literal", false);
    }
    if (text_.compare(pos_, word.size(), word) != 0)
      fail("unrecognised literal", false);
    pos_ += word.size();
  }

  JsonValue parse_number() {
    const std::size_t begin = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
      ++pos_;
    if (!at_end() && peek() == '.') {
      ++pos_;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    // strtod needs a terminated buffer; numbers are short, copy is fine.
    const std::string slice(text_.substr(begin, pos_ - begin));
    char* end = nullptr;
    const double parsed = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size() || slice.empty() ||
        !std::isfinite(parsed)) {
      pos_ = begin;
      fail("malformed number", false);
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = parsed;
    return value;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  unsigned parse_hex4() {
    if (text_.size() - pos_ < 4)
      fail("unexpected end of input inside \\u escape", true);
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9')
        code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        code |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("malformed \\u escape", false);
    }
    return code;
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (at_end()) fail("unexpected end of input inside string", true);
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string", false);
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (at_end()) fail("unexpected end of input inside escape", true);
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF && text_.size() - pos_ >= 2 &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low >= 0xDC00 && low <= 0xDFFF)
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            else
              append_utf8(out, 0xFFFD), code = low;
          }
          append_utf8(out, code);
          break;
        }
        default:
          --pos_;
          fail(std::string("unknown escape '\\") + e + "'", false);
      }
    }
  }

  JsonValue parse_array(std::size_t depth) {
    ++pos_;  // '['
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    if (need("inside array") == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value(depth + 1));
      const char c = need("inside array (expecting ',' or ']')");
      ++pos_;
      if (c == ']') return value;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array", false);
      }
    }
  }

  JsonValue parse_object(std::size_t depth) {
    ++pos_;  // '{'
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    if (need("inside object") == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      if (need("inside object (expecting a key)") != '"')
        fail("expected string key in object", false);
      std::string key = parse_string();
      if (need("after object key") != ':')
        fail("expected ':' after object key", false);
      ++pos_;
      value.object.emplace_back(std::move(key), parse_value(depth + 1));
      const char c = need("inside object (expecting ',' or '}')");
      ++pos_;
      if (c == '}') return value;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object", false);
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::num(std::string_view key, double fallback) const {
  const JsonValue* member = find(key);
  return member && member->is_number() ? member->number : fallback;
}

std::string JsonValue::str(std::string_view key,
                           std::string_view fallback) const {
  const JsonValue* member = find(key);
  return member && member->is_string() ? member->string
                                       : std::string(fallback);
}

const std::vector<JsonValue>& JsonValue::items(std::string_view key) const {
  const JsonValue* member = find(key);
  return member && member->is_array() ? member->array : kEmptyArray;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).run();
}

}  // namespace mfw::util
