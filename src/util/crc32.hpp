// CRC-32 (IEEE 802.3 polynomial) for integrity checks in the hdfl / ncl
// container formats and transfer verification.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace mfw::util {

/// One-shot CRC over a buffer.
std::uint32_t crc32(std::span<const std::byte> data);
std::uint32_t crc32(const void* data, std::size_t size);

/// Incremental CRC; feed chunks via update(), read via value().
class Crc32 {
 public:
  void update(const void* data, std::size_t size);
  void update(std::span<const std::byte> data) { update(data.data(), data.size()); }
  std::uint32_t value() const { return state_ ^ 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

}  // namespace mfw::util
