#include "util/json_writer.hpp"

#include <cstdio>

namespace mfw::util {

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  append_json_escaped(out, text);
  return out;
}

std::string json_num(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

JsonWriter& JsonWriter::open(char bracket) {
  mark_member();
  out_ += bracket;
  frames_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::close(char bracket) {
  if (!frames_.empty()) frames_.pop_back();
  out_ += bracket;
  return *this;
}

JsonWriter& JsonWriter::end_array(std::string_view close_prefix) {
  const bool nonempty = enclosing_nonempty();
  if (!frames_.empty()) frames_.pop_back();
  if (nonempty) out_.append(close_prefix);
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name, std::string_view pre) {
  const bool first = !enclosing_nonempty();
  if (!first) out_ += ',';
  if (pre.empty()) {
    if (!first) out_ += ' ';
  } else {
    out_.append(pre);
  }
  out_ += '"';
  append_json_escaped(out_, name);
  out_ += "\": ";
  mark_member();
  return *this;
}

JsonWriter& JsonWriter::item(std::string_view pre) {
  if (enclosing_nonempty()) out_ += ',';
  out_.append(pre);
  mark_member();
  return *this;
}

JsonWriter& JsonWriter::inline_item(std::string_view sep) {
  if (enclosing_nonempty()) out_.append(sep);
  mark_member();
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  out_ += '"';
  append_json_escaped(out_, text);
  out_ += '"';
  mark_member();
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  out_.append(json_num(v));
  mark_member();
  return *this;
}

JsonWriter& JsonWriter::value_int(std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_.append(buf);
  mark_member();
  return *this;
}

JsonWriter& JsonWriter::value_uint(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_.append(buf);
  mark_member();
  return *this;
}

}  // namespace mfw::util
