// Lightweight leveled logger used across all mfw modules.
//
// Design notes:
//  - A single global logger keeps the API ergonomic for library + bench code.
//  - Sinks are pluggable so tests can capture output.
//  - The level is an atomic, so the common "is this level enabled?" check in
//    MFW_LOG never takes a lock; a mutex guards only sink dispatch, and
//    formatting happens outside the lock.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace mfw::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the canonical short name for a level ("DEBUG", "INFO", ...).
std::string_view to_string(LogLevel level);

/// Global, thread-safe logger. Obtain via Logger::instance().
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  /// Minimum level that will be emitted. Defaults to kInfo. Lock-free.
  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  /// Replaces the output sink. Pass nullptr to restore the default
  /// (stderr with a "[+elapsed] [LEVEL] component: message" prefix, where
  /// elapsed is wall time since logger construction).
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger();

  /// Seconds of wall time since the logger singleton was constructed.
  double elapsed_seconds() const;

  mutable std::mutex mu_;
  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  Sink sink_;
  std::chrono::steady_clock::time_point start_;
};

namespace detail {
// Builds the message from stream-style arguments; keeps the macro below cheap
// when the level is disabled.
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

}  // namespace mfw::util

// Stream-style logging macros; arguments are not evaluated when the level is
// below the logger threshold.
#define MFW_LOG(mfw_level_, component, ...)                            \
  do {                                                                 \
    auto& mfw_logger_ = ::mfw::util::Logger::instance();               \
    if (mfw_logger_.enabled(mfw_level_))                               \
      mfw_logger_.log(mfw_level_, component,                           \
                      ::mfw::util::detail::concat(__VA_ARGS__));       \
  } while (0)

#define MFW_DEBUG(component, ...) \
  MFW_LOG(::mfw::util::LogLevel::kDebug, component, __VA_ARGS__)
#define MFW_INFO(component, ...) \
  MFW_LOG(::mfw::util::LogLevel::kInfo, component, __VA_ARGS__)
#define MFW_WARN(component, ...) \
  MFW_LOG(::mfw::util::LogLevel::kWarn, component, __VA_ARGS__)
#define MFW_ERROR(component, ...) \
  MFW_LOG(::mfw::util::LogLevel::kError, component, __VA_ARGS__)
