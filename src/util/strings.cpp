#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mfw::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer algorithm with backtracking for '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, match = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string path_join(std::string_view a, std::string_view b) {
  if (a.empty()) return std::string(b);
  if (b.empty()) return std::string(a);
  std::string out(a);
  while (!out.empty() && out.back() == '/') out.pop_back();
  std::size_t bstart = 0;
  while (bstart < b.size() && b[bstart] == '/') ++bstart;
  out.push_back('/');
  out.append(b.substr(bstart));
  return out;
}

std::string_view path_basename(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

std::string_view path_dirname(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? std::string_view{} : path.substr(0, pos);
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace mfw::util
