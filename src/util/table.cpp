#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mfw::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table needs >= 1 column");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table row width mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const bool quote = row[c].find_first_of(",\"\n") != std::string::npos;
      if (!quote) {
        os << row[c];
      } else {
        os << '"';
        for (char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace mfw::util
