#include "util/crc32.hpp"

#include <array>

namespace mfw::util {
namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = make_table();
  return t;
}

}  // namespace

void Crc32::update(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& t = table();
  for (std::size_t i = 0; i < size; ++i) {
    state_ = t[(state_ ^ p[i]) & 0xffu] ^ (state_ >> 8);
  }
}

std::uint32_t crc32(const void* data, std::size_t size) {
  Crc32 c;
  c.update(data, size);
  return c.value();
}

std::uint32_t crc32(std::span<const std::byte> data) {
  return crc32(data.data(), data.size());
}

}  // namespace mfw::util
