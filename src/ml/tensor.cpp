#include "ml/tensor.hpp"

#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace mfw::ml {

namespace {
std::size_t shape_size(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d <= 0) throw std::invalid_argument("tensor dims must be positive");
    n *= static_cast<std::size_t>(d);
  }
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {}

Tensor::Tensor(std::vector<int> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_size(shape_))
    throw std::invalid_argument("tensor data size does not match shape");
}

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::he_normal(std::vector<int> shape, util::Rng& rng) {
  Tensor t(shape);
  std::size_t fan_in = 1;
  for (std::size_t i = 1; i < shape.size(); ++i)
    fan_in *= static_cast<std::size_t>(shape[i]);
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(fan_in == 0 ? 1 : fan_in));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal()) * stddev;
  return t;
}

float& Tensor::at2(int i, int j) {
  assert(rank() == 2);
  return data_[static_cast<std::size_t>(i) * shape_[1] + j];
}
float Tensor::at2(int i, int j) const {
  assert(rank() == 2);
  return data_[static_cast<std::size_t>(i) * shape_[1] + j];
}
float& Tensor::at3(int c, int h, int w) {
  assert(rank() == 3);
  return data_[(static_cast<std::size_t>(c) * shape_[1] + h) * shape_[2] + w];
}
float Tensor::at3(int c, int h, int w) const {
  assert(rank() == 3);
  return data_[(static_cast<std::size_t>(c) * shape_[1] + h) * shape_[2] + w];
}

Tensor Tensor::reshaped(std::vector<int> shape) const {
  if (shape_size(shape) != data_.size())
    throw std::invalid_argument("reshape element count mismatch");
  return Tensor(std::move(shape), data_);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::check_same_shape(const Tensor& other) const {
  if (shape_ != other.shape_)
    throw std::invalid_argument("tensor shape mismatch: " + shape_str() +
                                " vs " + other.shape_str());
}

Tensor& Tensor::operator+=(const Tensor& other) {
  check_same_shape(other);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  check_same_shape(other);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

float Tensor::norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

float Tensor::mean() const {
  if (data_.empty()) return 0.0f;
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s / static_cast<double>(data_.size()));
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << 'x';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

Tensor rotate90(const Tensor& chw, int quarter_turns) {
  if (chw.rank() != 3) throw std::invalid_argument("rotate90 needs [C][H][W]");
  int turns = ((quarter_turns % 4) + 4) % 4;
  if (turns == 0) return chw;
  const int channels = chw.dim(0);
  const int height = chw.dim(1);
  const int width = chw.dim(2);
  if (turns % 2 == 1 && height != width)
    throw std::invalid_argument("odd quarter-turns require square tiles");
  Tensor out(chw.shape());
  for (int c = 0; c < channels; ++c) {
    for (int h = 0; h < height; ++h) {
      for (int w = 0; w < width; ++w) {
        int sh = h, sw = w;
        // Destination (h, w) <- source pixel rotated CCW by `turns`.
        switch (turns) {
          case 1: sh = w; sw = height - 1 - h; break;
          case 2: sh = height - 1 - h; sw = width - 1 - w; break;
          case 3: sh = width - 1 - w; sw = h; break;
          default: break;
        }
        out.at3(c, h, w) = chw.at3(c, sh, sw);
      }
    }
  }
  return out;
}

float mse(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape())
    throw std::invalid_argument("mse shape mismatch");
  if (a.size() == 0) return 0.0f;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return static_cast<float>(s / static_cast<double>(a.size()));
}

float squared_distance(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("squared_distance length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return static_cast<float>(s);
}

}  // namespace mfw::ml
