#include "ml/loss.hpp"

#include <stdexcept>

namespace mfw::ml {

LossGrad mse_loss(const Tensor& pred, const Tensor& target) {
  if (pred.shape() != target.shape())
    throw std::invalid_argument("mse_loss shape mismatch");
  LossGrad out;
  out.grad = Tensor(pred.shape());
  const auto n = static_cast<float>(pred.size() == 0 ? 1 : pred.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float d = pred[i] - target[i];
    loss += static_cast<double>(d) * d;
    out.grad[i] = 2.0f * d / n;
  }
  out.loss = static_cast<float>(loss / n);
  return out;
}

LossGrad latent_consistency_loss(const Tensor& z, const Tensor& z_ref) {
  if (z.shape() != z_ref.shape())
    throw std::invalid_argument("latent_consistency_loss shape mismatch");
  LossGrad out;
  out.grad = Tensor(z.shape());
  const auto n = static_cast<float>(z.size() == 0 ? 1 : z.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    const float d = z[i] - z_ref[i];
    loss += static_cast<double>(d) * d;
    out.grad[i] = 2.0f * d / n;
  }
  out.loss = static_cast<float>(loss / n);
  return out;
}

}  // namespace mfw::ml
