// Training losses with gradients.
#pragma once

#include "ml/tensor.hpp"

namespace mfw::ml {

struct LossGrad {
  float loss = 0.0f;
  Tensor grad;  // dL/d(pred), same shape as pred
};

/// Mean squared error and its gradient w.r.t. `pred`.
LossGrad mse_loss(const Tensor& pred, const Tensor& target);

/// Latent-consistency loss ||z - z_ref||^2 / D with gradient w.r.t. `z`
/// (`z_ref` treated as a constant — stop-gradient; see RiccTrainer docs).
LossGrad latent_consistency_loss(const Tensor& z, const Tensor& z_ref);

}  // namespace mfw::ml
