// Clustering for AICCA class construction.
//
// The AICCA pipeline clusters latent representations of ~1M tiles with
// *agglomerative hierarchical clustering* (Ward linkage) to derive its 42
// cloud classes, then assigns unseen tiles to the nearest cluster centroid.
// We implement Ward via the nearest-neighbour-chain algorithm (O(n^2) time,
// O(n^2) memory) plus k-means as the baseline comparator the RICC paper
// evaluates against, and silhouette / within-cluster metrics for the
// "cluster evaluation" stage.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/tensor.hpp"

namespace mfw::util {
class ThreadPool;
}

namespace mfw::ml {

struct ClusterResult {
  int k = 0;
  std::size_t dim = 0;
  std::vector<int> labels;  // one label in [0, k) per input row
  Tensor centroids;         // [k][dim]
};

/// Ward-linkage agglomerative clustering of n rows of dimension d, cut at k
/// clusters. `data` is row-major n*d. Requires 1 <= k <= n.
///
/// The chain walk keeps a per-cluster cached nearest neighbour: Ward linkage
/// is reducible (a merged cluster is never closer to a bystander than the
/// nearer of its parts was), so a cache entry only goes stale when its target
/// was one of the two merged clusters. That drops the rescan work from O(n)
/// per chain step to O(n) per *merge* in the common case. Set
/// MFW_ML_NAIVE_KERNELS (or kernels::set_use_naive) to force the original
/// full-rescan path for equivalence testing.
///
/// If `pool` is non-null the initial O(n^2 d) distance-matrix fill is
/// parallelised across it; the merge sequence is identical either way.
ClusterResult agglomerative_ward(std::span<const float> data, std::size_t n,
                                 std::size_t d, int k,
                                 util::ThreadPool* pool);
ClusterResult agglomerative_ward(std::span<const float> data, std::size_t n,
                                 std::size_t d, int k);

/// Lloyd's k-means with k-means++ seeding.
ClusterResult kmeans(std::span<const float> data, std::size_t n, std::size_t d,
                     int k, util::Rng& rng, int max_iters = 50);

/// Mean silhouette coefficient in [-1, 1]; higher is better separation.
/// O(n^2) — intended for evaluation-sized samples.
double silhouette(std::span<const float> data, std::size_t n, std::size_t d,
                  std::span<const int> labels, int k);

/// Sum over clusters of within-cluster squared distance to the centroid.
double within_cluster_ss(std::span<const float> data, std::size_t n,
                         std::size_t d, const ClusterResult& result);

/// Index of the nearest centroid ([k][dim]) to `point` (squared Euclidean).
int nearest_centroid(const Tensor& centroids, std::span<const float> point);

}  // namespace mfw::ml
