// Fast inference plans for the RICC encoder (DESIGN.md §13): the fused fp32
// path and the int8 quantized path.
//
// Both plans are compiled once from a (trained) encoder Sequential and are
// immutable afterwards: encode() is const and keeps every mutable buffer in
// a caller-owned EncodeScratch, so one plan instance is safely shared across
// data-parallel workers — unlike Sequential, whose backward caches force a
// clone_net() replica per worker.
//
//   FusedEncoder    — fp32, conv+bias+LeakyReLU+maxpool fused per stage.
//                     Bitwise identical to Sequential::forward on the same
//                     weights (same kernels, same op order); it only removes
//                     the per-layer Tensor allocations and input caches.
//   QuantizedEncoder — int8. Weights carry per-output-channel symmetric
//                     scales (max-abs/127); activations carry per-tensor
//                     scales calibrated from a sample batch run through the
//                     fp32 reference. Each conv stage is int8 im2col →
//                     int32 gemm_s8 → dequant+bias+LeakyReLU in fp32 →
//                     fp32 maxpool → one vectorized requant of the pooled
//                     quarter (requant is monotonic, so pooling before it
//                     changes nothing); the final Dense dequantizes into the
//                     fp32 latent. Accuracy is gated against fp32 (≥99%
//                     42-class assignment agreement) in tests and CI.
//
// Plans snapshot the weights at build time: retrain or reload the model and
// the plan must be rebuilt (RiccModel::set_encode_path handles this).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/tensor.hpp"

namespace mfw::ml {

class Sequential;

/// Reusable per-worker buffers for FusedEncoder / QuantizedEncoder encode
/// calls. Reusing one instance across calls amortizes every allocation in
/// the hot path.
struct EncodeScratch {
  std::vector<float> x;           // fp32 stage input (post-pool)
  std::vector<float> y;           // fp32 conv output (pre-pool)
  std::vector<float> col;         // fp32 patch matrix
  std::vector<std::int8_t> qx;    // int8 stage input
  std::vector<std::int8_t> qcol;  // int8 patch matrix
  std::vector<std::int32_t> acc;  // int32 gemm accumulators
};

/// Fused fp32 encoder plan. Expects the RICC encoder layer pattern
/// ([Conv2d, LeakyReLU, MaxPool2x2] x blocks, Flatten, Dense); build()
/// throws std::invalid_argument on anything else.
class FusedEncoder {
 public:
  struct Stage {
    int in_c = 0, out_c = 0, kernel = 0, stride = 0, pad = 0;
    int in_size = 0;  // square input H == W entering this stage
    float slope = 0.0f;
    std::vector<float> weight;  // [out][in*k*k] snapshot
    std::vector<float> bias;    // [out]
  };

  static FusedEncoder build(const Sequential& encoder, int tile_size);

  /// Encodes one [channels][tile][tile] tile to the [latent_dim] vector,
  /// bitwise identical to the unfused layer path on the same weights.
  Tensor encode(const Tensor& tile, EncodeScratch& scratch) const;

  /// Same fp32 pass, additionally folding per-tensor max-abs values into
  /// `maxabs` (size stage_count()+1): maxabs[0] over the input tile,
  /// maxabs[1+i] over stage i's post-activation (pre-pool) output. This is
  /// the int8 calibration probe.
  Tensor encode_calibrating(const Tensor& tile, EncodeScratch& scratch,
                            std::span<float> maxabs) const;

  std::size_t stage_count() const { return stages_.size(); }
  int tile_size() const { return tile_size_; }
  int channels() const { return channels_; }
  int latent_dim() const { return dense_out_; }

 private:
  Tensor encode_impl(const Tensor& tile, EncodeScratch& scratch,
                     float* maxabs) const;

  std::vector<Stage> stages_;
  int dense_in_ = 0, dense_out_ = 0;
  std::vector<float> dense_w_, dense_b_;
  int tile_size_ = 0, channels_ = 0;
};

/// Int8 quantized encoder plan.
class QuantizedEncoder {
 public:
  /// Quantizes the encoder's weights (per-output-channel scales) and
  /// calibrates per-tensor activation scales by running the fp32 reference
  /// over `sample` (must be non-empty).
  static QuantizedEncoder build(const Sequential& encoder, int tile_size,
                                std::span<const Tensor> sample);

  /// Encodes one tile through the int8 pipeline into the fp32 latent.
  Tensor encode(const Tensor& tile, EncodeScratch& scratch) const;

  /// Per-tensor activation scales: [0] input, [1+i] stage i output.
  std::span<const float> activation_scales() const { return act_scales_; }
  std::size_t stage_count() const { return stages_.size(); }

 private:
  struct Stage {
    int in_c = 0, out_c = 0, kernel = 0, stride = 0, pad = 0;
    int in_size = 0;
    float slope = 0.0f;
    std::vector<std::int8_t> weight_q;  // [out][in*k*k]
    std::vector<float> wscale;          // per output channel
    std::vector<float> bias;            // fp32 (applied at dequant)
  };

  std::vector<Stage> stages_;
  std::vector<float> act_scales_;  // [stage_count()+1]
  int dense_in_ = 0, dense_out_ = 0;
  std::vector<std::int8_t> dense_wq_;
  std::vector<float> dense_wscale_, dense_b_;
  int tile_size_ = 0, channels_ = 0;
};

}  // namespace mfw::ml
