// Continual learning for RICC (paper §V: "AI applications are continually
// trained periodically on new data without catastrophically forgetting what
// had been learned previously").
//
// Implements experience replay — the standard rehearsal strategy (van de Ven
// et al., the paper's reference [24] lists it among the canonical
// approaches): a bounded reservoir of past tiles is mixed into each update
// batch when the model trains on a new data period. The ForgettingReport
// quantifies catastrophic forgetting directly: reconstruction loss on the
// *old* data before vs after the update.
#pragma once

#include <span>
#include <vector>

#include "ml/ricc.hpp"

namespace mfw::ml {

/// Bounded reservoir sample over all tiles ever offered (Vitter's
/// algorithm R), giving every past tile an equal chance of being retained.
class ReplayBuffer {
 public:
  ReplayBuffer(std::size_t capacity, std::uint64_t seed);

  void offer(const Tensor& tile);
  void offer_all(std::span<const Tensor> tiles);

  std::size_t size() const { return buffer_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t seen() const { return seen_; }
  const std::vector<Tensor>& tiles() const { return buffer_; }

  /// Draws `count` tiles (with replacement) for a rehearsal batch.
  std::vector<Tensor> sample(std::size_t count);

 private:
  std::size_t capacity_;
  util::Rng rng_;
  std::vector<Tensor> buffer_;
  std::uint64_t seen_ = 0;
};

struct ContinualUpdateOptions {
  RiccTrainOptions train{};
  /// Fraction of each update's training set drawn from the replay buffer
  /// (0 = naive fine-tuning, the catastrophic-forgetting baseline).
  double replay_fraction = 0.5;
  /// Refit the class centroids after the weight update (keeps the atlas
  /// aligned with the shifted latent space).
  bool refit_centroids = true;
};

struct ForgettingReport {
  /// Mean reconstruction loss on the held-out *old* tiles.
  float old_loss_before = 0.0f;
  float old_loss_after = 0.0f;
  /// Mean reconstruction loss on the *new* tiles after the update.
  float new_loss_after = 0.0f;
  std::size_t replay_tiles_used = 0;

  /// Positive = the model got worse on old data (forgetting).
  float forgetting() const { return old_loss_after - old_loss_before; }
};

/// Mean reconstruction loss of the model over a tile set.
float reconstruction_loss(RiccModel& model, std::span<const Tensor> tiles);

/// Updates `model` on `new_tiles`, rehearsing from `replay`; evaluates
/// forgetting against `old_eval` (a held-out sample of past data). New
/// tiles are offered to the replay buffer afterwards.
ForgettingReport continual_update(RiccModel& model, ReplayBuffer& replay,
                                  std::span<const Tensor> new_tiles,
                                  std::span<const Tensor> old_eval,
                                  const ContinualUpdateOptions& options);

}  // namespace mfw::ml
