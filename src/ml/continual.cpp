#include "ml/continual.hpp"

#include <stdexcept>

namespace mfw::ml {

ReplayBuffer::ReplayBuffer(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  if (capacity == 0) throw std::invalid_argument("ReplayBuffer capacity == 0");
  buffer_.reserve(capacity);
}

void ReplayBuffer::offer(const Tensor& tile) {
  ++seen_;
  if (buffer_.size() < capacity_) {
    buffer_.push_back(tile);
    return;
  }
  // Reservoir sampling: keep with probability capacity/seen.
  const auto slot = static_cast<std::uint64_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(seen_) - 1));
  if (slot < capacity_) buffer_[static_cast<std::size_t>(slot)] = tile;
}

void ReplayBuffer::offer_all(std::span<const Tensor> tiles) {
  for (const auto& tile : tiles) offer(tile);
}

std::vector<Tensor> ReplayBuffer::sample(std::size_t count) {
  std::vector<Tensor> out;
  if (buffer_.empty()) return out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(buffer_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(buffer_.size()) - 1))]);
  }
  return out;
}

float reconstruction_loss(RiccModel& model, std::span<const Tensor> tiles) {
  if (tiles.empty()) return 0.0f;
  double total = 0.0;
  for (const auto& tile : tiles) total += mse(model.reconstruct(tile), tile);
  return static_cast<float>(total / static_cast<double>(tiles.size()));
}

ForgettingReport continual_update(RiccModel& model, ReplayBuffer& replay,
                                  std::span<const Tensor> new_tiles,
                                  std::span<const Tensor> old_eval,
                                  const ContinualUpdateOptions& options) {
  if (new_tiles.empty())
    throw std::invalid_argument("continual_update needs new tiles");
  if (options.replay_fraction < 0.0 || options.replay_fraction >= 1.0)
    throw std::invalid_argument("replay_fraction must be in [0, 1)");

  ForgettingReport report;
  report.old_loss_before = reconstruction_loss(model, old_eval);

  // Assemble the update set: new tiles + rehearsal draws.
  std::vector<Tensor> training(new_tiles.begin(), new_tiles.end());
  if (options.replay_fraction > 0.0 && replay.size() > 0) {
    const auto rehearsal = static_cast<std::size_t>(
        static_cast<double>(new_tiles.size()) * options.replay_fraction /
        (1.0 - options.replay_fraction));
    auto drawn = replay.sample(rehearsal);
    report.replay_tiles_used = drawn.size();
    for (auto& tile : drawn) training.push_back(std::move(tile));
  }
  train_autoencoder(model, training, options.train);
  if (options.refit_centroids &&
      training.size() >= static_cast<std::size_t>(model.config().num_classes)) {
    fit_centroids(model, training);
  }

  report.old_loss_after = reconstruction_loss(model, old_eval);
  report.new_loss_after = reconstruction_loss(model, new_tiles);
  replay.offer_all(new_tiles);
  return report;
}

}  // namespace mfw::ml
