// Optimizers for RICC training: SGD with momentum and Adam.
#pragma once

#include <vector>

#include "ml/layers.hpp"

namespace mfw::ml {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies the accumulated gradients (scaled by 1/batch_size) and clears
  /// them.
  virtual void step(std::size_t batch_size) = 0;

  void zero_grad();

 protected:
  std::vector<Param*> params_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, float lr, float momentum = 0.0f);
  void step(std::size_t batch_size) override;

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step(std::size_t batch_size) override;

 private:
  float lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace mfw::ml
