// Cache-friendly compute kernels for the ML substrate.
//
// The RICC hot paths (Conv2d forward/backward, and through them encode /
// train / predict) lower onto three primitives kept deliberately small:
//
//   - sgemm: row-major single-precision C = A*B (optionally C += A*B),
//     blocked over the N dimension so one C row tile and one B row tile stay
//     in L1, with a K-ascending scalar accumulation per output element. The
//     inner loop is a contiguous saxpy the compiler vectorizes; because K
//     stays ascending per element, the gemm accumulates each output in the
//     same order as the naive convolution loops it replaces.
//   - im2col / col2im: unfold a [C][H][W] image into the [C*k*k][out_h*out_w]
//     patch matrix (zero-padded, any stride) and the transposed scatter-add
//     for the gradient. Row r = (c, kh, kw) of the patch matrix is contiguous
//     in output position, so the gemm streams it.
//   - transpose: out[j][i] = in[i][j], used to express the backward gemms
//     (dW = dY * col^T, dcol = W^T * dY) as the one vector-friendly nn form.
//
// The int8 inference substrate (DESIGN.md §13) adds four primitives on the
// same im2col+GEMM lowering:
//
//   - quantize_s8 / dequantize_s8: symmetric linear quantization between
//     fp32 and int8 with a single scale (q = round(x/scale), clamped to
//     ±127; -128 is never produced, keeping the code symmetric).
//   - im2col_s8: the int8 twin of im2col (zero padding quantizes to 0
//     exactly, so the patch geometry is shared).
//   - gemm_s8: C[m][n](int32) = A[m][k](int8) * B[k][n](int8) with exact
//     int32 accumulation. On AVX2 hosts (runtime dispatch — no global arch
//     flags, the fp32 paths keep their baseline codegen) B is repacked into
//     interleaved k-pairs and the inner loop is vpmaddwd: 16 MACs per
//     multiply-add vs the fp32 path's 4-wide SSE saxpy. The scalar fallback
//     computes the same exact integers, so results are host-independent.
//
//   - conv2d_bias_leaky_f32: the fused fp32 Conv2d+bias+LeakyReLU forward.
//     It composes the exact same im2col / bias-init / accumulating-sgemm /
//     in-place slope multiply the unfused layers perform, so its output is
//     bitwise identical to Conv2d::forward + LeakyReLU::forward — it just
//     skips the per-layer Tensor allocations and input caches.
//
// The naive 7-deep loop nest is retained inside Conv2d behind this module's
// runtime flag (env MFW_ML_NAIVE_KERNELS=1, or set_use_naive() from tests)
// so equivalence tests can compare both paths in one binary.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mfw::ml::kernels {

/// True when the naive (pre-GEMM) kernel paths should be used. Initialised
/// once from the MFW_ML_NAIVE_KERNELS environment variable (any value other
/// than empty/"0" enables it); tests override via set_use_naive().
bool use_naive();
void set_use_naive(bool on);

/// Row-major C[m][n] = A[m][k] * B[k][n] (accumulate=false) or
/// C[m][n] += A[m][k] * B[k][n] (accumulate=true). Per output element the
/// K products are accumulated in ascending-k order.
void sgemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
           const float* b, float* c, bool accumulate);

/// out[j][i] = in[i][j] for in[rows][cols].
void transpose(std::size_t rows, std::size_t cols, const float* in, float* out);

/// Patch-matrix geometry for a [channels][*][*] image under a square
/// `kernel` with `stride` and symmetric zero `pad`.
std::size_t im2col_rows(int channels, int kernel);
int conv_out_dim(int in_dim, int kernel, int stride, int pad);

/// Unfolds input [channels][in_h][in_w] into col[channels*kernel*kernel]
/// [out_h*out_w]: col[(c*kernel+kh)*kernel+kw][oh*out_w+ow] =
/// input[c][oh*stride-pad+kh][ow*stride-pad+kw], zero outside the image.
void im2col(const float* input, int channels, int in_h, int in_w, int kernel,
            int stride, int pad, float* col);

/// Transposed scatter-add of im2col: accumulates col back into
/// grad_input[channels][in_h][in_w] (which must be pre-zeroed or carry the
/// values to accumulate onto). Out-of-image taps are dropped.
void col2im(const float* col, int channels, int in_h, int in_w, int kernel,
            int stride, int pad, float* grad_input);

// ------------------------------------------------------- int8 substrate --

/// True when gemm_s8 runs its AVX2 vpmaddwd inner loop on this host
/// (runtime dispatch); false on pre-AVX2 / non-x86 hosts, where the scalar
/// fallback computes identical integers.
bool gemm_s8_vectorized();

/// Symmetric quantization: q[i] = clamp(round(x[i] / scale), -127, 127),
/// round-to-nearest-even. `scale` must be > 0.
void quantize_s8(const float* x, std::size_t n, float scale, std::int8_t* q);

/// Inverse map: x[i] = q[i] * scale.
void dequantize_s8(const std::int8_t* q, std::size_t n, float scale,
                   float* x);

/// int8 twin of im2col: identical patch geometry, zero padding emits 0.
void im2col_s8(const std::int8_t* input, int channels, int in_h, int in_w,
               int kernel, int stride, int pad, std::int8_t* col);

/// Row-major C[m][n] = A[m][k] * B[k][n] with int8 operands and exact int32
/// accumulation (no saturation: |acc| <= k * 127^2 needs k < 2^17 to stay
/// in int32, far above any RICC patch size). AVX2 hosts take a vectorized
/// path; the result is the same exact integers on every host.
void gemm_s8(std::size_t m, std::size_t n, std::size_t k,
             const std::int8_t* a, const std::int8_t* b, std::int32_t* c);

/// Quantized-conv epilogue: out[i] = leaky(float(acc[i]) * scale + bias)
/// where leaky(v) = v < 0 ? v * slope : v. Exactly one float multiply and
/// add per element in both the AVX2 and scalar paths, so the result is
/// bit-identical across hosts (the baseline builds carry no FMA contraction
/// either).
void dequant_bias_leaky_s32(const std::int32_t* acc, std::size_t n,
                            float scale, float bias, float slope, float* out);

// -------------------------------------------------------- fused fp32 op --

/// Fused Conv2d + bias + LeakyReLU forward over input[in_c][in_h][in_w]
/// into out[out_c][out_h][out_w]. `weight` is the layer's [out][in][k][k]
/// tensor, `col` caller scratch of im2col_rows(in_c, kernel) * out_h*out_w
/// floats. Bitwise identical to the unfused Conv2d::forward (GEMM path)
/// followed by LeakyReLU::forward: same im2col, same bias-init +
/// accumulating sgemm, same in-place `x *= slope` on negatives.
void conv2d_bias_leaky_f32(const float* input, int in_c, int in_h, int in_w,
                           const float* weight, const float* bias, int out_c,
                           int kernel, int stride, int pad, float slope,
                           float* col, float* out);

}  // namespace mfw::ml::kernels
