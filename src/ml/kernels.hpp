// Cache-friendly compute kernels for the ML substrate.
//
// The RICC hot paths (Conv2d forward/backward, and through them encode /
// train / predict) lower onto three primitives kept deliberately small:
//
//   - sgemm: row-major single-precision C = A*B (optionally C += A*B),
//     blocked over the N dimension so one C row tile and one B row tile stay
//     in L1, with a K-ascending scalar accumulation per output element. The
//     inner loop is a contiguous saxpy the compiler vectorizes; because K
//     stays ascending per element, the gemm accumulates each output in the
//     same order as the naive convolution loops it replaces.
//   - im2col / col2im: unfold a [C][H][W] image into the [C*k*k][out_h*out_w]
//     patch matrix (zero-padded, any stride) and the transposed scatter-add
//     for the gradient. Row r = (c, kh, kw) of the patch matrix is contiguous
//     in output position, so the gemm streams it.
//   - transpose: out[j][i] = in[i][j], used to express the backward gemms
//     (dW = dY * col^T, dcol = W^T * dY) as the one vector-friendly nn form.
//
// The naive 7-deep loop nest is retained inside Conv2d behind this module's
// runtime flag (env MFW_ML_NAIVE_KERNELS=1, or set_use_naive() from tests)
// so equivalence tests can compare both paths in one binary.
#pragma once

#include <cstddef>

namespace mfw::ml::kernels {

/// True when the naive (pre-GEMM) kernel paths should be used. Initialised
/// once from the MFW_ML_NAIVE_KERNELS environment variable (any value other
/// than empty/"0" enables it); tests override via set_use_naive().
bool use_naive();
void set_use_naive(bool on);

/// Row-major C[m][n] = A[m][k] * B[k][n] (accumulate=false) or
/// C[m][n] += A[m][k] * B[k][n] (accumulate=true). Per output element the
/// K products are accumulated in ascending-k order.
void sgemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
           const float* b, float* c, bool accumulate);

/// out[j][i] = in[i][j] for in[rows][cols].
void transpose(std::size_t rows, std::size_t cols, const float* in, float* out);

/// Patch-matrix geometry for a [channels][*][*] image under a square
/// `kernel` with `stride` and symmetric zero `pad`.
std::size_t im2col_rows(int channels, int kernel);
int conv_out_dim(int in_dim, int kernel, int stride, int pad);

/// Unfolds input [channels][in_h][in_w] into col[channels*kernel*kernel]
/// [out_h*out_w]: col[(c*kernel+kh)*kernel+kw][oh*out_w+ow] =
/// input[c][oh*stride-pad+kh][ow*stride-pad+kw], zero outside the image.
void im2col(const float* input, int channels, int in_h, int in_w, int kernel,
            int stride, int pad, float* col);

/// Transposed scatter-add of im2col: accumulates col back into
/// grad_input[channels][in_h][in_w] (which must be pre-zeroed or carry the
/// values to accumulate onto). Out-of-image taps are dropped.
void col2im(const float* col, int channels, int in_h, int in_w, int kernel,
            int stride, int pad, float* grad_input);

}  // namespace mfw::ml::kernels
