// Neural-network layers with forward + backward passes.
//
// Single-sample ([C][H][W] or flat [D]) semantics; the trainer accumulates
// gradients across a mini-batch by running samples sequentially. Layers
// cache what backward() needs, so a layer instance is not reentrant — each
// worker owns its model replica (the paper's inference workers each hold the
// pretrained RICC model).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/tensor.hpp"

namespace mfw::ml {

/// A learnable tensor and its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& input) = 0;
  /// Given dL/d(output), returns dL/d(input) and accumulates parameter grads.
  virtual Tensor backward(const Tensor& grad_output) = 0;
  virtual std::vector<Param*> params() { return {}; }
  virtual std::string name() const = 0;
  /// Deep copy (weights, grads, and hyperparameters; caches come along but
  /// are irrelevant to the next forward). Each data-parallel worker runs its
  /// own replica because forward/backward mutate the layer caches.
  virtual std::unique_ptr<Layer> clone() const = 0;
};

/// 2-D convolution over [C][H][W] with square kernel, stride, and symmetric
/// zero padding.
class Conv2d final : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride, int pad,
         util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "conv2d"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv2d>(*this);
  }

  int out_height(int in_height) const;
  int out_width(int in_width) const;

  // Hyperparameter / weight views for inference-plan builders (quant.hpp).
  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel_size() const { return kernel_; }
  int stride() const { return stride_; }
  int padding() const { return pad_; }
  const Tensor& weight() const { return weight_.value; }
  const Tensor& bias() const { return bias_.value; }

 private:
  Tensor forward_naive(const Tensor& input, int out_h, int out_w) const;
  Tensor backward_naive(const Tensor& grad_output);

  int in_channels_, out_channels_, kernel_, stride_, pad_;
  Param weight_;  // [out][in][k][k]
  Param bias_;    // [out]
  Tensor input_;             // cached for backward
  std::vector<float> col_;   // cached im2col of input_ (GEMM path)
};

/// Fully connected layer over flat input.
class Dense final : public Layer {
 public:
  Dense(int in_features, int out_features, util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "dense"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Dense>(*this);
  }

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  const Tensor& weight() const { return weight_.value; }
  const Tensor& bias() const { return bias_.value; }

 private:
  int in_features_, out_features_;
  Param weight_;  // [out][in]
  Param bias_;    // [out]
  Tensor input_;
};

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "relu"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>(*this);
  }

 private:
  Tensor input_;
};

class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(float slope = 0.1f) : slope_(slope) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "leaky_relu"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<LeakyReLU>(*this);
  }

  float slope() const { return slope_; }

 private:
  float slope_;
  Tensor input_;
};

class Sigmoid final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "sigmoid"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Sigmoid>(*this);
  }

 private:
  Tensor output_;
};

/// 2x2 max pooling with stride 2 (requires even H and W).
class MaxPool2x2 final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "maxpool2x2"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2x2>(*this);
  }

 private:
  std::vector<int> shape_;
  std::vector<std::size_t> argmax_;  // flat source index per output element
};

/// Nearest-neighbour 2x upsampling.
class UpsampleNearest2x final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "upsample2x"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<UpsampleNearest2x>(*this);
  }

 private:
  std::vector<int> in_shape_;
};

/// [C][H][W] -> flat [C*H*W].
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "flatten"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>(*this);
  }

 private:
  std::vector<int> in_shape_;
};

/// Flat [D] -> [C][H][W].
class Reshape final : public Layer {
 public:
  explicit Reshape(std::vector<int> target) : target_(std::move(target)) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "reshape"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Reshape>(*this);
  }

 private:
  std::vector<int> target_;
  std::vector<int> in_shape_;
};

/// Ordered layer container; owns its layers.
class Sequential final : public Layer {
 public:
  Sequential() = default;

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }
  template <typename L, typename... Args>
  void emplace(Args&&... args) {
    layers_.push_back(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "sequential"; }
  std::unique_ptr<Layer> clone() const override;
  /// Typed deep copy — the replica a data-parallel worker owns.
  Sequential clone_net() const;

  std::size_t layer_count() const { return layers_.size(); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }
  /// Total scalar parameter count.
  std::size_t param_count();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace mfw::ml
