#include "ml/optim.hpp"

#include <cmath>
#include <stdexcept>

namespace mfw::ml {

void Optimizer::zero_grad() {
  for (Param* p : params_) p->grad.zero();
}

Sgd::Sgd(std::vector<Param*> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (lr <= 0) throw std::invalid_argument("Sgd: lr must be > 0");
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.push_back(Tensor::zeros(p->value.shape()));
}

void Sgd::step(std::size_t batch_size) {
  const float scale = 1.0f / static_cast<float>(batch_size == 0 ? 1 : batch_size);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    Tensor& vel = velocity_[i];
    for (std::size_t j = 0; j < p->value.size(); ++j) {
      vel[j] = momentum_ * vel[j] - lr_ * p->grad[j] * scale;
      p->value[j] += vel[j];
    }
    p->grad.zero();
  }
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  if (lr <= 0) throw std::invalid_argument("Adam: lr must be > 0");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.push_back(Tensor::zeros(p->value.shape()));
    v_.push_back(Tensor::zeros(p->value.shape()));
  }
}

void Adam::step(std::size_t batch_size) {
  ++t_;
  const float scale = 1.0f / static_cast<float>(batch_size == 0 ? 1 : batch_size);
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    for (std::size_t j = 0; j < p->value.size(); ++j) {
      const float g = p->grad[j] * scale;
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g * g;
      const float mhat = m_[i][j] / bc1;
      const float vhat = v_[i][j] / bc2;
      p->value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    p->grad.zero();
  }
}

}  // namespace mfw::ml
