#include "ml/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

namespace mfw::ml::kernels {

namespace {
std::atomic<bool>& naive_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("MFW_ML_NAIVE_KERNELS");
    return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  }();
  return flag;
}

// One C row tile + one B row tile fit comfortably in a 32 KiB L1 with room
// for the streamed A scalars.
constexpr std::size_t kNBlock = 1024;
}  // namespace

bool use_naive() { return naive_flag().load(std::memory_order_relaxed); }
void set_use_naive(bool on) {
  naive_flag().store(on, std::memory_order_relaxed);
}

void sgemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
           const float* b, float* c, bool accumulate) {
  for (std::size_t n0 = 0; n0 < n; n0 += kNBlock) {
    const std::size_t nw = std::min(kNBlock, n - n0);
    for (std::size_t i = 0; i < m; ++i) {
      float* __restrict crow = c + i * n + n0;
      if (!accumulate) std::memset(crow, 0, nw * sizeof(float));
      const float* arow = a + i * k;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        const float* __restrict brow = b + p * n + n0;
        for (std::size_t j = 0; j < nw; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void transpose(std::size_t rows, std::size_t cols, const float* in,
               float* out) {
  // Simple tiled transpose; both matrices here are small enough (K x N of a
  // single convolution) that 32x32 tiles keep each pass in L1.
  constexpr std::size_t kTile = 32;
  for (std::size_t r0 = 0; r0 < rows; r0 += kTile) {
    const std::size_t r1 = std::min(rows, r0 + kTile);
    for (std::size_t c0 = 0; c0 < cols; c0 += kTile) {
      const std::size_t c1 = std::min(cols, c0 + kTile);
      for (std::size_t r = r0; r < r1; ++r)
        for (std::size_t c = c0; c < c1; ++c) out[c * rows + r] = in[r * cols + c];
    }
  }
}

std::size_t im2col_rows(int channels, int kernel) {
  return static_cast<std::size_t>(channels) * kernel * kernel;
}

int conv_out_dim(int in_dim, int kernel, int stride, int pad) {
  return (in_dim + 2 * pad - kernel) / stride + 1;
}

void im2col(const float* input, int channels, int in_h, int in_w, int kernel,
            int stride, int pad, float* col) {
  const int out_h = conv_out_dim(in_h, kernel, stride, pad);
  const int out_w = conv_out_dim(in_w, kernel, stride, pad);
  const std::size_t out_n = static_cast<std::size_t>(out_h) * out_w;
  float* row = col;
  for (int c = 0; c < channels; ++c) {
    const float* plane = input + static_cast<std::size_t>(c) * in_h * in_w;
    for (int kh = 0; kh < kernel; ++kh) {
      for (int kw = 0; kw < kernel; ++kw, row += out_n) {
        for (int oh = 0; oh < out_h; ++oh) {
          const int ih = oh * stride - pad + kh;
          float* dst = row + static_cast<std::size_t>(oh) * out_w;
          if (ih < 0 || ih >= in_h) {
            std::memset(dst, 0, static_cast<std::size_t>(out_w) * sizeof(float));
            continue;
          }
          const float* src = plane + static_cast<std::size_t>(ih) * in_w;
          const int iw0 = -pad + kw;
          if (stride == 1) {
            // Contiguous middle segment with zero fringes.
            const int lead = std::clamp(-iw0, 0, out_w);
            const int tail_start = std::clamp(in_w - iw0, 0, out_w);
            for (int ow = 0; ow < lead; ++ow) dst[ow] = 0.0f;
            if (tail_start > lead)
              std::memcpy(dst + lead, src + iw0 + lead,
                          static_cast<std::size_t>(tail_start - lead) *
                              sizeof(float));
            for (int ow = tail_start; ow < out_w; ++ow) dst[ow] = 0.0f;
          } else {
            for (int ow = 0; ow < out_w; ++ow) {
              const int iw = iw0 + ow * stride;
              dst[ow] = (iw < 0 || iw >= in_w) ? 0.0f : src[iw];
            }
          }
        }
      }
    }
  }
}

void col2im(const float* col, int channels, int in_h, int in_w, int kernel,
            int stride, int pad, float* grad_input) {
  const int out_h = conv_out_dim(in_h, kernel, stride, pad);
  const int out_w = conv_out_dim(in_w, kernel, stride, pad);
  const std::size_t out_n = static_cast<std::size_t>(out_h) * out_w;
  const float* row = col;
  for (int c = 0; c < channels; ++c) {
    float* plane = grad_input + static_cast<std::size_t>(c) * in_h * in_w;
    for (int kh = 0; kh < kernel; ++kh) {
      for (int kw = 0; kw < kernel; ++kw, row += out_n) {
        for (int oh = 0; oh < out_h; ++oh) {
          const int ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= in_h) continue;
          const float* src = row + static_cast<std::size_t>(oh) * out_w;
          float* dst = plane + static_cast<std::size_t>(ih) * in_w;
          for (int ow = 0; ow < out_w; ++ow) {
            const int iw = ow * stride - pad + kw;
            if (iw < 0 || iw >= in_w) continue;
            dst[iw] += src[ow];
          }
        }
      }
    }
  }
}

}  // namespace mfw::ml::kernels
